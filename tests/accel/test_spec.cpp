#include "accel/spec.hpp"

#include <gtest/gtest.h>

namespace aic::accel {
namespace {

using graph::OpKind;

TEST(Spec, Table1ComputeUnits) {
  EXPECT_EQ(cs2_spec().compute_units, 850'000u);
  EXPECT_EQ(sn30_spec().compute_units, 1280u);
  EXPECT_EQ(groq_spec().compute_units, 5120u);
  EXPECT_EQ(ipu_spec().compute_units, 1472u);
}

TEST(Spec, Table1OnChipMemory) {
  EXPECT_EQ(cs2_spec().ocm_bytes, 40ull << 30);
  EXPECT_EQ(sn30_spec().ocm_bytes, 640ull << 20);
  EXPECT_EQ(groq_spec().ocm_bytes, 230ull << 20);
  EXPECT_EQ(ipu_spec().ocm_bytes, 900ull << 20);
}

TEST(Spec, Table1Architectures) {
  EXPECT_EQ(cs2_spec().arch, ArchClass::kDataflow);
  EXPECT_EQ(sn30_spec().arch, ArchClass::kDataflow);
  EXPECT_EQ(groq_spec().arch, ArchClass::kSimd);
  EXPECT_EQ(ipu_spec().arch, ArchClass::kMimd);
}

TEST(Spec, HalfFormatsFollowSection31) {
  // CS-2, GroqChip and IPU speak FP16; SN30 speaks BF16.
  EXPECT_EQ(cs2_spec().half_format, tensor::HalfFormat::kFp16);
  EXPECT_EQ(groq_spec().half_format, tensor::HalfFormat::kFp16);
  EXPECT_EQ(ipu_spec().half_format, tensor::HalfFormat::kFp16);
  EXPECT_EQ(sn30_spec().half_format, tensor::HalfFormat::kBf16);
}

TEST(Spec, OcmPerCuApproximatesTable1) {
  // Table 1: 48 KB, 0.5 MB, 0.045 MB, 0.61 MB.
  EXPECT_EQ(cs2_spec().ocm_per_cu_bytes, 48u << 10);
  EXPECT_EQ(sn30_spec().ocm_per_cu_bytes, 512u << 10);
  EXPECT_NEAR(static_cast<double>(groq_spec().ocm_per_cu_bytes) / (1 << 20),
              0.045, 0.002);
  EXPECT_NEAR(static_cast<double>(ipu_spec().ocm_per_cu_bytes) / (1 << 20),
              0.61, 0.01);
}

TEST(Spec, NoAcceleratorSupportsBitwiseOps) {
  for (const AcceleratorSpec& spec :
       {cs2_spec(), sn30_spec(), groq_spec(), ipu_spec()}) {
    EXPECT_FALSE(spec.supported_ops.contains(OpKind::kBitShiftLeft))
        << spec.name;
    EXPECT_FALSE(spec.supported_ops.contains(OpKind::kBitAnd)) << spec.name;
  }
}

TEST(Spec, OnlyIpuAmongAcceleratorsSupportsScatterGather) {
  EXPECT_TRUE(ipu_spec().supported_ops.contains(OpKind::kGather));
  EXPECT_TRUE(ipu_spec().supported_ops.contains(OpKind::kScatter));
  for (const AcceleratorSpec& spec : {cs2_spec(), sn30_spec(), groq_spec()}) {
    EXPECT_FALSE(spec.supported_ops.contains(OpKind::kGather)) << spec.name;
    EXPECT_FALSE(spec.supported_ops.contains(OpKind::kScatter)) << spec.name;
  }
}

TEST(Spec, GpuAndCpuSupportEverything) {
  for (const AcceleratorSpec& spec : {a100_spec(), cpu_spec()}) {
    EXPECT_TRUE(spec.supported_ops.contains(OpKind::kBitShiftLeft));
    EXPECT_TRUE(spec.supported_ops.contains(OpKind::kGather));
    EXPECT_TRUE(spec.supported_ops.contains(OpKind::kMatMul));
  }
}

TEST(Spec, AllAcceleratorsSupportMatmul) {
  for (const AcceleratorSpec& spec :
       {cs2_spec(), sn30_spec(), groq_spec(), ipu_spec()}) {
    EXPECT_TRUE(spec.supported_ops.contains(OpKind::kMatMul)) << spec.name;
    EXPECT_TRUE(spec.supported_ops.contains(OpKind::kReshape)) << spec.name;
  }
}

TEST(Spec, ConstraintFlagsMatchPaper) {
  EXPECT_EQ(groq_spec().max_matmul_dim, 320u);
  EXPECT_EQ(groq_spec().max_batch, 1000u);
  EXPECT_EQ(sn30_spec().max_plane_bytes, 512u << 10);
  EXPECT_EQ(cs2_spec().max_plane_bytes, 0u);
  EXPECT_EQ(ipu_spec().max_plane_bytes, 0u);
}

TEST(Spec, ArchNames) {
  EXPECT_EQ(arch_name(ArchClass::kDataflow), "Dataflow");
  EXPECT_EQ(arch_name(ArchClass::kSimd), "SIMD");
  EXPECT_EQ(arch_name(ArchClass::kMimd), "MIMD");
}

TEST(Spec, PipelineOverlapRatesFromPaper) {
  EXPECT_DOUBLE_EQ(cs2_spec().resnet34_train_samples_per_s, 205.0);
  EXPECT_DOUBLE_EQ(sn30_spec().resnet34_train_samples_per_s, 570.0);
}

TEST(Spec, PowerFiguresOrdered) {
  // Public approximations used by bench_energy: the wafer-scale system
  // draws orders of magnitude more than the single boards.
  EXPECT_GT(cs2_spec().tdp_watts, 10 * sn30_spec().tdp_watts);
  EXPECT_GT(sn30_spec().tdp_watts, groq_spec().tdp_watts);
  for (const AcceleratorSpec& spec :
       {cs2_spec(), sn30_spec(), groq_spec(), ipu_spec(), a100_spec()}) {
    EXPECT_GT(spec.tdp_watts, 0.0) << spec.name;
  }
}

}  // namespace
}  // namespace aic::accel
