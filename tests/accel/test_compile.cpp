#include <gtest/gtest.h>

#include "accel/registry.hpp"
#include "graph/builders.hpp"

namespace aic::accel {
namespace {

using core::DctChopConfig;
using graph::BatchSpec;
using graph::build_compress_graph;
using graph::build_decompress_graph;
using graph::build_triangle_compress_graph;

DctChopConfig config(std::size_t n, std::size_t cf) {
  return {.height = n, .width = n, .cf = cf, .block = 8};
}

// The Fig. 10-13 workload: 100 samples × 3 channels.
const BatchSpec kPaperBatch{.batch = 100, .channels = 3};

TEST(Compile, DctChopCompilesEverywhereAt256) {
  for (Platform platform : all_platforms()) {
    const Accelerator accel = make_accelerator(platform);
    for (std::size_t cf = 2; cf <= 7; ++cf) {
      const auto result =
          accel.compile_check(build_compress_graph(config(256, cf), kPaperBatch));
      EXPECT_TRUE(result.ok)
          << platform_name(platform) << " cf=" << cf << ": " << result.error;
    }
  }
}

TEST(Compile, Sn30FailsAt512ByPmuCapacity) {
  // §4.2.2: "compilation fails for 512×512 resolution since the PMUs
  // cannot fit the entire output matrix".
  const Accelerator sn30 = make_accelerator(Platform::kSn30);
  const auto result =
      sn30.compile_check(build_compress_graph(config(512, 4), kPaperBatch));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("memory unit"), std::string::npos)
      << result.error;
}

TEST(Compile, GroqFailsAt512) {
  const Accelerator groq = make_accelerator(Platform::kGroq);
  const auto result =
      groq.compile_check(build_compress_graph(config(512, 4), kPaperBatch));
  EXPECT_FALSE(result.ok);
}

TEST(Compile, Cs2AndIpuCompileAt512) {
  // Fig. 15 discussion: the IPU ran 512×512 without serialization; the
  // CS-2's 40 GB wafer fits it trivially.
  for (Platform platform : {Platform::kCs2, Platform::kIpu}) {
    const Accelerator accel = make_accelerator(platform);
    for (std::size_t cf = 2; cf <= 7; ++cf) {
      const auto result = accel.compile_check(
          build_compress_graph(config(512, cf), kPaperBatch));
      EXPECT_TRUE(result.ok)
          << platform_name(platform) << " cf=" << cf << ": " << result.error;
      const auto d = accel.compile_check(
          build_decompress_graph(config(512, cf), kPaperBatch));
      EXPECT_TRUE(d.ok) << platform_name(platform) << ": " << d.error;
    }
  }
}

TEST(Compile, PartialSerializationChunksCompileOnSn30AndIpu) {
  // §3.5.1 / Fig. 15: s=2 turns a 512×512 sample into 256×256 chunks
  // that both platforms admit.
  for (Platform platform : {Platform::kSn30, Platform::kIpu}) {
    const Accelerator accel = make_accelerator(platform);
    const auto result = accel.compile_check(
        build_decompress_graph(config(256, 4), kPaperBatch));
    EXPECT_TRUE(result.ok) << platform_name(platform) << ": " << result.error;
  }
}

TEST(Compile, GroqBatchLimitAt1000) {
  // §4.2.2: "the GroqChip fails to compile beyond a batch size of 1000".
  const Accelerator groq = make_accelerator(Platform::kGroq);
  const BatchSpec ok_batch{.batch = 1000, .channels = 3};
  const BatchSpec too_big{.batch = 2000, .channels = 3};
  EXPECT_TRUE(
      groq.compile_check(build_compress_graph(config(64, 4), ok_batch)).ok);
  const auto result =
      groq.compile_check(build_compress_graph(config(64, 4), too_big));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("schedule"), std::string::npos) << result.error;
}

TEST(Compile, OtherPlatformsAcceptBatch5000) {
  // Figs. 12/13 sweep batch to 5000 on CS-2, SN30 and IPU.
  const BatchSpec huge{.batch = 5000, .channels = 3};
  for (Platform platform :
       {Platform::kCs2, Platform::kSn30, Platform::kIpu}) {
    const Accelerator accel = make_accelerator(platform);
    const auto result =
        accel.compile_check(build_compress_graph(config(64, 4), huge));
    EXPECT_TRUE(result.ok) << platform_name(platform) << ": " << result.error;
  }
}

TEST(Compile, VleGraphRejectedOnAllAccelerators) {
  // §3.1: bitwise shift operators are missing from every accelerator's
  // PyTorch frontend — the reason DCT+Chop exists.
  for (Platform platform : paper_accelerators()) {
    const Accelerator accel = make_accelerator(platform);
    const auto result =
        accel.compile_check(graph::build_vle_encode_graph(4096));
    EXPECT_FALSE(result.ok) << platform_name(platform);
    EXPECT_NE(result.error.find("not supported"), std::string::npos);
  }
}

TEST(Compile, VleGraphAcceptedOnGpuAndCpu) {
  for (Platform platform : {Platform::kA100, Platform::kCpu}) {
    const Accelerator accel = make_accelerator(platform);
    EXPECT_TRUE(accel.compile_check(graph::build_vle_encode_graph(4096)).ok);
  }
}

TEST(Compile, TriangleGraphsOnlyCompileWhereScatterGatherExists) {
  const auto compress_graph = [] {
    return build_triangle_compress_graph(config(32, 4), {.batch = 4, .channels = 3});
  };
  for (Platform platform : {Platform::kCs2, Platform::kSn30, Platform::kGroq}) {
    EXPECT_FALSE(
        make_accelerator(platform).compile_check(compress_graph()).ok)
        << platform_name(platform);
  }
  for (Platform platform :
       {Platform::kIpu, Platform::kA100, Platform::kCpu}) {
    const auto result =
        make_accelerator(platform).compile_check(compress_graph());
    EXPECT_TRUE(result.ok) << platform_name(platform) << ": " << result.error;
  }
}

TEST(Compile, CompileThrowsWithDiagnostic) {
  const Accelerator groq = make_accelerator(Platform::kGroq);
  EXPECT_THROW(groq.compile(build_compress_graph(config(512, 4), kPaperBatch)),
               std::runtime_error);
}

TEST(Compile, ReportCarriesResourceUsage) {
  const Accelerator cs2 = make_accelerator(Platform::kCs2);
  const auto result = cs2.compile_check(
      build_compress_graph(config(64, 4), {.batch = 10, .channels = 3}));
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.constant_bytes, 0u);
  EXPECT_GT(result.activation_bytes, 0u);
  EXPECT_GT(result.static_flops, 0u);
  EXPECT_EQ(result.max_matmul_dim, 64u);
}

}  // namespace
}  // namespace aic::accel
