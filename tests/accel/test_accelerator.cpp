#include "accel/accelerator.hpp"

#include <gtest/gtest.h>

#include "accel/registry.hpp"
#include "core/dct_chop.hpp"
#include "core/triangle.hpp"
#include "graph/builders.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::accel {
namespace {

using core::DctChopCodec;
using core::DctChopConfig;
using graph::BatchSpec;
using tensor::Shape;
using tensor::Tensor;

const DctChopConfig kConfig{.height = 16, .width = 16, .cf = 4, .block = 8};
const BatchSpec kSpec{.batch = 2, .channels = 3};

TEST(Accelerator, RunProducesCodecExactResults) {
  // The simulator's math is the real math: outputs must match the codec.
  runtime::Rng rng(1);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  const Accelerator cs2 = make_accelerator(Platform::kCs2);
  const RunResult result =
      cs2.compile_and_run(graph::build_compress_graph(kConfig, kSpec), {in});
  ASSERT_EQ(result.outputs.size(), 1u);
  const DctChopCodec codec(kConfig);
  EXPECT_TRUE(tensor::allclose(result.outputs[0], codec.compress(in), 1e-4));
}

TEST(Accelerator, RoundTripAcrossPlatformsIsIdentical) {
  // Portability claim: the same graph yields the same bits everywhere
  // it compiles (fp32 everywhere, §3.1).
  runtime::Rng rng(2);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  Tensor reference;
  bool first = true;
  for (Platform platform : all_platforms()) {
    const Accelerator accel = make_accelerator(platform);
    const RunResult result =
        accel.compile_and_run(graph::build_compress_graph(kConfig, kSpec), {in});
    if (first) {
      reference = result.outputs[0];
      first = false;
    } else {
      EXPECT_TRUE(tensor::allclose(result.outputs[0], reference, 0.0))
          << platform_name(platform);
    }
  }
}

TEST(Accelerator, RunReportsPositiveSimulatedTime) {
  runtime::Rng rng(3);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng);
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  const RunResult result =
      ipu.compile_and_run(graph::build_compress_graph(kConfig, kSpec), {in});
  EXPECT_GT(result.time.total_s(), 0.0);
  EXPECT_GT(result.time.h2d_s, 0.0);
  EXPECT_GT(result.trace.flops, 0u);
}

TEST(Accelerator, EstimateMatchesRunTime) {
  runtime::Rng rng(4);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng);
  const Accelerator sn30 = make_accelerator(Platform::kSn30);
  graph::Graph g = graph::build_compress_graph(kConfig, kSpec);
  const double estimated = sn30.estimate(g).total_s();
  const RunResult result = sn30.compile_and_run(std::move(g), {in});
  EXPECT_DOUBLE_EQ(estimated, result.time.total_s());
}

TEST(Accelerator, EstimateThrowsOnRejectedGraph) {
  const Accelerator groq = make_accelerator(Platform::kGroq);
  EXPECT_THROW(groq.estimate(graph::build_vle_encode_graph(16)),
               std::runtime_error);
}

TEST(Accelerator, CompiledModelReusableAcrossRuns) {
  // Compile once, run many — the amortization §4.1 relies on.
  runtime::Rng rng(5);
  const Accelerator cs2 = make_accelerator(Platform::kCs2);
  auto model = cs2.compile(graph::build_compress_graph(kConfig, kSpec));
  for (int i = 0; i < 3; ++i) {
    const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng);
    const RunResult result = cs2.run(*model, {in});
    EXPECT_EQ(result.outputs[0].shape(), Shape::bchw(2, 3, 8, 8));
  }
}

TEST(Accelerator, TriangleGraphRunsOnIpu) {
  runtime::Rng rng(6);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  const RunResult packed = ipu.compile_and_run(
      graph::build_triangle_compress_graph(kConfig, kSpec), {in});
  const RunResult restored = ipu.compile_and_run(
      graph::build_triangle_decompress_graph(kConfig, kSpec),
      {packed.outputs[0]});
  const core::TriangleCodec codec(kConfig);
  EXPECT_TRUE(
      tensor::allclose(restored.outputs[0], codec.round_trip(in), 1e-4));
}

TEST(Registry, PlatformNamesAndLists) {
  EXPECT_EQ(platform_name(Platform::kCs2), "cs2");
  EXPECT_EQ(paper_accelerators().size(), 4u);
  EXPECT_EQ(all_platforms().size(), 6u);
}

}  // namespace
}  // namespace aic::accel
