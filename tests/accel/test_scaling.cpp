#include "accel/scaling.hpp"

#include <gtest/gtest.h>

#include "accel/registry.hpp"
#include "graph/builders.hpp"

namespace aic::accel {
namespace {

using core::DctChopConfig;
using graph::BatchSpec;

const DctChopConfig kConfig{.height = 64, .width = 64, .cf = 7, .block = 8};

graph::Graph shard_graph(std::size_t batch) {
  return graph::build_decompress_graph(kConfig,
                                       {.batch = batch, .channels = 3});
}

TEST(Scaling, ZeroDevicesThrows) {
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  EXPECT_THROW(
      estimate_data_parallel(ipu, shard_graph(16), {.devices = 0}),
      std::invalid_argument);
}

TEST(Scaling, OneDeviceMatchesPlainEstimate) {
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  const double scaled =
      estimate_data_parallel(ipu, shard_graph(128), {.devices = 1})
          .total_s();
  EXPECT_DOUBLE_EQ(scaled, ipu.estimate(shard_graph(128)).total_s());
}

TEST(Scaling, MoreDevicesMoreTotalThroughput) {
  // Fixed total batch 1024: sharding over more devices shrinks the
  // critical path (until fan-out overhead dominates).
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  double last = 1e30;
  for (std::size_t n : {1u, 4u, 16u}) {
    const double t =
        estimate_data_parallel(ipu, shard_graph(1024 / n), {.devices = n})
            .total_s();
    EXPECT_LT(t, last) << n;
    last = t;
  }
}

TEST(Scaling, FanOutOverheadEventuallyBites) {
  // With an exaggerated per-device cost, scaling out can lose.
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  const double few =
      estimate_data_parallel(ipu, shard_graph(512), {.devices = 2})
          .total_s();
  const double many = estimate_data_parallel(
                          ipu, shard_graph(16),
                          {.devices = 64, .per_device_overhead_s = 1e-2})
                          .total_s();
  EXPECT_LT(few, many);
}

TEST(Scaling, PodOfIpusOvertakesA100) {
  // §4.2.2: a single IPU loses to the A100 on this workload, a Bow-Pod
  // slice wins.
  const std::size_t total = 1024;
  const Accelerator a100 = make_accelerator(Platform::kA100);
  const Accelerator ipu = make_accelerator(Platform::kIpu);
  const double a100_time = a100.estimate(shard_graph(total)).total_s();
  const double single_time =
      estimate_data_parallel(ipu, shard_graph(total), {.devices = 1})
          .total_s();
  const double pod16 =
      estimate_data_parallel(ipu, shard_graph(total / 16), {.devices = 16})
          .total_s();
  EXPECT_GT(single_time, a100_time);  // single IPU loses (low-CR regime)
  EXPECT_LT(pod16, a100_time);   // the pod wins
}

TEST(Scaling, ShardMustCompile) {
  // GroqChip shards above the batch-1000 limit are rejected even when
  // the per-device share seems reasonable to the caller.
  const Accelerator groq = make_accelerator(Platform::kGroq);
  EXPECT_THROW(
      estimate_data_parallel(groq, shard_graph(2000), {.devices = 2}),
      std::runtime_error);
}

}  // namespace
}  // namespace aic::accel
