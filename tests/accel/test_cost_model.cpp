#include "accel/cost_model.hpp"

#include <gtest/gtest.h>

#include "accel/registry.hpp"
#include "graph/builders.hpp"

namespace aic::accel {
namespace {

using core::DctChopConfig;
using graph::BatchSpec;

DctChopConfig config(std::size_t n, std::size_t cf) {
  return {.height = n, .width = n, .cf = cf, .block = 8};
}

const BatchSpec kBatch{.batch = 100, .channels = 3};

double compress_time(Platform platform, std::size_t n, std::size_t cf,
                     const BatchSpec& spec = kBatch) {
  return make_accelerator(platform)
      .estimate(graph::build_compress_graph(config(n, cf), spec))
      .total_s();
}

double decompress_time(Platform platform, std::size_t n, std::size_t cf,
                       const BatchSpec& spec = kBatch) {
  return make_accelerator(platform)
      .estimate(graph::build_decompress_graph(config(n, cf), spec))
      .total_s();
}

std::size_t payload_bytes(std::size_t n, const BatchSpec& spec = kBatch) {
  return spec.batch * spec.channels * n * n * sizeof(float);
}

TEST(CostModel, ThroughputHelper) {
  EXPECT_DOUBLE_EQ(throughput_gbps(2'000'000'000, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(throughput_gbps(100, 0.0), 0.0);
}

TEST(CostModel, SimTimeTotalsComponents) {
  SimTime t{.h2d_s = 1.0, .compute_s = 2.0, .d2h_s = 3.0, .overhead_s = 4.0};
  EXPECT_DOUBLE_EQ(t.total_s(), 10.0);
}

class PlatformTiming : public ::testing::TestWithParam<Platform> {};

TEST_P(PlatformTiming, DecompressionFasterThanCompression) {
  // Key takeaway 1 (§4.2.2): compression moves more data and does more
  // FLOPs, so it is slower for CF < 8 — measured in the transfer-bound
  // regime (256×256), above the dataflow pipeline-fill floor.
  const Platform platform = GetParam();
  for (std::size_t cf : {2u, 4u, 6u}) {
    EXPECT_LT(decompress_time(platform, 256, cf),
              compress_time(platform, 256, cf))
        << platform_name(platform) << " cf=" << cf;
  }
}

TEST_P(PlatformTiming, TimeGrowsWithResolution) {
  // Key takeaway 2: time is (at least) linear in pixel count.
  const Platform platform = GetParam();
  double last = 0.0;
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    const double t = compress_time(platform, n, 4);
    EXPECT_GT(t, last) << platform_name(platform) << " n=" << n;
    last = t;
  }
}

TEST_P(PlatformTiming, TimeMonotonicInBatch) {
  const Platform platform = GetParam();
  double last = 0.0;
  for (std::size_t batch : {10u, 100u, 500u, 1000u}) {
    const double t = compress_time(platform, 64, 4,
                                   {.batch = batch, .channels = 3});
    EXPECT_GE(t, last) << platform_name(platform) << " batch=" << batch;
    last = t;
  }
}

// The A100 is excluded: its host-measured decompression is dominated by
// the pageable copy-back of the uncompressed result (Fig. 14), so the
// "decompression faster" takeaway does not apply to it.
INSTANTIATE_TEST_SUITE_P(Accelerators, PlatformTiming,
                         ::testing::Values(Platform::kCs2, Platform::kSn30,
                                           Platform::kIpu),
                         [](const auto& info) {
                           return platform_name(info.param);
                         });

TEST(CostModel, Cs2ThroughputInPaperRange) {
  // §4.2.2: "generally ranging from 16 to 26 GB/s" — at resolutions
  // where transfer dominates the pipeline fill.
  for (std::size_t n : {256u, 512u}) {
    const double gbps =
        throughput_gbps(payload_bytes(n), compress_time(Platform::kCs2, n, 4));
    EXPECT_GT(gbps, 16.0) << n;
    EXPECT_LT(gbps, 27.0) << n;
  }
}

TEST(CostModel, Sn30ThroughputInPaperRange) {
  // §4.2.2: "around 7 to 10 GB/s".
  for (std::size_t n : {128u, 256u}) {
    const double c =
        throughput_gbps(payload_bytes(n), compress_time(Platform::kSn30, n, 4));
    EXPECT_GT(c, 6.0) << n;
    EXPECT_LT(c, 11.0) << n;
  }
}

TEST(CostModel, GroqThroughputHundredsOfMbps) {
  // §4.2.2: ≈150 MB/s compression, ≈200 MB/s decompression.
  const double c =
      throughput_gbps(payload_bytes(64), compress_time(Platform::kGroq, 64, 4));
  const double d = throughput_gbps(payload_bytes(64),
                                   decompress_time(Platform::kGroq, 64, 4));
  EXPECT_GT(c, 0.08);
  EXPECT_LT(c, 0.3);
  EXPECT_GT(d, c);
  EXPECT_LT(d, 0.5);
}

TEST(CostModel, IpuCompressionNearOnePointTwoGbps) {
  // §4.2.2: "≈1.2 GB/s average throughput for compression", flat in CR.
  for (std::size_t cf : {2u, 4u, 7u}) {
    const double gbps = throughput_gbps(payload_bytes(64),
                                        compress_time(Platform::kIpu, 64, cf));
    EXPECT_GT(gbps, 0.8) << cf;
    EXPECT_LT(gbps, 1.6) << cf;
  }
}

TEST(CostModel, IpuDecompressionStratifiedByRatio) {
  // §4.2.2: decompression reaches up to 21 GB/s at high CR, ≈2 GB/s at
  // low CR — throughput rises with CR.
  const double high_cr = throughput_gbps(
      payload_bytes(256), decompress_time(Platform::kIpu, 256, 2));
  const double low_cr = throughput_gbps(
      payload_bytes(256), decompress_time(Platform::kIpu, 256, 7));
  EXPECT_GT(high_cr, 10.0);
  EXPECT_LT(low_cr, 3.0);
  EXPECT_GT(high_cr, 4.0 * low_cr);
}

TEST(CostModel, A100DecompressionFlatAcrossRatio) {
  // Fig. 14: ≈2.5 GB/s "with little variation across each compression
  // ratio".
  double lo = 1e30, hi = 0.0;
  for (std::size_t cf = 2; cf <= 7; ++cf) {
    const double gbps = throughput_gbps(
        payload_bytes(256), decompress_time(Platform::kA100, 256, cf));
    lo = std::min(lo, gbps);
    hi = std::max(hi, gbps);
  }
  EXPECT_GT(lo, 1.8);
  EXPECT_LT(hi, 3.5);
  EXPECT_LT(hi / lo, 1.5);  // flat
}

TEST(CostModel, PlatformOrderingMatchesPaper) {
  // §4.2.2 "Comparison with GPU": CS-2 and SN30 beat the A100; a single
  // GroqChip and a single IPU are beaten by it (compression direction).
  const double cs2 = compress_time(Platform::kCs2, 256, 4);
  const double sn30 = compress_time(Platform::kSn30, 256, 4);
  const double a100 = compress_time(Platform::kA100, 256, 4);
  const double ipu = compress_time(Platform::kIpu, 256, 4);
  const double groq = compress_time(Platform::kGroq, 64, 4);
  const double groq_a100 = compress_time(Platform::kA100, 64, 4);
  EXPECT_LT(cs2, a100);
  EXPECT_LT(sn30, a100);
  EXPECT_GT(ipu, a100);
  EXPECT_GT(groq, groq_a100);
}

TEST(CostModel, Sn30SmallTensorPenaltyAtCr16) {
  // §4.2.2: "the highest compression ratio, 16.0, is slower than both
  // 4.0 and 7.11" on the SN30.
  const double cr16 = decompress_time(Platform::kSn30, 64, 2);
  const double cr4 = decompress_time(Platform::kSn30, 64, 4);
  const double cr7 = decompress_time(Platform::kSn30, 64, 3);
  EXPECT_GT(cr16, cr4);
  EXPECT_GT(cr16, cr7);
}

TEST(CostModel, Cs2FlatAtSmallBatchThenLinear) {
  // Fig. 12: CS-2 time barely moves at small batch (pipeline fill),
  // then scales with data volume.
  const double b10 = compress_time(Platform::kCs2, 64, 4,
                                   {.batch = 10, .channels = 3});
  const double b100 = compress_time(Platform::kCs2, 64, 4,
                                    {.batch = 100, .channels = 3});
  const double b5000 = compress_time(Platform::kCs2, 64, 4,
                                     {.batch = 5000, .channels = 3});
  EXPECT_LT(b100 / b10, 1.5);     // flat region
  EXPECT_GT(b5000 / b100, 5.0);   // linear region
}

TEST(CostModel, Cs2DecompressionStratifiedByRatio) {
  // §4.2.2: "a wider spread of decompression times … with higher
  // compression ratio having significant speedup".
  const double cr16 = decompress_time(Platform::kCs2, 512, 2);
  const double cr131 = decompress_time(Platform::kCs2, 512, 7);
  EXPECT_GT(cr131, 2.0 * cr16);
}

TEST(CostModel, DataflowPipelineFloorApplies) {
  // A tiny graph on a dataflow platform cannot beat the fill latency.
  const Accelerator cs2 = make_accelerator(Platform::kCs2);
  const auto t = cs2.estimate(graph::build_compress_graph(
      config(32, 4), {.batch = 1, .channels = 1}));
  EXPECT_GE(t.total_s(), cs2_cost_params().pipeline_fill_s);
}

TEST(CostModel, StaticTraceMatchesExecutedTrace) {
  // The static estimator must agree exactly with the executed trace.
  graph::Graph g = graph::build_compress_graph(config(16, 4),
                                               {.batch = 2, .channels = 3});
  const graph::ExecutionTrace stat = graph::static_trace(g);
  graph::Executor exec(g);
  runtime::Rng rng(1);
  exec.run({tensor::Tensor::uniform(
      tensor::Shape::bchw(2, 3, 16, 16), rng)});
  const graph::ExecutionTrace& dyn = exec.trace();
  EXPECT_EQ(stat.flops, dyn.flops);
  EXPECT_EQ(stat.bytes_read, dyn.bytes_read);
  EXPECT_EQ(stat.bytes_written, dyn.bytes_written);
  EXPECT_EQ(stat.input_bytes, dyn.input_bytes);
  EXPECT_EQ(stat.output_bytes, dyn.output_bytes);
  EXPECT_EQ(stat.node_evaluations, dyn.node_evaluations);
  EXPECT_EQ(stat.matmul_count, dyn.matmul_count);
  EXPECT_EQ(stat.matmul_plane_ops, dyn.matmul_plane_ops);
  EXPECT_EQ(stat.min_matmul_out_bytes, dyn.min_matmul_out_bytes);
  EXPECT_EQ(stat.min_matmul_plane_bytes, dyn.min_matmul_plane_bytes);
}

}  // namespace
}  // namespace aic::accel
