// Cross-module integration tests: codec ↔ graph ↔ accelerator ↔ trainer.

#include <gtest/gtest.h>

#include "accel/registry.hpp"
#include "baseline/jpeg_codec.hpp"
#include "core/partial_serializer.hpp"
#include "core/rate_control.hpp"
#include "data/benchmarks.hpp"
#include "data/synth.hpp"
#include "graph/builders.hpp"
#include "tensor/ops.hpp"

namespace aic {
namespace {

using accel::Platform;
using tensor::Shape;
using tensor::Tensor;

data::DatasetConfig tiny() {
  return {.train_samples = 32,
          .test_samples = 16,
          .batch_size = 16,
          .resolution = 16,
          .seed = 11};
}

TEST(EndToEnd, TrainingBatchCompressesIdenticallyOnSimulatorAndCodec) {
  // The tensors a Trainer feeds the model equal what the accelerator
  // simulator produces for the same batch: codec and graph agree on
  // real benchmark data, not just random tensors.
  const data::Dataset dataset = data::make_classify_dataset(tiny(), 4);
  const core::DctChopConfig config{
      .height = 16, .width = 16, .cf = 3, .block = 8};
  const core::DctChopCodec codec(config);
  const nn::Batch& batch = dataset.train[0];

  const accel::Accelerator cs2 = accel::make_accelerator(Platform::kCs2);
  const auto result = cs2.compile_and_run(
      graph::build_compress_graph(
          config, {.batch = batch.input.shape()[0], .channels = 3}),
      {batch.input});
  EXPECT_TRUE(tensor::allclose(result.outputs[0],
                               codec.compress(batch.input), 1e-4));
}

TEST(EndToEnd, RateControlledTrainingBeatsFixedAggressiveRate) {
  // Choose the rate from a calibration batch with a distortion budget,
  // then train; the budgeted choice must not do worse than CF=1.
  const data::Dataset dataset = data::make_classify_dataset(tiny(), 4);
  const auto choice =
      core::choose_chop_factor(dataset.train[0].input, 5e-3);
  ASSERT_TRUE(choice.has_value());
  EXPECT_GT(choice->cf, 1u);  // budget rules out the harshest chop

  auto accuracy_with = [&](core::CodecPtr codec) {
    data::BenchmarkRun run = data::make_benchmark("classify", tiny(), codec);
    return run.trainer->fit(run.dataset.train, run.dataset.test, 5)
        .back()
        .test_accuracy;
  };
  const double budgeted =
      accuracy_with(core::make_codec_for_choice(*choice, 16, 16));
  const double harshest =
      accuracy_with(std::make_shared<core::DctChopCodec>(
          core::DctChopConfig{.height = 16, .width = 16, .cf = 1, .block = 8}));
  EXPECT_GE(budgeted, harshest);
}

TEST(EndToEnd, PartialSerializationRecoversFromCompileFailure) {
  // The §3.5.1 workflow: direct compile fails on SN30 at 512², the s=2
  // chunk graph compiles, and the chunked codec's output matches the
  // unserialized math exactly.
  const accel::Accelerator sn30 = accel::make_accelerator(Platform::kSn30);
  const core::DctChopConfig full{
      .height = 512, .width = 512, .cf = 4, .block = 8};
  const graph::BatchSpec batch{.batch = 2, .channels = 1};
  EXPECT_FALSE(sn30.compile_check(
                       graph::build_compress_graph(full, batch))
                   .ok);
  const core::DctChopConfig chunk{
      .height = 256, .width = 256, .cf = 4, .block = 8};
  EXPECT_TRUE(sn30.compile_check(graph::build_compress_graph(chunk, batch))
                  .ok);

  // Math equivalence at a host-feasible size.
  runtime::Rng rng(1);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 64, 64), rng);
  const core::PartialSerialCodec ps({.height = 64,
                                     .width = 64,
                                     .cf = 4,
                                     .block = 8,
                                     .subdivision = 2});
  const core::DctChopCodec plain(
      {.height = 64, .width = 64, .cf = 4, .block = 8});
  EXPECT_TRUE(
      tensor::allclose(ps.round_trip(in), plain.round_trip(in), 1e-4));
}

TEST(EndToEnd, SimulatedTimingConsistentBetweenRunAndEstimate) {
  // run() (real execution + model) and estimate() (static shapes only)
  // agree for every platform that admits the graph.
  const core::DctChopConfig config{
      .height = 16, .width = 16, .cf = 4, .block = 8};
  const graph::BatchSpec batch{.batch = 2, .channels = 3};
  runtime::Rng rng(2);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng);
  for (Platform platform : accel::all_platforms()) {
    const accel::Accelerator device = accel::make_accelerator(platform);
    graph::Graph g = graph::build_decompress_graph(config, batch);
    const core::DctChopCodec codec(config);
    const Tensor packed = codec.compress(in);
    const double estimated = device.estimate(g).total_s();
    const auto result = device.compile_and_run(std::move(g), {packed});
    EXPECT_DOUBLE_EQ(estimated, result.time.total_s())
        << accel::platform_name(platform);
  }
}

TEST(EndToEnd, JpegBeatsChopOnFidelityButFailsTheCompilers) {
  // The motivating trade-off: the VLE pipeline achieves a better
  // rate/fidelity point than DCT+Chop, but no accelerator can run it.
  runtime::Rng rng(3);
  Tensor image(Shape::bchw(1, 1, 32, 32));
  image.set_plane(0, 0, data::smooth_field(32, 32, rng, 6, 0.4));

  const baseline::JpegLikeCodec jpeg(50);
  const auto stream = jpeg.compress_plane(image.slice_plane(0, 0));
  const double jpeg_cr = baseline::JpegLikeCodec::achieved_ratio(stream);
  const Tensor jpeg_restored = jpeg.decompress_plane(stream, 32, 32);
  const double jpeg_mse =
      tensor::mse(image.slice_plane(0, 0), jpeg_restored);

  // Chop at a CR no better than JPEG's must have higher error.
  std::size_t cf = 8;
  while (cf > 1 && core::chop_ratio(cf - 1) <= jpeg_cr) --cf;
  const core::DctChopCodec chop(
      {.height = 32, .width = 32, .cf = cf, .block = 8});
  const double chop_mse = tensor::mse(image, chop.round_trip(image));
  EXPECT_LT(jpeg_mse, chop_mse);

  // And yet the VLE graph is rejected by all four accelerators.
  for (Platform platform : accel::paper_accelerators()) {
    EXPECT_FALSE(accel::make_accelerator(platform)
                     .compile_check(graph::build_vle_encode_graph(1024))
                     .ok);
  }
}

TEST(EndToEnd, BenchmarkSuiteDeterministicAcrossRuns) {
  // Same config, same seed -> identical training history (full
  // reproducibility of the accuracy benches).
  auto run_once = [] {
    data::BenchmarkRun run = data::make_benchmark("em_denoise", tiny(),
                                                  nullptr);
    return run.trainer->fit(run.dataset.train, run.dataset.test, 2);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_DOUBLE_EQ(a[e].train_loss, b[e].train_loss);
    EXPECT_DOUBLE_EQ(a[e].test_loss, b[e].test_loss);
  }
}

}  // namespace
}  // namespace aic
