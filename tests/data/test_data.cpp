#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/dct_chop.hpp"
#include "data/benchmarks.hpp"
#include "data/datasets.hpp"
#include "data/synth.hpp"
#include "tensor/ops.hpp"

namespace aic::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

DatasetConfig small() {
  return {.train_samples = 40,
          .test_samples = 16,
          .batch_size = 16,
          .resolution = 16,
          .seed = 7};
}

TEST(Synth, SmoothFieldInUnitRange) {
  runtime::Rng rng(1);
  const Tensor field = smooth_field(32, 32, rng);
  EXPECT_GE(tensor::min_value(field), 0.0f);
  EXPECT_LE(tensor::max_value(field), 1.0f);
  // Normalization touches the extremes.
  EXPECT_NEAR(tensor::min_value(field), 0.0f, 1e-5f);
  EXPECT_NEAR(tensor::max_value(field), 1.0f, 1e-5f);
}

TEST(Synth, SmoothFieldIsSmooth) {
  // Neighbouring pixels of a band-limited field differ slowly compared
  // to white noise.
  runtime::Rng rng(2);
  const Tensor field = smooth_field(32, 32, rng, 4, 0.3);
  double total_diff = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j + 1 < 32; ++j) {
      total_diff += std::abs(field.at(i, j + 1) - field.at(i, j));
    }
  }
  EXPECT_LT(total_diff / (32 * 31), 0.15);
}

TEST(Synth, GratingPeriodicityFollowsFrequency) {
  const Tensor g = grating(32, 32, 2.0 * std::acos(-1.0) / 8.0, 0.0, 0.0);
  // angle 0 projects onto rows: period 8 along i.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(g.at(0, j), g.at(8, j), 1e-5f);
  }
}

TEST(Synth, NoiseChangesPixelsButStaysInRange) {
  runtime::Rng rng(3);
  Tensor plane = Tensor::full(Shape::matrix(16, 16), 0.5f);
  add_gaussian_noise(plane, rng, 0.1);
  EXPECT_GT(tensor::max_abs_error(plane,
                                  Tensor::full(Shape::matrix(16, 16), 0.5f)),
            0.01);
  EXPECT_GE(tensor::min_value(plane), 0.0f);
  EXPECT_LE(tensor::max_value(plane), 1.0f);
}

TEST(Synth, BlobMaskIsBinaryWithRequestedCoverage) {
  runtime::Rng rng(4);
  const Tensor mask = blob_mask(32, 32, rng, 0.4);
  double ones = 0;
  for (float v : mask.data()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
    ones += v;
  }
  EXPECT_NEAR(ones / mask.numel(), 0.4, 0.05);
}

TEST(Datasets, ClassifyShapesAndLabels) {
  const Dataset d = make_classify_dataset(small(), 4);
  EXPECT_EQ(d.task, nn::TaskKind::kClassification);
  ASSERT_FALSE(d.train.empty());
  EXPECT_EQ(d.train[0].input.shape(), Shape::bchw(16, 3, 16, 16));
  EXPECT_EQ(d.train[0].labels.size(), 16u);
  std::set<std::size_t> seen;
  for (const auto& batch : d.train) {
    for (std::size_t label : batch.labels) {
      ASSERT_LT(label, 4u);
      seen.insert(label);
    }
  }
  EXPECT_GT(seen.size(), 2u);  // multiple classes present
}

TEST(Datasets, ClassifySampleCountsRespected) {
  const Dataset d = make_classify_dataset(small(), 4);
  std::size_t total = 0;
  for (const auto& batch : d.train) total += batch.input.shape()[0];
  EXPECT_EQ(total, 40u);
  total = 0;
  for (const auto& batch : d.test) total += batch.input.shape()[0];
  EXPECT_EQ(total, 16u);
}

TEST(Datasets, DenoiseTargetIsCleanerThanInput) {
  const Dataset d = make_denoise_dataset(small(), 0.25);
  const auto& batch = d.train[0];
  // Input = target + noise: they differ but correlate.
  const double err = tensor::mse(batch.input, batch.target);
  EXPECT_GT(err, 0.01);
  EXPECT_LT(err, 0.2);
}

TEST(Datasets, DenoiseNoiseIsHighFrequency) {
  // The noise energy must live above the chop cutoff for the Fig. 8
  // "compression helps" effect: a CF=4 round-trip of the noisy input
  // should land *closer* to the clean target than the noisy input does.
  const Dataset d = make_denoise_dataset(small(), 0.25);
  const auto& batch = d.train[0];
  core::DctChopCodec codec({.height = 16, .width = 16, .cf = 4, .block = 8});
  const Tensor denoised = codec.round_trip(batch.input);
  EXPECT_LT(tensor::mse(denoised, batch.target),
            tensor::mse(batch.input, batch.target));
}

TEST(Datasets, OpticalInputEqualsTarget) {
  const Dataset d = make_optical_dataset(small());
  const auto& batch = d.train[0];
  EXPECT_TRUE(tensor::allclose(batch.input, batch.target, 0.0));
}

TEST(Datasets, CloudChannelsCorrelateWithMask) {
  const Dataset d = make_cloud_dataset(small());
  const auto& batch = d.train[0];
  EXPECT_EQ(batch.target.shape(), Shape::bchw(16, 1, 16, 16));
  // Mean brightness over cloud pixels must exceed clear pixels.
  double cloud = 0.0, clear = 0.0;
  std::size_t cloud_n = 0, clear_n = 0;
  for (std::size_t s = 0; s < 16; ++s) {
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t j = 0; j < 16; ++j) {
        const float v = batch.input.at(s, 0, i, j);
        if (batch.target.at(s, 0, i, j) > 0.5f) {
          cloud += v;
          ++cloud_n;
        } else {
          clear += v;
          ++clear_n;
        }
      }
    }
  }
  EXPECT_GT(cloud / cloud_n, clear / clear_n + 0.1);
}

TEST(Datasets, DeterministicForSameSeed) {
  const Dataset a = make_classify_dataset(small(), 4);
  const Dataset b = make_classify_dataset(small(), 4);
  EXPECT_TRUE(tensor::allclose(a.train[0].input, b.train[0].input, 0.0));
  EXPECT_EQ(a.train[0].labels, b.train[0].labels);
}

TEST(Benchmarks, Table2HasFourDatasets) {
  const auto rows = table2_datasets();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].dataset, "ILSVRC 2012-17");
  EXPECT_EQ(rows[3].task, "Pixel Segmentation");
}

TEST(Benchmarks, Table3MatchesPaper) {
  const auto rows = table3_benchmarks();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].network, "ResNet34");
  EXPECT_EQ(rows[0].paper_batch_size, 100u);
  EXPECT_DOUBLE_EQ(rows[0].paper_learning_rate, 0.001);
  EXPECT_EQ(rows[3].network, "UNet");
  EXPECT_EQ(rows[3].sample_size, "9x256x256");
}

TEST(Benchmarks, MakeBenchmarkBuildsAllFour) {
  for (const std::string& name : benchmark_names()) {
    const BenchmarkRun run = make_benchmark(name, small(), nullptr);
    EXPECT_EQ(run.dataset.name, name);
    ASSERT_NE(run.model, nullptr);
    ASSERT_NE(run.trainer, nullptr);
    EXPECT_FALSE(run.model->params().empty());
  }
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("nope", small(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace aic::data
