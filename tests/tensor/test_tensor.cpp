#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/rng.hpp"

namespace aic::tensor {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ConstructZeroFilled) {
  Tensor t(Shape::matrix(3, 4));
  EXPECT_EQ(t.numel(), 12u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ConstructFromValuesChecksCount) {
  EXPECT_NO_THROW(Tensor(Shape::vector(3), {1.0f, 2.0f, 3.0f}));
  EXPECT_THROW(Tensor(Shape::vector(3), {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full(Shape::matrix(2, 2), 7.5f);
  for (float v : t.data()) EXPECT_EQ(v, 7.5f);
}

TEST(Tensor, IdentityHasOnesOnDiagonal) {
  const Tensor eye = Tensor::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(eye.at(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(Tensor, IotaCountsUp) {
  const Tensor t = Tensor::iota(Shape::vector(5));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t.at(i), static_cast<float>(i));
}

TEST(Tensor, UniformRespectsBounds) {
  runtime::Rng rng(1);
  const Tensor t = Tensor::uniform(Shape::matrix(20, 20), rng, -2.0f, 3.0f);
  for (float v : t.data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Tensor, At2dRowMajor) {
  Tensor t(Shape::matrix(2, 3));
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t.at(5), 9.0f);
}

TEST(Tensor, At2dRequiresRank2) {
  Tensor t(Shape::vector(4));
  EXPECT_THROW(t.at(0, 0), std::logic_error);
}

TEST(Tensor, At4dBchwLayout) {
  Tensor t(Shape::bchw(2, 3, 4, 5));
  t.at(1, 2, 3, 4) = 5.0f;
  // flat = ((1*3+2)*4+3)*5+4 = 119
  EXPECT_EQ(t.at(119), 5.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  const Tensor t = Tensor::iota(Shape::matrix(2, 6));
  const Tensor r = t.reshaped(Shape::bchw(1, 3, 2, 2));
  EXPECT_EQ(r.shape(), Shape::bchw(1, 3, 2, 2));
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(r.at(i), t.at(i));
}

TEST(Tensor, ReshapedRejectsNumelMismatch) {
  const Tensor t = Tensor::iota(Shape::matrix(2, 6));
  EXPECT_THROW(t.reshaped(Shape::matrix(5, 2)), std::invalid_argument);
}

TEST(Tensor, TransposedSwapsAxes) {
  const Tensor t = Tensor::iota(Shape::matrix(2, 3));
  const Tensor tt = t.transposed();
  EXPECT_EQ(tt.shape(), Shape::matrix(3, 2));
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(t.at(r, c), tt.at(c, r));
    }
  }
}

TEST(Tensor, TransposeIsInvolution) {
  runtime::Rng rng(4);
  const Tensor t = Tensor::uniform(Shape::matrix(7, 5), rng);
  const Tensor back = t.transposed().transposed();
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), back.at(i));
}

TEST(Tensor, SlicePlaneExtractsChannel) {
  Tensor t(Shape::bchw(2, 2, 3, 3));
  t.at(1, 0, 2, 1) = 42.0f;
  const Tensor plane = t.slice_plane(1, 0);
  EXPECT_EQ(plane.shape(), Shape::matrix(3, 3));
  EXPECT_EQ(plane.at(2, 1), 42.0f);
}

TEST(Tensor, SetPlaneRoundTrips) {
  Tensor t(Shape::bchw(2, 3, 4, 4));
  Tensor plane(Shape::matrix(4, 4));
  plane.fill(3.25f);
  t.set_plane(1, 2, plane);
  const Tensor out = t.slice_plane(1, 2);
  for (float v : out.data()) EXPECT_EQ(v, 3.25f);
  // Other planes untouched.
  EXPECT_EQ(t.at(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, SetPlaneChecksShape) {
  Tensor t(Shape::bchw(1, 1, 4, 4));
  Tensor wrong(Shape::matrix(3, 3));
  EXPECT_THROW(t.set_plane(0, 0, wrong), std::invalid_argument);
}

TEST(Tensor, SizeBytesIsFourPerElement) {
  Tensor t(Shape::matrix(8, 8));
  EXPECT_EQ(t.size_bytes(), 64u * 4u);
}

}  // namespace
}  // namespace aic::tensor
