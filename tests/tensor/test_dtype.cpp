#include "tensor/dtype.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::tensor {
namespace {

TEST(Fp16, ExactlyRepresentableValuesSurvive) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(round_trip_fp16(v), v) << v;
  }
}

TEST(Fp16, RelativeErrorWithinHalfUlp) {
  runtime::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float r = round_trip_fp16(v);
    // binary16 has 11 significand bits: rel err <= 2^-11.
    EXPECT_LE(std::fabs(r - v), std::fabs(v) * 0x1.0p-11 + 1e-12f) << v;
  }
}

TEST(Fp16, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(round_trip_fp16(1e6f)));
  EXPECT_TRUE(std::isinf(round_trip_fp16(-1e6f)));
  EXPECT_LT(round_trip_fp16(-1e6f), 0.0f);
}

TEST(Fp16, SubnormalsRepresented) {
  const float tiny = 1e-5f;  // below fp16 normal min (6.1e-5), subnormal range
  const float r = round_trip_fp16(tiny);
  EXPECT_GT(r, 0.0f);
  EXPECT_NEAR(r, tiny, 6e-8f);  // fp16 subnormal ulp is 2^-24
}

TEST(Fp16, UnderflowFlushesToZero) {
  EXPECT_EQ(round_trip_fp16(1e-9f), 0.0f);
}

TEST(Fp16, NanPropagates) {
  EXPECT_TRUE(std::isnan(round_trip_fp16(std::nanf(""))));
}

TEST(Fp16, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(round_trip_fp16(inf)));
  EXPECT_TRUE(std::isinf(round_trip_fp16(-inf)));
}

TEST(Bf16, ExactValuesSurvive) {
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 256.0f, 3.0f}) {
    EXPECT_EQ(round_trip_bf16(v), v) << v;
  }
}

TEST(Bf16, WideDynamicRangeSurvives) {
  // bf16 shares FP32's exponent: huge magnitudes survive (unlike fp16).
  EXPECT_FALSE(std::isinf(round_trip_bf16(1e30f)));
  EXPECT_NEAR(round_trip_bf16(1e30f), 1e30f, 1e28f);
}

TEST(Bf16, RelativeErrorWithinEightBits) {
  runtime::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1e6, 1e6));
    const float r = round_trip_bf16(v);
    EXPECT_LE(std::fabs(r - v), std::fabs(v) * 0x1.0p-8 + 1e-30f) << v;
  }
}

TEST(Bf16, NanCanonicalized) {
  EXPECT_TRUE(std::isnan(round_trip_bf16(std::nanf(""))));
}

TEST(Half, Fp16HasFinerPrecisionBf16WiderRange) {
  // Representative of §3.1's format split: SN30 (bf16) trades precision
  // for range relative to the fp16 platforms.
  const float precise = 1.001f;
  EXPECT_LT(std::fabs(round_trip_fp16(precise) - precise),
            std::fabs(round_trip_bf16(precise) - precise));
  const float huge = 1e20f;
  EXPECT_TRUE(std::isinf(round_trip_fp16(huge)));
  EXPECT_FALSE(std::isinf(round_trip_bf16(huge)));
}

TEST(QuantizeHalf, AppliesToWholeTensor) {
  runtime::Rng rng(3);
  const Tensor t = Tensor::uniform(Shape::matrix(16, 16), rng, -10.0f, 10.0f);
  const Tensor q16 = quantize_half(t, HalfFormat::kFp16);
  const Tensor qbf = quantize_half(t, HalfFormat::kBf16);
  EXPECT_EQ(q16.shape(), t.shape());
  // fp16 round-trip error must be smaller on this bounded range.
  EXPECT_LT(mse(t, q16), mse(t, qbf));
  EXPECT_GT(mse(t, qbf), 0.0);
}

TEST(EncodeDecode, RoundTripMatchesHelpers) {
  for (float v : {0.1f, -3.7f, 1000.0f}) {
    EXPECT_EQ(decode_half(encode_half(v, HalfFormat::kFp16), HalfFormat::kFp16),
              round_trip_fp16(v));
    EXPECT_EQ(decode_half(encode_half(v, HalfFormat::kBf16), HalfFormat::kBf16),
              round_trip_bf16(v));
  }
}

}  // namespace
}  // namespace aic::tensor
