#include "tensor/gemm_kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "runtime/cpu_features.hpp"
#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::tensor {
namespace {

using runtime::KernelBackend;

bool simd_supported() {
  return runtime::cpu_features().avx2 && runtime::cpu_features().fma;
}

/// Restores the process-default backend when the test scope exits.
class BackendGuard {
 public:
  BackendGuard() : saved_(runtime::kernel_backend()) {}
  ~BackendGuard() { runtime::set_kernel_backend(saved_); }

 private:
  KernelBackend saved_;
};

/// |x−y| ≤ tol·max(1, |x|, |y|) everywhere.
void expect_rel_close(const Tensor& x, const Tensor& y, double tol,
                      const std::string& label) {
  ASSERT_EQ(x.shape(), y.shape()) << label;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const double a = x.at(i), b = y.at(i);
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    ASSERT_LE(std::abs(a - b), tol * scale)
        << label << " flat index " << i << ": " << a << " vs " << b;
  }
}

// Naive double-accumulated ground truth honoring transpose flags.
Tensor matmul_naive(const Tensor& a, const Tensor& b, Trans ta, Trans tb) {
  const std::size_t m = ta == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t k = ta == Trans::kNo ? a.shape()[1] : a.shape()[0];
  const std::size_t n = tb == Trans::kNo ? b.shape()[1] : b.shape()[0];
  Tensor c(Shape::matrix(m, n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo ? a.at(i, p) : a.at(p, i);
        const float bv = tb == Trans::kNo ? b.at(p, j) : b.at(j, p);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(CpuFeatures, BackendNamesAreStable) {
  EXPECT_STREQ(runtime::kernel_backend_name(KernelBackend::kScalar),
               "scalar");
  EXPECT_STREQ(runtime::kernel_backend_name(KernelBackend::kAvx2), "avx2");
  // The active backend must be one of the two names.
  const std::string active = runtime::kernel_backend_name();
  EXPECT_TRUE(active == "scalar" || active == "avx2") << active;
}

TEST(CpuFeatures, BackendOverrideRoundTrips) {
  BackendGuard guard;
  runtime::set_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(runtime::kernel_backend(), KernelBackend::kScalar);
  EXPECT_STREQ(runtime::kernel_backend_name(), "scalar");
  if (simd_supported()) {
    runtime::set_kernel_backend(KernelBackend::kAvx2);
    EXPECT_EQ(runtime::kernel_backend(), KernelBackend::kAvx2);
  } else {
    EXPECT_THROW(runtime::set_kernel_backend(KernelBackend::kAvx2),
                 std::invalid_argument);
  }
}

// SIMD-vs-scalar parity fuzz over shapes that exercise every tail path:
// partial MR panels, partial NR panels (both halves of the 16-wide tile),
// k=1, and the 7×13×5 shape from the issue.
TEST(GemmParity, SimdMatchesScalarOnRandomShapes) {
  if (!simd_supported()) GTEST_SKIP() << "host lacks AVX2+FMA";
  BackendGuard guard;
  runtime::Rng rng(21);
  const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>
      shapes = {{1, 1, 1},    {7, 13, 5},   {6, 16, 32},  {17, 1, 9},
                {5, 300, 3},  {33, 47, 29}, {64, 64, 64}, {129, 63, 65},
                {2, 200, 11}, {61, 7, 123}};
  for (const auto& [m, k, n] : shapes) {
    const Tensor a = Tensor::uniform(Shape::matrix(m, k), rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape::matrix(k, n), rng, -1.0f, 1.0f);
    Tensor scalar_out(Shape::matrix(m, n));
    Tensor simd_out(Shape::matrix(m, n));
    runtime::set_kernel_backend(KernelBackend::kScalar);
    matmul_into(a, b, scalar_out);
    runtime::set_kernel_backend(KernelBackend::kAvx2);
    matmul_into(a, b, simd_out);
    expect_rel_close(scalar_out, simd_out, 1e-5,
                     std::to_string(m) + "x" + std::to_string(k) + "x" +
                         std::to_string(n));
  }
}

// Transpose flags must match an explicit transposed() copy bit-for-bit on
// every backend (same kernel, same packing-normalized operand order).
TEST(GemmTranspose, FlagsMatchExplicitTransposeCopies) {
  runtime::Rng rng(22);
  const std::size_t m = 23, k = 31, n = 19;
  for (const KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2}) {
    if (backend == KernelBackend::kAvx2 && !simd_supported()) continue;
    BackendGuard guard;
    runtime::set_kernel_backend(backend);
    const Tensor a = Tensor::uniform(Shape::matrix(m, k), rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape::matrix(k, n), rng, -1.0f, 1.0f);
    const Tensor at = a.transposed();  // k×m storage of the same logical A
    const Tensor bt = b.transposed();  // n×k storage of the same logical B
    Tensor reference(Shape::matrix(m, n));
    matmul_into(a, b, reference);

    Tensor nt(Shape::matrix(m, n));
    matmul_into(a, bt, nt, Trans::kNo, Trans::kYes);
    Tensor tn(Shape::matrix(m, n));
    matmul_into(at, b, tn, Trans::kYes, Trans::kNo);
    Tensor tt(Shape::matrix(m, n));
    matmul_into(at, bt, tt, Trans::kYes, Trans::kYes);
    for (std::size_t i = 0; i < reference.numel(); ++i) {
      ASSERT_EQ(nt.at(i), reference.at(i)) << "NT flat " << i;
      ASSERT_EQ(tn.at(i), reference.at(i)) << "TN flat " << i;
      ASSERT_EQ(tt.at(i), reference.at(i)) << "TT flat " << i;
    }
  }
}

TEST(GemmTranspose, FlagsMatchNaiveReference) {
  runtime::Rng rng(23);
  const std::size_t m = 14, k = 40, n = 27;
  const Tensor at = Tensor::uniform(Shape::matrix(k, m), rng, -1.0f, 1.0f);
  const Tensor bt = Tensor::uniform(Shape::matrix(n, k), rng, -1.0f, 1.0f);
  Tensor out(Shape::matrix(m, n));
  matmul_into(at, bt, out, Trans::kYes, Trans::kYes);
  expect_rel_close(out, matmul_naive(at, bt, Trans::kYes, Trans::kYes), 1e-4,
                   "TT vs naive");
}

TEST(GemmTranspose, DimensionValidationHonorsFlags) {
  const Tensor a(Shape::matrix(4, 6));
  const Tensor b(Shape::matrix(4, 5));
  Tensor out(Shape::matrix(6, 5));
  // aᵀ (6×4) · b (4×5) fits; a · b does not.
  matmul_into(a, b, out, Trans::kYes, Trans::kNo);
  EXPECT_THROW(matmul_into(a, b, out, Trans::kNo, Trans::kNo),
               std::invalid_argument);
  Tensor wrong(Shape::matrix(4, 5));
  EXPECT_THROW(matmul_into(a, b, wrong, Trans::kYes, Trans::kNo),
               std::invalid_argument);
}

TEST(GemmAccumulate, AddsOntoExistingOutput) {
  runtime::Rng rng(24);
  for (const KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2}) {
    if (backend == KernelBackend::kAvx2 && !simd_supported()) continue;
    BackendGuard guard;
    runtime::set_kernel_backend(backend);
    const std::size_t m = 9, k = 33, n = 21;  // tails on every axis
    const Tensor a = Tensor::uniform(Shape::matrix(m, k), rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape::matrix(k, n), rng, -1.0f, 1.0f);
    const Tensor seed = Tensor::uniform(Shape::matrix(m, n), rng, -1.0f, 1.0f);
    Tensor product(Shape::matrix(m, n));
    matmul_into(a, b, product);
    Tensor accumulated = seed;
    matmul_into(a, b, accumulated, /*accumulate=*/true);
    // accumulate must be exactly seed + product: the kernel performs one
    // add of the same register tile the non-accumulating path stores.
    for (std::size_t i = 0; i < accumulated.numel(); ++i) {
      ASSERT_EQ(accumulated.at(i), seed.at(i) + product.at(i)) << i;
    }
  }
}

// Builds a block-banded matrix with random non-zero entries in each band.
Tensor make_banded(std::size_t bands, std::size_t row_block,
                   std::size_t col_block, runtime::Rng& rng) {
  Tensor m(Shape::matrix(bands * row_block, bands * col_block));
  for (std::size_t band = 0; band < bands; ++band) {
    for (std::size_t r = 0; r < row_block; ++r) {
      for (std::size_t c = 0; c < col_block; ++c) {
        m.at(band * row_block + r, band * col_block + c) =
            static_cast<float>(rng.uniform(0.1, 1.0));
      }
    }
  }
  return m;
}

// The structural sandwich fast path must agree with the dense path
// bit-for-bit under every backend: block_mac / axpy_row issue the same
// ascending-k fused chains as the packed microkernel.
TEST(GemmSandwich, BandedMatchesDenseOnEveryBackend) {
  runtime::Rng rng(25);
  const std::size_t bands = 4, cf = 4, block = 8;
  const Tensor lhs = make_banded(bands, cf, block, rng);
  const Tensor rhs = make_banded(bands, block, cf, rng);
  const std::size_t edge = bands * block;
  const Tensor in =
      Tensor::uniform(Shape::bchw(2, 3, edge, edge), rng, -1.0f, 1.0f);
  for (const KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2}) {
    if (backend == KernelBackend::kAvx2 && !simd_supported()) continue;
    BackendGuard guard;
    runtime::set_kernel_backend(backend);
    Tensor dense_out(Shape::bchw(2, 3, bands * cf, bands * cf));
    Tensor banded_out(Shape::bchw(2, 3, bands * cf, bands * cf));
    sandwich_planes_into(lhs, in, rhs, dense_out, {});
    sandwich_planes_into(lhs, in, rhs, banded_out,
                         {.lhs_bands = {cf, block}, .rhs_bands = {block, cf}});
    for (std::size_t i = 0; i < dense_out.numel(); ++i) {
      ASSERT_EQ(dense_out.at(i), banded_out.at(i))
          << runtime::kernel_backend_name() << " flat " << i;
    }
  }
}

TEST(GemmSandwich, SimdAndScalarSandwichAgreeWithinTolerance) {
  if (!simd_supported()) GTEST_SKIP() << "host lacks AVX2+FMA";
  BackendGuard guard;
  runtime::Rng rng(26);
  const std::size_t bands = 3, cf = 2, block = 8;
  const Tensor lhs = make_banded(bands, cf, block, rng);
  const Tensor rhs = make_banded(bands, block, cf, rng);
  const std::size_t edge = bands * block;
  const Tensor in =
      Tensor::uniform(Shape::bchw(2, 2, edge, edge), rng, -1.0f, 1.0f);
  const SandwichOptions opts{.lhs_bands = {cf, block},
                             .rhs_bands = {block, cf}};
  Tensor scalar_out(Shape::bchw(2, 2, bands * cf, bands * cf));
  Tensor simd_out(Shape::bchw(2, 2, bands * cf, bands * cf));
  runtime::set_kernel_backend(KernelBackend::kScalar);
  sandwich_planes_into(lhs, in, rhs, scalar_out, opts);
  runtime::set_kernel_backend(KernelBackend::kAvx2);
  sandwich_planes_into(lhs, in, rhs, simd_out, opts);
  expect_rel_close(scalar_out, simd_out, 1e-5, "sandwich parity");
}

TEST(GemmPrimitives, AxpyAndBlockMacMatchNaive) {
  runtime::Rng rng(27);
  for (const KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2}) {
    if (backend == KernelBackend::kAvx2 && !simd_supported()) continue;
    BackendGuard guard;
    runtime::set_kernel_backend(backend);
    for (const std::size_t n : {1u, 4u, 7u, 8u, 9u, 16u, 23u, 64u}) {
      std::vector<float> src(n), dst(n), expect(n);
      for (std::size_t j = 0; j < n; ++j) {
        src[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
        dst[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
        expect[j] = dst[j];
      }
      const float alpha = 0.75f;
      axpy_row(alpha, src.data(), dst.data(), n);
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(dst[j], expect[j] + alpha * src[j], 1e-6) << n;
      }
    }
    // block_mac vs naive on an odd-shaped block (n spans both tile halves).
    const std::size_t m = 5, n = 11, k = 9;
    const Tensor a = Tensor::uniform(Shape::matrix(m, k), rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape::matrix(k, n), rng, -1.0f, 1.0f);
    Tensor c(Shape::matrix(m, n));
    block_mac(m, n, k, a.raw(), k, b.raw(), n, c.raw(), n);
    expect_rel_close(c, matmul_naive(a, b, Trans::kNo, Trans::kNo), 1e-5,
                     "block_mac");
  }
}

TEST(GemmCounters, AdvanceAcrossCallsAndCountTails) {
  const GemmCounters before = gemm_counters();
  runtime::Rng rng(28);
  // 13×17: partial MR panels (13 = 2·6+1) and partial NR panels (17 = 16+1).
  const Tensor a = Tensor::uniform(Shape::matrix(13, 9), rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape::matrix(9, 17), rng, -1.0f, 1.0f);
  Tensor c(Shape::matrix(13, 17));
  matmul_into(a, b, c);
  const GemmCounters after = gemm_counters();
  EXPECT_EQ(after.gemm_calls, before.gemm_calls + 1);
  EXPECT_EQ(after.flops, before.flops + 2ull * 13 * 9 * 17);
  // ceil(13/6)=3 A panels (6,6,1 rows), ceil(17/16)=2 B panels (16,1
  // cols), 6 tiles of which only the two 6×16 ones are full.
  EXPECT_EQ(after.a_panels_packed, before.a_panels_packed + 3);
  EXPECT_EQ(after.b_panels_packed, before.b_panels_packed + 2);
  EXPECT_EQ(after.microkernel_calls, before.microkernel_calls + 6);
  EXPECT_EQ(after.tail_tiles, before.tail_tiles + 4);
}

TEST(GemmCounters, SandwichBandedRecordsPrimitiveCalls) {
  runtime::Rng rng(29);
  const std::size_t bands = 4, cf = 4, block = 8;
  const Tensor lhs = make_banded(bands, cf, block, rng);
  const Tensor rhs = make_banded(bands, block, cf, rng);
  const std::size_t edge = bands * block;
  const Tensor in = Tensor::uniform(Shape::bchw(1, 2, edge, edge), rng);
  Tensor out(Shape::bchw(1, 2, bands * cf, bands * cf));
  const GemmCounters before = gemm_counters();
  sandwich_planes_into(lhs, in, rhs, out,
                       {.lhs_bands = {cf, block}, .rhs_bands = {block, cf}});
  const GemmCounters after = gemm_counters();
  // 2 planes × 4 LHS bands × 4 RHS bands block MACs.
  EXPECT_EQ(after.block_mac_calls, before.block_mac_calls + 2 * 4 * 4);
  // ≤ planes × bands × (cf × block) axpy rows; zero entries are skipped
  // so only a lower bound is structural.
  EXPECT_GT(after.axpy_calls, before.axpy_calls);
  EXPECT_LE(after.axpy_calls, before.axpy_calls + 2 * 4 * cf * block);
}

}  // namespace
}  // namespace aic::tensor
