#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::tensor {
namespace {

// Naive triple loop used as ground truth.
Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  Tensor c(Shape::matrix(m, n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Matmul, SmallKnownProduct) {
  const Tensor a(Shape::matrix(2, 3), {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape::matrix(3, 2), {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNeutral) {
  runtime::Rng rng(2);
  const Tensor a = Tensor::uniform(Shape::matrix(9, 9), rng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose(matmul(a, Tensor::identity(9)), a, 1e-6));
  EXPECT_TRUE(allclose(matmul(Tensor::identity(9), a), a, 1e-6));
}

TEST(Matmul, MatchesNaiveOnRandomRectangles) {
  runtime::Rng rng(3);
  for (auto [m, k, n] : {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 1},
                         {5, 7, 3},
                         {16, 16, 16},
                         {33, 65, 17},
                         {128, 40, 64}}) {
    const Tensor a = Tensor::uniform(Shape::matrix(m, k), rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape::matrix(k, n), rng, -1.0f, 1.0f);
    EXPECT_TRUE(allclose(matmul(a, b), matmul_naive(a, b), 1e-3))
        << m << "x" << k << "x" << n;
  }
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  const Tensor a(Shape::matrix(2, 3));
  const Tensor b(Shape::matrix(4, 2));
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, Rank4OperandThrows) {
  const Tensor a(Shape::bchw(1, 1, 2, 2));
  const Tensor b(Shape::matrix(2, 2));
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(MatmulInto, AccumulateAddsToExisting) {
  const Tensor a = Tensor::identity(3);
  const Tensor b = Tensor::full(Shape::matrix(3, 3), 2.0f);
  Tensor out = Tensor::full(Shape::matrix(3, 3), 1.0f);
  matmul_into(a, b, out, /*accumulate=*/true);
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(MatmulInto, NonAccumulateOverwrites) {
  const Tensor a = Tensor::identity(3);
  const Tensor b = Tensor::full(Shape::matrix(3, 3), 2.0f);
  Tensor out = Tensor::full(Shape::matrix(3, 3), 100.0f);
  matmul_into(a, b, out, /*accumulate=*/false);
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(MatmulInto, WrongOutputShapeThrows) {
  const Tensor a(Shape::matrix(2, 3));
  const Tensor b(Shape::matrix(3, 4));
  Tensor out(Shape::matrix(2, 5));
  EXPECT_THROW(matmul_into(a, b, out), std::invalid_argument);
}

TEST(Matmul, AssociativityWithinTolerance) {
  runtime::Rng rng(5);
  const Tensor a = Tensor::uniform(Shape::matrix(12, 8), rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape::matrix(8, 10), rng, -1.0f, 1.0f);
  const Tensor c = Tensor::uniform(Shape::matrix(10, 6), rng, -1.0f, 1.0f);
  EXPECT_TRUE(
      allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-3));
}

TEST(SandwichPlanes, MatchesPerPlaneProducts) {
  runtime::Rng rng(6);
  const Tensor lhs = Tensor::uniform(Shape::matrix(4, 8), rng, -1.0f, 1.0f);
  const Tensor rhs = Tensor::uniform(Shape::matrix(8, 4), rng, -1.0f, 1.0f);
  const Tensor in = Tensor::uniform(Shape::bchw(3, 2, 8, 8), rng, -1.0f, 1.0f);
  Tensor out(Shape::bchw(3, 2, 4, 4));
  sandwich_planes(lhs, in, rhs, out);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t c = 0; c < 2; ++c) {
      const Tensor expected =
          matmul(lhs, matmul(in.slice_plane(b, c), rhs));
      EXPECT_TRUE(allclose(out.slice_plane(b, c), expected, 1e-4));
    }
  }
}

TEST(SandwichPlanes, ShapeMismatchThrows) {
  const Tensor lhs(Shape::matrix(4, 8));
  const Tensor rhs(Shape::matrix(8, 4));
  const Tensor in(Shape::bchw(1, 1, 8, 8));
  Tensor wrong(Shape::bchw(1, 1, 4, 5));
  EXPECT_THROW(sandwich_planes(lhs, in, rhs, wrong), std::invalid_argument);
}

TEST(MatmulFlops, CountsTwoMNK) {
  const Tensor a(Shape::matrix(3, 4));
  const Tensor b(Shape::matrix(4, 5));
  EXPECT_EQ(matmul_flops(a, b), 2u * 3u * 4u * 5u);
}

}  // namespace
}  // namespace aic::tensor
