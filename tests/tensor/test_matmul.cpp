#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::tensor {
namespace {

// Naive triple loop used as ground truth.
Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  Tensor c(Shape::matrix(m, n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Matmul, SmallKnownProduct) {
  const Tensor a(Shape::matrix(2, 3), {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape::matrix(3, 2), {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNeutral) {
  runtime::Rng rng(2);
  const Tensor a = Tensor::uniform(Shape::matrix(9, 9), rng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose(matmul(a, Tensor::identity(9)), a, 1e-6));
  EXPECT_TRUE(allclose(matmul(Tensor::identity(9), a), a, 1e-6));
}

TEST(Matmul, MatchesNaiveOnRandomRectangles) {
  runtime::Rng rng(3);
  for (auto [m, k, n] : {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 1},
                         {5, 7, 3},
                         {16, 16, 16},
                         {33, 65, 17},
                         {128, 40, 64}}) {
    const Tensor a = Tensor::uniform(Shape::matrix(m, k), rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape::matrix(k, n), rng, -1.0f, 1.0f);
    EXPECT_TRUE(allclose(matmul(a, b), matmul_naive(a, b), 1e-3))
        << m << "x" << k << "x" << n;
  }
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  const Tensor a(Shape::matrix(2, 3));
  const Tensor b(Shape::matrix(4, 2));
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, Rank4OperandThrows) {
  const Tensor a(Shape::bchw(1, 1, 2, 2));
  const Tensor b(Shape::matrix(2, 2));
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(MatmulInto, AccumulateAddsToExisting) {
  const Tensor a = Tensor::identity(3);
  const Tensor b = Tensor::full(Shape::matrix(3, 3), 2.0f);
  Tensor out = Tensor::full(Shape::matrix(3, 3), 1.0f);
  matmul_into(a, b, out, /*accumulate=*/true);
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(MatmulInto, NonAccumulateOverwrites) {
  const Tensor a = Tensor::identity(3);
  const Tensor b = Tensor::full(Shape::matrix(3, 3), 2.0f);
  Tensor out = Tensor::full(Shape::matrix(3, 3), 100.0f);
  matmul_into(a, b, out, /*accumulate=*/false);
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(MatmulInto, WrongOutputShapeThrows) {
  const Tensor a(Shape::matrix(2, 3));
  const Tensor b(Shape::matrix(3, 4));
  Tensor out(Shape::matrix(2, 5));
  EXPECT_THROW(matmul_into(a, b, out), std::invalid_argument);
}

TEST(Matmul, AssociativityWithinTolerance) {
  runtime::Rng rng(5);
  const Tensor a = Tensor::uniform(Shape::matrix(12, 8), rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape::matrix(8, 10), rng, -1.0f, 1.0f);
  const Tensor c = Tensor::uniform(Shape::matrix(10, 6), rng, -1.0f, 1.0f);
  EXPECT_TRUE(
      allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-3));
}

TEST(SandwichPlanes, MatchesPerPlaneProducts) {
  runtime::Rng rng(6);
  const Tensor lhs = Tensor::uniform(Shape::matrix(4, 8), rng, -1.0f, 1.0f);
  const Tensor rhs = Tensor::uniform(Shape::matrix(8, 4), rng, -1.0f, 1.0f);
  const Tensor in = Tensor::uniform(Shape::bchw(3, 2, 8, 8), rng, -1.0f, 1.0f);
  Tensor out(Shape::bchw(3, 2, 4, 4));
  sandwich_planes(lhs, in, rhs, out);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t c = 0; c < 2; ++c) {
      const Tensor expected =
          matmul(lhs, matmul(in.slice_plane(b, c), rhs));
      EXPECT_TRUE(allclose(out.slice_plane(b, c), expected, 1e-4));
    }
  }
}

TEST(SandwichPlanes, ShapeMismatchThrows) {
  const Tensor lhs(Shape::matrix(4, 8));
  const Tensor rhs(Shape::matrix(8, 4));
  const Tensor in(Shape::bchw(1, 1, 8, 8));
  Tensor wrong(Shape::bchw(1, 1, 4, 5));
  EXPECT_THROW(sandwich_planes(lhs, in, rhs, wrong), std::invalid_argument);
}

TEST(MatmulFlops, CountsTwoMNK) {
  const Tensor a(Shape::matrix(3, 4));
  const Tensor b(Shape::matrix(4, 5));
  EXPECT_EQ(matmul_flops(a, b), 2u * 3u * 4u * 5u);
}

TEST(MatmulDtype, RejectsNonFloat32Operands) {
  const Tensor a(Shape::matrix(2, 2));
  Tensor half(Shape::matrix(2, 2));
  half.set_dtype(DType::kFloat16);
  Tensor out(Shape::matrix(2, 2));
  EXPECT_THROW(matmul(a, half), std::invalid_argument);
  EXPECT_THROW(matmul(half, a), std::invalid_argument);
  EXPECT_THROW(matmul_into(a, a, half), std::invalid_argument);

  Tensor bf_in(Shape::bchw(1, 1, 2, 2));
  bf_in.set_dtype(DType::kBfloat16);
  Tensor plane_out(Shape::bchw(1, 1, 2, 2));
  EXPECT_THROW(sandwich_planes(a, bf_in, a, plane_out),
               std::invalid_argument);
  Tensor bf_op = a;
  bf_op.set_dtype(DType::kBfloat16);
  const Tensor in(Shape::bchw(1, 1, 2, 2));
  EXPECT_THROW(sandwich_planes(bf_op, in, a, plane_out),
               std::invalid_argument);
  EXPECT_THROW(sandwich_planes(a, in, bf_op, plane_out),
               std::invalid_argument);
}

// Builds a block-banded matrix with the given band blocks and random
// non-zero entries inside each band.
Tensor make_banded(std::size_t bands, std::size_t row_block,
                   std::size_t col_block, runtime::Rng& rng) {
  Tensor m(Shape::matrix(bands * row_block, bands * col_block));
  for (std::size_t band = 0; band < bands; ++band) {
    for (std::size_t r = 0; r < row_block; ++r) {
      for (std::size_t c = 0; c < col_block; ++c) {
        m.at(band * row_block + r, band * col_block + c) =
            static_cast<float>(rng.uniform(0.1, 1.0));
      }
    }
  }
  return m;
}

TEST(IsBlockBanded, AcceptsAndRejectsStructures) {
  runtime::Rng rng(11);
  const Tensor banded = make_banded(3, 4, 8, rng);
  EXPECT_TRUE(is_block_banded(banded, {4, 8}));
  EXPECT_FALSE(is_block_banded(banded, {8, 4}));  // wrong orientation
  EXPECT_FALSE(is_block_banded(banded, {0, 8}));  // invalid spec
  EXPECT_FALSE(is_block_banded(banded, {3, 8}));  // does not tile rows

  Tensor spoiled = banded;
  spoiled.at(0, 23) = 1.0f;  // off-band entry
  EXPECT_FALSE(is_block_banded(spoiled, {4, 8}));

  const Tensor vec(Shape::vector(8));
  EXPECT_FALSE(is_block_banded(vec, {4, 8}));
}

TEST(SandwichPlanesInto, BandedMatchesDensePathExactly) {
  // The structural fast path must produce the same bits as the generic
  // plane-by-plane two-matmul sandwich: same contributions, same order.
  runtime::Rng rng(12);
  const std::size_t bands_h = 4, bands_w = 3;
  const std::size_t cf = 4, block = 8;
  // lhs: (bands_h·cf)×(bands_h·block), rhs: (bands_w·block)×(bands_w·cf).
  const Tensor lhs = make_banded(bands_h, cf, block, rng);
  const Tensor rhs = make_banded(bands_w, block, cf, rng);
  const std::size_t h = bands_h * block, w = bands_w * block;
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, h, w), rng, -1.0f, 1.0f);
  Tensor dense_out(Shape::bchw(2, 3, bands_h * cf, bands_w * cf));
  Tensor banded_out(Shape::bchw(2, 3, bands_h * cf, bands_w * cf));
  sandwich_planes_into(lhs, in, rhs, dense_out, {});
  sandwich_planes_into(lhs, in, rhs, banded_out,
                       {.lhs_bands = {cf, block}, .rhs_bands = {block, cf}});
  for (std::size_t i = 0; i < dense_out.numel(); ++i) {
    ASSERT_EQ(dense_out.at(i), banded_out.at(i)) << "flat index " << i;
  }
}

TEST(SandwichPlanesInto, DensePathMatchesReferenceMatmulExactly) {
  runtime::Rng rng(13);
  const Tensor lhs = Tensor::uniform(Shape::matrix(6, 16), rng, -1.0f, 1.0f);
  const Tensor rhs = Tensor::uniform(Shape::matrix(24, 10), rng, -1.0f, 1.0f);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 2, 16, 24), rng, -1.0f, 1.0f);
  Tensor out(Shape::bchw(2, 2, 6, 10));
  sandwich_planes_into(lhs, in, rhs, out, {});
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 2; ++c) {
      const Tensor expected = matmul(lhs, matmul(in.slice_plane(b, c), rhs));
      const Tensor got = out.slice_plane(b, c);
      for (std::size_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(got.at(i), expected.at(i)) << "plane " << b << "," << c;
      }
    }
  }
}

TEST(SandwichPlanesInto, IllFittingBandHintThrows) {
  const Tensor lhs(Shape::matrix(4, 8));
  const Tensor rhs(Shape::matrix(8, 4));
  const Tensor in(Shape::bchw(1, 1, 8, 8));
  Tensor out(Shape::bchw(1, 1, 4, 4));
  // Half-specified hint.
  EXPECT_THROW(
      sandwich_planes_into(lhs, in, rhs, out,
                           {.lhs_bands = {4, 8}, .rhs_bands = {}}),
      std::invalid_argument);
  // Band grid does not tile the operators.
  EXPECT_THROW(sandwich_planes_into(lhs, in, rhs, out,
                                    {.lhs_bands = {3, 8}, .rhs_bands = {8, 4}}),
               std::invalid_argument);
}

TEST(SandwichPlanesInto, SteadyStateReallocatesNoScratch) {
  runtime::Rng rng(14);
  const std::size_t cf = 4, block = 8, bands = 4;
  const Tensor lhs = make_banded(bands, cf, block, rng);
  const Tensor rhs = make_banded(bands, block, cf, rng);
  const Tensor in =
      Tensor::uniform(Shape::bchw(3, 2, bands * block, bands * block), rng);
  Tensor out(Shape::bchw(3, 2, bands * cf, bands * cf));
  const SandwichOptions opts{.lhs_bands = {cf, block},
                             .rhs_bands = {block, cf}};
  // Warm-up sizes every thread's scratch buffer...
  sandwich_planes_into(lhs, in, rhs, out, opts);
  const std::uint64_t warm = sandwich_scratch_reallocs();
  // ...after which repeated calls must not allocate scratch again.
  for (int i = 0; i < 5; ++i) sandwich_planes_into(lhs, in, rhs, out, opts);
  EXPECT_EQ(sandwich_scratch_reallocs(), warm);
}

}  // namespace
}  // namespace aic::tensor
