#include "tensor/shape.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aic::tensor {
namespace {

TEST(Shape, ScalarHasRankZeroAndOneElement) {
  const Shape s = Shape::scalar();
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, VectorAndMatrixFactories) {
  EXPECT_EQ(Shape::vector(5).rank(), 1u);
  EXPECT_EQ(Shape::vector(5).numel(), 5u);
  const Shape m = Shape::matrix(3, 4);
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_EQ(m[0], 3u);
  EXPECT_EQ(m[1], 4u);
  EXPECT_EQ(m.numel(), 12u);
}

TEST(Shape, BchwFactory) {
  const Shape s = Shape::bchw(2, 3, 32, 32);
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 2u * 3u * 32u * 32u);
}

TEST(Shape, StridesAreRowMajor) {
  const Shape s = Shape::bchw(2, 3, 4, 5);
  const auto strides = s.strides();
  EXPECT_EQ(strides[3], 1u);
  EXPECT_EQ(strides[2], 5u);
  EXPECT_EQ(strides[1], 20u);
  EXPECT_EQ(strides[0], 60u);
}

TEST(Shape, EqualityComparesRankAndDims) {
  EXPECT_EQ(Shape::matrix(2, 3), Shape::matrix(2, 3));
  EXPECT_NE(Shape::matrix(2, 3), Shape::matrix(3, 2));
  EXPECT_NE(Shape::vector(6), Shape::matrix(2, 3));
  EXPECT_EQ(Shape::scalar(), Shape::scalar());
}

TEST(Shape, ZeroDimensionGivesZeroNumel) {
  EXPECT_EQ(Shape({4, 0, 2}).numel(), 0u);
}

TEST(Shape, ToStringFormatsDims) {
  EXPECT_EQ(Shape::matrix(2, 3).to_string(), "[2, 3]");
  EXPECT_EQ(Shape::scalar().to_string(), "[]");
}

TEST(Shape, RankAboveMaxThrows) {
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST(Shape, OutOfRangeAxisThrows) {
  const Shape s = Shape::matrix(2, 3);
  EXPECT_THROW((void)s[2], std::out_of_range);
}

}  // namespace
}  // namespace aic::tensor
