#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "runtime/rng.hpp"

namespace aic::tensor {
namespace {

TEST(Ops, AddSubMulElementwise) {
  const Tensor a(Shape::vector(3), {1, 2, 3});
  const Tensor b(Shape::vector(3), {10, 20, 30});
  const Tensor s = add(a, b);
  const Tensor d = sub(b, a);
  const Tensor p = mul(a, b);
  EXPECT_FLOAT_EQ(s.at(1), 22.0f);
  EXPECT_FLOAT_EQ(d.at(2), 27.0f);
  EXPECT_FLOAT_EQ(p.at(0), 10.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  const Tensor a(Shape::vector(3));
  const Tensor b(Shape::vector(4));
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mse(a, b), std::invalid_argument);
}

TEST(Ops, ScaleMultipliesAll) {
  const Tensor a(Shape::vector(3), {1, -2, 3});
  const Tensor s = scale(a, -2.0f);
  EXPECT_FLOAT_EQ(s.at(0), -2.0f);
  EXPECT_FLOAT_EQ(s.at(1), 4.0f);
  EXPECT_FLOAT_EQ(s.at(2), -6.0f);
}

TEST(Ops, AxpyAccumulatesInPlace) {
  Tensor a(Shape::vector(2), {1, 2});
  const Tensor b(Shape::vector(2), {10, 100});
  axpy(a, b, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0), 6.0f);
  EXPECT_FLOAT_EQ(a.at(1), 52.0f);
}

TEST(Ops, MapAppliesFunction) {
  const Tensor a(Shape::vector(3), {-1, 0, 2});
  const Tensor r = map(a, [](float x) { return x * x; });
  EXPECT_FLOAT_EQ(r.at(0), 1.0f);
  EXPECT_FLOAT_EQ(r.at(2), 4.0f);
}

TEST(Ops, SumAndMean) {
  const Tensor a(Shape::matrix(2, 2), {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(sum(a), 10.0);
  EXPECT_DOUBLE_EQ(mean(a), 2.5);
}

TEST(Ops, ExtremaAndArgmax) {
  const Tensor a(Shape::vector(4), {3, -7, 9, 1});
  EXPECT_FLOAT_EQ(max_value(a), 9.0f);
  EXPECT_FLOAT_EQ(min_value(a), -7.0f);
  EXPECT_EQ(argmax(a), 2u);
  EXPECT_FLOAT_EQ(max_abs(a), 9.0f);
}

TEST(Ops, MseOfIdenticalTensorsIsZero) {
  runtime::Rng rng(1);
  const Tensor a = Tensor::uniform(Shape::matrix(5, 5), rng);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Ops, MseKnownValue) {
  const Tensor a(Shape::vector(2), {0, 0});
  const Tensor b(Shape::vector(2), {3, 4});
  EXPECT_DOUBLE_EQ(mse(a, b), (9.0 + 16.0) / 2.0);
}

TEST(Ops, PsnrInfiniteForExactMatch) {
  const Tensor a(Shape::vector(3), {1, 2, 3});
  EXPECT_TRUE(std::isinf(psnr(a, a, 1.0)));
}

TEST(Ops, PsnrKnownValue) {
  const Tensor a(Shape::vector(1), {0.0f});
  const Tensor b(Shape::vector(1), {0.1f});
  // MSE = 0.01, peak = 1 -> PSNR = 10*log10(1/0.01) = 20 dB.
  EXPECT_NEAR(psnr(a, b, 1.0), 20.0, 1e-4);
}

TEST(Ops, MaxAbsErrorFindsWorstElement) {
  const Tensor a(Shape::vector(3), {1, 2, 3});
  const Tensor b(Shape::vector(3), {1.1f, 1.0f, 3.05f});
  EXPECT_NEAR(max_abs_error(a, b), 1.0, 1e-6);
}

TEST(Ops, AllcloseRespectsTolerance) {
  const Tensor a(Shape::vector(2), {1.0f, 2.0f});
  const Tensor b(Shape::vector(2), {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(allclose(a, b, 1e-5));
  EXPECT_FALSE(allclose(a, b, 1e-9));
}

TEST(Ops, AllcloseDifferentShapesIsFalse) {
  EXPECT_FALSE(allclose(Tensor(Shape::vector(2)), Tensor(Shape::vector(3))));
}

}  // namespace
}  // namespace aic::tensor
