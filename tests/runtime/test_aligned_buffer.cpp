#include "runtime/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace aic::runtime {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<float> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.data(), nullptr);
}

TEST(AlignedBuffer, AllocationIsAligned) {
  AlignedBuffer<float, 64> buffer(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u);
  EXPECT_EQ(buffer.size(), 100u);
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer<double, 128> buffer(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 128, 0u);
}

TEST(AlignedBuffer, ElementsAreWritable) {
  AlignedBuffer<float> buffer(10);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<float>(i);
  }
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<float>(i));
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(16);
  a[0] = 42.0f;
  float* original = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), original);
  EXPECT_EQ(b[0], 42.0f);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): tests post-move state
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<float> a(4);
  AlignedBuffer<float> b(8);
  b = std::move(a);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace aic::runtime
