#include "runtime/context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/archive.hpp"
#include "core/dct_chop.hpp"
#include "core/plan_cache.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace aic {
namespace {

using tensor::Shape;
using tensor::Tensor;

Context session(Context::Options options = {}) { return Context(options); }

// --- process_default backward compatibility --------------------------------

TEST(Context, ProcessDefaultIsOneStableSession) {
  const Context a = Context::process_default();
  const Context b = Context::process_default();
  const Context c;  // default-construction is the same session
  EXPECT_TRUE(a.same_session(b));
  EXPECT_TRUE(a.same_session(c));
  EXPECT_TRUE(a.is_process_default());
  EXPECT_EQ(&a.pool(), &b.pool());
  // One plan cache for the whole process-default session — the old
  // PlanCache::global() contract, now spelled PlanCache::of(ctx).
  EXPECT_EQ(&core::PlanCache::of(a), &core::PlanCache::of(b));
  EXPECT_TRUE(a.obs_prefix().empty());
}

TEST(Context, SessionsAreIsolatedFromProcessDefault) {
  const Context session_ctx = session();
  EXPECT_FALSE(session_ctx.is_process_default());
  EXPECT_FALSE(session_ctx.same_session(Context::process_default()));
  // A threads=0 session shares the process pool but owns its own cache.
  EXPECT_EQ(&session_ctx.pool(), &Context::process_default().pool());
  EXPECT_NE(&core::PlanCache::of(session_ctx),
            &core::PlanCache::of(Context::process_default()));
  // Copies are the same session.
  const Context copy = session_ctx;  // NOLINT(performance-unnecessary-copy)
  EXPECT_TRUE(copy.same_session(session_ctx));
  EXPECT_EQ(&core::PlanCache::of(copy), &core::PlanCache::of(session_ctx));
}

// --- per-context plan-cache isolation --------------------------------------

TEST(Context, PlanCachesAreIsolatedPerContext) {
  const Context a = session();
  const Context b = session();
  core::PlanCache& cache_a = core::PlanCache::of(a);
  core::PlanCache& cache_b = core::PlanCache::of(b);
  ASSERT_NE(&cache_a, &cache_b);

  const auto plan_a = core::resolve_dct_chop_plan(
      a, 16, 16, 4, 8, core::TransformKind::kDct2);
  // Resolving through `a` must not touch `b`'s cache at all.
  EXPECT_EQ(cache_a.snapshot().builds, 1u);
  EXPECT_EQ(cache_b.snapshot().builds, 0u);
  EXPECT_EQ(cache_b.size(), 0u);

  const auto plan_b = core::resolve_dct_chop_plan(
      b, 16, 16, 4, 8, core::TransformKind::kDct2);
  // Same key, different cache: a separate build and a separate instance.
  EXPECT_EQ(cache_b.snapshot().builds, 1u);
  EXPECT_NE(plan_a.get(), plan_b.get());
  // Second resolve through `b` is a hit in `b` only.
  (void)core::resolve_dct_chop_plan(b, 16, 16, 4, 8,
                                    core::TransformKind::kDct2);
  EXPECT_EQ(cache_b.snapshot().hits, 1u);
  EXPECT_EQ(cache_a.snapshot().hits, 0u);
}

TEST(Context, PlanCacheBudgetIsPerContext) {
  // `tight` evicts under its tiny budget; `roomy` keeps everything.
  Context::Options tight_options;
  tight_options.plan_cache_bytes = 1;
  const Context tight = session(tight_options);
  const Context roomy = session();

  for (const std::size_t res : {16, 24, 32}) {
    (void)core::resolve_dct_chop_plan(tight, res, res, 4, 8,
                                      core::TransformKind::kDct2);
    (void)core::resolve_dct_chop_plan(roomy, res, res, 4, 8,
                                      core::TransformKind::kDct2);
  }
  EXPECT_EQ(core::PlanCache::of(tight).size(), 1u);
  EXPECT_GE(core::PlanCache::of(tight).snapshot().evictions, 2u);
  EXPECT_EQ(core::PlanCache::of(roomy).size(), 3u);
  EXPECT_EQ(core::PlanCache::of(roomy).snapshot().evictions, 0u);
}

// --- context-scoped metric labels -------------------------------------------

std::uint64_t global_counter(const std::string& name) {
  for (const auto& [key, value] : obs::Registry::global().counters()) {
    if (key == name) return value;
  }
  return 0;
}

bool global_histogram_has_samples(const std::string& name) {
  for (const auto& [key, snap] : obs::Registry::global().histograms()) {
    if (key == name) return snap.count > 0;
  }
  return false;
}

TEST(Context, ObsPrefixScopesMetricsIntoGlobalRegistry) {
  Context::Options options;
  options.obs_prefix = "ctxtest.";
  const Context ctx = session(options);
  EXPECT_EQ(ctx.metric_name("iterations"), "ctxtest.iterations");

  obs::Counter& iterations = ctx.counter("iterations");
  iterations.add();
  EXPECT_GE(global_counter("ctxtest.iterations"), 1u);

  // A codec built into the context publishes its latency series and its
  // plan-cache counters under the same prefix.
  runtime::Rng rng(3);
  const core::DctChopCodec codec({.cf = 4, .block = 8}, ctx);
  (void)codec.round_trip(Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng));
  EXPECT_GE(global_counter("ctxtest.plan_cache.build_count"), 1u);
  EXPECT_TRUE(global_histogram_has_samples("ctxtest.codec.compress.ns"));
  EXPECT_TRUE(global_histogram_has_samples("ctxtest.codec.decompress.ns"));
}

TEST(Context, AnonymousSessionsKeepPlanCacheMetricsPrivate) {
  const std::uint64_t before = global_counter("plan_cache.build_count");
  const Context ctx = session();  // no obs_prefix
  (void)core::resolve_dct_chop_plan(ctx, 16, 16, 2, 8,
                                    core::TransformKind::kDct2);
  // The private build shows in the context's own snapshot but does not
  // move the process-wide series.
  EXPECT_EQ(core::PlanCache::of(ctx).snapshot().builds, 1u);
  EXPECT_EQ(global_counter("plan_cache.build_count"), before);
}

// --- concurrent sessions: bitwise archive parity under contention -----------

TEST(Context, ConcurrentSessionsProduceBitwiseIdenticalArchives) {
  runtime::Rng rng(11);
  const Tensor input = Tensor::uniform(Shape::bchw(2, 3, 32, 32), rng);
  const cli::ArchiveWriteOptions write{.chunk_bytes = 2048};

  // Reference computed with zero concurrent load, on a 1-thread pool.
  Context::Options single_options;
  single_options.threads = 1;
  single_options.own_pool = true;
  const std::string reference = cli::compress_to_archive_bytes(
      input, "dctchop:cf=4,block=8", write, nullptr,
      Context(single_options));
  ASSERT_FALSE(reference.empty());

  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kReps = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] {
      // threads=0: all sessions contend on the one shared process pool.
      Context::Options options;
      options.obs_prefix = "parity" + std::to_string(s) + ".";
      const Context ctx{options};
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        const std::string bytes = cli::compress_to_archive_bytes(
            input, "dctchop:cf=4,block=8", write, nullptr, ctx);
        if (bytes != reference) mismatches.fetch_add(1);
        const cli::Archive back = cli::deserialize_archive(bytes, ctx);
        if (back.original_shape != input.shape()) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- process-pool resize safety ---------------------------------------------

TEST(Context, SetProcessThreadsRejectedWhileASessionHoldsThePool) {
  {
    const Context holder = session();  // durable handle to the process pool
    (void)holder.pool();
    EXPECT_THROW(Context::set_process_threads(2), std::runtime_error);
  }
  // Holder gone: the resize succeeds, and process-default contexts see
  // the new size immediately.
  Context::set_process_threads(2);
  EXPECT_EQ(Context::process_default().pool().size(), 2u);
  // Restore the env-configured size for the rest of the suite.
  Context::set_process_threads(Context::resolve_thread_count(0));
}

TEST(Context, ResolveThreadCountPrecedence) {
  // The flag wins outright; 0 defers to the environment (whatever it is,
  // the resolved value must be self-consistent between calls).
  EXPECT_EQ(Context::resolve_thread_count(3), 3u);
  EXPECT_EQ(Context::resolve_thread_count(0), Context::resolve_thread_count());
}

}  // namespace
}  // namespace aic
