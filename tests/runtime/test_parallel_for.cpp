#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/env.hpp"
#include "runtime/thread_pool.hpp"

namespace aic::runtime {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); },
               {.grain = 128});
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NonZeroBeginRespected) {
  std::atomic<long long> total{0};
  parallel_for(100, 200, [&](std::size_t i) { total.fetch_add(static_cast<long long>(i)); },
               {.grain = 8});
  long long expected = 0;
  for (std::size_t i = 100; i < 200; ++i) expected += static_cast<long long>(i);
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  // A range under the grain must execute on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> same_thread{true};
  parallel_for(0, 4,
               [&](std::size_t) {
                 if (std::this_thread::get_id() != caller) same_thread = false;
               },
               {.grain = 1024});
  EXPECT_TRUE(same_thread.load());
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(0, 10'000,
                   [](std::size_t i) {
                     if (i == 4321) throw std::runtime_error("bad index");
                   },
                   {.grain = 16}),
      std::runtime_error);
}

TEST(ParallelForChunks, ChunksPartitionRange) {
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_chunks(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      {.grain = 64});
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForNested, InnerLoopInsideOuterLoopCompletes) {
  // Regression for the sandwich hot-path bug: an outer parallel_for whose
  // body issues another parallel_for re-enters the global pool. Before the
  // inline-degrade guard, every worker could end up blocked on futures
  // only the same pool could serve (deadlock at AIC_NUM_THREADS=1 without
  // the size-1 short-circuit, oversubscription above it). The CMake-level
  // test_runtime_nested_pool{1,4} entries rerun this with pinned pool
  // sizes and a timeout.
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 256;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(
      0, kOuter,
      [&](std::size_t i) {
        parallel_for(
            0, kInner,
            [&](std::size_t j) { hits[i * kInner + j].fetch_add(1); },
            {.grain = 16});
      },
      {.grain = 1});
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForNested, TripleNestingCompletes) {
  std::atomic<long long> total{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) {
      parallel_for(
          0, 64, [&](std::size_t k) { total.fetch_add(static_cast<long long>(k)); },
          {.grain = 4});
    }, {.grain = 1});
  }, {.grain = 1});
  EXPECT_EQ(total.load(), 8 * 8 * (63 * 64 / 2));
}

TEST(ParallelForNested, ExceptionFromInnerLoopPropagates) {
  EXPECT_THROW(
      parallel_for(
          0, 16,
          [&](std::size_t i) {
            parallel_for(
                0, 64,
                [&](std::size_t j) {
                  if (i == 7 && j == 13) throw std::runtime_error("inner");
                },
                {.grain = 4});
          },
          {.grain = 1}),
      std::runtime_error);
}

/// Pins the process pool to a known size for stats assertions and
/// restores the environment-configured size on scope exit, so the
/// env-pinned nested_pool{1,4} reruns keep their configuration.
struct PinnedPool {
  explicit PinnedPool(std::size_t size) {
    Context::set_process_threads(size);
  }
  ~PinnedPool() {
    Context::set_process_threads(Context::resolve_thread_count(0));
  }
};

TEST(ParallelForStatsCounters, SmallRangeCountsAsInlineRun) {
  PinnedPool pin(4);
  reset_parallel_for_stats();
  parallel_for(0, 4, [](std::size_t) {}, {.grain = 1024});
  const ParallelForStats stats = parallel_for_stats();
  EXPECT_EQ(stats.inline_runs, 1u);
  EXPECT_EQ(stats.parallel_runs, 0u);
}

TEST(ParallelForStatsCounters, GrainHeuristicExposedInStats) {
  PinnedPool pin(4);

  // 2 grain-units of work on a 4-worker pool: exactly 2 equal tasks, not
  // one idle task per worker.
  reset_parallel_for_stats();
  std::atomic<int> count{0};
  const auto body = [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); };
  parallel_for(0, 64, body, {.grain = 32});
  ParallelForStats stats = parallel_for_stats();
  EXPECT_EQ(stats.parallel_runs, 1u);
  EXPECT_EQ(stats.last_total, 64u);
  EXPECT_EQ(stats.last_tasks, 2u);
  EXPECT_EQ(stats.last_chunk, 32u);

  // Mid-size range (8 grain-units, under 4x the pool): one task per
  // worker, chunks grown to cover the range.
  parallel_for(0, 256, body, {.grain = 32});
  stats = parallel_for_stats();
  EXPECT_EQ(stats.last_tasks, 4u);
  EXPECT_EQ(stats.last_chunk, 64u);

  // Ample work (64 grain-units): 4x oversubscription kicks in.
  parallel_for(0, 2048, body, {.grain = 32});
  stats = parallel_for_stats();
  EXPECT_EQ(stats.last_tasks, 16u);
  EXPECT_EQ(stats.last_chunk, 128u);
  EXPECT_EQ(stats.parallel_runs, 3u);
  EXPECT_EQ(count.load(), 64 + 256 + 2048);
}

TEST(ParallelForNested, ReentrantCallFromWorkerInlinesAndIsCounted) {
  // A pool task that itself calls parallel_for must degrade to inline
  // execution on its worker — queueing sub-chunks behind itself is the
  // configuration that deadlocked at pool size 1. The stats counters make
  // the degrade observable instead of inferred from "it didn't hang".
  PinnedPool pin(4);
  reset_parallel_for_stats();
  std::atomic<int> count{0};
  Context::process_default()
      .pool()
      .submit([&] {
        parallel_for(
            0, 4096,
            [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); },
            {.grain = 1});
      })
      .get();
  EXPECT_EQ(count.load(), 4096);
  const ParallelForStats stats = parallel_for_stats();
  EXPECT_GE(stats.inline_runs, 1u);
  EXPECT_EQ(stats.parallel_runs, 0u);
}

TEST(ParallelForChunks, GrainZeroIsTreatedAsOne) {
  std::atomic<int> count{0};
  parallel_for_chunks(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(static_cast<int>(hi - lo));
      },
      {.grain = 0});
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace aic::runtime
