#include "runtime/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace aic::runtime {
namespace {

TEST(Env, SizeTParsesValue) {
  ::setenv("AIC_TEST_SIZE", "1234", 1);
  EXPECT_EQ(env_size_t("AIC_TEST_SIZE", 7), 1234u);
  ::unsetenv("AIC_TEST_SIZE");
}

TEST(Env, SizeTFallsBackWhenUnset) {
  ::unsetenv("AIC_TEST_MISSING");
  EXPECT_EQ(env_size_t("AIC_TEST_MISSING", 99), 99u);
}

TEST(Env, SizeTFallsBackOnGarbage) {
  ::setenv("AIC_TEST_GARBAGE", "12abc", 1);
  EXPECT_EQ(env_size_t("AIC_TEST_GARBAGE", 5), 5u);
  ::setenv("AIC_TEST_GARBAGE", "abc", 1);
  EXPECT_EQ(env_size_t("AIC_TEST_GARBAGE", 5), 5u);
  ::unsetenv("AIC_TEST_GARBAGE");
}

TEST(Env, StringReturnsValueOrFallback) {
  ::setenv("AIC_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("AIC_TEST_STR", "x"), "hello");
  ::unsetenv("AIC_TEST_STR");
  EXPECT_EQ(env_string("AIC_TEST_STR", "x"), "x");
}

TEST(Env, FlagRecognizesTruthyValues) {
  for (const char* value : {"1", "true", "TRUE", "on", "Yes"}) {
    ::setenv("AIC_TEST_FLAG", value, 1);
    EXPECT_TRUE(env_flag("AIC_TEST_FLAG")) << value;
  }
  for (const char* value : {"0", "false", "off", "no", ""}) {
    ::setenv("AIC_TEST_FLAG", value, 1);
    EXPECT_FALSE(env_flag("AIC_TEST_FLAG")) << value;
  }
  ::unsetenv("AIC_TEST_FLAG");
}

TEST(Env, FlagFallsBackWhenUnset) {
  ::unsetenv("AIC_TEST_FLAG");
  EXPECT_TRUE(env_flag("AIC_TEST_FLAG", true));
  EXPECT_FALSE(env_flag("AIC_TEST_FLAG", false));
}

}  // namespace
}  // namespace aic::runtime
