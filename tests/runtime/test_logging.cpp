#include "runtime/logging.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <string>

namespace aic::runtime {
namespace {

/// Pins the global log level for one test and restores it after.
class LevelGuard {
 public:
  explicit LevelGuard(LogLevel level) : saved_(log_level()) {
    set_log_level(level);
  }
  ~LevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

std::string captured_log(LogLevel level, const std::string& message) {
  testing::internal::CaptureStderr();
  log_message(level, message);
  return testing::internal::GetCapturedStderr();
}

TEST(Logging, PrefixesTimestampThreadIdAndLevel) {
  LevelGuard guard(LogLevel::kDebug);
  const std::string line = captured_log(LogLevel::kWarn, "disk full");
  // [HH:MM:SS.mmm tN LEVEL] message
  const std::regex format(
      R"(^\[\d{2}:\d{2}:\d{2}\.\d{3} t\d+ WARN\] disk full\n$)");
  EXPECT_TRUE(std::regex_match(line, format)) << "got: " << line;
}

TEST(Logging, DropsMessagesBelowLevel) {
  LevelGuard guard(LogLevel::kError);
  EXPECT_TRUE(captured_log(LogLevel::kDebug, "x").empty());
  EXPECT_TRUE(captured_log(LogLevel::kInfo, "x").empty());
  EXPECT_TRUE(captured_log(LogLevel::kWarn, "x").empty());
  EXPECT_FALSE(captured_log(LogLevel::kError, "x").empty());
}

TEST(Logging, StreamMacroEmitsOnDestruction) {
  LevelGuard guard(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  { AIC_LOG_INFO << "value=" << 42; }
  const std::string line = testing::internal::GetCapturedStderr();
  EXPECT_NE(line.find("INFO] value=42"), std::string::npos) << line;
}

TEST(Logging, ThreadIdIsStablePerThread) {
  LevelGuard guard(LogLevel::kDebug);
  const std::string a = captured_log(LogLevel::kInfo, "a");
  const std::string b = captured_log(LogLevel::kInfo, "b");
  const std::regex tid(R"( (t\d+) )");
  std::smatch ma, mb;
  ASSERT_TRUE(std::regex_search(a, ma, tid));
  ASSERT_TRUE(std::regex_search(b, mb, tid));
  EXPECT_EQ(ma[1].str(), mb[1].str());
}

}  // namespace
}  // namespace aic::runtime
