#include "runtime/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace aic::runtime {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(42);
  double total = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexHitsAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  constexpr int kN = 100'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double variance = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(5);
  constexpr int kN = 50'000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(77);
  (void)parent_copy.next_u64();  // parent consumed one draw by forking
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<std::size_t> indices(100);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  auto sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) ASSERT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng rng(3);
  std::vector<std::size_t> indices(100);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  bool moved = false;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != i) moved = true;
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace aic::runtime
