#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/context.hpp"

namespace aic::runtime {
namespace {

TEST(ThreadPool, RunsPostedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PostAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.post([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.post([&counter] { counter.fetch_add(1); });
    }
    // Destructor performs shutdown and must run the entire queue.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 199 * 200 / 2);
}

TEST(ThreadPool, ProcessPoolIsStableAcrossDefaultContexts) {
  // The process-wide pool is reached through Context now; every
  // process-default context observes the same instance.
  EXPECT_EQ(&Context::process_default().pool(),
            &Context::process_default().pool());
  EXPECT_GE(Context::process_default().pool().size(), 1u);
}

TEST(ThreadPool, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.in_worker_thread());
  auto inside = pool.submit([&pool] { return pool.in_worker_thread(); });
  EXPECT_TRUE(inside.get());
}

TEST(ThreadPool, WorkerOfOtherPoolIsNotDetected) {
  ThreadPool a(1);
  ThreadPool b(1);
  auto from_b = b.submit([&a] { return a.in_worker_thread(); });
  EXPECT_FALSE(from_b.get());
}

TEST(ThreadPool, ReentrantSubmitRunsInlineOnSizeOnePool) {
  // Before the re-entry guard this deadlocked: the sole worker blocked on
  // a future whose task sat behind it in the queue.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 21; });
    return 2 * inner.get();
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, ReentrantSubmitNestsDeeply) {
  ThreadPool pool(1);
  std::function<int(int)> countdown = [&](int depth) -> int {
    if (depth == 0) return 0;
    return 1 + pool.submit([&, depth] { return countdown(depth - 1); }).get();
  };
  auto result = pool.submit([&] { return countdown(16); });
  EXPECT_EQ(result.get(), 16);
}

TEST(ThreadPool, StatsCountExecutedAndInlinedTasks) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) pool.submit([] {}).wait();
  auto nested = pool.submit([&pool] { pool.submit([] {}).wait(); });
  nested.wait();
  pool.wait_idle();
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 11u);
  EXPECT_EQ(stats.tasks_inlined, 1u);
  EXPECT_GE(stats.peak_queue_depth, 1u);
}

TEST(ThreadPool, ResetStatsZeroesCounters) {
  ThreadPool pool(1);
  pool.submit([] {}).wait();
  pool.wait_idle();
  pool.reset_stats();
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.tasks_inlined, 0u);
  EXPECT_EQ(stats.peak_queue_depth, 0u);
}

}  // namespace
}  // namespace aic::runtime
