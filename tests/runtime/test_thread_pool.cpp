#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aic::runtime {
namespace {

TEST(ThreadPool, RunsPostedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PostAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.post([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.post([&counter] { counter.fetch_add(1); });
    }
    // Destructor performs shutdown and must run the entire queue.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 199 * 200 / 2);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

}  // namespace
}  // namespace aic::runtime
