#include "runtime/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace aic::runtime {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of the classic sequence is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats stats;
  stats.add(-5.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

}  // namespace
}  // namespace aic::runtime
