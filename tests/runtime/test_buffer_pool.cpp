#include "runtime/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/context.hpp"

namespace aic::runtime {
namespace {

TEST(BufferPool, AcquireGivesAlignedWritableBlocks) {
  BufferPool pool;
  for (const std::size_t bytes : {std::size_t{0}, std::size_t{1},
                                  std::size_t{63}, std::size_t{64},
                                  std::size_t{65}, std::size_t{1000},
                                  std::size_t{1} << 20}) {
    BufferPool::Buffer buffer = pool.acquire(bytes);
    ASSERT_TRUE(buffer);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) %
                  BufferPool::kAlignment,
              0u)
        << bytes;
    EXPECT_EQ(buffer.size(), bytes);
    EXPECT_GE(buffer.capacity(), std::max(bytes, BufferPool::kMinClassBytes));
    // Capacity is a power of two (the size class).
    EXPECT_EQ(buffer.capacity() & (buffer.capacity() - 1), 0u) << bytes;
    // The whole capacity is writable (ASan would flag an undersized slab).
    std::memset(buffer.data(), 0x5A, buffer.capacity());
  }
}

TEST(BufferPool, SizeClassReuseIsAHit) {
  BufferPool pool;
  char* first = nullptr;
  {
    BufferPool::Buffer buffer = pool.acquire(1000);
    first = buffer.data();
  }  // released back to the 1024-byte class
  // Any request landing in the same class must get the cached block back.
  BufferPool::Buffer again = pool.acquire(700);
  EXPECT_EQ(again.data(), first);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.recycled_bytes, 1024u);
}

TEST(BufferPool, DifferentClassesDoNotShareBlocks) {
  BufferPool pool;
  { BufferPool::Buffer small = pool.acquire(64); }
  BufferPool::Buffer large = pool.acquire(4096);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(BufferPool, StatsTrackCachedAndLeasedBytes) {
  BufferPool pool;
  BufferPool::Buffer held = pool.acquire(1000);  // 1024 class, leased
  { BufferPool::Buffer released = pool.acquire(3000); }  // 4096, cached
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.leased_bytes, 1024u);
  EXPECT_EQ(stats.cached_bytes, 4096u);
  EXPECT_EQ(stats.resident_bytes, 1024u + 4096u);
}

TEST(BufferPool, BudgetEvictsLeastRecentlyReleasedFirst) {
  BufferPool pool(2048);  // room for two 1024-byte blocks in the cache
  char* a_ptr = nullptr;
  char* b_ptr = nullptr;
  char* c_ptr = nullptr;
  {
    BufferPool::Buffer a = pool.acquire(1024);
    BufferPool::Buffer b = pool.acquire(1024);
    BufferPool::Buffer c = pool.acquire(1024);
    a_ptr = a.data();
    b_ptr = b.data();
    c_ptr = c.data();
    // Destruction order is c, b, a — so the release order is c, b, a and
    // c is the least recently released once a lands.
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.cached_bytes, 2048u);
  EXPECT_EQ(stats.trimmed_bytes, 1024u);
  // The two survivors come back as hits; the third is a fresh miss.
  BufferPool::Buffer x = pool.acquire(1024);
  BufferPool::Buffer y = pool.acquire(1024);
  EXPECT_EQ(pool.stats().hits, 2u);
  // LIFO reuse: the most recently released block (a) pops first.
  EXPECT_EQ(x.data(), a_ptr);
  EXPECT_EQ(y.data(), b_ptr);
  // c was evicted, so a third acquire is a fresh miss. (Its address may
  // coincidentally equal c_ptr again — the allocator can reuse freed
  // memory — so only the miss count is asserted.)
  BufferPool::Buffer z = pool.acquire(1024);
  (void)c_ptr;
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPool, ZeroBudgetCachesNothing) {
  BufferPool pool(0);
  { BufferPool::Buffer buffer = pool.acquire(512); }
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  BufferPool::Buffer again = pool.acquire(512);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPool, TrimEvictsDownToKeepBytes) {
  BufferPool pool;
  {
    // Hold both at once so two distinct slabs exist to cache.
    BufferPool::Buffer a = pool.acquire(4096);
    BufferPool::Buffer b = pool.acquire(4096);
  }
  ASSERT_EQ(pool.stats().cached_bytes, 8192u);
  pool.trim(4096);
  EXPECT_EQ(pool.stats().cached_bytes, 4096u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
}

TEST(BufferPool, BudgetFromEnvironment) {
  ::setenv("AIC_MEMPOOL_BYTES", "123456", 1);
  const BufferPool pool;
  EXPECT_EQ(pool.budget_bytes(), 123456u);
  ::unsetenv("AIC_MEMPOOL_BYTES");
}

TEST(BufferPool, BufferMayOutliveThePool) {
  BufferPool::Buffer survivor;
  {
    BufferPool pool;
    survivor = pool.acquire(256);
    std::memset(survivor.data(), 0x42, survivor.size());
  }
  // The pool is gone; the handle still owns valid memory.
  for (std::size_t i = 0; i < survivor.size(); ++i) {
    ASSERT_EQ(survivor.data()[i], 0x42);
  }
  survivor.reset();  // frees without a pool to return to
  EXPECT_FALSE(survivor);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool;
  BufferPool::Buffer a = pool.acquire(128);
  char* const data = a.data();
  BufferPool::Buffer b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move state
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(pool.stats().leased_bytes, 128u);
}

/// The archive pipeline releases buffers from pool workers while the
/// main thread acquires the next batch — acquire/release must race
/// freely (TSan covers this in the sanitizer job).
TEST(BufferPool, CrossThreadAcquireReleaseIsSafe) {
  BufferPool pool(1 << 20);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLaps = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      for (std::size_t lap = 0; lap < kLaps; ++lap) {
        BufferPool::Buffer buffer =
            pool.acquire(64 + 64 * ((t + lap) % 32));
        buffer.data()[0] = static_cast<char>(lap);
        buffer.data()[buffer.size() - 1] = static_cast<char>(t);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLaps);
  EXPECT_EQ(stats.leased_bytes, 0u);
  EXPECT_LE(stats.cached_bytes, pool.budget_bytes());
}

TEST(BufferPoolContext, DistinctContextsNeverShareBuffers) {
  Context::Options options_a;
  options_a.obs_prefix = "bp_iso_a.";
  Context::Options options_b;
  options_b.obs_prefix = "bp_iso_b.";
  const Context ctx_a{options_a};
  const Context ctx_b{options_b};
  EXPECT_NE(&ctx_a.buffer_pool(), &ctx_b.buffer_pool());
  { BufferPool::Buffer buffer = ctx_a.buffer_pool().acquire(512); }
  // Session A's traffic is invisible to session B's pool.
  EXPECT_EQ(ctx_a.buffer_pool().stats().misses, 1u);
  EXPECT_EQ(ctx_b.buffer_pool().stats().misses, 0u);
  EXPECT_EQ(ctx_b.buffer_pool().stats().cached_bytes, 0u);
}

TEST(BufferPoolContext, ContextHandleSharesOneSessionPool) {
  Context::Options options;
  options.obs_prefix = "bp_share.";
  const Context ctx{options};
  const Context copy = ctx;  // copies are the same session
  EXPECT_EQ(&ctx.buffer_pool(), &copy.buffer_pool());
}

TEST(BufferPoolContext, MetricsPublishUnderTheContextPrefix) {
  Context::Options options;
  options.obs_prefix = "bp_metrics_test.";
  const Context ctx{options};
  { BufferPool::Buffer buffer = ctx.buffer_pool().acquire(2048); }
  BufferPool::Buffer again = ctx.buffer_pool().acquire(2048);
  obs::Registry& registry = obs::Registry::global();
  EXPECT_EQ(registry.counter("bp_metrics_test.mempool.misses").value(), 1u);
  EXPECT_EQ(registry.counter("bp_metrics_test.mempool.hits").value(), 1u);
  EXPECT_EQ(registry.counter("bp_metrics_test.mempool.recycled_bytes").value(),
            2048u);
}

}  // namespace
}  // namespace aic::runtime
