#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <streambuf>
#include <string>

#include "cli/archive.hpp"
#include "data/synth.hpp"
#include "io/error.hpp"
#include "runtime/rng.hpp"

namespace aic::cli {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor test_tensor(std::uint64_t seed, std::size_t channels = 3) {
  runtime::Rng rng(seed);
  Tensor tensor(Shape::bchw(2, channels, 16, 16));
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      Tensor plane = data::smooth_field(16, 16, rng, 4, 0.5);
      data::add_gaussian_noise(plane, rng, 0.02);
      tensor.set_plane(b, c, plane);
    }
  }
  return tensor;
}

void expect_same_archive(const Archive& a, const Archive& b) {
  EXPECT_EQ(a.triangle, b.triangle);
  EXPECT_EQ(a.subdivision, b.subdivision);
  EXPECT_EQ(a.original_shape, b.original_shape);
  ASSERT_EQ(a.packed.shape(), b.packed.shape());
  ASSERT_EQ(a.packed.size_bytes(), b.packed.size_bytes());
  EXPECT_EQ(
      std::memcmp(a.packed.data().data(), b.packed.data().data(), a.packed.size_bytes()), 0);
}

/// An ostream whose streambuf cannot seek (tellp() == -1), standing in
/// for a pipe/socket sink: compress_to_stream must degrade to the
/// in-memory writer and still emit identical bytes.
class NonSeekableBuf : public std::streambuf {
 public:
  std::string bytes;

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) bytes.push_back(static_cast<char>(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    bytes.append(s, static_cast<std::size_t>(n));
    return n;
  }
};

TEST(StreamingArchive, StreamedBytesMatchInMemoryWriterAcrossGeometry) {
  const Tensor input = test_tensor(31);
  for (const char* spec : {"dctchop:cf=4,block=8", "partial:cf=4,block=8,s=2",
                           "triangle:cf=4,block=8"}) {
    for (const std::size_t chunk_bytes :
         {std::size_t{64}, std::size_t{1000}, std::size_t{64} * 1024}) {
      for (const baseline::ChunkEntropy entropy :
           {baseline::ChunkEntropy::kRaw, baseline::ChunkEntropy::kAuto}) {
        const ArchiveWriteOptions options{
            .version = 4, .chunk_bytes = chunk_bytes, .entropy = entropy};
        const std::string reference =
            compress_to_archive_bytes(input, spec, options);
        std::ostringstream stream;
        const std::size_t written =
            compress_to_stream(input, spec, stream, options);
        EXPECT_EQ(stream.str(), reference)
            << spec << " chunk_bytes=" << chunk_bytes;
        EXPECT_EQ(written, reference.size());
      }
    }
  }
}

TEST(StreamingArchive, NonSeekableSinkDegradesBitwiseIdentical) {
  const Tensor input = test_tensor(32);
  const ArchiveWriteOptions options{.version = 4, .chunk_bytes = 512};
  const std::string reference =
      compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
  NonSeekableBuf buf;
  std::ostream stream(&buf);
  ASSERT_EQ(stream.tellp(), std::streampos(-1));
  const std::size_t written =
      compress_to_stream(input, "dctchop:cf=4,block=8", stream, options);
  EXPECT_EQ(buf.bytes, reference);
  EXPECT_EQ(written, reference.size());
}

TEST(StreamingArchive, LegacyVersionsDegradeBitwiseIdentical) {
  const Tensor input = test_tensor(33, 1);
  for (const std::uint32_t version : {std::uint32_t{2}, std::uint32_t{3}}) {
    ArchiveWriteOptions options;
    options.version = version;
    const std::string reference =
        compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
    std::ostringstream stream;
    compress_to_stream(input, "dctchop:cf=4,block=8", stream, options);
    EXPECT_EQ(stream.str(), reference) << "v" << version;
  }
}

TEST(StreamingArchive, StreamReadMatchesInMemoryReader) {
  const Tensor input = test_tensor(34);
  for (const std::size_t chunk_bytes :
       {std::size_t{100}, std::size_t{4096}, std::size_t{1} << 20}) {
    const ArchiveWriteOptions options{.version = 4,
                                      .chunk_bytes = chunk_bytes};
    const std::string bytes =
        compress_to_archive_bytes(input, "partial:cf=4,block=8,s=2", options);
    const Archive reference = deserialize_archive(bytes);
    std::istringstream stream(bytes);
    const Archive streamed = decompress_from_stream(stream);
    expect_same_archive(streamed, reference);
  }
}

TEST(StreamingArchive, StreamReadHandlesLegacyVersions) {
  const Tensor input = test_tensor(35, 1);
  for (const std::uint32_t version : {std::uint32_t{2}, std::uint32_t{3}}) {
    ArchiveWriteOptions options;
    options.version = version;
    const std::string bytes =
        compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
    const Archive reference = deserialize_archive(bytes);
    std::istringstream stream(bytes);
    const Archive streamed = decompress_from_stream(stream);
    expect_same_archive(streamed, reference);
  }
}

TEST(StreamingArchive, StreamReadRejectsTruncationTyped) {
  const Tensor input = test_tensor(36, 1);
  const ArchiveWriteOptions options{.version = 4, .chunk_bytes = 256};
  const std::string bytes =
      compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 128 ? 1 : 37)) {
    std::istringstream stream(bytes.substr(0, cut));
    EXPECT_THROW((void)decompress_from_stream(stream), io::CorruptStream)
        << "cut=" << cut;
  }
}

TEST(StreamingArchive, StreamReadRejectsTrailingBytes) {
  const Tensor input = test_tensor(37, 1);
  const ArchiveWriteOptions options{.version = 4, .chunk_bytes = 256};
  const std::string bytes =
      compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
  std::istringstream stream(bytes + "x");
  EXPECT_THROW((void)decompress_from_stream(stream), io::CorruptStream);
  // The in-memory reader rejects the same way.
  EXPECT_THROW((void)deserialize_archive(bytes + "x"), io::CorruptStream);
}

/// The container must be bitwise-identical no matter how small the
/// session's BufferPool budget is — a budget of zero (cache nothing)
/// degrades throughput, never bytes.
TEST(StreamingArchive, BytesIdenticalForEveryMempoolBudget) {
  const Tensor input = test_tensor(38);
  const ArchiveWriteOptions options{.version = 4, .chunk_bytes = 512};
  const std::string reference =
      compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
  for (const char* budget : {"0", "4096", "1048576"}) {
    ::setenv("AIC_MEMPOOL_BYTES", budget, 1);
    // A fresh context resolves its pool budget from the env lazily.
    const Context ctx{Context::Options{}};
    const std::string bytes = compress_to_archive_bytes(
        input, "dctchop:cf=4,block=8", options, nullptr, ctx);
    EXPECT_EQ(bytes, reference) << "budget=" << budget;
    std::ostringstream stream;
    compress_to_stream(input, "dctchop:cf=4,block=8", stream, options,
                       nullptr, ctx);
    EXPECT_EQ(stream.str(), reference) << "streamed budget=" << budget;
    std::istringstream in(reference);
    const Archive streamed = decompress_from_stream(in, ctx);
    expect_same_archive(streamed, deserialize_archive(reference, ctx));
  }
  ::unsetenv("AIC_MEMPOOL_BYTES");
}

/// The out-param writer reuses its output string's capacity: after the
/// first call, subsequent calls of the same geometry must not grow it.
TEST(StreamingArchive, OutParamWriterReusesCapacity) {
  const Tensor input = test_tensor(39);
  const ArchiveWriteOptions options{.version = 4, .chunk_bytes = 4096};
  std::string bytes;
  compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options, nullptr,
                            Context::process_default(), bytes);
  const std::string first = bytes;
  const std::size_t capacity = bytes.capacity();
  for (int lap = 0; lap < 3; ++lap) {
    compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options, nullptr,
                              Context::process_default(), bytes);
    EXPECT_EQ(bytes, first);
    EXPECT_EQ(bytes.capacity(), capacity) << "lap " << lap;
  }
}

}  // namespace
}  // namespace aic::cli
