#include "cli/robustness_suite.hpp"

#include <gtest/gtest.h>

#include <string>

#include "cli/archive.hpp"
#include "io/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace aic::cli {
namespace {

using tensor::Shape;
using tensor::Tensor;

// The hardening contract: every mutant of every decode path either
// decodes bitwise-exactly or raises aic::io::CorruptStream. The fault
// matrix covers exhaustive header-bit flips, truncation at every byte
// boundary, seeded random flips over the whole stream, and deep field
// sweeps with recomputed CRCs.
TEST(DecodeRobustness, FaultMatrixIsClean) {
  for (const auto& [name, report] : run_robustness_suite()) {
    std::string detail = name + ": " + report.summary();
    for (const std::string& failure : report.failures) {
      detail += "\n  " + failure;
    }
    EXPECT_TRUE(report.ok()) << detail;
    // The matrix must actually exercise the target, and corruption must
    // actually be detected (an always-succeeding decode would be a
    // vacuous pass).
    EXPECT_GT(report.mutants, 100u) << name;
    EXPECT_GT(report.rejected, 0u) << name;
  }
}

TEST(DecodeRobustness, MatrixTargetsCoverEveryFamily) {
  bool archive = false, v2 = false, huffman = false, rle = false,
       bitstream = false;
  for (const RobustnessTarget& target : robustness_targets()) {
    if (target.corpus_family == "archive") archive = true;
    if (target.name.find("v2") != std::string::npos) v2 = true;
    if (target.corpus_family == "huffman") huffman = true;
    if (target.corpus_family == "rle") rle = true;
    if (target.corpus_family == "bitstream") bitstream = true;
  }
  EXPECT_TRUE(archive && v2 && huffman && rle && bitstream);
}

TEST(DecodeRobustness, CorruptDecodeBumpsObsCounters) {
  obs::Counter& total = obs::Registry::global().counter("io.decode_error");
  obs::Counter& by_kind =
      obs::Registry::global().counter("io.decode_error.checksum_mismatch");
  const std::uint64_t total_before = total.value();
  const std::uint64_t kind_before = by_kind.value();

  runtime::Rng rng(8);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  std::string bytes = serialize_archive(
      compress_to_archive(input, 4, 8, core::TransformKind::kDct2, false));
  bytes[bytes.size() - 1] ^= 0x01;
  EXPECT_THROW(deserialize_archive(bytes), io::CorruptStream);

  EXPECT_EQ(total.value(), total_before + 1);
  EXPECT_EQ(by_kind.value(), kind_before + 1);
}

// Every typed rejection must hand exactly one record to the flight
// recorder while it is armed: obs.flight_dumps delta == sum of the
// matrix's `rejected` counts. A mismatch means some decode path throws
// CorruptStream without funnelling through io::raise_corrupt(), so that
// rejection would be invisible to crash-dump triage.
TEST(DecodeRobustness, EveryRejectionProducesOneFlightRecord) {
  obs::flight::Options options;
  options.dump_on_corrupt = false;  // memory-only: no files per mutant
  options.signals = false;
  options.terminate = false;
  const bool armed_here = obs::flight::arm(options);
  const std::uint64_t dumps_before = obs::flight::dumps();
  const std::uint64_t counter_before =
      obs::Registry::global().counter("obs.flight_dumps").value();

  std::uint64_t total_rejected = 0;
  for (const auto& [name, report] : run_robustness_suite()) {
    (void)name;
    total_rejected += report.rejected;
  }

  EXPECT_GT(total_rejected, 0u);
  EXPECT_EQ(obs::flight::dumps() - dumps_before, total_rejected);
  EXPECT_EQ(
      obs::Registry::global().counter("obs.flight_dumps").value() -
          counter_before,
      total_rejected);
  if (armed_here) obs::flight::disarm();
}

}  // namespace
}  // namespace aic::cli
