#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/archive.hpp"
#include "io/error.hpp"
#include "io/tensor_io.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::cli {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    // Per-process suffix: ctest schedules each discovered test as its
    // own process, and concurrent tests sharing one fixed directory
    // remove_all each other's files under `ctest -j`.
    path = std::filesystem::temp_directory_path() /
           ("aic_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

TEST(Cli, NoArgsPrintsUsage) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), 2);
  EXPECT_NE(err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenWritesLoadableTensor) {
  TempDir dir;
  const std::string path = dir.file("t.aict");
  std::string out;
  ASSERT_EQ(run({"gen", path, "--batch", "2", "--channels", "1", "--res",
                 "16"},
                &out),
            0);
  const Tensor tensor = io::load_tensor(path);
  EXPECT_EQ(tensor.shape(), Shape::bchw(2, 1, 16, 16));
  EXPECT_NE(out.find("wrote"), std::string::npos);
}

TEST(Cli, CompressDecompressRoundTrip) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  const std::string restored = dir.file("restored.aict");
  ASSERT_EQ(run({"gen", raw, "--res", "16", "--channels", "1"}), 0);
  ASSERT_EQ(run({"compress", raw, packed, "--cf", "8"}), 0);
  ASSERT_EQ(run({"decompress", packed, restored}), 0);
  // CF=8 is near-lossless: the files agree to fp32 noise.
  const Tensor a = io::load_tensor(raw);
  const Tensor b = io::load_tensor(restored);
  EXPECT_TRUE(tensor::allclose(a, b, 1e-4));
}

TEST(Cli, CompressedFileIsSmaller) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  ASSERT_EQ(run({"gen", raw, "--res", "32"}), 0);
  ASSERT_EQ(run({"compress", raw, packed, "--cf", "2"}), 0);
  EXPECT_LT(std::filesystem::file_size(packed),
            std::filesystem::file_size(raw) / 8);
}

TEST(Cli, TriangleFlagChangesCodec) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  ASSERT_EQ(run({"gen", raw, "--res", "16", "--channels", "1"}), 0);
  ASSERT_EQ(run({"compress", raw, packed, "--cf", "4", "--triangle"}), 0);
  const Archive archive = load_archive(packed);
  EXPECT_TRUE(archive.triangle);
  std::string info;
  ASSERT_EQ(run({"info", packed}, &info), 0);
  EXPECT_NE(info.find("dct+chop+sg"), std::string::npos);
}

TEST(Cli, InfoOnPlainTensor) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  ASSERT_EQ(run({"gen", raw, "--res", "16"}), 0);
  std::string out;
  ASSERT_EQ(run({"info", raw}, &out), 0);
  EXPECT_NE(out.find("tensor: shape=[4, 3, 16, 16]"), std::string::npos);
}

TEST(Cli, EvalReportsRateDistortion) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  ASSERT_EQ(run({"gen", raw, "--res", "16"}), 0);
  std::string out;
  ASSERT_EQ(run({"eval", raw, "--cf", "4"}, &out), 0);
  EXPECT_NE(out.find("CR=4"), std::string::npos);
  EXPECT_NE(out.find("PSNR="), std::string::npos);
}

TEST(Cli, AlternativeTransformAccepted) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  ASSERT_EQ(run({"gen", raw, "--res", "16", "--channels", "1"}), 0);
  ASSERT_EQ(
      run({"compress", raw, packed, "--cf", "4", "--transform", "wht"}), 0);
  const Archive archive = load_archive(packed);
  EXPECT_EQ(archive.config.transform, core::TransformKind::kWalshHadamard);
  // And the archive round-trips through its own codec.
  const Tensor restored = make_archive_codec(archive)->decompress(
      archive.packed, archive.original_shape);
  EXPECT_EQ(restored.shape(), archive.original_shape);
}

TEST(Cli, BadTransformRejected) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  ASSERT_EQ(run({"gen", raw, "--res", "16"}), 0);
  std::string err;
  EXPECT_EQ(run({"eval", raw, "--transform", "fft"}, nullptr, &err), 1);
  // The flag synthesizes a factory spec, so the diagnostic is the
  // factory's: parameter "transform" expects one of dct, wht, dst2.
  EXPECT_NE(err.find("expects one of dct, wht, dst2"), std::string::npos);
}

TEST(Cli, CodecSpecFlagSelectsAnyRegisteredCodec) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  ASSERT_EQ(run({"gen", raw, "--res", "16"}), 0);
  std::string out;
  ASSERT_EQ(run({"eval", raw, "--codec", "zfp:rate=8"}, &out), 0);
  EXPECT_NE(out.find("CR=4"), std::string::npos);
  // Bad specs surface the factory diagnostic verbatim.
  std::string err;
  EXPECT_EQ(run({"eval", raw, "--codec", "nope:cf=4"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown codec \"nope\""), std::string::npos);
}

TEST(Cli, CompressRejectsNonArchivableCodec) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  ASSERT_EQ(run({"gen", raw, "--res", "16"}), 0);
  std::string err;
  EXPECT_EQ(run({"compress", raw, packed, "--codec", "zfp:rate=8"}, nullptr,
                &err),
            1);
  EXPECT_NE(err.find("no archive representation"), std::string::npos);
}

TEST(Cli, CodecsCommandListsRegisteredKinds) {
  std::string out;
  ASSERT_EQ(run({"codecs"}), 0);
  ASSERT_EQ(run({"codecs"}, &out), 0);
  EXPECT_NE(out.find("dctchop"), std::string::npos);
  EXPECT_NE(out.find("partial"), std::string::npos);
  EXPECT_NE(out.find("triangle"), std::string::npos);
  EXPECT_NE(out.find("zfp"), std::string::npos);
}

TEST(Cli, MissingFileIsGracefulError) {
  std::string err;
  EXPECT_EQ(run({"info", "/nonexistent/nope.aict"}, nullptr, &err), 1);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST(Cli, MissingFlagValueIsGracefulError) {
  std::string err;
  EXPECT_EQ(run({"eval", "x.aict", "--cf"}, nullptr, &err), 1);
  EXPECT_NE(err.find("missing value"), std::string::npos);
}

TEST(Cli, NonNumericFlagValueNamesTheFlag) {
  // std::stoull used to pass garbage through (or die on out-of-range);
  // the diagnostic must name the offending key and value.
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  ASSERT_EQ(run({"gen", raw, "--res", "16"}), 0);
  for (const std::string bad : {"abc", "4x", "-3", "99999999999999999999"}) {
    std::string err;
    EXPECT_EQ(run({"eval", raw, "--cf", bad}, nullptr, &err), 1) << bad;
    EXPECT_NE(err.find("flag --cf expects a non-negative integer"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find(bad), std::string::npos) << err;
  }
}

TEST(Cli, VerifyAcceptsIntactArchive) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  ASSERT_EQ(run({"gen", raw, "--res", "16", "--channels", "1"}), 0);
  ASSERT_EQ(run({"compress", raw, packed, "--cf", "4"}), 0);
  std::string out;
  ASSERT_EQ(run({"verify", packed}, &out), 0);
  EXPECT_NE(out.find("ok: codec="), std::string::npos);
}

TEST(Cli, VerifyRejectsFlippedBit) {
  TempDir dir;
  const std::string raw = dir.file("raw.aict");
  const std::string packed = dir.file("packed.aicz");
  ASSERT_EQ(run({"gen", raw, "--res", "16", "--channels", "1"}), 0);
  ASSERT_EQ(run({"compress", raw, packed, "--cf", "4"}), 0);
  // Flip one payload bit on disk; the v3 CRC must catch it.
  std::fstream file(packed,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  file.seekp(size - 5);
  char byte;
  file.seekg(size - 5);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(size - 5);
  file.write(&byte, 1);
  file.close();
  std::string err;
  EXPECT_EQ(run({"verify", packed}, nullptr, &err), 1);
  EXPECT_NE(err.find("corrupt stream"), std::string::npos) << err;
}

TEST(Archive, SerializeDeserializeRoundTrip) {
  runtime::Rng rng(1);
  const Tensor input = Tensor::uniform(Shape::bchw(2, 1, 16, 16), rng);
  const Archive archive = compress_to_archive(
      input, 4, 8, core::TransformKind::kDct2, false);
  const Archive back = deserialize_archive(serialize_archive(archive));
  EXPECT_EQ(back.original_shape, archive.original_shape);
  EXPECT_EQ(back.config.cf, 4u);
  EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0));
}

TEST(Archive, CorruptHeaderRejected) {
  runtime::Rng rng(2);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const Archive archive = compress_to_archive(
      input, 4, 8, core::TransformKind::kDct2, false);
  std::string bytes = serialize_archive(archive);
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_archive(bytes), std::runtime_error);
}

TEST(Archive, PayloadHeaderMismatchRejected) {
  runtime::Rng rng(3);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  Archive archive = compress_to_archive(input, 4, 8,
                                        core::TransformKind::kDct2, false);
  archive.config.cf = 2;  // header now disagrees with the payload shape
  EXPECT_THROW(deserialize_archive(serialize_archive(archive)),
               std::runtime_error);
}

TEST(Archive, LegacyV2StreamStillRoundTrips) {
  runtime::Rng rng(4);
  const Tensor input = Tensor::uniform(Shape::bchw(2, 1, 16, 16), rng);
  const Archive archive = compress_to_archive(
      input, 4, 8, core::TransformKind::kDct2, false);
  const std::string v2 = serialize_archive(archive, 2);
  const std::string v3 = serialize_archive(archive, 3);
  // v2 is the pre-CRC layout: 12 bytes shorter, different version word.
  EXPECT_EQ(v2.size() + 12, v3.size());
  const Archive back = deserialize_archive(v2);
  EXPECT_EQ(back.original_shape, archive.original_shape);
  EXPECT_EQ(back.config.cf, archive.config.cf);
  EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0));
}

TEST(Archive, TriangleAndPartialKindsRoundTrip) {
  runtime::Rng rng(5);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  for (const std::string spec :
       {"triangle:cf=4,block=8", "partial:cf=4,block=8,s=2"}) {
    const Archive archive = compress_to_archive(input, spec);
    const Archive back = deserialize_archive(serialize_archive(archive));
    EXPECT_EQ(back.triangle, archive.triangle) << spec;
    EXPECT_EQ(back.subdivision, archive.subdivision) << spec;
    EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0)) << spec;
  }
}

TEST(Archive, UnsupportedVersionNamesFoundAndSupported) {
  runtime::Rng rng(6);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  std::string bytes = serialize_archive(compress_to_archive(
      input, 4, 8, core::TransformKind::kDct2, false));
  bytes[4] = 7;  // version word
  try {
    deserialize_archive(bytes);
    FAIL() << "version 7 accepted";
  } catch (const io::CorruptStream& error) {
    EXPECT_EQ(error.kind(), io::CorruptKind::kBadVersion);
    EXPECT_NE(std::string(error.what()).find("found version 7"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("supported versions 2..4"),
              std::string::npos);
  }
}

TEST(Archive, FlippedPayloadBitFailsChecksum) {
  runtime::Rng rng(7);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  std::string bytes = serialize_archive(compress_to_archive(
      input, 4, 8, core::TransformKind::kDct2, false));
  bytes[bytes.size() - 3] ^= 0x04;
  try {
    deserialize_archive(bytes);
    FAIL() << "corrupted payload accepted";
  } catch (const io::CorruptStream& error) {
    EXPECT_EQ(error.kind(), io::CorruptKind::kChecksumMismatch);
  }
}

}  // namespace
}  // namespace aic::cli
