#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/chunk_entropy.hpp"
#include "cli/archive.hpp"
#include "io/checksum.hpp"
#include "io/error.hpp"
#include "obs/metrics.hpp"
#include "runtime/context.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace aic::cli {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor seed_input(std::size_t batch, std::size_t channels, std::size_t res,
                  std::uint64_t seed = 7) {
  runtime::Rng rng(seed);
  return Tensor::uniform(Shape::bchw(batch, channels, res, res), rng);
}

std::uint64_t counter_value(const std::string& name) {
  for (const auto& [key, value] : obs::Registry::global().counters()) {
    if (key == name) return value;
  }
  return 0;
}

/// Patches `width` bytes at `field_offset` inside the v4 header and
/// recomputes the header CRC, so structural validation (not the
/// checksum) is what the decoder must reject the mutant with.
std::string patch_v4_header(const std::string& bytes,
                            std::size_t field_offset, const void* value,
                            std::size_t width) {
  constexpr std::size_t kHeaderOffset = 16;
  std::string out = bytes;
  std::memcpy(out.data() + kHeaderOffset + field_offset, value, width);
  std::uint32_t header_len;
  std::memcpy(&header_len, out.data() + 8, sizeof(header_len));
  const std::uint32_t crc = io::crc32c(out.data() + kHeaderOffset, header_len);
  std::memcpy(out.data() + 12, &crc, sizeof(crc));
  return out;
}

io::CorruptKind decode_kind(const std::string& bytes) {
  try {
    (void)deserialize_archive(bytes);
  } catch (const io::CorruptStream& error) {
    return error.kind();
  }
  ADD_FAILURE() << "mutant decoded cleanly";
  return io::CorruptKind::kTruncated;
}

// ---------------------------------------------------------------------------
// Determinism across pool sizes

TEST(ParallelPipeline, ArchiveBytesIdenticalAcrossPoolSizes) {
  const Tensor input = seed_input(2, 3, 32);
  const Archive archive = compress_to_archive(input, "dctchop:cf=4,block=8");
  const ArchiveWriteOptions options{.chunk_bytes = 1024,
                                    .entropy = baseline::ChunkEntropy::kAuto};

  // Sessions with private pools of different sizes, instead of resizing
  // the process pool under everyone's feet.
  const auto session = [](std::size_t threads) {
    Context::Options ctx_options;
    ctx_options.threads = threads;
    ctx_options.own_pool = true;
    return Context(ctx_options);
  };
  const Context single = session(1);
  const std::string reference = serialize_archive(archive, options, single);
  const std::string fused_reference = compress_to_archive_bytes(
      input, "dctchop:cf=4,block=8", options, nullptr, single);

  const std::size_t hw = std::thread::hardware_concurrency();
  for (std::size_t pool_size : {std::size_t{1}, std::size_t{4}, hw}) {
    const Context ctx = session(pool_size);
    EXPECT_EQ(serialize_archive(archive, options, ctx), reference)
        << "unfused, pool=" << pool_size;
    EXPECT_EQ(compress_to_archive_bytes(input, "dctchop:cf=4,block=8",
                                        options, nullptr, ctx),
              fused_reference)
        << "fused, pool=" << pool_size;
    // Decode is chunk-parallel too; the restored tensor must be exact.
    const Archive back = deserialize_archive(reference, ctx);
    EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0))
        << "decode, pool=" << pool_size;
  }
}

TEST(ParallelPipeline, FusedMatchesUnfusedBitwise) {
  // Multi-plane (plane-group overlap active) and single-plane (overlap
  // degrades to transform-then-encode) must both match the two-phase
  // path byte for byte.
  const std::pair<std::size_t, std::size_t> plane_shapes[] = {{4, 3}, {1, 1}};
  for (const auto& [batch, channels] : plane_shapes) {
    const Tensor input = seed_input(batch, channels, 32);
    for (const char* spec : {"dctchop:cf=4,block=8", "partial:cf=4,block=8,s=2",
                             "triangle:cf=4,block=8"}) {
      const ArchiveWriteOptions options{.chunk_bytes = 2048};
      const std::string unfused = serialize_archive(
          compress_to_archive(input, spec), options);
      const std::string fused =
          compress_to_archive_bytes(input, spec, options);
      EXPECT_EQ(fused, unfused) << spec << " b=" << batch
                                << " c=" << channels;
    }
  }
}

// ---------------------------------------------------------------------------
// Chunk geometry edges

TEST(ParallelPipeline, ChunkBoundaryEdgesRoundTrip) {
  const Tensor input = seed_input(1, 1, 32);
  const Archive archive = compress_to_archive(input, "dctchop:cf=4,block=8");
  // Payload is 44 header + 1024 data = 1068 bytes.
  const std::size_t payload_len = 44 + archive.packed.size_bytes();
  ASSERT_EQ(payload_len, 1068u);

  const struct {
    const char* label;
    std::size_t chunk_bytes;
    std::size_t expected_chunks;
  } cases[] = {
      {"payload smaller than one chunk", 1 << 20, 1},
      {"exact single chunk", 1068, 1},
      {"exact multiple", 267, 4},
      {"ragged tail", 500, 3},
      {"one-byte chunks", 1, 1068},
  };
  for (const auto& c : cases) {
    const ArchiveWriteOptions options{.chunk_bytes = c.chunk_bytes};
    const std::string bytes = serialize_archive(archive, options);
    const ArchiveProbe probe = probe_archive(bytes);
    EXPECT_EQ(probe.version, 4u) << c.label;
    EXPECT_EQ(probe.chunk_count, c.expected_chunks) << c.label;
    EXPECT_EQ(probe.payload_len, payload_len) << c.label;
    const Archive back = deserialize_archive(bytes);
    EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0))
        << c.label;
  }
}

// ---------------------------------------------------------------------------
// Cross-version compatibility

TEST(ParallelPipeline, CrossVersionDecodeAgrees) {
  const Tensor input = seed_input(1, 2, 16);
  const Archive archive = compress_to_archive(input, "partial:cf=4,block=8,s=2");
  for (std::uint32_t version : {2u, 3u, 4u}) {
    const std::string bytes = serialize_archive(archive, version);
    EXPECT_EQ(probe_archive(bytes).version, version);
    const Archive back = deserialize_archive(bytes);
    EXPECT_EQ(back.subdivision, archive.subdivision) << "v" << version;
    EXPECT_EQ(back.original_shape, archive.original_shape) << "v" << version;
    EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0))
        << "v" << version;
  }
}

// ---------------------------------------------------------------------------
// Entropy modes

TEST(ParallelPipeline, EntropyModesRoundTripAndAutoNeverLoses) {
  const Tensor input = seed_input(1, 1, 32);
  const Archive archive = compress_to_archive(input, "dctchop:cf=4,block=8");
  std::size_t raw_size = 0;
  for (const baseline::ChunkEntropy entropy :
       {baseline::ChunkEntropy::kRaw, baseline::ChunkEntropy::kPacked,
        baseline::ChunkEntropy::kHuffman, baseline::ChunkEntropy::kAuto}) {
    const ArchiveWriteOptions options{.chunk_bytes = 256, .entropy = entropy};
    const std::string bytes = serialize_archive(archive, options);
    if (entropy == baseline::ChunkEntropy::kRaw) raw_size = bytes.size();
    const Archive back = deserialize_archive(bytes);
    EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0))
        << baseline::chunk_entropy_name(entropy);
    if (entropy == baseline::ChunkEntropy::kAuto) {
      // Auto picks the per-chunk minimum, so it can never exceed raw.
      EXPECT_LE(bytes.size(), raw_size);
    }
  }
}

TEST(ParallelPipeline, HuffmanEncodeStagesWithoutReallocation) {
  // The BitWriter is pre-sized from the exact encoded-bits accounting;
  // any mid-encode growth is a regression the counter must expose.
  const Tensor input = seed_input(1, 1, 32, 11);
  const Archive archive = compress_to_archive(input, "dctchop:cf=4,block=8");
  const std::uint64_t before = counter_value("pipeline.encode_reallocs");
  const ArchiveWriteOptions options{
      .chunk_bytes = 128, .entropy = baseline::ChunkEntropy::kHuffman};
  const std::string bytes = serialize_archive(archive, options);
  EXPECT_EQ(counter_value("pipeline.encode_reallocs"), before);
  const Archive back = deserialize_archive(bytes);
  EXPECT_TRUE(tensor::allclose(back.packed, archive.packed, 0.0));
}

// ---------------------------------------------------------------------------
// Typed rejection of corrupted chunked containers

TEST(ParallelPipeline, MutatedChunkTableIsRejectedTyped) {
  const Tensor input = seed_input(1, 1, 16);
  const ArchiveWriteOptions options{.chunk_bytes = 100};
  const std::string bytes = compress_to_archive_bytes(
      input, "dctchop:cf=4,block=8", options);
  ASSERT_GT(probe_archive(bytes).chunk_count, 1u);

  // Header field offsets past the 44 shared bytes (see cli/archive.hpp).
  constexpr std::size_t kPayloadLenOff = 44;
  constexpr std::size_t kChunkBytesOff = 52;
  constexpr std::size_t kChunkCountOff = 60;
  constexpr std::size_t kTableOff = 64;

  const std::uint64_t zero64 = 0;
  EXPECT_EQ(decode_kind(patch_v4_header(bytes, kChunkBytesOff, &zero64, 8)),
            io::CorruptKind::kBadHeaderField);
  const std::uint64_t huge = std::uint64_t{1} << 40;
  EXPECT_EQ(decode_kind(patch_v4_header(bytes, kChunkBytesOff, &huge, 8)),
            io::CorruptKind::kBadHeaderField);
  const std::uint64_t payload_lie = 1;
  EXPECT_EQ(decode_kind(patch_v4_header(bytes, kPayloadLenOff,
                                        &payload_lie, 8)),
            io::CorruptKind::kPayloadMismatch);
  const std::uint32_t count_lie = 1;
  EXPECT_EQ(decode_kind(patch_v4_header(bytes, kChunkCountOff,
                                        &count_lie, 4)),
            io::CorruptKind::kBadHeaderField);
  // Chunk 0 claims a zero-length encoding: structurally impossible.
  EXPECT_EQ(decode_kind(patch_v4_header(bytes, kTableOff, &zero64, 8)),
            io::CorruptKind::kPayloadMismatch);
  // A table bit flip without the CRC fixup trips the header checksum.
  {
    std::string mutant = bytes;
    mutant[16 + kTableOff] ^= 0x01;
    EXPECT_EQ(decode_kind(mutant), io::CorruptKind::kChecksumMismatch);
  }
}

TEST(ParallelPipeline, PerChunkCrcCatchesEncodedRegionFlips) {
  const Tensor input = seed_input(1, 1, 16);
  const ArchiveWriteOptions options{.chunk_bytes = 100};
  const std::string bytes =
      compress_to_archive_bytes(input, "dctchop:cf=4,block=8", options);
  std::uint32_t header_len;
  std::memcpy(&header_len, bytes.data() + 8, sizeof(header_len));
  const std::size_t encoded_begin = 16 + header_len;
  for (const std::size_t offset :
       {encoded_begin, (encoded_begin + bytes.size()) / 2,
        bytes.size() - 1}) {
    std::string mutant = bytes;
    mutant[offset] ^= 0x40;
    EXPECT_EQ(decode_kind(mutant), io::CorruptKind::kChecksumMismatch)
        << "flip at " << offset;
  }
}

TEST(ParallelPipeline, ChunkExpansionBoundRejectsHostileRatios) {
  // A one-byte encoded chunk may legitimately expand to at most
  // 8x + 64 plain bytes; anything beyond is rejected before allocation.
  EXPECT_TRUE(baseline::chunk_expansion_ok(1, 72));
  EXPECT_FALSE(baseline::chunk_expansion_ok(1, 73));
  std::vector<char> out(80);
  try {
    baseline::decode_chunk(std::string_view("\0", 1), 80, out.data());
    FAIL() << "hostile expansion accepted";
  } catch (const io::CorruptStream& error) {
    EXPECT_EQ(error.kind(), io::CorruptKind::kPayloadMismatch);
  }
}

TEST(ParallelPipeline, TruncatedChunkedArchiveIsRejected) {
  const Tensor input = seed_input(1, 1, 16);
  const std::string bytes = compress_to_archive_bytes(
      input, "dctchop:cf=4,block=8", {.chunk_bytes = 100});
  for (const double fraction : {0.3, 0.7, 0.99}) {
    const std::string cut =
        bytes.substr(0, static_cast<std::size_t>(
                            static_cast<double>(bytes.size()) * fraction));
    EXPECT_THROW((void)deserialize_archive(cut), io::CorruptStream)
        << "fraction " << fraction;
  }
}

}  // namespace
}  // namespace aic::cli
