#include "io/mapped_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "cli/archive.hpp"
#include "data/synth.hpp"
#include "io/error.hpp"
#include "io/tensor_io.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::io {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("aic_mapped_file_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// RAII AIC_NO_MMAP=1: forces the heap-read fallback for one scope.
struct ForceHeapRead {
  ForceHeapRead() { ::setenv("AIC_NO_MMAP", "1", 1); }
  ~ForceHeapRead() { ::unsetenv("AIC_NO_MMAP"); }
};

Tensor test_tensor(std::uint64_t seed) {
  runtime::Rng rng(seed);
  Tensor tensor(Shape::bchw(1, 2, 16, 16));
  for (std::size_t c = 0; c < 2; ++c) {
    Tensor plane = data::smooth_field(16, 16, rng, 4, 0.5);
    tensor.set_plane(0, c, plane);
  }
  return tensor;
}

TEST(MappedFile, MapsARegularFile) {
  TempDir dir;
  const std::string path = dir.file("regular.bin");
  const std::string contents = "mapped file contents \x00\x01\x02 with nuls";
  write_file(path, contents);
  const MappedFile file(path);
  EXPECT_EQ(file.view(), std::string_view(contents));
  EXPECT_EQ(file.size(), contents.size());
#ifndef _WIN32
  EXPECT_TRUE(file.mapped());
#endif
}

TEST(MappedFile, EmptyFileYieldsEmptyView) {
  TempDir dir;
  const std::string path = dir.file("empty.bin");
  write_file(path, "");
  const MappedFile file(path);
  EXPECT_TRUE(file.view().empty());
  EXPECT_FALSE(file.mapped());  // nothing to map
}

TEST(MappedFile, MissingFileThrows) {
  TempDir dir;
  EXPECT_THROW(MappedFile(dir.file("does_not_exist.bin")),
               std::runtime_error);
}

TEST(MappedFile, EnvEscapeHatchForcesHeapFallback) {
  TempDir dir;
  const std::string path = dir.file("fallback.bin");
  write_file(path, "same bytes either way");
  ForceHeapRead force;
  const MappedFile file(path);
  EXPECT_FALSE(file.mapped());
  EXPECT_EQ(file.view(), std::string_view("same bytes either way"));
}

TEST(MappedFile, MoveTransfersTheMapping) {
  TempDir dir;
  const std::string path = dir.file("moved.bin");
  write_file(path, "movable");
  MappedFile a(path);
  const MappedFile b(std::move(a));
  EXPECT_EQ(b.view(), std::string_view("movable"));
  EXPECT_TRUE(a.view().empty());  // NOLINT(bugprone-use-after-move)
}

/// The memory-layer acceptance bar: decoding an archive through the mmap
/// path and through the heap-read fallback must produce bitwise-identical
/// tensors (and match the all-in-memory decoder).
TEST(MappedFile, MmapAndHeapArchiveDecodesAreBitwiseIdentical) {
  TempDir dir;
  const std::string path = dir.file("parity.aicz");
  const Tensor input = test_tensor(21);
  const std::string archive_bytes =
      cli::compress_to_archive_bytes(input, "dctchop:cf=4,block=8");
  write_file(path, archive_bytes);

  const cli::Archive reference = cli::deserialize_archive(archive_bytes);

  cli::Archive via_mmap = [&] {
    const MappedFile file(path);
    return cli::deserialize_archive(file.view());
  }();
  cli::Archive via_heap = [&] {
    ForceHeapRead force;
    const MappedFile file(path);
    EXPECT_FALSE(file.mapped());
    return cli::deserialize_archive(file.view());
  }();

  for (const cli::Archive* decoded : {&via_mmap, &via_heap}) {
    EXPECT_EQ(decoded->original_shape, reference.original_shape);
    ASSERT_EQ(decoded->packed.shape(), reference.packed.shape());
    ASSERT_EQ(decoded->packed.size_bytes(), reference.packed.size_bytes());
    EXPECT_EQ(std::memcmp(decoded->packed.data().data(),
                          reference.packed.data().data(),
                          reference.packed.size_bytes()),
              0);
  }
}

/// load_archive consumes the mapping directly; the result must match the
/// in-memory decode of the same bytes.
TEST(MappedFile, LoadArchiveMatchesInMemoryDecode) {
  TempDir dir;
  const std::string path = dir.file("load.aicz");
  const Tensor input = test_tensor(22);
  const std::string archive_bytes =
      cli::compress_to_archive_bytes(input, "triangle:cf=4,block=8");
  write_file(path, archive_bytes);
  const cli::Archive loaded = cli::load_archive(path);
  const cli::Archive reference = cli::deserialize_archive(archive_bytes);
  ASSERT_EQ(loaded.packed.shape(), reference.packed.shape());
  EXPECT_EQ(std::memcmp(loaded.packed.data().data(), reference.packed.data().data(),
                        reference.packed.size_bytes()),
            0);
}

/// A file shorter than its header promises must come back as a typed
/// CorruptStream (never a read past the mapping): sweep truncations of a
/// real archive across both the mmap and heap read paths.
TEST(MappedFile, TruncatedArchiveSweepRejectsTyped) {
  TempDir dir;
  const std::string path = dir.file("truncated.aicz");
  const Tensor input = test_tensor(23);
  const std::string archive_bytes =
      cli::compress_to_archive_bytes(input, "dctchop:cf=4,block=8");

  const auto decode_file = [&] {
    const MappedFile file(path);
    return cli::deserialize_archive(file.view());
  };

  // Every boundary of the fixed preamble + header region, then strides
  // through the encoded chunks.
  for (std::size_t cut = 0; cut < archive_bytes.size();
       cut += (cut < 128 ? 1 : 41)) {
    write_file(path, std::string_view(archive_bytes).substr(0, cut));
    EXPECT_THROW(decode_file(), CorruptStream) << "cut=" << cut;
  }
  {
    ForceHeapRead force;
    for (std::size_t cut : {std::size_t{0}, std::size_t{15}, std::size_t{64},
                            archive_bytes.size() - 1}) {
      write_file(path, std::string_view(archive_bytes).substr(0, cut));
      EXPECT_THROW(decode_file(), CorruptStream) << "heap cut=" << cut;
    }
  }
  // The untruncated file still decodes.
  write_file(path, archive_bytes);
  EXPECT_NO_THROW(decode_file());
}

}  // namespace
}  // namespace aic::io
