#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/table.hpp"

namespace aic::io {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("|--"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::num(2.0, 4), "2");
}

TEST(Table, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Csv, BasicSerialization) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, QuotesSpecialCells) {
  CsvWriter csv({"text"});
  csv.add_row({"hello, world"});
  csv.add_row({"say \"hi\""});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
}

TEST(Csv, SaveWritesFile) {
  CsvWriter csv({"h"});
  csv.add_row({"v"});
  const std::string path = "/tmp/aic_test_csv.csv";
  csv.save(path);
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), "h\nv\n");
  std::remove(path.c_str());
}

TEST(Csv, SaveToInvalidPathThrows) {
  CsvWriter csv({"h"});
  EXPECT_THROW(csv.save("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace aic::io
