#include "io/tensor_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/dct_chop.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::io {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(TensorIo, InMemoryRoundTripAllRanks) {
  runtime::Rng rng(1);
  const Tensor cases[] = {
      Tensor(Shape::scalar(), {3.5f}),
      Tensor::uniform(Shape::vector(7), rng),
      Tensor::uniform(Shape::matrix(5, 3), rng),
      Tensor::uniform(Shape({2, 3, 4}), rng),
      Tensor::uniform(Shape::bchw(2, 3, 4, 5), rng),
  };
  for (const Tensor& t : cases) {
    const Tensor back = deserialize_tensor(serialize_tensor(t));
    EXPECT_EQ(back.shape(), t.shape());
    EXPECT_TRUE(tensor::allclose(back, t, 0.0)) << t.shape().to_string();
  }
}

TEST(TensorIo, PreservesExactBitPatterns) {
  // Including negative zero, subnormals and extreme magnitudes.
  const Tensor t(Shape::vector(4), {-0.0f, 1e-42f, 3.4e38f, -1.17e-38f});
  const Tensor back = deserialize_tensor(serialize_tensor(t));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.at(i)),
              std::bit_cast<std::uint32_t>(t.at(i)));
  }
}

TEST(TensorIo, FileRoundTrip) {
  runtime::Rng rng(2);
  const Tensor t = Tensor::uniform(Shape::bchw(1, 2, 8, 8), rng);
  const std::string path = "/tmp/aic_tensor_io_test.aict";
  save_tensor(t, path);
  const Tensor back = load_tensor(path);
  EXPECT_TRUE(tensor::allclose(back, t, 0.0));
  std::remove(path.c_str());
}

TEST(TensorIo, RejectsBadMagic) {
  EXPECT_THROW(deserialize_tensor("NOPE0000"), std::runtime_error);
  EXPECT_THROW(deserialize_tensor(""), std::runtime_error);
}

TEST(TensorIo, RejectsTruncatedStream) {
  const Tensor t = Tensor::iota(Shape::matrix(4, 4));
  std::string bytes = serialize_tensor(t);
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(deserialize_tensor(bytes), std::runtime_error);
}

TEST(TensorIo, RejectsTrailingGarbage) {
  const Tensor t = Tensor::iota(Shape::vector(3));
  std::string bytes = serialize_tensor(t);
  bytes += "xx";
  EXPECT_THROW(deserialize_tensor(bytes), std::runtime_error);
}

TEST(TensorIo, RejectsUnsupportedVersion) {
  const Tensor t = Tensor::iota(Shape::vector(1));
  std::string bytes = serialize_tensor(t);
  bytes[4] = 99;  // corrupt the version field
  EXPECT_THROW(deserialize_tensor(bytes), std::runtime_error);
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(load_tensor("/nonexistent_dir_xyz/t.aict"),
               std::runtime_error);
}

TEST(TensorIo, PersistsPrecomputedOperators) {
  // The compile-time LHS/RHS operators survive a save/load cycle and
  // still decompress correctly — the "precompute once, reuse" workflow.
  runtime::Rng rng(3);
  const core::DctChopCodec codec(
      {.height = 16, .width = 16, .cf = 4, .block = 8});
  const std::string path = "/tmp/aic_lhs_test.aict";
  save_tensor(codec.lhs(), path);
  const Tensor lhs = load_tensor(path);
  EXPECT_TRUE(tensor::allclose(lhs, codec.lhs(), 0.0));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aic::io
