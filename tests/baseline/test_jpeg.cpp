#include "baseline/jpeg_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baseline/quant_tables.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::baseline {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Smooth synthetic image plane in [0, 1].
Tensor smooth_plane(std::size_t n, runtime::Rng& rng) {
  Tensor plane(Shape::matrix(n, n));
  const double fx = rng.uniform(0.05, 0.2);
  const double fy = rng.uniform(0.05, 0.2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      plane.at(i, j) = static_cast<float>(
          0.5 + 0.4 * std::sin(fx * i) * std::cos(fy * j) +
          0.02 * rng.normal());
    }
  }
  return plane;
}

TEST(QuantTables, LuminanceMatchesAnnexK) {
  const QuantTable& t = jpeg_luminance_table();
  EXPECT_EQ(t[0], 16);
  EXPECT_EQ(t[63], 99);
  EXPECT_EQ(t[7], 61);
}

TEST(QuantTables, Quality50IsBaseTable) {
  const QuantTable scaled = scale_table(jpeg_luminance_table(), 50);
  EXPECT_EQ(scaled, jpeg_luminance_table());
}

TEST(QuantTables, LowerQualityMeansCoarserQuantization) {
  const QuantTable q10 = scale_table(jpeg_luminance_table(), 10);
  const QuantTable q90 = scale_table(jpeg_luminance_table(), 90);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_GE(q10[i], q90[i]) << "entry " << i;
  }
}

TEST(QuantTables, EntriesClampedTo255) {
  const QuantTable q1 = scale_table(jpeg_luminance_table(), 1);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_GE(q1[i], 1);
    EXPECT_LE(q1[i], 255);
  }
}

TEST(QuantTables, InvalidQualityThrows) {
  EXPECT_THROW(scale_table(jpeg_luminance_table(), 0), std::invalid_argument);
  EXPECT_THROW(scale_table(jpeg_luminance_table(), 101),
               std::invalid_argument);
}

TEST(Jpeg, QuantizeDequantizeRoundTripIsClose) {
  runtime::Rng rng(1);
  const Tensor plane = smooth_plane(32, rng);
  const JpegLikeCodec codec(90);
  const auto coeffs = codec.quantize_plane(plane);
  const Tensor restored = codec.dequantize_plane(coeffs, 32, 32);
  EXPECT_LT(tensor::mse(plane, restored), 1e-3);
}

TEST(Jpeg, LowerQualityHasHigherError) {
  runtime::Rng rng(2);
  const Tensor plane = smooth_plane(32, rng);
  double last_error = -1.0;
  for (int quality : {95, 75, 50, 25, 5}) {
    const JpegLikeCodec codec(quality);
    const Tensor restored =
        codec.dequantize_plane(codec.quantize_plane(plane), 32, 32);
    const double error = tensor::mse(plane, restored);
    EXPECT_GE(error, last_error * 0.9) << "quality " << quality;
    last_error = error;
  }
}

TEST(Jpeg, LowerQualityYieldsMoreZeros) {
  runtime::Rng rng(3);
  const Tensor plane = smooth_plane(64, rng);
  std::size_t zeros_q90 = 0, zeros_q10 = 0;
  for (const std::int32_t c : JpegLikeCodec(90).quantize_plane(plane)) {
    if (c == 0) ++zeros_q90;
  }
  for (const std::int32_t c : JpegLikeCodec(10).quantize_plane(plane)) {
    if (c == 0) ++zeros_q10;
  }
  EXPECT_GT(zeros_q10, zeros_q90);
}

TEST(Jpeg, FullStreamRoundTripMatchesQuantizedPath) {
  runtime::Rng rng(4);
  const Tensor plane = smooth_plane(32, rng);
  const JpegLikeCodec codec(60);
  const auto stream = codec.compress_plane(plane);
  const Tensor via_stream = codec.decompress_plane(stream, 32, 32);
  const Tensor via_coeffs =
      codec.dequantize_plane(codec.quantize_plane(plane), 32, 32);
  // The entropy stage is lossless: both paths must agree bit for bit.
  EXPECT_TRUE(tensor::allclose(via_stream, via_coeffs, 0.0));
}

TEST(Jpeg, StreamCompressesSmoothData) {
  runtime::Rng rng(5);
  const Tensor plane = smooth_plane(64, rng);
  const auto stream = JpegLikeCodec(50).compress_plane(plane);
  EXPECT_GT(JpegLikeCodec::achieved_ratio(stream), 4.0);
}

TEST(Jpeg, CensusFractionsInUnitInterval) {
  runtime::Rng rng(6);
  std::vector<Tensor> planes;
  for (int i = 0; i < 5; ++i) planes.push_back(smooth_plane(32, rng));
  const auto census = nonzero_census(planes, 50);
  ASSERT_EQ(census.size(), 64u);
  for (double f : census) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Jpeg, CensusDcAlwaysPopulatedHighFreqSparse) {
  // Fig. 3's pattern: the DC position is nearly always nonzero while the
  // bottom-right corner is almost always zero for natural-ish images.
  runtime::Rng rng(7);
  std::vector<Tensor> planes;
  for (int i = 0; i < 20; ++i) planes.push_back(smooth_plane(32, rng));
  const auto census = nonzero_census(planes, 50);
  EXPECT_GT(census[0], 0.9);
  EXPECT_LT(census[63], census[0]);
}

TEST(Jpeg, CensusLowerQualityIsSparser) {
  runtime::Rng rng(8);
  std::vector<Tensor> planes;
  for (int i = 0; i < 10; ++i) planes.push_back(smooth_plane(32, rng));
  const auto q95 = nonzero_census(planes, 95);
  const auto q5 = nonzero_census(planes, 5);
  const double density95 = std::accumulate(q95.begin(), q95.end(), 0.0);
  const double density5 = std::accumulate(q5.begin(), q5.end(), 0.0);
  EXPECT_LT(density5, density95);
}

TEST(Jpeg, RejectsNonDivisiblePlane) {
  const Tensor plane(Shape::matrix(30, 32));
  EXPECT_THROW(JpegLikeCodec(50).quantize_plane(plane), std::invalid_argument);
}

}  // namespace
}  // namespace aic::baseline
