#include "baseline/color_quant.hpp"

#include <gtest/gtest.h>

#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::baseline {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(ColorQuant, LevelsArePowerOfTwo) {
  EXPECT_EQ(ColorQuantCodec(4).levels(), 16u);
  EXPECT_EQ(ColorQuantCodec(8).levels(), 256u);
}

TEST(ColorQuant, InvalidBitsThrow) {
  EXPECT_THROW(ColorQuantCodec(0), std::invalid_argument);
  EXPECT_THROW(ColorQuantCodec(17), std::invalid_argument);
  EXPECT_THROW(ColorQuantCodec(4, 1.0f, 0.0f), std::invalid_argument);
}

TEST(ColorQuant, RatioIs32OverBits) {
  EXPECT_DOUBLE_EQ(ColorQuantCodec(8).compression_ratio(), 4.0);
  EXPECT_DOUBLE_EQ(ColorQuantCodec(2).compression_ratio(), 16.0);
}

TEST(ColorQuant, ErrorBoundedByHalfStep) {
  runtime::Rng rng(1);
  const ColorQuantCodec codec(6);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 3, 8, 8), rng);
  const Tensor out = codec.round_trip(in);
  const double half_step = 0.5 / 63.0;
  EXPECT_LE(tensor::max_abs_error(in, out), half_step + 1e-6);
}

TEST(ColorQuant, MoreBitsLessError) {
  runtime::Rng rng(2);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  double last = 1e30;
  for (std::size_t bits : {2u, 4u, 8u, 12u}) {
    const double err = tensor::mse(in, ColorQuantCodec(bits).round_trip(in));
    EXPECT_LT(err, last) << bits;
    last = err;
  }
}

TEST(ColorQuant, OutOfRangeValuesClamp) {
  const ColorQuantCodec codec(4);
  Tensor in(Shape::bchw(1, 1, 4, 4));
  in.fill(2.0f);  // above hi = 1
  const Tensor out = codec.round_trip(in);
  for (float v : out.data()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(ColorQuant, EndpointsAreExact) {
  const ColorQuantCodec codec(3);
  Tensor in(Shape::bchw(1, 1, 4, 4));
  in.fill(0.0f);
  EXPECT_TRUE(tensor::allclose(codec.round_trip(in), in, 0.0));
  in.fill(1.0f);
  EXPECT_TRUE(tensor::allclose(codec.round_trip(in), in, 0.0));
}

TEST(ColorQuant, RoundTripIsIdempotent) {
  runtime::Rng rng(3);
  const ColorQuantCodec codec(5);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 2, 8, 8), rng);
  const Tensor once = codec.round_trip(in);
  const Tensor twice = codec.round_trip(once);
  EXPECT_TRUE(tensor::allclose(once, twice, 1e-7));
}

}  // namespace
}  // namespace aic::baseline
