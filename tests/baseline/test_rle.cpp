#include "baseline/rle.hpp"

#include <gtest/gtest.h>

#include "runtime/rng.hpp"

namespace aic::baseline {
namespace {

TEST(Rle, EncodesRunsOfZeros) {
  const std::vector<std::int32_t> values = {0, 0, 0, 5, 0, -2, 7};
  const auto symbols = rle_encode(values);
  ASSERT_EQ(symbols.size(), 3u);
  EXPECT_EQ(symbols[0], (RleSymbol{3, 5}));
  EXPECT_EQ(symbols[1], (RleSymbol{1, -2}));
  EXPECT_EQ(symbols[2], (RleSymbol{0, 7}));
}

TEST(Rle, TrailingZerosBecomeEob) {
  const std::vector<std::int32_t> values = {9, 0, 0, 0};
  const auto symbols = rle_encode(values);
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], (RleSymbol{0, 9}));
  EXPECT_EQ(symbols[1], (RleSymbol{0, 0}));  // EOB
}

TEST(Rle, AllZerosIsSingleEob) {
  const std::vector<std::int32_t> values(64, 0);
  const auto symbols = rle_encode(values);
  ASSERT_EQ(symbols.size(), 1u);
  EXPECT_EQ(symbols[0], (RleSymbol{0, 0}));
}

TEST(Rle, EmptyInputGivesNoSymbols) {
  EXPECT_TRUE(rle_encode({}).empty());
}

TEST(Rle, DecodeReconstructsExactly) {
  const std::vector<std::int32_t> values = {0, 3, 0, 0, -1, 0, 0, 0};
  const auto symbols = rle_encode(values);
  EXPECT_EQ(rle_decode(symbols, values.size()), values);
}

TEST(Rle, RoundTripRandomSparseVectors) {
  runtime::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::int32_t> values(64);
    for (auto& v : values) {
      // ~80% zeros, mimicking quantized DCT statistics.
      v = rng.uniform() < 0.8
              ? 0
              : static_cast<std::int32_t>(rng.uniform(-100, 100));
    }
    const auto symbols = rle_encode(values);
    EXPECT_EQ(rle_decode(symbols, values.size()), values) << "trial " << trial;
  }
}

TEST(Rle, CompressionEffectiveOnSparseData) {
  std::vector<std::int32_t> values(64, 0);
  values[0] = 100;
  values[1] = -3;
  const auto symbols = rle_encode(values);
  // 2 value symbols + EOB, against 64 raw values.
  EXPECT_EQ(symbols.size(), 3u);
}

TEST(Rle, DecodePadsShortStreams) {
  // EOB only: full length of zeros.
  const std::vector<RleSymbol> symbols = {{0, 0}};
  const auto values = rle_decode(symbols, 10);
  EXPECT_EQ(values, std::vector<std::int32_t>(10, 0));
}

}  // namespace
}  // namespace aic::baseline
