#include "baseline/zfp_like.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/dct_chop.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::baseline {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor smooth_field(std::size_t n, runtime::Rng& rng) {
  Tensor plane(Shape::matrix(n, n));
  const double fx = rng.uniform(0.05, 0.3);
  const double fy = rng.uniform(0.05, 0.3);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      plane.at(i, j) = static_cast<float>(std::sin(fx * i) * std::cos(fy * j));
    }
  }
  return plane;
}

TEST(ZfpLift, InverseRecoversWithinRoundoff) {
  // The lifting pair is near-inverse: each fwd step floors one bit, so
  // inv(fwd(x)) may differ from x by a few units in the last place of the
  // fixed-point representation — never more.
  runtime::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::int32_t, 4> values{};
    for (auto& v : values) {
      v = static_cast<std::int32_t>(rng.uniform(-1e6, 1e6));
    }
    auto work = values;
    ZfpLikeCodec::fwd_lift(work.data(), 1);
    ZfpLikeCodec::inv_lift(work.data(), 1);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(work[i], values[i], 4) << "trial " << trial;
    }
  }
}

TEST(ZfpLift, ZeroIsFixedPoint) {
  std::array<std::int32_t, 4> values{0, 0, 0, 0};
  ZfpLikeCodec::fwd_lift(values.data(), 1);
  for (std::int32_t v : values) EXPECT_EQ(v, 0);
}

TEST(ZfpLift, ConstantBlockConcentratesInFirstCoefficient) {
  std::array<std::int32_t, 4> values{1000, 1000, 1000, 1000};
  ZfpLikeCodec::fwd_lift(values.data(), 1);
  EXPECT_EQ(values[0], 1000);
  EXPECT_EQ(values[1], 0);
  EXPECT_EQ(values[2], 0);
  EXPECT_EQ(values[3], 0);
}

TEST(ZfpLike, InvalidRateThrows) {
  EXPECT_THROW(ZfpLikeCodec(0.0), std::invalid_argument);
  EXPECT_THROW(ZfpLikeCodec(-1.0), std::invalid_argument);
  EXPECT_THROW(ZfpLikeCodec(33.0), std::invalid_argument);
}

TEST(ZfpLike, CompressionRatioIs32OverRate) {
  EXPECT_DOUBLE_EQ(ZfpLikeCodec(8.0).compression_ratio(), 4.0);
  EXPECT_DOUBLE_EQ(ZfpLikeCodec(2.0).compression_ratio(), 16.0);
}

TEST(ZfpLike, ZeroPlaneRoundTripsExactly) {
  const ZfpLikeCodec codec(4.0);
  const Tensor plane(Shape::matrix(16, 16));
  const auto words = codec.compress_plane(plane);
  const Tensor restored = codec.decompress_plane(words, 16, 16);
  EXPECT_TRUE(tensor::allclose(plane, restored, 0.0));
}

TEST(ZfpLike, HighRateIsNearLossless) {
  runtime::Rng rng(2);
  const ZfpLikeCodec codec(32.0);
  const Tensor plane = smooth_field(32, rng);
  const auto words = codec.compress_plane(plane);
  const Tensor restored = codec.decompress_plane(words, 32, 32);
  EXPECT_LT(tensor::mse(plane, restored), 1e-9);
}

TEST(ZfpLike, ErrorShrinksWithRate) {
  runtime::Rng rng(3);
  const Tensor plane = smooth_field(32, rng);
  double last = 1e30;
  for (double rate : {2.0, 4.0, 8.0, 16.0}) {
    const ZfpLikeCodec codec(rate);
    const Tensor restored =
        codec.decompress_plane(codec.compress_plane(plane), 32, 32);
    const double err = tensor::mse(plane, restored);
    EXPECT_LT(err, last + 1e-12) << "rate " << rate;
    last = err;
  }
}

TEST(ZfpLike, FixedRateBudgetIsHonored) {
  runtime::Rng rng(4);
  const ZfpLikeCodec codec(8.0);
  const Tensor plane = smooth_field(32, rng);
  const auto words = codec.compress_plane(plane);
  const std::size_t blocks = (32 / 4) * (32 / 4);
  const std::size_t expected_bits = blocks * codec.bits_per_block();
  EXPECT_LE(words.size() * 32, expected_bits + 32);  // word padding only
}

TEST(ZfpLike, TensorCodecInterfaceRoundTrips) {
  runtime::Rng rng(5);
  const ZfpLikeCodec codec(8.0);
  Tensor in(Shape::bchw(2, 3, 16, 16));
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 3; ++c) {
      in.set_plane(b, c, smooth_field(16, rng));
    }
  }
  const Tensor packed = codec.compress(in);
  EXPECT_EQ(packed.shape(), codec.compressed_shape(in.shape()));
  const Tensor out = codec.decompress(packed, in.shape());
  EXPECT_LT(tensor::mse(in, out), 1e-4);
}

TEST(ZfpLike, BeatsDctChopAtEqualRatioOnSmoothData) {
  // Fig. 9's headline: at matched CR, the zfp-style codec reconstructs
  // smooth scientific fields with lower error than hard chopping.
  runtime::Rng rng(6);
  Tensor in(Shape::bchw(1, 1, 32, 32));
  in.set_plane(0, 0, smooth_field(32, rng));
  const ZfpLikeCodec zfp(8.0);  // CR 4
  const core::DctChopCodec chop(
      {.height = 32, .width = 32, .cf = 4, .block = 8});  // CR 4
  const double zfp_err = tensor::mse(in, zfp.round_trip(in));
  const double chop_err = tensor::mse(in, chop.round_trip(in));
  EXPECT_LT(zfp_err, chop_err);
}

TEST(ZfpLike, PackedShapeMismatchThrows) {
  const ZfpLikeCodec codec(8.0);
  const Tensor bad(Shape::bchw(1, 1, 1, 3));
  EXPECT_THROW(codec.decompress(bad, Shape::bchw(1, 1, 16, 16)),
               std::invalid_argument);
}

TEST(ZfpLike, NonDivisibleDimsThrow) {
  const ZfpLikeCodec codec(8.0);
  EXPECT_THROW(codec.compressed_shape(Shape::bchw(1, 1, 15, 16)),
               std::invalid_argument);
}

}  // namespace
}  // namespace aic::baseline
