#include "baseline/bitstream.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "io/error.hpp"
#include "runtime/rng.hpp"

namespace aic::baseline {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter writer;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) writer.write_bits(b ? 1 : 0, 1);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (bool b : pattern) EXPECT_EQ(reader.read_bit(), b);
}

TEST(BitStream, MultiBitValuesRoundTrip) {
  BitWriter writer;
  writer.write_bits(0b1011, 4);
  writer.write_bits(0xdead, 16);
  writer.write_bits(0x1ffffff, 25);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.read_bits(4), 0b1011u);
  EXPECT_EQ(reader.read_bits(16), 0xdeadu);
  EXPECT_EQ(reader.read_bits(25), 0x1ffffffu);
}

TEST(BitStream, RandomizedRoundTrip) {
  runtime::Rng rng(1);
  BitWriter writer;
  std::vector<std::pair<std::uint32_t, std::size_t>> writes;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t count = 1 + rng.uniform_index(32);
    const std::uint32_t value =
        static_cast<std::uint32_t>(rng.next_u64()) &
        (count == 32 ? 0xffffffffu : ((1u << count) - 1));
    writes.emplace_back(value, count);
    writer.write_bits(value, count);
  }
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (const auto& [value, count] : writes) {
    ASSERT_EQ(reader.read_bits(count), value);
  }
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter writer;
  writer.write_bits(1, 1);
  writer.write_bits(0, 5);
  writer.write_bits(7, 3);
  EXPECT_EQ(writer.bit_count(), 9u);
}

TEST(BitStream, FinishPadsToByte) {
  BitWriter writer;
  writer.write_bits(0b101, 3);
  const auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter writer;
  writer.write_bits(1, 1);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  reader.read_bits(8);  // padded byte is readable
  EXPECT_THROW(reader.read_bit(), io::CorruptStream);
}

TEST(BitStream, WriteMoreThan32Throws) {
  BitWriter writer;
  EXPECT_THROW(writer.write_bits(0, 33), std::invalid_argument);
}

TEST(BitStream, EmptyWriterProducesNoBytes) {
  BitWriter writer;
  EXPECT_TRUE(writer.finish().empty());
}

TEST(BitStream, MsbFirstLayout) {
  BitWriter writer;
  writer.write_bits(0x80, 8);
  const auto bytes = writer.finish();
  EXPECT_EQ(bytes[0], 0x80);
  BitReader reader(bytes);
  EXPECT_TRUE(reader.read_bit());  // MSB comes out first
}

TEST(BitStream, BitsRemainingCountsDown) {
  BitWriter writer;
  writer.write_bits(0xff, 8);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.bits_remaining(), 8u);
  reader.read_bits(3);
  EXPECT_EQ(reader.bits_remaining(), 5u);
}

}  // namespace
}  // namespace aic::baseline
