#include "baseline/bitstream.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "io/error.hpp"
#include "runtime/rng.hpp"

namespace aic::baseline {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter writer;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) writer.write_bits(b ? 1 : 0, 1);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (bool b : pattern) EXPECT_EQ(reader.read_bit(), b);
}

TEST(BitStream, MultiBitValuesRoundTrip) {
  BitWriter writer;
  writer.write_bits(0b1011, 4);
  writer.write_bits(0xdead, 16);
  writer.write_bits(0x1ffffff, 25);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.read_bits(4), 0b1011u);
  EXPECT_EQ(reader.read_bits(16), 0xdeadu);
  EXPECT_EQ(reader.read_bits(25), 0x1ffffffu);
}

TEST(BitStream, RandomizedRoundTrip) {
  runtime::Rng rng(1);
  BitWriter writer;
  std::vector<std::pair<std::uint32_t, std::size_t>> writes;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t count = 1 + rng.uniform_index(32);
    const std::uint32_t value =
        static_cast<std::uint32_t>(rng.next_u64()) &
        (count == 32 ? 0xffffffffu : ((1u << count) - 1));
    writes.emplace_back(value, count);
    writer.write_bits(value, count);
  }
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (const auto& [value, count] : writes) {
    ASSERT_EQ(reader.read_bits(count), value);
  }
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter writer;
  writer.write_bits(1, 1);
  writer.write_bits(0, 5);
  writer.write_bits(7, 3);
  EXPECT_EQ(writer.bit_count(), 9u);
}

TEST(BitStream, FinishPadsToByte) {
  BitWriter writer;
  writer.write_bits(0b101, 3);
  const auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter writer;
  writer.write_bits(1, 1);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  reader.read_bits(8);  // padded byte is readable
  EXPECT_THROW(reader.read_bit(), io::CorruptStream);
}

TEST(BitStream, WriteMoreThan32Throws) {
  BitWriter writer;
  EXPECT_THROW(writer.write_bits(0, 33), std::invalid_argument);
}

TEST(BitStream, EmptyWriterProducesNoBytes) {
  BitWriter writer;
  EXPECT_TRUE(writer.finish().empty());
}

TEST(BitStream, MsbFirstLayout) {
  BitWriter writer;
  writer.write_bits(0x80, 8);
  const auto bytes = writer.finish();
  EXPECT_EQ(bytes[0], 0x80);
  BitReader reader(bytes);
  EXPECT_TRUE(reader.read_bit());  // MSB comes out first
}

TEST(BitStream, BitsRemainingCountsDown) {
  BitWriter writer;
  writer.write_bits(0xff, 8);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.bits_remaining(), 8u);
  reader.read_bits(3);
  EXPECT_EQ(reader.bits_remaining(), 5u);
}

TEST(BitStream, PeekDoesNotConsumeAndZeroPadsPastEnd) {
  BitWriter writer;
  writer.write_bits(0b1011, 4);
  const auto bytes = writer.finish();  // one byte: 1011 0000
  BitReader reader(bytes);
  EXPECT_EQ(reader.peek_bits(4), 0b1011u);
  EXPECT_EQ(reader.peek_bits(4), 0b1011u);  // still unconsumed
  // Peeking past the end zero-pads instead of throwing; bits_remaining
  // bounds how much of the window is trustworthy.
  EXPECT_EQ(reader.peek_bits(16), 0b1011'0000u << 8);
  reader.skip_bits(2);
  EXPECT_EQ(reader.peek_bits(2), 0b11u);
  EXPECT_EQ(reader.bits_remaining(), 6u);
  reader.skip_bits(6);
  EXPECT_EQ(reader.bits_remaining(), 0u);
  EXPECT_THROW(reader.skip_bits(1), io::CorruptStream);
}

TEST(BitStream, ReserveFromExactAccountingNeverReallocates) {
  runtime::Rng rng(21);
  BitWriter writer;
  constexpr std::size_t kValues = 4096;
  writer.reserve((kValues * 7 + 7) / 8);
  for (std::size_t i = 0; i < kValues; ++i) {
    writer.write_bits(static_cast<std::uint32_t>(rng.next_u64()) & 0x7f, 7);
  }
  EXPECT_EQ(writer.realloc_count(), 0u);
  EXPECT_EQ(writer.finish().size(), (kValues * 7 + 7) / 8);
}

TEST(BitStream, UnreservedWriterCountsReallocations) {
  BitWriter writer;
  for (std::size_t i = 0; i < 4096; ++i) writer.write_bits(0x55, 8);
  EXPECT_GT(writer.realloc_count(), 0u);
}

TEST(FixedWidthPack, RoundTripsAllWidthsAgainstBitWriter) {
  runtime::Rng rng(22);
  for (std::size_t width = 1; width <= 8; ++width) {
    // Ragged counts exercise the SIMD kernel's scalar tail.
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::uint8_t> values(count);
      const std::uint32_t mask = (1u << width) - 1;
      for (auto& v : values) {
        v = static_cast<std::uint8_t>(static_cast<std::uint32_t>(rng.next_u64()) & mask);
      }
      // Reference stream: one write_bits call per value.
      BitWriter writer;
      for (const std::uint8_t v : values) writer.write_bits(v, width);
      const std::vector<std::uint8_t> reference = writer.finish();

      std::vector<std::uint8_t> packed(packed_bytes(count, width));
      const std::size_t written =
          pack_fixed_width(values.data(), count, width, packed.data());
      EXPECT_EQ(written, packed.size()) << "width " << width;
      EXPECT_EQ(packed, reference) << "width " << width << " count " << count;

      std::vector<std::uint8_t> restored(count);
      unpack_fixed_width(packed.data(), packed.size(), width, restored.data(),
                         count);
      EXPECT_EQ(restored, values) << "width " << width << " count " << count;
    }
  }
}

TEST(FixedWidthPack, UnpackRejectsShortInput) {
  std::uint8_t out[16];
  const std::uint8_t in[2] = {0xff, 0xff};
  // 16 values of 3 bits need 6 bytes; 2 bytes is a truncated stream.
  EXPECT_THROW(unpack_fixed_width(in, 2, 3, out, 16), io::CorruptStream);
}

}  // namespace
}  // namespace aic::baseline
