#include "baseline/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "io/error.hpp"
#include "runtime/rng.hpp"

namespace aic::baseline {
namespace {

TEST(Huffman, RoundTripsSimpleStream) {
  const std::vector<std::uint16_t> symbols = {1, 2, 2, 3, 3, 3, 3};
  const HuffmanCoder coder(symbols);
  BitWriter writer;
  coder.encode(symbols, writer);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(coder.decode(reader, symbols.size()), symbols);
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<std::uint16_t> symbols(10, 42);
  const HuffmanCoder coder(symbols);
  BitWriter writer;
  coder.encode(symbols, writer);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(coder.decode(reader, symbols.size()), symbols);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint16_t> symbols;
  for (int i = 0; i < 100; ++i) symbols.push_back(0);
  for (int i = 0; i < 5; ++i) symbols.push_back(1);
  for (int i = 0; i < 5; ++i) symbols.push_back(2);
  const HuffmanCoder coder(symbols);
  EXPECT_LT(coder.lengths().at(0), coder.lengths().at(1));
}

TEST(Huffman, EncodedSizeBeatsFixedWidthOnSkewedData) {
  runtime::Rng rng(1);
  std::vector<std::uint16_t> symbols;
  for (int i = 0; i < 10'000; ++i) {
    // Zipf-ish skew over 16 symbols.
    const double u = rng.uniform();
    symbols.push_back(u < 0.6 ? 0 : u < 0.85 ? 1 : rng.uniform_index(16));
  }
  const HuffmanCoder coder(symbols);
  const std::size_t fixed_bits = symbols.size() * 4;  // 16 symbols = 4 bits
  EXPECT_LT(coder.encoded_bits(symbols), fixed_bits);
}

TEST(Huffman, RoundTripsRandomStreams) {
  runtime::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint16_t> symbols;
    const std::size_t alphabet = 1 + rng.uniform_index(64);
    for (int i = 0; i < 500; ++i) {
      symbols.push_back(static_cast<std::uint16_t>(rng.uniform_index(alphabet)));
    }
    const HuffmanCoder coder(symbols);
    BitWriter writer;
    coder.encode(symbols, writer);
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    ASSERT_EQ(coder.decode(reader, symbols.size()), symbols) << trial;
  }
}

TEST(Huffman, RebuildFromLengthsMatchesOriginal) {
  const std::vector<std::uint16_t> symbols = {5, 5, 5, 9, 9, 17, 17, 17, 17, 2};
  const HuffmanCoder original(symbols);
  const HuffmanCoder rebuilt(original.lengths());
  BitWriter writer;
  original.encode(symbols, writer);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(rebuilt.decode(reader, symbols.size()), symbols);
}

TEST(Huffman, KraftInequalityHolds) {
  runtime::Rng rng(3);
  std::vector<std::uint16_t> symbols;
  for (int i = 0; i < 1000; ++i) {
    symbols.push_back(static_cast<std::uint16_t>(rng.uniform_index(30)));
  }
  const HuffmanCoder coder(symbols);
  double kraft = 0.0;
  for (const auto& [symbol, length] : coder.lengths()) {
    kraft += std::pow(2.0, -static_cast<double>(length));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, EmptyStreamThrows) {
  EXPECT_THROW(HuffmanCoder(std::vector<std::uint16_t>{}),
               std::invalid_argument);
}

TEST(Huffman, UnknownSymbolThrows) {
  const HuffmanCoder coder(std::vector<std::uint16_t>{1, 2, 3});
  BitWriter writer;
  EXPECT_THROW(coder.encode({99}, writer), std::invalid_argument);
}

TEST(Huffman, PathologicalHistogramStaysWithinMaxCodeLength) {
  // Fibonacci-weighted histogram: the worst case for Huffman, producing a
  // fully skewed tree whose depth equals the alphabet size. 34 symbols
  // need a 33-bit code for the lightest one — past kMaxCodeLength — so
  // the constructor must rebalance the weights instead of silently
  // overflowing the u32 canonical codes (the old behaviour).
  std::vector<std::uint16_t> symbols;
  std::uint64_t fib_a = 1, fib_b = 1;
  for (std::uint16_t s = 0; s < 34; ++s) {
    for (std::uint64_t i = 0; i < fib_a; ++i) symbols.push_back(s);
    const std::uint64_t next = fib_a + fib_b;
    fib_a = fib_b;
    fib_b = next;
  }
  const HuffmanCoder coder(symbols);
  ASSERT_EQ(coder.lengths().size(), 34u);
  for (const auto& [symbol, length] : coder.lengths()) {
    EXPECT_GE(length, 1) << symbol;
    EXPECT_LE(length, HuffmanCoder::kMaxCodeLength) << symbol;
  }
  // The rebalanced code still round-trips every symbol.
  std::vector<std::uint16_t> sample;
  for (std::uint16_t s = 0; s < 34; ++s) sample.push_back(s);
  BitWriter writer;
  coder.encode(sample, writer);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(coder.decode(reader, sample.size()), sample);
}

TEST(Huffman, RejectsCorruptLengthTables) {
  using Table = std::map<std::uint16_t, std::uint8_t>;
  // Zero-length code.
  EXPECT_THROW(HuffmanCoder(Table{{1, 0}, {2, 2}}), io::CorruptStream);
  // Length past kMaxCodeLength.
  EXPECT_THROW(HuffmanCoder(Table{{1, 40}, {2, 1}}), io::CorruptStream);
  // Over-subscribed table (violates the Kraft inequality).
  EXPECT_THROW(HuffmanCoder(Table{{1, 1}, {2, 1}, {3, 2}}),
               io::CorruptStream);
  // Empty tables stay a caller error, not a data error.
  EXPECT_THROW(HuffmanCoder(Table{}), std::invalid_argument);
}

TEST(Huffman, CodesBeyondLutWindowDecodeViaBitWalk) {
  // A canonical table mixing codes shorter and longer than the kLutBits
  // decode window: the LUT resolves the short ones, the >11-bit codes
  // take the exact bit-walk fallback, and the two paths must agree on
  // one stream. Lengths {1, 2, ..., 13, 14, 14} satisfy Kraft exactly.
  std::map<std::uint16_t, std::uint8_t> lengths;
  for (std::uint8_t len = 1; len <= 14; ++len) {
    lengths[len] = len;
  }
  lengths[15] = 14;
  const HuffmanCoder coder(lengths);
  std::vector<std::uint16_t> sample;
  runtime::Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    sample.push_back(static_cast<std::uint16_t>(1 + rng.uniform_index(15)));
  }
  BitWriter writer;
  writer.reserve((coder.encoded_bits(sample) + 7) / 8);
  coder.encode(sample, writer);
  EXPECT_EQ(writer.realloc_count(), 0u);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(coder.decode(reader, sample.size()), sample);
}

TEST(Huffman, DecodeRejectsCountBeyondStream) {
  const HuffmanCoder coder(std::vector<std::uint16_t>{1, 2, 2, 3, 3, 3, 3});
  const std::vector<std::uint8_t> one_byte = {0xFF};
  BitReader reader(one_byte);
  EXPECT_THROW(coder.decode(reader, 1000), io::CorruptStream);
}

TEST(Huffman, DecodeRejectsBitsMatchingNoCode) {
  // Incomplete code (Kraft < 1): symbol 5 is the 2-bit code 00, so a
  // stream of ones never matches and must be rejected as a bad symbol
  // instead of walking forever.
  const HuffmanCoder coder(std::map<std::uint16_t, std::uint8_t>{{5, 2}});
  const std::vector<std::uint8_t> ones(8, 0xFF);
  BitReader reader(ones);
  EXPECT_THROW(coder.decode(reader, 1), io::CorruptStream);
}

}  // namespace
}  // namespace aic::baseline
