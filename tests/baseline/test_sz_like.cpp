#include "baseline/sz_like.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dct_chop.hpp"
#include "data/synth.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::baseline {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor smooth_plane(std::size_t n, std::uint64_t seed) {
  runtime::Rng rng(seed);
  return data::smooth_field(n, n, rng, 5, 0.3);
}

TEST(SzLike, InvalidBoundThrows) {
  EXPECT_THROW(SzLikeCodec(0.0), std::invalid_argument);
  EXPECT_THROW(SzLikeCodec(-1e-3), std::invalid_argument);
}

class SzBound : public ::testing::TestWithParam<double> {};

TEST_P(SzBound, ErrorBoundIsHonoured) {
  // The defining property of an error-bounded compressor: every single
  // reconstructed value within the bound (plus fp32 slack).
  const double bound = GetParam();
  const SzLikeCodec codec(bound);
  const Tensor plane = smooth_plane(32, 1);
  const auto stream = codec.compress_plane(plane);
  const Tensor restored = codec.decompress_plane(stream, 32, 32);
  EXPECT_LE(tensor::max_abs_error(plane, restored), bound * (1.0 + 1e-4));
}

INSTANTIATE_TEST_SUITE_P(Bounds, SzBound,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

TEST(SzLike, TighterBoundLowerRatio) {
  const Tensor plane = smooth_plane(64, 2);
  const auto loose = SzLikeCodec(1e-1).compress_plane(plane);
  const auto tight = SzLikeCodec(1e-4).compress_plane(plane);
  EXPECT_GT(SzLikeCodec::achieved_ratio(loose),
            SzLikeCodec::achieved_ratio(tight));
}

TEST(SzLike, SmoothDataCompressesWell) {
  const Tensor plane = smooth_plane(64, 3);
  const auto stream = SzLikeCodec(1e-2).compress_plane(plane);
  EXPECT_GT(SzLikeCodec::achieved_ratio(stream), 8.0);
  // Smooth data is Lorenzo-predictable: few unpredictable points.
  EXPECT_LT(stream.unpredictable, stream.values / 100 + 2);
}

TEST(SzLike, NoisyDataCompressesWorse) {
  runtime::Rng rng(4);
  Tensor noisy = smooth_plane(64, 4);
  data::add_gaussian_noise(noisy, rng, 0.2);
  const Tensor smooth = smooth_plane(64, 4);
  const SzLikeCodec codec(1e-3);
  EXPECT_LT(SzLikeCodec::achieved_ratio(codec.compress_plane(noisy)),
            SzLikeCodec::achieved_ratio(codec.compress_plane(smooth)));
}

TEST(SzLike, ConstantPlaneIsNearlyFree) {
  const Tensor plane = Tensor::full(Shape::matrix(64, 64), 0.7f);
  const auto stream = SzLikeCodec(1e-3).compress_plane(plane);
  // One Huffman bit per value (~32x) plus a small header.
  EXPECT_GT(SzLikeCodec::achieved_ratio(stream), 25.0);
}

TEST(SzLike, HandlesExtremeValuesViaVerbatimPath) {
  // A spike far outside the code range must round-trip exactly through
  // the unpredictable/verbatim path.
  Tensor plane(Shape::matrix(16, 16));
  plane.at(5, 5) = 1e9f;
  const SzLikeCodec codec(1e-6);
  const auto stream = codec.compress_plane(plane);
  EXPECT_GE(stream.unpredictable, 1u);
  const Tensor restored = codec.decompress_plane(stream, 16, 16);
  EXPECT_EQ(restored.at(5, 5), 1e9f);
  EXPECT_LE(tensor::max_abs_error(plane, restored), 1e-6 * 1.0001);
}

TEST(SzLike, RoundTripBchwReportsRatio) {
  runtime::Rng rng(5);
  Tensor batch(Shape::bchw(2, 2, 32, 32));
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 2; ++c) {
      batch.set_plane(b, c, smooth_plane(32, 10 + b * 2 + c));
    }
  }
  double ratio = 0.0;
  const SzLikeCodec codec(1e-3);
  const Tensor restored = codec.round_trip(batch, &ratio);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LE(tensor::max_abs_error(batch, restored), 1e-3 * 1.0001);
}

TEST(SzLike, DecompressRejectsWrongDims) {
  const SzLikeCodec codec(1e-3);
  const auto stream = codec.compress_plane(smooth_plane(16, 6));
  EXPECT_THROW(codec.decompress_plane(stream, 16, 32),
               std::invalid_argument);
}

TEST(SzLike, BeatsChopRatioAtMatchedErrorOnSmoothData) {
  // The paper's framing: SZ-class compressors win on rate/distortion —
  // they just cannot run on the accelerators. At the error a CF=4 chop
  // produces, the SZ-style stream is smaller.
  const Tensor plane = smooth_plane(64, 7);
  Tensor batch(Shape::bchw(1, 1, 64, 64));
  batch.set_plane(0, 0, plane);
  const core::DctChopCodec chop(
      {.height = 64, .width = 64, .cf = 4, .block = 8});
  const Tensor chop_restored = chop.round_trip(batch);
  const double chop_max_err = tensor::max_abs_error(batch, chop_restored);

  const SzLikeCodec sz(std::max(chop_max_err, 1e-6));
  const auto stream = sz.compress_plane(plane);
  EXPECT_GT(SzLikeCodec::achieved_ratio(stream), chop.compression_ratio());
}

}  // namespace
}  // namespace aic::baseline
