#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include "tests/nn/grad_check.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Im2col, IdentityKernelLayout) {
  // 1×1 kernel, stride 1, no pad: columns are just the flattened plane.
  Tensor x = Tensor::iota(Shape::bchw(1, 2, 3, 3));
  const Tensor cols = im2col(x, 0, 1, 1, 0);
  EXPECT_EQ(cols.shape(), Shape::matrix(2, 9));
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t s = 0; s < 9; ++s) {
      EXPECT_EQ(cols.at(c, s), x.at(0, c, s / 3, s % 3));
    }
  }
}

TEST(Im2col, PaddingProducesZeros) {
  Tensor x = Tensor::full(Shape::bchw(1, 1, 2, 2), 1.0f);
  const Tensor cols = im2col(x, 0, 3, 1, 1);
  // Top-left kernel position (ki=0, kj=0) at output (0,0) reads the
  // padded corner: must be zero.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
  // that makes the conv backward pass correct.
  runtime::Rng rng(1);
  const Tensor x = Tensor::uniform(Shape::bchw(1, 2, 5, 5), rng, -1, 1);
  const Tensor cols = im2col(x, 0, 3, 2, 1);
  const Tensor y = Tensor::uniform(cols.shape(), rng, -1, 1);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) lhs += cols.at(i) * y.at(i);
  Tensor back(x.shape());
  col2im(y, back, 0, 3, 2, 1);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * back.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  runtime::Rng rng(2);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  conv.params()[0]->value = Tensor(Shape::matrix(1, 1), {1.0f});
  conv.params()[1]->value = Tensor(Shape::vector(1), {0.0f});
  const Tensor x = Tensor::uniform(Shape::bchw(2, 1, 4, 4), rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(conv.forward(x, true), x, 1e-6));
}

TEST(Conv2d, KnownThreeByThree) {
  runtime::Rng rng(3);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  // Averaging kernel.
  conv.params()[0]->value = Tensor::full(Shape::matrix(1, 9), 1.0f / 9.0f);
  conv.params()[1]->value = Tensor(Shape::vector(1), {0.5f});
  const Tensor x = Tensor::full(Shape::bchw(1, 1, 3, 3), 9.0f);
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), Shape::bchw(1, 1, 1, 1));
  EXPECT_NEAR(y.at(0), 9.0f + 0.5f, 1e-5);
}

TEST(Conv2d, OutputShapeWithStrideAndPadding) {
  runtime::Rng rng(4);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  const Tensor x(Shape::bchw(2, 3, 8, 8));
  EXPECT_EQ(conv.forward(x, true).shape(), Shape::bchw(2, 8, 4, 4));
}

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, padding, size;
};

class ConvGradient : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradient, MatchesNumeric) {
  const ConvCase c = GetParam();
  runtime::Rng rng(5);
  Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.padding, rng);
  Tensor x =
      Tensor::uniform(Shape::bchw(2, c.in_ch, c.size, c.size), rng, -1, 1);
  testing::expect_gradients_match(conv, x, rng);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradient,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 4},   // same-size conv
                      ConvCase{2, 3, 3, 1, 1, 4},   // multi-channel
                      ConvCase{2, 2, 3, 2, 1, 6},   // strided
                      ConvCase{1, 2, 1, 1, 0, 4},   // pointwise
                      ConvCase{3, 1, 5, 1, 2, 6})); // wide kernel

TEST(Conv2d, WrongChannelCountThrows) {
  runtime::Rng rng(6);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape::bchw(1, 2, 4, 4)), true),
               std::invalid_argument);
}

TEST(Conv2d, GradAccumulatesAcrossBatches) {
  runtime::Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 4, 4), rng, -1, 1);
  const Tensor go = Tensor::uniform(Shape::bchw(1, 1, 4, 4), rng, -1, 1);
  (void)conv.forward(x, true);
  (void)conv.backward(go);
  const Tensor once = conv.params()[0]->grad;
  (void)conv.forward(x, true);
  (void)conv.backward(go);
  // Second backward without zero_grad doubles the accumulated gradient.
  EXPECT_TRUE(tensor::allclose(conv.params()[0]->grad,
                               tensor::scale(once, 2.0f), 1e-4));
}

}  // namespace
}  // namespace aic::nn
