#include "nn/layer.hpp"

#include <gtest/gtest.h>

#include "tests/nn/grad_check.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  const Tensor x(Shape::vector(4), {-2, -0.5f, 0, 3});
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 0.0f);
  EXPECT_FLOAT_EQ(y.at(3), 3.0f);
}

TEST(Relu, GradientMatchesNumeric) {
  runtime::Rng rng(1);
  Relu relu;
  // Keep values away from the kink at 0 for a clean finite difference.
  Tensor x = tensor::map(Tensor::uniform(Shape::bchw(2, 2, 4, 4), rng, -1, 1),
                         [](float v) { return v + (v >= 0 ? 0.2f : -0.2f); });
  testing::expect_gradients_match(relu, x, rng);
}

TEST(Sigmoid, ForwardRangeAndMidpoint) {
  Sigmoid sigmoid;
  const Tensor x(Shape::vector(3), {-10, 0, 10});
  const Tensor y = sigmoid.forward(x, true);
  EXPECT_LT(y.at(0), 0.001f);
  EXPECT_FLOAT_EQ(y.at(1), 0.5f);
  EXPECT_GT(y.at(2), 0.999f);
}

TEST(Sigmoid, GradientMatchesNumeric) {
  runtime::Rng rng(2);
  Sigmoid sigmoid;
  Tensor x = Tensor::uniform(Shape::bchw(1, 2, 3, 3), rng, -2, 2);
  testing::expect_gradients_match(sigmoid, x, rng);
}

TEST(Linear, ForwardComputesAffineMap) {
  runtime::Rng rng(3);
  Linear linear(3, 2, rng);
  // Overwrite params with known values.
  linear.params()[0]->value =
      Tensor(Shape::matrix(2, 3), {1, 0, 0, 0, 1, 0});
  linear.params()[1]->value = Tensor(Shape::vector(2), {10, 20});
  const Tensor x(Shape::bchw(1, 3, 1, 1), {5, 6, 7});
  const Tensor y = linear.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 15.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 26.0f);
}

TEST(Linear, GradientMatchesNumeric) {
  runtime::Rng rng(4);
  Linear linear(6, 4, rng);
  Tensor x = Tensor::uniform(Shape::bchw(3, 6, 1, 1), rng, -1, 1);
  testing::expect_gradients_match(linear, x, rng);
}

TEST(Linear, RejectsWrongShape) {
  runtime::Rng rng(5);
  Linear linear(6, 4, rng);
  EXPECT_THROW(linear.forward(Tensor(Shape::bchw(1, 5, 1, 1)), true),
               std::invalid_argument);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flatten;
  const Tensor x = Tensor::iota(Shape::bchw(2, 3, 4, 4));
  const Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), Shape::bchw(2, 48, 1, 1));
  const Tensor back = flatten.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(MaxPool2d, ForwardPicksMaxima) {
  MaxPool2d pool;
  Tensor x(Shape::bchw(1, 1, 2, 2), {1, 5, 3, 2});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape::bchw(1, 1, 1, 1));
  EXPECT_FLOAT_EQ(y.at(0), 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool;
  Tensor x(Shape::bchw(1, 1, 2, 2), {1, 5, 3, 2});
  (void)pool.forward(x, true);
  const Tensor grad =
      pool.backward(Tensor(Shape::bchw(1, 1, 1, 1), {7.0f}));
  EXPECT_FLOAT_EQ(grad.at(0), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(1), 7.0f);
  EXPECT_FLOAT_EQ(grad.at(2), 0.0f);
}

TEST(MaxPool2d, GradientMatchesNumeric) {
  runtime::Rng rng(6);
  MaxPool2d pool;
  // Distinct values avoid argmax ties that break finite differences.
  Tensor x = Tensor::iota(Shape::bchw(1, 2, 4, 4));
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.at(i) = x.at(i) * 0.1f + static_cast<float>(rng.uniform()) * 0.01f;
  }
  testing::expect_gradients_match(pool, x, rng);
}

TEST(MaxPool2d, OddDimsThrow) {
  MaxPool2d pool;
  EXPECT_THROW(pool.forward(Tensor(Shape::bchw(1, 1, 3, 4)), true),
               std::invalid_argument);
}

TEST(GlobalAvgPool, ForwardAverages) {
  GlobalAvgPool gap;
  Tensor x(Shape::bchw(1, 2, 2, 2), {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 10.0f);
}

TEST(GlobalAvgPool, GradientMatchesNumeric) {
  runtime::Rng rng(7);
  GlobalAvgPool gap;
  Tensor x = Tensor::uniform(Shape::bchw(2, 3, 4, 4), rng, -1, 1);
  testing::expect_gradients_match(gap, x, rng);
}

TEST(Upsample, ForwardReplicates) {
  UpsampleNearest2x up;
  Tensor x(Shape::bchw(1, 1, 1, 2), {3, 7});
  const Tensor y = up.forward(x, true);
  EXPECT_EQ(y.shape(), Shape::bchw(1, 1, 2, 4));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 2), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 3), 7.0f);
}

TEST(Upsample, GradientMatchesNumeric) {
  runtime::Rng rng(8);
  UpsampleNearest2x up;
  Tensor x = Tensor::uniform(Shape::bchw(2, 2, 3, 3), rng, -1, 1);
  testing::expect_gradients_match(up, x, rng);
}

}  // namespace
}  // namespace aic::nn
