#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dct_chop.hpp"
#include "data/datasets.hpp"
#include "nn/models.hpp"

namespace aic::nn {
namespace {

using data::DatasetConfig;
using tensor::Shape;
using tensor::Tensor;

// Tiny configuration so each training test stays fast.
DatasetConfig tiny_config() {
  return {.train_samples = 48,
          .test_samples = 16,
          .batch_size = 16,
          .resolution = 16,
          .seed = 42};
}

TEST(Trainer, ClassificationLossDecreases) {
  const auto dataset = data::make_classify_dataset(tiny_config(), 4);
  runtime::Rng rng(1);
  auto model = make_resnet_classifier(3, 4, rng, 4);
  Adam adam(model->params(), 0.003f);
  Trainer trainer(*model, adam, TaskKind::kClassification);
  const double first = trainer.train_epoch(dataset.train);
  double last = first;
  for (int epoch = 0; epoch < 5; ++epoch) {
    last = trainer.train_epoch(dataset.train);
  }
  EXPECT_LT(last, first * 0.9);
}

TEST(Trainer, ClassificationBeatsChance) {
  const auto dataset = data::make_classify_dataset(tiny_config(), 4);
  runtime::Rng rng(2);
  auto model = make_resnet_classifier(3, 4, rng, 4);
  Adam adam(model->params(), 0.003f);
  Trainer trainer(*model, adam, TaskKind::kClassification);
  for (int epoch = 0; epoch < 8; ++epoch) trainer.train_epoch(dataset.train);
  const auto eval = trainer.evaluate(dataset.test);
  EXPECT_GT(eval.accuracy, 0.4);  // chance = 0.25
}

TEST(Trainer, RegressionLossDecreases) {
  const auto dataset = data::make_denoise_dataset(tiny_config());
  runtime::Rng rng(3);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.002f);
  Trainer trainer(*model, adam, TaskKind::kRegression);
  const double first = trainer.train_epoch(dataset.train);
  double last = first;
  for (int epoch = 0; epoch < 5; ++epoch) {
    last = trainer.train_epoch(dataset.train);
  }
  EXPECT_LT(last, first);
}

TEST(Trainer, SegmentationPixelAccuracyAboveChance) {
  const auto dataset = data::make_cloud_dataset(tiny_config());
  runtime::Rng rng(4);
  auto model = make_unet(3, 1, rng, 4);
  Adam adam(model->params(), 0.004f);
  Trainer trainer(*model, adam, TaskKind::kSegmentation);
  for (int epoch = 0; epoch < 6; ++epoch) trainer.train_epoch(dataset.train);
  const auto eval = trainer.evaluate(dataset.test);
  EXPECT_GT(eval.accuracy, 0.7);
}

TEST(Trainer, CodecHookCompressesTrainingBatches) {
  // With a CF=8 (near-lossless) codec, training must track the no-codec
  // run — proving the hook sits exactly on the input path.
  const auto dataset = data::make_denoise_dataset(tiny_config());
  auto run = [&](core::CodecPtr codec) {
    runtime::Rng rng(5);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.002f);
    Trainer trainer(*model, adam, TaskKind::kRegression, std::move(codec));
    trainer.train_epoch(dataset.train);
    return trainer.evaluate(dataset.test).loss;
  };
  const double baseline = run(nullptr);
  const double lossless = run(std::make_shared<core::DctChopCodec>(
      core::DctChopConfig{.height = 16, .width = 16, .cf = 8, .block = 8}));
  // CF=8 round-trips up to fp32 rounding (~1e-7 per value); after one
  // epoch of training the runs agree to well under a percent.
  EXPECT_NEAR(baseline, lossless, 5e-3 * baseline);
}

TEST(Trainer, LossyCodecChangesTraining) {
  const auto dataset = data::make_denoise_dataset(tiny_config());
  auto run = [&](core::CodecPtr codec) {
    runtime::Rng rng(6);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.002f);
    Trainer trainer(*model, adam, TaskKind::kRegression, std::move(codec));
    trainer.train_epoch(dataset.train);
    return trainer.evaluate(dataset.test).loss;
  };
  const double baseline = run(nullptr);
  const double lossy = run(std::make_shared<core::DctChopCodec>(
      core::DctChopConfig{.height = 16, .width = 16, .cf = 2, .block = 8}));
  EXPECT_NE(baseline, lossy);
}

TEST(Trainer, FitRecordsPerEpochHistory) {
  const auto dataset = data::make_classify_dataset(tiny_config(), 4);
  runtime::Rng rng(7);
  auto model = make_resnet_classifier(3, 4, rng, 4);
  Adam adam(model->params(), 0.003f);
  Trainer trainer(*model, adam, TaskKind::kClassification);
  const auto history = trainer.fit(dataset.train, dataset.test, 3);
  ASSERT_EQ(history.size(), 3u);
  for (const auto& epoch : history) {
    EXPECT_GT(epoch.train_loss, 0.0);
    EXPECT_GT(epoch.test_loss, 0.0);
    EXPECT_GE(epoch.test_accuracy, 0.0);
  }
}

TEST(Trainer, EvaluationReadsThroughCodecPipeline) {
  // The codec models *dataset* compression: evaluation inputs pass
  // through the same compress→decompress pipeline as training inputs,
  // so a lossy codec changes even an untrained model's eval loss.
  const auto dataset = data::make_denoise_dataset(tiny_config());
  auto eval_loss = [&](core::CodecPtr codec) {
    runtime::Rng rng(8);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.002f);
    Trainer trainer(*model, adam, TaskKind::kRegression, std::move(codec));
    return trainer.evaluate(dataset.test).loss;
  };
  const double no_codec = eval_loss(nullptr);
  const double with_codec = eval_loss(std::make_shared<core::DctChopCodec>(
      core::DctChopConfig{.height = 16, .width = 16, .cf = 2, .block = 8}));
  EXPECT_NE(no_codec, with_codec);
}

TEST(Trainer, SpecStringCodecTrainsAcrossMixedResolutions) {
  // A shape-agnostic factory codec lets one trainer consume batches of
  // different resolutions in a single run: operand plans are resolved
  // per-shape from the process-wide cache, never rebuilt per batch.
  DatasetConfig small = tiny_config();
  DatasetConfig large = tiny_config();
  large.resolution = 24;
  const auto small_set = data::make_denoise_dataset(small);
  const auto large_set = data::make_denoise_dataset(large);

  runtime::Rng rng(10);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.002f);
  Trainer trainer(*model, adam, TaskKind::kRegression, "dctchop:cf=8,block=8");

  const double loss_small = trainer.train_epoch(small_set.train);
  const double loss_large = trainer.train_epoch(large_set.train);
  EXPECT_TRUE(std::isfinite(loss_small));
  EXPECT_TRUE(std::isfinite(loss_large));
  // And back to the first resolution: the cached 16x16 plan still fits.
  EXPECT_TRUE(std::isfinite(trainer.train_epoch(small_set.train)));
}

TEST(Trainer, CompressionHelpsDenoising) {
  // The Fig. 8 headline: with high-frequency noise and a band-limited
  // signal, the compressed pipeline beats the uncompressed baseline.
  const auto dataset = data::make_denoise_dataset(tiny_config());
  auto final_loss = [&](core::CodecPtr codec) {
    runtime::Rng rng(9);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.005f);
    Trainer trainer(*model, adam, TaskKind::kRegression, std::move(codec));
    return trainer.fit(dataset.train, dataset.test, 8).back().test_loss;
  };
  const double base = final_loss(nullptr);
  const double compressed = final_loss(std::make_shared<core::DctChopCodec>(
      core::DctChopConfig{.height = 16, .width = 16, .cf = 2, .block = 8}));
  EXPECT_LT(compressed, base);
}

}  // namespace
}  // namespace aic::nn
