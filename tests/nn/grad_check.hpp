#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace aic::nn::testing {

/// Scalar probe loss: sum(layer(x) ⊙ w) for a fixed random weighting w,
/// whose gradient w.r.t. the layer output is exactly w.
inline double probe_loss(Layer& layer, const tensor::Tensor& x,
                         const tensor::Tensor& probe) {
  const tensor::Tensor y = layer.forward(x, /*train=*/true);
  return tensor::sum(tensor::mul(y, probe));
}

/// Central-difference gradient of `f` w.r.t. entry `i` of `values`.
inline double numeric_grad(const std::function<double()>& f, float& value,
                           float epsilon = 1e-3f) {
  const float saved = value;
  value = saved + epsilon;
  const double plus = f();
  value = saved - epsilon;
  const double minus = f();
  value = saved;
  return (plus - minus) / (2.0 * static_cast<double>(epsilon));
}

/// Verifies the layer's input gradient and all parameter gradients
/// against central differences. `tolerance` is absolute+relative mixed.
inline void expect_gradients_match(Layer& layer, tensor::Tensor x,
                                   runtime::Rng& rng,
                                   double tolerance = 2e-2) {
  tensor::Tensor probe;
  {
    const tensor::Tensor y = layer.forward(x, true);
    probe = tensor::Tensor::uniform(y.shape(), rng, -1.0f, 1.0f);
  }

  // Analytic gradients.
  for (Param* p : layer.params()) p->zero_grad();
  (void)layer.forward(x, true);
  const tensor::Tensor grad_input = layer.backward(probe);

  const auto loss = [&] { return probe_loss(layer, x, probe); };

  // Input gradient: check a sample of entries (all when small).
  const std::size_t input_stride = std::max<std::size_t>(1, x.numel() / 24);
  for (std::size_t i = 0; i < x.numel(); i += input_stride) {
    const double expected = numeric_grad(loss, x.at(i));
    const double actual = grad_input.at(i);
    ASSERT_NEAR(actual, expected,
                tolerance * (1.0 + std::fabs(expected)))
        << "input grad at " << i;
  }

  // Parameter gradients. Re-derive analytic grads after the numeric
  // probing left parameters unchanged.
  for (Param* p : layer.params()) p->zero_grad();
  (void)layer.forward(x, true);
  (void)layer.backward(probe);
  for (Param* p : layer.params()) {
    const std::size_t stride =
        std::max<std::size_t>(1, p->value.numel() / 16);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const double expected = numeric_grad(loss, p->value.at(i));
      const double actual = p->grad.at(i);
      ASSERT_NEAR(actual, expected,
                  tolerance * (1.0 + std::fabs(expected)))
          << "param grad at " << i;
    }
  }
}

}  // namespace aic::nn::testing
