#include "nn/distributed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.hpp"
#include "nn/gradient_compression.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

data::DatasetConfig tiny() {
  return {.train_samples = 48,
          .test_samples = 16,
          .batch_size = 8,
          .resolution = 16,
          .seed = 33};
}

TEST(TopK, KeepsExactlyTheLargestEntries) {
  TopKCompressor topk(0.25);
  const Tensor grad(Shape::vector(8), {1, -9, 2, 0.5f, -3, 0.1f, 7, -0.2f});
  const Tensor out = topk.round_trip(grad);
  // keep = 2: the entries -9 and 7 survive, everything else zeroes.
  EXPECT_FLOAT_EQ(out.at(1), -9.0f);
  EXPECT_FLOAT_EQ(out.at(6), 7.0f);
  for (std::size_t i : {0u, 2u, 3u, 4u, 5u, 7u}) {
    EXPECT_FLOAT_EQ(out.at(i), 0.0f) << i;
  }
}

TEST(TopK, FullFractionIsIdentity) {
  runtime::Rng rng(1);
  TopKCompressor topk(1.0);
  const Tensor grad = Tensor::uniform(Shape::vector(32), rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(topk.round_trip(grad), grad, 0.0));
}

TEST(TopK, WireBytesMatchKeptCount) {
  TopKCompressor topk(0.1);
  const Tensor grad(Shape::vector(100));
  EXPECT_EQ(topk.wire_bytes(grad), 10u * 8u);
}

TEST(TopK, AlwaysKeepsAtLeastOne) {
  TopKCompressor topk(0.001);
  const Tensor grad(Shape::vector(5), {0, 0, 3, 0, 0});
  const Tensor out = topk.round_trip(grad);
  EXPECT_FLOAT_EQ(out.at(2), 3.0f);
}

TEST(TopK, InvalidFractionThrows) {
  EXPECT_THROW(TopKCompressor(0.0), std::invalid_argument);
  EXPECT_THROW(TopKCompressor(1.5), std::invalid_argument);
}

TEST(Qsgd, ZeroGradientStaysZero) {
  QsgdCompressor qsgd(4);
  const Tensor grad(Shape::vector(16));
  const Tensor out = qsgd.round_trip(grad);
  for (float v : out.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Qsgd, PreservesSigns) {
  runtime::Rng rng(2);
  QsgdCompressor qsgd(8);
  const Tensor grad = Tensor::uniform(Shape::vector(64), rng, -1, 1);
  const Tensor out = qsgd.round_trip(grad);
  for (std::size_t i = 0; i < 64; ++i) {
    if (out.at(i) != 0.0f) {
      EXPECT_EQ(out.at(i) > 0, grad.at(i) > 0) << i;
    }
  }
}

TEST(Qsgd, UnbiasedInExpectation) {
  // Average of many stochastic round trips converges to the input.
  runtime::Rng rng(3);
  const Tensor grad = Tensor::uniform(Shape::vector(16), rng, -1, 1);
  QsgdCompressor qsgd(2, /*seed=*/7);
  Tensor mean(grad.shape());
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    tensor::axpy(mean, qsgd.round_trip(grad), 1.0f / kTrials);
  }
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    EXPECT_NEAR(mean.at(i), grad.at(i), 0.05f) << i;
  }
}

TEST(Qsgd, MoreLevelsLessError) {
  runtime::Rng rng(4);
  const Tensor grad = Tensor::uniform(Shape::vector(256), rng, -1, 1);
  QsgdCompressor coarse(1, 5);
  QsgdCompressor fine(64, 5);
  EXPECT_LT(tensor::mse(grad, fine.round_trip(grad)),
            tensor::mse(grad, coarse.round_trip(grad)));
}

TEST(Qsgd, WireBytesShrinkWithFewerLevels) {
  const Tensor grad(Shape::vector(1024));
  QsgdCompressor coarse(1, 1);   // 2 bits/entry
  QsgdCompressor fine(255, 1);   // 9 bits/entry
  EXPECT_LT(coarse.wire_bytes(grad), fine.wire_bytes(grad));
  EXPECT_LT(fine.wire_bytes(grad), grad.size_bytes());
}

TEST(Distributed, SingleWorkerUncompressedMatchesTrainer) {
  // workers=1 with no compressor is exactly the plain Trainer loop.
  const auto dataset = data::make_denoise_dataset(tiny());
  auto run_plain = [&] {
    runtime::Rng rng(9);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.002f);
    Trainer trainer(*model, adam, TaskKind::kRegression);
    trainer.train_epoch(dataset.train);
    return trainer.evaluate(dataset.test).loss;
  };
  auto run_distributed = [&] {
    runtime::Rng rng(9);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.002f);
    DistributedTrainer trainer(*model, adam, TaskKind::kRegression, 1);
    trainer.train_epoch(dataset.train);
    return trainer.evaluate(dataset.test).loss;
  };
  EXPECT_NEAR(run_plain(), run_distributed(), 1e-6);
}

TEST(Distributed, CommStatsAccountRawVsCompressed) {
  const auto dataset = data::make_denoise_dataset(tiny());
  runtime::Rng rng(10);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.002f);
  DistributedTrainer trainer(*model, adam, TaskKind::kRegression, 2,
                             std::make_shared<TopKCompressor>(0.1));
  trainer.train_epoch(dataset.train);
  const auto& stats = trainer.comm_stats();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.raw_bytes, 0u);
  EXPECT_LT(stats.compressed_bytes, stats.raw_bytes);
  EXPECT_GT(stats.compression_ratio(), 2.0);
}

TEST(Distributed, UncompressedRatioIsOne) {
  const auto dataset = data::make_denoise_dataset(tiny());
  runtime::Rng rng(11);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.002f);
  DistributedTrainer trainer(*model, adam, TaskKind::kRegression, 4);
  trainer.train_epoch(dataset.train);
  EXPECT_DOUBLE_EQ(trainer.comm_stats().compression_ratio(), 1.0);
}

TEST(Distributed, TrainingConvergesWithQsgd) {
  const auto dataset = data::make_denoise_dataset(tiny());
  runtime::Rng rng(12);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.003f);
  DistributedTrainer trainer(*model, adam, TaskKind::kRegression, 4,
                             std::make_shared<QsgdCompressor>(16));
  const double first = trainer.train_epoch(dataset.train);
  double last = first;
  for (int epoch = 0; epoch < 5; ++epoch) {
    last = trainer.train_epoch(dataset.train);
  }
  EXPECT_LT(last, first);
}

TEST(Distributed, ErrorFeedbackRecoversSparsificationLoss) {
  // Aggressive top-k without error feedback diverges from the dense
  // baseline; with EF the dropped mass is re-injected and training
  // lands much closer to it.
  const auto dataset = data::make_denoise_dataset(tiny());
  auto run = [&](nn::GradientCompressorPtr compressor, bool ef) {
    runtime::Rng rng(14);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.003f);
    DistributedTrainer trainer(*model, adam, TaskKind::kRegression, 4,
                               std::move(compressor), ef);
    for (int epoch = 0; epoch < 6; ++epoch) trainer.train_epoch(dataset.train);
    return trainer.evaluate(dataset.test).loss;
  };
  const double dense = run(nullptr, false);
  const double sparse =
      run(std::make_shared<TopKCompressor>(0.02), false);
  const double sparse_ef =
      run(std::make_shared<TopKCompressor>(0.02), true);
  EXPECT_LT(sparse_ef, sparse);
  EXPECT_LT(std::fabs(sparse_ef - dense), std::fabs(sparse - dense));
}

TEST(Distributed, ErrorFeedbackDoesNotChangeWireBytes) {
  const auto dataset = data::make_denoise_dataset(tiny());
  auto bytes = [&](bool ef) {
    runtime::Rng rng(15);
    auto model = make_encoder_decoder(1, rng, 4);
    Adam adam(model->params(), 0.002f);
    DistributedTrainer trainer(*model, adam, TaskKind::kRegression, 2,
                               std::make_shared<TopKCompressor>(0.1), ef);
    trainer.train_epoch(dataset.train);
    return trainer.comm_stats().compressed_bytes;
  };
  EXPECT_EQ(bytes(false), bytes(true));
}

TEST(Distributed, ZeroWorkersThrows) {
  runtime::Rng rng(13);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.002f);
  EXPECT_THROW(
      DistributedTrainer(*model, adam, TaskKind::kRegression, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace aic::nn
