#include <gtest/gtest.h>

#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/norm.hpp"
#include "nn/unet.hpp"
#include "tests/nn/grad_check.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(BatchNorm, TrainOutputIsNormalized) {
  runtime::Rng rng(1);
  BatchNorm2d bn(2);
  const Tensor x = Tensor::uniform(Shape::bchw(8, 2, 4, 4), rng, 3.0f, 9.0f);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per channel: mean ≈ 0, var ≈ 1 (gamma=1, beta=0 initially).
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    const std::size_t count = 8 * 4 * 4;
    for (std::size_t b = 0; b < 8; ++b) {
      for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) mean += y.at(b, c, i, j);
      }
    }
    mean /= count;
    for (std::size_t b = 0; b < 8; ++b) {
      for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
          const double d = y.at(b, c, i, j) - mean;
          var += d * d;
        }
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataMoments) {
  runtime::Rng rng(2);
  BatchNorm2d bn(1, /*momentum=*/0.5f);
  for (int i = 0; i < 30; ++i) {
    const Tensor x =
        Tensor::normal(Shape::bchw(16, 1, 4, 4), rng, 5.0f, 2.0f);
    (void)bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean().at(0), 5.0f, 0.3f);
  EXPECT_NEAR(bn.running_var().at(0), 4.0f, 0.8f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  runtime::Rng rng(3);
  BatchNorm2d bn(1, 1.0f);  // momentum 1: running stats = last batch
  const Tensor train_x =
      Tensor::normal(Shape::bchw(32, 1, 4, 4), rng, 2.0f, 1.0f);
  (void)bn.forward(train_x, true);
  // A constant eval input equal to the running mean maps to ~0.
  const Tensor eval_x =
      Tensor::full(Shape::bchw(1, 1, 4, 4), bn.running_mean().at(0));
  const Tensor y = bn.forward(eval_x, false);
  for (float v : y.data()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(BatchNorm, GradientMatchesNumeric) {
  runtime::Rng rng(4);
  BatchNorm2d bn(2);
  Tensor x = Tensor::uniform(Shape::bchw(4, 2, 3, 3), rng, -2, 2);
  testing::expect_gradients_match(bn, x, rng, 3e-2);
}

TEST(Sequential, ChainsLayersInOrder) {
  runtime::Rng rng(5);
  Sequential seq;
  seq.add(std::make_unique<Relu>()).add(std::make_unique<Sigmoid>());
  const Tensor x(Shape::vector(2), {-1.0f, 1.0f});
  const Tensor y = seq.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 0.5f);            // relu(-1)=0 -> sigmoid=0.5
  EXPECT_NEAR(y.at(1), 0.731058f, 1e-5f);    // sigmoid(1)
}

TEST(Sequential, CollectsAllParams) {
  runtime::Rng rng(6);
  Sequential seq;
  seq.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng))
      .add(std::make_unique<BatchNorm2d>(2))
      .add(std::make_unique<Relu>());
  EXPECT_EQ(seq.params().size(), 4u);  // conv W/b + bn gamma/beta
}

TEST(Sequential, GradientMatchesNumeric) {
  runtime::Rng rng(7);
  Sequential seq;
  seq.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(2, 1, 3, 1, 1, rng));
  Tensor x = Tensor::uniform(Shape::bchw(2, 1, 4, 4), rng, -1, 1);
  testing::expect_gradients_match(seq, x, rng);
}

TEST(ResidualBlock, IdentitySkipPreservesShape) {
  runtime::Rng rng(8);
  ResidualBlock block(4, 4, 1, rng);
  const Tensor x = Tensor::uniform(Shape::bchw(2, 4, 4, 4), rng, -1, 1);
  EXPECT_EQ(block.forward(x, true).shape(), x.shape());
}

TEST(ResidualBlock, ProjectionHandlesDownsample) {
  runtime::Rng rng(9);
  ResidualBlock block(4, 8, 2, rng);
  const Tensor x = Tensor::uniform(Shape::bchw(2, 4, 8, 8), rng, -1, 1);
  EXPECT_EQ(block.forward(x, true).shape(), Shape::bchw(2, 8, 4, 4));
}

TEST(ResidualBlock, GradientMatchesNumeric) {
  runtime::Rng rng(10);
  ResidualBlock block(2, 2, 1, rng);
  Tensor x = Tensor::uniform(Shape::bchw(2, 2, 4, 4), rng, -1, 1);
  testing::expect_gradients_match(block, x, rng, 4e-2);
}

TEST(UNet, OutputShapeMatchesInputSpatialDims) {
  runtime::Rng rng(11);
  UNetMini unet(3, 4, 1, rng);
  const Tensor x = Tensor::uniform(Shape::bchw(2, 3, 8, 8), rng, -1, 1);
  EXPECT_EQ(unet.forward(x, true).shape(), Shape::bchw(2, 1, 8, 8));
}

TEST(UNet, GradientMatchesNumeric) {
  runtime::Rng rng(12);
  UNetMini unet(1, 2, 1, rng);
  Tensor x = Tensor::uniform(Shape::bchw(1, 1, 4, 4), rng, -1, 1);
  testing::expect_gradients_match(unet, x, rng, 4e-2);
}

TEST(ConcatChannels, StacksAndSplits) {
  const Tensor a = Tensor::full(Shape::bchw(1, 2, 2, 2), 1.0f);
  const Tensor b = Tensor::full(Shape::bchw(1, 3, 2, 2), 2.0f);
  const Tensor merged = concat_channels(a, b);
  EXPECT_EQ(merged.shape(), Shape::bchw(1, 5, 2, 2));
  EXPECT_FLOAT_EQ(merged.at(0, 1, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(merged.at(0, 2, 0, 0), 2.0f);
  const auto [ga, gb] = split_channels(merged, 2);
  EXPECT_TRUE(tensor::allclose(ga, a, 0.0));
  EXPECT_TRUE(tensor::allclose(gb, b, 0.0));
}

TEST(ConcatChannels, IncompatibleShapesThrow) {
  EXPECT_THROW(concat_channels(Tensor(Shape::bchw(1, 1, 2, 2)),
                               Tensor(Shape::bchw(1, 1, 4, 4))),
               std::invalid_argument);
}

}  // namespace
}  // namespace aic::nn
