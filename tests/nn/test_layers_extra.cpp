#include "nn/layers_extra.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/nn/grad_check.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Dropout, EvalModeIsIdentity) {
  runtime::Rng rng(1);
  Dropout dropout(0.5f);
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 8, 8), rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(dropout.forward(x, false), x, 0.0));
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  runtime::Rng rng(2);
  Dropout dropout(0.0f);
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 8, 8), rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(dropout.forward(x, true), x, 0.0));
}

TEST(Dropout, DropsRoughlyRateFraction) {
  Dropout dropout(0.3f, 5);
  const Tensor x = Tensor::full(Shape::bchw(1, 1, 64, 64), 1.0f);
  const Tensor y = dropout.forward(x, true);
  std::size_t zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) ++zeros;
  }
  const double fraction = static_cast<double>(zeros) / y.numel();
  EXPECT_NEAR(fraction, 0.3, 0.05);
}

TEST(Dropout, SurvivorsAreRescaled) {
  Dropout dropout(0.5f, 6);
  const Tensor x = Tensor::full(Shape::bchw(1, 1, 16, 16), 3.0f);
  const Tensor y = dropout.forward(x, true);
  for (float v : y.data()) {
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 6.0f) < 1e-5f) << v;
  }
}

TEST(Dropout, ExpectationPreserved) {
  // Inverted dropout keeps E[y] = x.
  Dropout dropout(0.4f, 7);
  const Tensor x = Tensor::full(Shape::bchw(1, 1, 64, 64), 2.0f);
  double mean = 0.0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    mean += tensor::mean(dropout.forward(x, true));
  }
  EXPECT_NEAR(mean / kTrials, 2.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout dropout(0.5f, 8);
  const Tensor x = Tensor::full(Shape::bchw(1, 1, 8, 8), 1.0f);
  const Tensor y = dropout.forward(x, true);
  const Tensor g = dropout.backward(Tensor::full(x.shape(), 1.0f));
  // Gradient must be zero exactly where the forward output was zero.
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_EQ(y.at(i) == 0.0f, g.at(i) == 0.0f) << i;
  }
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(AvgPool, ForwardAverages) {
  AvgPool2d pool;
  Tensor x(Shape::bchw(1, 1, 2, 2), {1, 2, 3, 6});
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 3.0f);
}

TEST(AvgPool, GradientMatchesNumeric) {
  runtime::Rng rng(9);
  AvgPool2d pool;
  Tensor x = Tensor::uniform(Shape::bchw(2, 2, 4, 4), rng, -1, 1);
  testing::expect_gradients_match(pool, x, rng);
}

TEST(AvgPool, OddDimsThrow) {
  AvgPool2d pool;
  EXPECT_THROW(pool.forward(Tensor(Shape::bchw(1, 1, 3, 4)), true),
               std::invalid_argument);
}

TEST(LeakyRelu, ForwardSlopesNegatives) {
  LeakyRelu leaky(0.1f);
  const Tensor x(Shape::vector(3), {-2, 0, 5});
  const Tensor y = leaky.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), -0.2f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 5.0f);
}

TEST(LeakyRelu, GradientMatchesNumeric) {
  runtime::Rng rng(10);
  LeakyRelu leaky(0.2f);
  Tensor x = tensor::map(Tensor::uniform(Shape::bchw(1, 2, 4, 4), rng, -1, 1),
                         [](float v) { return v + (v >= 0 ? 0.2f : -0.2f); });
  testing::expect_gradients_match(leaky, x, rng);
}

TEST(Tanh, ForwardRange) {
  Tanh tanh_layer;
  const Tensor x(Shape::vector(3), {-10, 0, 10});
  const Tensor y = tanh_layer.forward(x, true);
  EXPECT_NEAR(y.at(0), -1.0f, 1e-4f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_NEAR(y.at(2), 1.0f, 1e-4f);
}

TEST(Tanh, GradientMatchesNumeric) {
  runtime::Rng rng(11);
  Tanh tanh_layer;
  Tensor x = Tensor::uniform(Shape::bchw(1, 2, 3, 3), rng, -2, 2);
  testing::expect_gradients_match(tanh_layer, x, rng);
}

}  // namespace
}  // namespace aic::nn
