#include "nn/weight_quantization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(WeightQuant, InvalidBitsThrow) {
  Param p(Tensor(Shape::vector(4)));
  EXPECT_THROW(measure_weight_quantization({&p}, 0), std::invalid_argument);
  EXPECT_THROW(measure_weight_quantization({&p}, 17), std::invalid_argument);
}

TEST(WeightQuant, ErrorBoundedByHalfStep) {
  runtime::Rng rng(1);
  Param p(Tensor::uniform(Shape::matrix(16, 16), rng, -2.0f, 3.0f));
  const auto report = measure_weight_quantization({&p}, 6);
  // Half a quantization step of the [-2, 3] range at 6 bits.
  const double half_step = 0.5 * 5.0 / 63.0;
  EXPECT_LE(report.max_abs_change, half_step + 1e-6);
}

TEST(WeightQuant, MoreBitsSmallerChange) {
  runtime::Rng rng(2);
  Param p(Tensor::uniform(Shape::matrix(16, 16), rng, -1.0f, 1.0f));
  const auto coarse = measure_weight_quantization({&p}, 2);
  const auto fine = measure_weight_quantization({&p}, 12);
  EXPECT_LT(fine.max_abs_change, coarse.max_abs_change);
}

TEST(WeightQuant, FootprintAccounting) {
  Param p(Tensor(Shape::vector(64)));
  const auto report = measure_weight_quantization({&p}, 8);
  EXPECT_EQ(report.parameters, 64u);
  EXPECT_EQ(report.fp32_bytes, 256u);
  EXPECT_EQ(report.quantized_bytes, 64u + 8u);  // payload + scale/offset
  EXPECT_NEAR(report.compression_ratio(), 256.0 / 72.0, 1e-9);
}

TEST(WeightQuant, ConstantTensorIsExact) {
  Param p(Tensor::full(Shape::vector(10), 0.37f));
  const auto report = measure_weight_quantization({&p}, 2);
  EXPECT_EQ(report.max_abs_change, 0.0);
}

TEST(WeightQuant, RangeEndpointsPreserved) {
  Param p(Tensor(Shape::vector(3), {-1.0f, 0.1f, 2.0f}));
  std::vector<Tensor> q;
  measure_weight_quantization({&p}, 4, &q);
  EXPECT_FLOAT_EQ(q[0].at(0), -1.0f);
  EXPECT_FLOAT_EQ(q[0].at(2), 2.0f);
}

TEST(WeightQuant, InPlaceQuantizationMutatesModel) {
  runtime::Rng rng(3);
  auto model = make_encoder_decoder(1, rng, 4);
  const Tensor before = model->params()[0]->value;
  const auto report = quantize_weights(*model, 3);
  EXPECT_GT(report.max_abs_change, 0.0);
  EXPECT_FALSE(
      tensor::allclose(model->params()[0]->value, before, 1e-6));
}

TEST(WeightQuant, EightBitPreservesAccuracyTwoBitHurts) {
  // The deployment story: train, quantize, measure. 8-bit PTQ is nearly
  // free; 2-bit visibly degrades.
  const data::DatasetConfig config{.train_samples = 48,
                                   .test_samples = 16,
                                   .batch_size = 16,
                                   .resolution = 16,
                                   .seed = 21};
  const auto dataset = data::make_denoise_dataset(config);
  runtime::Rng rng(4);
  auto model = make_encoder_decoder(1, rng, 4);
  Adam adam(model->params(), 0.005f);
  Trainer trainer(*model, adam, TaskKind::kRegression);
  for (int epoch = 0; epoch < 6; ++epoch) trainer.train_epoch(dataset.train);
  const double baseline = trainer.evaluate(dataset.test).loss;

  // Snapshot, quantize at 8 bits, evaluate, restore, quantize at 2 bits.
  std::vector<Tensor> snapshot;
  for (Param* p : model->params()) snapshot.push_back(p->value);

  quantize_weights(*model, 8);
  const double at8 = trainer.evaluate(dataset.test).loss;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    model->params()[i]->value = snapshot[i];
  }
  quantize_weights(*model, 2);
  const double at2 = trainer.evaluate(dataset.test).loss;

  // 8-bit PTQ is near-free; 2-bit perturbs the model far more (in either
  // direction — at this training scale a large perturbation can even
  // luck into a lower loss, so we assert distance, not ordering).
  EXPECT_LT(std::fabs(at8 - baseline), 0.05 * baseline + 1e-6);
  EXPECT_GT(std::fabs(at2 - baseline), 4.0 * std::fabs(at8 - baseline));
}

}  // namespace
}  // namespace aic::nn
