#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  const Tensor logits(Shape::bchw(2, 4, 1, 1));
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.value, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, ConfidentCorrectPredictionNearZeroLoss) {
  Tensor logits(Shape::bchw(1, 3, 1, 1), {20.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.value, 1e-6);
}

TEST(CrossEntropy, GradientSumsToZeroPerSample) {
  runtime::Rng rng(1);
  const Tensor logits =
      Tensor::uniform(Shape::bchw(3, 5, 1, 1), rng, -2, 2);
  const LossResult r = softmax_cross_entropy(logits, {1, 4, 0});
  for (std::size_t b = 0; b < 3; ++b) {
    double total = 0.0;
    for (std::size_t k = 0; k < 5; ++k) total += r.grad.at(b, k, 0, 0);
    EXPECT_NEAR(total, 0.0, 1e-6) << b;
  }
}

TEST(CrossEntropy, GradientMatchesNumeric) {
  runtime::Rng rng(2);
  Tensor logits = Tensor::uniform(Shape::bchw(2, 4, 1, 1), rng, -1, 1);
  const std::vector<std::size_t> labels = {2, 0};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + eps;
    const double plus = softmax_cross_entropy(logits, labels).value;
    logits.at(i) = saved - eps;
    const double minus = softmax_cross_entropy(logits, labels).value;
    logits.at(i) = saved;
    EXPECT_NEAR(r.grad.at(i), (plus - minus) / (2 * eps), 1e-3) << i;
  }
}

TEST(CrossEntropy, InvalidLabelThrows) {
  const Tensor logits(Shape::bchw(1, 3, 1, 1));
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Accuracy, CountsTopOne) {
  Tensor logits(Shape::bchw(2, 3, 1, 1), {1, 5, 2, 9, 0, 1});
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 0}), 0.5);
}

TEST(MseLoss, KnownValueAndGradient) {
  const Tensor pred(Shape::vector(2), {1.0f, 3.0f});
  const Tensor target(Shape::vector(2), {0.0f, 0.0f});
  const LossResult r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, (1.0 + 9.0) / 2.0);
  EXPECT_FLOAT_EQ(r.grad.at(0), 1.0f);   // 2*1/2
  EXPECT_FLOAT_EQ(r.grad.at(1), 3.0f);   // 2*3/2
}

TEST(BceWithLogits, MatchesAnalyticForm) {
  const Tensor logits(Shape::vector(2), {0.0f, 2.0f});
  const Tensor targets(Shape::vector(2), {1.0f, 0.0f});
  const LossResult r = bce_with_logits(logits, targets);
  // -log(sigmoid(0)) = log 2 ; -log(1-sigmoid(2)) = log(1+e^2)
  const double expected =
      (std::log(2.0) + std::log(1.0 + std::exp(2.0))) / 2.0;
  EXPECT_NEAR(r.value, expected, 1e-6);
}

TEST(BceWithLogits, StableForExtremeLogits) {
  const Tensor logits(Shape::vector(2), {100.0f, -100.0f});
  const Tensor targets(Shape::vector(2), {1.0f, 0.0f});
  const LossResult r = bce_with_logits(logits, targets);
  EXPECT_LT(r.value, 1e-6);
  EXPECT_TRUE(std::isfinite(r.grad.at(0)));
}

TEST(BceWithLogits, GradientMatchesNumeric) {
  runtime::Rng rng(3);
  Tensor logits = Tensor::uniform(Shape::bchw(1, 1, 2, 2), rng, -2, 2);
  const Tensor targets(Shape::bchw(1, 1, 2, 2), {1, 0, 1, 0});
  const LossResult r = bce_with_logits(logits, targets);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + eps;
    const double plus = bce_with_logits(logits, targets).value;
    logits.at(i) = saved - eps;
    const double minus = bce_with_logits(logits, targets).value;
    logits.at(i) = saved;
    EXPECT_NEAR(r.grad.at(i), (plus - minus) / (2 * eps), 1e-3);
  }
}

TEST(PixelAccuracy, ThresholdsAtZeroLogit) {
  const Tensor logits(Shape::bchw(1, 1, 2, 2), {5, -5, 5, -5});
  const Tensor targets(Shape::bchw(1, 1, 2, 2), {1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(pixel_accuracy(logits, targets), 0.75);
}

TEST(Sgd, StepMovesAgainstGradient) {
  Param p(Tensor(Shape::vector(2), {1.0f, 2.0f}));
  p.grad = Tensor(Shape::vector(2), {0.5f, -1.0f});
  Sgd sgd({&p}, 0.1f);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 0.95f);
  EXPECT_FLOAT_EQ(p.value.at(1), 2.1f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p(Tensor(Shape::vector(1), {0.0f}));
  Sgd sgd({&p}, 1.0f, 0.9f);
  p.grad.at(0) = 1.0f;
  sgd.step();  // v=1, x=-1
  sgd.step();  // v=1.9, x=-2.9
  EXPECT_FLOAT_EQ(p.value.at(0), -2.9f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p(Tensor(Shape::vector(1), {10.0f}));
  Sgd sgd({&p}, 0.1f, 0.0f, 0.1f);
  p.grad.at(0) = 0.0f;
  sgd.step();
  EXPECT_NEAR(p.value.at(0), 10.0f - 0.1f * 1.0f, 1e-5f);
}

TEST(Sgd, ZeroGradClearsGradients) {
  Param p(Tensor(Shape::vector(1), {0.0f}));
  p.grad.at(0) = 5.0f;
  Sgd sgd({&p}, 0.1f);
  sgd.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.0f);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  Param p(Tensor(Shape::vector(1), {0.0f}));
  Adam adam({&p}, 0.01f);
  p.grad.at(0) = 3.0f;  // any positive gradient
  adam.step();
  // Bias-corrected first step ≈ lr regardless of gradient scale.
  EXPECT_NEAR(p.value.at(0), -0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (x-3)^2 — Adam should get close within a few hundred steps.
  Param p(Tensor(Shape::vector(1), {0.0f}));
  Adam adam({&p}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    adam.zero_grad();
    p.grad.at(0) = 2.0f * (p.value.at(0) - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 0.05f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Param p(Tensor(Shape::vector(1), {10.0f}));
  Sgd sgd({&p}, 0.1f, 0.5f);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    p.grad.at(0) = 2.0f * (p.value.at(0) - 3.0f);
    sgd.step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 0.01f);
}

}  // namespace
}  // namespace aic::nn
