#include "nn/compressed_activation.hpp"

#include <gtest/gtest.h>

#include "core/dct_chop.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

core::CodecPtr make_codec(std::size_t n, std::size_t cf) {
  return std::make_shared<core::DctChopCodec>(
      core::DctChopConfig{.height = n, .width = n, .cf = cf, .block = 8});
}

TEST(CompressedActivation, ForwardAppliesCodecInTraining) {
  runtime::Rng rng(1);
  auto inner = std::make_unique<Conv2d>(1, 1, 3, 1, 1, rng);
  auto copy = std::make_unique<Conv2d>(1, 1, 3, 1, 1, rng);
  // Same weights for both copies.
  copy->params()[0]->value = inner->params()[0]->value;
  copy->params()[1]->value = inner->params()[1]->value;

  CompressedActivation wrapped(std::move(inner), make_codec(16, 2));
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng, -1, 1);
  const Tensor compressed_out = wrapped.forward(x, /*train=*/true);
  const Tensor raw_out = copy->forward(x, true);
  // Lossy codec perturbs the activation.
  EXPECT_FALSE(tensor::allclose(compressed_out, raw_out, 1e-6));
  // ... by exactly the codec's round trip.
  const auto codec = make_codec(16, 2);
  EXPECT_TRUE(
      tensor::allclose(compressed_out, codec->round_trip(raw_out), 1e-5));
}

TEST(CompressedActivation, EvalModeBypassesCodec) {
  runtime::Rng rng(2);
  auto inner = std::make_unique<Relu>();
  CompressedActivation wrapped(std::move(inner), make_codec(16, 2));
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng, -1, 1);
  Relu reference;
  EXPECT_TRUE(tensor::allclose(wrapped.forward(x, /*train=*/false),
                               reference.forward(x, false), 0.0));
}

TEST(CompressedActivation, NullCodecIsTransparent) {
  runtime::Rng rng(3);
  auto inner = std::make_unique<Relu>();
  CompressedActivation wrapped(std::move(inner), nullptr);
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 8, 8), rng, -1, 1);
  Relu reference;
  EXPECT_TRUE(tensor::allclose(wrapped.forward(x, true),
                               reference.forward(x, true), 0.0));
}

TEST(CompressedActivation, StraightThroughBackward) {
  // Gradient equals the inner layer's gradient (codec treated as I).
  runtime::Rng rng(4);
  auto inner = std::make_unique<Conv2d>(1, 1, 3, 1, 1, rng);
  auto copy = std::make_unique<Conv2d>(1, 1, 3, 1, 1, rng);
  copy->params()[0]->value = inner->params()[0]->value;
  copy->params()[1]->value = inner->params()[1]->value;

  CompressedActivation wrapped(std::move(inner), make_codec(16, 4));
  const Tensor x = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng, -1, 1);
  const Tensor go = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng, -1, 1);
  (void)wrapped.forward(x, true);
  const Tensor grad_wrapped = wrapped.backward(go);
  (void)copy->forward(x, true);
  const Tensor grad_raw = copy->backward(go);
  EXPECT_TRUE(tensor::allclose(grad_wrapped, grad_raw, 1e-6));
}

TEST(CompressedActivation, ExposesInnerParams) {
  runtime::Rng rng(5);
  auto inner = std::make_unique<Conv2d>(2, 3, 3, 1, 1, rng);
  CompressedActivation wrapped(std::move(inner), make_codec(16, 4));
  EXPECT_EQ(wrapped.params().size(), 2u);
  EXPECT_EQ(wrapped.name(), "compressed(conv2d)");
}

TEST(CompressedActivation, TrainingStillConverges) {
  // A small denoiser with a compressed mid-activation still learns —
  // the §6 "changing targets" scenario exercised end to end.
  runtime::Rng rng(6);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<CompressedActivation>(
          std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng), make_codec(16, 5)))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(4, 1, 3, 1, 1, rng));

  Adam adam(net->params(), 0.005f);
  const Tensor x = Tensor::uniform(Shape::bchw(8, 1, 16, 16), rng);
  const Tensor target = x;  // identity task
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 60; ++step) {
    const Tensor out = net->forward(x, true);
    const LossResult loss = mse_loss(out, target);
    if (step == 0) first = loss.value;
    last = loss.value;
    adam.zero_grad();
    net->backward(loss.grad);
    adam.step();
  }
  EXPECT_LT(last, first * 0.5);
}

}  // namespace
}  // namespace aic::nn
