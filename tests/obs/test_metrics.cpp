#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace aic::obs {
namespace {

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket 0 = [0, 2); bucket i >= 1 = [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 1u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(7), 2u);
  EXPECT_EQ(Histogram::bucket_index(8), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 9u);
  EXPECT_EQ(Histogram::bucket_index(1024), 10u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 63u);
}

TEST(Histogram, BucketBoundsAreConsistentWithIndex) {
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t lower = Histogram::bucket_lower(i);
    EXPECT_EQ(Histogram::bucket_index(lower), i);
    EXPECT_LT(static_cast<double>(lower), Histogram::bucket_upper(i));
  }
  EXPECT_EQ(Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower(5), 32u);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(5), 64.0);
}

TEST(Histogram, SnapshotCountSumMinMax) {
  Histogram h;
  h.record(5);
  h.record(100);
  h.record(1);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 106u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_NEAR(snap.mean(), 106.0 / 3.0, 1e-12);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 0.0);
}

TEST(Histogram, PercentileInterpolatesWithinOneBucket) {
  // 100 samples of 1000 land in bucket 9 = [512, 1024). The rank
  // interpolation walks the bucket linearly: p50 = 512 + 512·0.5.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.p50(), 768.0);
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), 1024.0);
  EXPECT_LE(snap.p50(), 1024.0);
  EXPECT_GE(snap.p50(), 512.0);
}

TEST(Histogram, PercentileAcrossBuckets) {
  // 50 samples at 1 (bucket 0) + 50 at 1024 (bucket 10 = [1024, 2048)).
  // p50 falls at the end of bucket 0: 0 + 2·(50/50) = 2. p90's rank 90
  // is 40 samples into bucket 10: 1024 + 1024·(40/50) = 1843.2.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 50; ++i) h.record(1024);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.p50(), 2.0);
  EXPECT_DOUBLE_EQ(snap.p90(), 1024.0 + 1024.0 * (40.0 / 50.0));
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h;
  h.record(42);
  h.reset();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(7);
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, snap.count * 7);
}

TEST(Registry, InstrumentsAreStableAndNamed) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("test.registry.counter");
  c.reset();
  c.add(3);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.registry.counter"), &c);
  bool found = false;
  for (const auto& [name, value] : reg.counters()) {
    if (name == "test.registry.counter") {
      found = true;
      EXPECT_EQ(value, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Registry, JsonContainsAllThreeSections) {
  Registry& reg = Registry::global();
  reg.counter("test.json.counter").add(1);
  reg.gauge("test.json.gauge").set(2.5);
  reg.histogram("test.json.hist").record(100);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace aic::obs
