#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace aic::obs {
namespace {

/// Enables tracing for one test body and restores a clean disabled state
/// afterwards (the suite shares process-global trace buffers).
class TracingOn {
 public:
  TracingOn() {
    set_tracing_enabled(false);
    clear_trace();
    set_tracing_enabled(true);
  }
  ~TracingOn() {
    set_tracing_enabled(false);
    clear_trace();
  }
};

std::vector<TraceSpan> spans_named(const std::vector<TraceSpan>& spans,
                                   const std::string& name) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& span : spans) {
    if (span.name != nullptr && name == span.name) out.push_back(span);
  }
  return out;
}

TEST(Trace, DisabledScopeRecordsNothing) {
  set_tracing_enabled(false);
  clear_trace();
  { AIC_TRACE_SCOPE("should.not.appear"); }
  EXPECT_TRUE(collect_trace().empty());
}

TEST(Trace, NestedScopesRecordDepthAndContainment) {
  TracingOn guard;
  {
    AIC_TRACE_SCOPE("outer");
    {
      AIC_TRACE_SCOPE("inner");
    }
  }
  set_tracing_enabled(false);
  const std::vector<TraceSpan> spans = collect_trace();
  const auto outer = spans_named(spans, "outer");
  const auto inner = spans_named(spans, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0u);
  EXPECT_EQ(inner[0].depth, 1u);
  EXPECT_EQ(outer[0].tid, inner[0].tid);
  // The inner span's interval is contained in the outer one's.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST(Trace, CollectSortsByThreadThenStart) {
  TracingOn guard;
  { AIC_TRACE_SCOPE("a"); }
  { AIC_TRACE_SCOPE("b"); }
  { AIC_TRACE_SCOPE("c"); }
  set_tracing_enabled(false);
  const std::vector<TraceSpan> spans = collect_trace();
  ASSERT_GE(spans.size(), 3u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i - 1].tid == spans[i].tid) {
      EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
    } else {
      EXPECT_LT(spans[i - 1].tid, spans[i].tid);
    }
  }
}

TEST(Trace, ExportedJsonHasNestedOrderedEvents) {
  TracingOn guard;
  {
    AIC_TRACE_SCOPE("json.outer");
    { AIC_TRACE_SCOPE("json.inner"); }
  }
  std::ostringstream out;
  export_chrome_trace(out);  // disables tracing itself
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  const std::size_t outer_pos = json.find("\"name\":\"json.outer\"");
  const std::size_t inner_pos = json.find("\"name\":\"json.inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  // Same thread, sorted by start time: outer starts first.
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(json.find("\"depth\":0"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);

  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, RingBufferWrapsAndCountsDrops) {
  // Capacity applies to buffers of threads registering *after* the call,
  // so the recording runs on a fresh thread.
  TracingOn guard;
  const std::size_t saved = trace_buffer_capacity();
  set_trace_buffer_capacity(32);
  const std::uint64_t dropped_before = trace_events_dropped();
  std::thread recorder([] {
    for (int i = 0; i < 100; ++i) {
      AIC_TRACE_SCOPE("wrap.span");
    }
  });
  recorder.join();
  set_tracing_enabled(false);
  set_trace_buffer_capacity(saved);

  const auto wrapped = spans_named(collect_trace(), "wrap.span");
  EXPECT_EQ(wrapped.size(), 32u);  // only the newest ring's worth retained
  EXPECT_EQ(trace_events_dropped() - dropped_before, 100u - 32u);
  // The retained spans are the most recent pushes: strictly increasing
  // start times within the thread.
  for (std::size_t i = 1; i < wrapped.size(); ++i) {
    EXPECT_GE(wrapped[i].start_ns, wrapped[i - 1].start_ns);
  }
}

TEST(Trace, MultiThreadedStress) {
  TracingOn guard;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 2000;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&started] {
      started.fetch_add(1);
      while (started.load() < kThreads) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        AIC_TRACE_SCOPE("stress.outer");
        AIC_TRACE_SCOPE("stress.inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  set_tracing_enabled(false);

  const std::vector<TraceSpan> spans = collect_trace();
  const auto outer = spans_named(spans, "stress.outer");
  const auto inner = spans_named(spans, "stress.inner");
  // Default capacity (65536) is larger than 2·2000 per thread: lossless.
  EXPECT_EQ(outer.size(), static_cast<std::size_t>(kThreads) *
                              kSpansPerThread);
  EXPECT_EQ(inner.size(), outer.size());
  std::vector<std::uint32_t> tids;
  for (const TraceSpan& span : outer) tids.push_back(span.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  for (const TraceSpan& span : inner) EXPECT_EQ(span.depth, 1u);
  // Export of the full stress trace still yields structurally balanced
  // JSON.
  std::ostringstream out;
  export_chrome_trace(out);
  const std::string json = out.str();
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, ClearDropsRecordedSpans) {
  TracingOn guard;
  { AIC_TRACE_SCOPE("cleared"); }
  set_tracing_enabled(false);
  EXPECT_FALSE(spans_named(collect_trace(), "cleared").empty());
  clear_trace();
  EXPECT_TRUE(spans_named(collect_trace(), "cleared").empty());
}

}  // namespace
}  // namespace aic::obs
