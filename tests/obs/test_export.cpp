#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/trace.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace aic::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "aic_obs_export_" + name + "_" +
         std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition

TEST(OpenMetricsExport, NameSanitization) {
  EXPECT_EQ(openmetrics_name("plan_cache.hit"), "plan_cache_hit");
  EXPECT_EQ(openmetrics_name("io.decode_error.bad_magic"),
            "io_decode_error_bad_magic");
  EXPECT_EQ(openmetrics_name("2fast"), "_2fast");
  // Sanitization is byte-wise: the 3-byte UTF-8 "№" becomes three
  // underscores (space + slash + 3 bytes = 5).
  EXPECT_EQ(openmetrics_name("weird name/№"), "weird_name____");
  EXPECT_EQ(openmetrics_name("already_legal:x9"), "already_legal:x9");
}

// Every line of the exposition must be either a `# TYPE` comment, the
// final `# EOF`, or a `name[{le="..."}] value` sample with a legal
// metric name and a parseable value.
TEST(OpenMetricsExport, GrammarConformance) {
  Registry& registry = Registry::global();
  registry.counter("test.om.requests").add(3);
  registry.gauge("test.om.depth").set(2.5);
  registry.histogram("test.om.lat").record(7);

  const std::string text = openmetrics_text(snapshot_registry());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  const std::regex type_line(
      R"re(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))re");
  const std::regex sample_line(
      R"re([a-zA-Z_:][a-zA-Z0-9_:]*(\{le="([0-9][0-9.e+]*|\+Inf)"\})? \S+)re");
  std::istringstream lines(text);
  std::string line;
  bool saw_counter = false, saw_bucket = false;
  while (std::getline(lines, line)) {
    if (line == "# EOF") continue;
    if (line.rfind("# TYPE", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_line)) << line;
      continue;
    }
    ASSERT_TRUE(std::regex_match(line, sample_line)) << line;
    // The value must parse as a finite double.
    const std::string value = line.substr(line.rfind(' ') + 1);
    EXPECT_NO_THROW((void)std::stod(value)) << line;
    if (line.rfind("test_om_requests_total ", 0) == 0) saw_counter = true;
    if (line.rfind("test_om_lat_bucket{", 0) == 0) saw_bucket = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_bucket);
}

// Histogram buckets must be cumulative and monotone with `le` strictly
// increasing, the `+Inf` row equal to `_count`, and `_sum` exact.
TEST(OpenMetricsExport, HistogramBucketsCumulative) {
  Histogram& histogram = Registry::global().histogram("test.om.cumul");
  histogram.reset();
  histogram.record(1);    // bucket 0: [0, 2)
  histogram.record(3);    // bucket 1: [2, 4)
  histogram.record(3);
  histogram.record(100);  // bucket 6: [64, 128)

  const std::string text = openmetrics_text(snapshot_registry());
  std::istringstream lines(text);
  std::string line;
  std::vector<double> les;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0, inf_row = 0;
  std::uint64_t sum = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("test_om_cumul_bucket{le=\"", 0) == 0) {
      const std::size_t start = line.find('"') + 1;
      const std::size_t end = line.find('"', start);
      const std::string le = line.substr(start, end - start);
      const std::uint64_t value = std::stoull(line.substr(line.rfind(' ')));
      if (le == "+Inf") {
        inf_row = value;
      } else {
        les.push_back(std::stod(le));
        cumulative.push_back(value);
      }
    } else if (line.rfind("test_om_cumul_count ", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ')));
    } else if (line.rfind("test_om_cumul_sum ", 0) == 0) {
      sum = std::stoull(line.substr(line.rfind(' ')));
    }
  }
  ASSERT_GE(les.size(), 2u);
  for (std::size_t i = 1; i < les.size(); ++i) {
    EXPECT_GT(les[i], les[i - 1]);                    // le strictly increasing
    EXPECT_GE(cumulative[i], cumulative[i - 1]);      // counts monotone
  }
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(inf_row, count);
  EXPECT_EQ(cumulative.back(), count);  // highest bucket holds everything
  EXPECT_EQ(sum, 107u);
  // Spot-check the cumulative semantics: le="2" sees only the 1,
  // le="4" sees 1 and both 3s.
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_DOUBLE_EQ(les[0], 2.0);
  EXPECT_EQ(cumulative[1], 3u);
}

// ---------------------------------------------------------------------------
// Snapshot ring + exporter

TEST(SnapshotRing, WraparoundKeepsNewestAndSequences) {
  SnapshotRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i) ring.push(snapshot_registry());
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 10u);
  const std::vector<MetricsSnapshot> kept = ring.snapshots();
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].sequence, 7u + i);  // oldest surviving push is #7
  }
  EXPECT_EQ(ring.latest().sequence, 10u);
}

TEST(Exporter, StartStopIdempotentAndJsonlAppends) {
  const std::string jsonl = temp_path("exporter.jsonl");
  std::remove(jsonl.c_str());

  Exporter& exporter = Exporter::global();
  exporter.stop();  // must be safe when not running

  Exporter::Options options;
  options.interval_ms = 10;
  options.jsonl_path = jsonl;
  ASSERT_TRUE(exporter.start(options));
  EXPECT_FALSE(exporter.start(options));  // second start: no-op
  EXPECT_TRUE(exporter.running());
  EXPECT_GT(exporter.latest().mono_ns, 0u);  // start() samples synchronously

  const std::uint64_t samples_before = exporter.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  exporter.stop();
  exporter.stop();  // idempotent
  EXPECT_FALSE(exporter.running());
  EXPECT_GT(exporter.samples_taken(), samples_before);

  // Every JSONL record is one non-empty {...} line with the snapshot
  // fields.
  std::ifstream file(jsonl);
  ASSERT_TRUE(file.good());
  std::string line;
  std::size_t records = 0;
  while (std::getline(file, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"counters\""), std::string::npos);
    EXPECT_NE(line.find("\"mono_ns\""), std::string::npos);
    ++records;
  }
  EXPECT_GE(records, 1u);
  std::remove(jsonl.c_str());
}

// ---------------------------------------------------------------------------
// HTTP endpoint

TEST(HttpEndpoint, RouteWithoutSocket) {
  std::string body, content_type;
  EXPECT_EQ(HttpServer::route("/healthz", body, content_type, 64), 200);
  EXPECT_EQ(body, "ok\n");

  EXPECT_EQ(HttpServer::route("/metrics", body, content_type, 64), 200);
  EXPECT_EQ(content_type,
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
  EXPECT_NE(body.find("# EOF\n"), std::string::npos);

  EXPECT_EQ(HttpServer::route("/tracez", body, content_type, 64), 200);
  EXPECT_NE(body.find("traceEvents"), std::string::npos);

  EXPECT_EQ(HttpServer::route("/nope", body, content_type, 64), 404);
}

#if !defined(_WIN32)

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in address {};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&address),
                sizeof(address)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpEndpoint, LoopbackScrapeSmoke) {
  HttpServer& server = HttpServer::global();
  HttpServer::Options options;
  options.port = 0;  // ephemeral
  ASSERT_TRUE(server.start(options));
  const std::uint16_t port = server.port();
  ASSERT_GT(port, 0);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF\n"), std::string::npos);

  const std::string missing = http_get(port, "/definitely-not-a-route");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

#endif  // !_WIN32

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, CorruptRejectionWritesParseableDump) {
  const std::string path = temp_path("corrupt.aicflight");
  std::remove(path.c_str());

  flight::Options options;
  options.path = path;
  options.dump_on_corrupt = true;
  options.signals = false;
  options.terminate = false;
  flight::disarm();  // reset any prior armed state in this binary
  ASSERT_TRUE(flight::arm(options));
  flight::set_provenance("test_key", "test_value");

  const bool tracing_was_enabled = tracing_enabled();
  set_tracing_enabled(true);
  {
    AIC_TRACE_SCOPE("test.flight.span");
  }

  const std::uint64_t dumps_before = flight::dumps();
  try {
    io::raise_corrupt(io::CorruptKind::kBadMagic, "flight recorder test");
    FAIL() << "raise_corrupt must throw";
  } catch (const io::CorruptStream& error) {
    EXPECT_EQ(error.kind(), io::CorruptKind::kBadMagic);
  }
  EXPECT_EQ(flight::dumps(), dumps_before + 1);

  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty()) << path;
  EXPECT_NE(dump.find("\"format\":\"aicflight\""), std::string::npos);
  EXPECT_NE(dump.find("bad_magic"), std::string::npos);
  EXPECT_NE(dump.find("flight recorder test"), std::string::npos);
  EXPECT_NE(dump.find("test.flight.span"), std::string::npos);
  EXPECT_NE(dump.find("\"test_key\":\"test_value\""), std::string::npos);

  set_tracing_enabled(tracing_was_enabled);
  flight::disarm();
  std::remove(path.c_str());
}

#if !defined(_WIN32)

// A fatal signal must still produce a parseable dump: fork a child that
// arms the recorder and segfaults; the parent checks both the exit
// status and the dump file.
TEST(FlightRecorder, FatalSignalDumpsFromChild) {
  // Quiesce background threads before forking: a thread holding a lock
  // at fork time would deadlock the child.
  Exporter::global().stop();
  HttpServer::global().stop();

  const std::string path = temp_path("segv.aicflight");
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    flight::Options options;
    options.path = path;
    options.terminate = false;
    flight::disarm();
    if (!flight::arm(options)) ::_exit(3);
    ::raise(SIGSEGV);
    ::_exit(4);  // unreachable: the handler re-raises with SIG_DFL
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string dump = slurp(path);
  ASSERT_FALSE(dump.empty()) << path;
  EXPECT_NE(dump.find("\"format\":\"aicflight\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"signal\""), std::string::npos);
  EXPECT_NE(dump.find("\"signal\":11"), std::string::npos);
  std::remove(path.c_str());
}

#endif  // !_WIN32

// ---------------------------------------------------------------------------
// Histogram reset/snapshot coherence (the seqlock satellite)

// Writer loops {reset; record 5 a hundred times} while readers snapshot.
// The documented guarantee: a snapshot observes one reset epoch, so
// within it sum(buckets) can never exceed the records of one epoch (100)
// and never undercounts `count` (record bumps bucket before count).
TEST(HistogramCoherence, SnapshotNeverMixesResetEpochs) {
  Histogram& histogram = Registry::global().histogram("test.seqlock.hist");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.reset();
      for (int i = 0; i < 100; ++i) histogram.record(5);
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  std::size_t snapshots_checked = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const HistogramSnapshot snapshot = histogram.snapshot();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t bucket : snapshot.buckets) bucket_total += bucket;
    EXPECT_LE(bucket_total, 100u);          // one epoch's records at most
    EXPECT_GE(bucket_total, snapshot.count);  // bucket bumps before count
    EXPECT_LE(snapshot.sum, 500u);          // 100 records of value 5
    ++snapshots_checked;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(snapshots_checked, 100u);
}

}  // namespace
}  // namespace aic::obs
