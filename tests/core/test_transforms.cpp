#include "core/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/dct_chop.hpp"
#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

class TransformFamily : public ::testing::TestWithParam<TransformKind> {};

TEST_P(TransformFamily, IsOrthonormal) {
  const TransformKind kind = GetParam();
  for (std::size_t n : {4u, 8u, 16u}) {
    const Tensor t = transform_matrix(kind, n);
    EXPECT_TRUE(allclose(tensor::matmul(t, t.transposed()),
                         Tensor::identity(n), 1e-5))
        << transform_name(kind) << " n=" << n;
  }
}

TEST_P(TransformFamily, ChopCodecRoundTripsLosslesslyAtFullCf) {
  const TransformKind kind = GetParam();
  runtime::Rng rng(1);
  const DctChopCodec codec({.height = 16,
                            .width = 16,
                            .cf = 8,
                            .block = 8,
                            .transform = kind});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 2, 16, 16), rng, -1, 1);
  EXPECT_TRUE(allclose(codec.round_trip(in), in, 1e-4))
      << transform_name(kind);
}

TEST_P(TransformFamily, ErrorDecreasesWithCf) {
  const TransformKind kind = GetParam();
  runtime::Rng rng(2);
  Tensor in(Shape::bchw(1, 1, 32, 32));
  for (std::size_t h = 0; h < 32; ++h) {
    for (std::size_t w = 0; w < 32; ++w) {
      in.at(0, 0, h, w) =
          static_cast<float>(std::sin(h * 0.25) + std::cos(w * 0.35));
    }
  }
  double last = 1e30;
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    const DctChopCodec codec({.height = 32,
                              .width = 32,
                              .cf = cf,
                              .block = 8,
                              .transform = kind});
    const double err = tensor::mse(in, codec.round_trip(in));
    EXPECT_LE(err, last + 1e-9) << transform_name(kind) << " cf=" << cf;
    last = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, TransformFamily,
                         ::testing::Values(TransformKind::kDct2,
                                           TransformKind::kWalshHadamard,
                                           TransformKind::kDst2),
                         [](const auto& info) {
                           return transform_name(info.param);
                         });

TEST(WalshHadamard, EntriesArePlusMinusInvSqrtN) {
  const Tensor t = walsh_hadamard_matrix(8);
  const float expected = 1.0f / std::sqrt(8.0f);
  for (float v : t.data()) {
    EXPECT_NEAR(std::fabs(v), expected, 1e-6f);
  }
}

TEST(WalshHadamard, SequencyOrdered) {
  const Tensor t = walsh_hadamard_matrix(8);
  auto changes = [&](std::size_t row) {
    int count = 0;
    for (std::size_t j = 1; j < 8; ++j) {
      if ((t.at(row, j) > 0) != (t.at(row, j - 1) > 0)) ++count;
    }
    return count;
  };
  for (std::size_t row = 1; row < 8; ++row) {
    EXPECT_GE(changes(row), changes(row - 1)) << row;
  }
  // Row 0 is constant (zero sequency), like the DCT's DC row.
  EXPECT_EQ(changes(0), 0);
}

TEST(WalshHadamard, NonPowerOfTwoThrows) {
  EXPECT_THROW(walsh_hadamard_matrix(6), std::invalid_argument);
  EXPECT_THROW(walsh_hadamard_matrix(0), std::invalid_argument);
}

TEST(Dst2, FirstRowIsLowestFrequency) {
  const Tensor t = dst2_matrix(8);
  // Row 0 = sin(pi(2j+1)/16): strictly positive and unimodal.
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_GT(t.at(0, j), 0.0f);
  }
}

TEST(Transforms, BlockDiagonalMatchesDctHelper) {
  const Tensor via_generic =
      block_diagonal_transform(TransformKind::kDct2, 24, 8);
  const Tensor via_dct = block_diagonal_dct(24, 8);
  EXPECT_TRUE(allclose(via_generic, via_dct, 0.0));
}

TEST(Transforms, DctBeatsWhtOnSmoothData) {
  // The DCT concentrates smooth-signal energy better than the WHT —
  // the reason it is the paper's default.
  runtime::Rng rng(3);
  Tensor in(Shape::bchw(1, 1, 32, 32));
  for (std::size_t h = 0; h < 32; ++h) {
    for (std::size_t w = 0; w < 32; ++w) {
      in.at(0, 0, h, w) =
          static_cast<float>(std::sin(h * 0.2) * std::cos(w * 0.15));
    }
  }
  const DctChopCodec dct({.height = 32, .width = 32, .cf = 3, .block = 8});
  const DctChopCodec wht({.height = 32,
                          .width = 32,
                          .cf = 3,
                          .block = 8,
                          .transform = TransformKind::kWalshHadamard});
  EXPECT_LT(tensor::mse(in, dct.round_trip(in)),
            tensor::mse(in, wht.round_trip(in)));
}

TEST(Transforms, NamesEncodeFamily) {
  const DctChopCodec wht({.height = 16,
                          .width = 16,
                          .cf = 4,
                          .block = 8,
                          .transform = TransformKind::kWalshHadamard});
  EXPECT_EQ(wht.name(), "wht+chop(cf=4,block=8)");
}

}  // namespace
}  // namespace aic::core
