#include "core/dct_chop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/dct.hpp"
#include "io/error.hpp"
#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

DctChopCodec make_codec(std::size_t n, std::size_t cf) {
  return DctChopCodec({.height = n, .width = n, .cf = cf, .block = 8});
}

TEST(DctChop, CompressedShapeMatchesEq4) {
  const DctChopCodec codec = make_codec(24, 5);
  const Shape out = codec.compressed_shape(Shape::bchw(2, 3, 24, 24));
  EXPECT_EQ(out, Shape::bchw(2, 3, 15, 15));
}

TEST(DctChop, CompressionRatioMatchesEq3) {
  EXPECT_DOUBLE_EQ(make_codec(32, 4).compression_ratio(), 4.0);
  EXPECT_DOUBLE_EQ(make_codec(32, 2).compression_ratio(), 16.0);
}

TEST(DctChop, RatioEqualsByteRatio) {
  runtime::Rng rng(1);
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    const DctChopCodec codec = make_codec(32, cf);
    const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 32, 32), rng);
    const Tensor packed = codec.compress(in);
    EXPECT_NEAR(static_cast<double>(in.size_bytes()) / packed.size_bytes(),
                codec.compression_ratio(), 1e-9)
        << "cf=" << cf;
  }
}

TEST(DctChop, CfEightIsLossless) {
  runtime::Rng rng(2);
  const DctChopCodec codec = make_codec(16, 8);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 2, 16, 16), rng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose(codec.round_trip(in), in, 1e-4));
}

TEST(DctChop, ConstantImageIsLosslessForAnyCf) {
  // A constant block has only a DC coefficient, which every CF >= 1 keeps.
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    const DctChopCodec codec = make_codec(16, cf);
    const Tensor in = Tensor::full(Shape::bchw(1, 1, 16, 16), 0.7f);
    EXPECT_TRUE(allclose(codec.round_trip(in), in, 1e-5)) << "cf=" << cf;
  }
}

TEST(DctChop, MatchesPerBlockReferencePipeline) {
  // Property: Eq. 4's two-matmul form equals reference blockwise DCT
  // followed by explicit corner extraction.
  runtime::Rng rng(3);
  const std::size_t n = 16, cf = 3;
  const DctChopCodec codec = make_codec(n, cf);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, n, n), rng, -1.0f, 1.0f);
  const Tensor packed = codec.compress(in);

  const Tensor coeffs = blockwise_dct_reference(in.slice_plane(0, 0), 8);
  for (std::size_t bi = 0; bi < n / 8; ++bi) {
    for (std::size_t bj = 0; bj < n / 8; ++bj) {
      for (std::size_t r = 0; r < cf; ++r) {
        for (std::size_t c = 0; c < cf; ++c) {
          EXPECT_NEAR(packed.at(0, 0, bi * cf + r, bj * cf + c),
                      coeffs.at(bi * 8 + r, bj * 8 + c), 1e-4);
        }
      }
    }
  }
}

TEST(DctChop, DecompressIsExactOnChoppedSubspace) {
  // compress(decompress(y)) == y: the codec is a projection, so data
  // already in the retained subspace round-trips exactly.
  runtime::Rng rng(4);
  const DctChopCodec codec = make_codec(16, 4);
  const Shape original = Shape::bchw(2, 1, 16, 16);
  const Tensor y = Tensor::uniform(codec.compressed_shape(original), rng);
  const Tensor restored = codec.decompress(y, original);
  const Tensor y2 = codec.compress(restored);
  EXPECT_TRUE(allclose(y, y2, 1e-4));
}

TEST(DctChop, RoundTripIsIdempotent) {
  // round_trip(round_trip(x)) == round_trip(x): projection property.
  runtime::Rng rng(5);
  const DctChopCodec codec = make_codec(24, 3);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 2, 24, 24), rng);
  const Tensor once = codec.round_trip(in);
  const Tensor twice = codec.round_trip(once);
  EXPECT_TRUE(allclose(once, twice, 1e-4));
}

TEST(DctChop, ErrorDecreasesWithCf) {
  runtime::Rng rng(6);
  // Smooth-ish signal: random low-frequency mixture plus mild noise.
  Tensor in(Shape::bchw(1, 1, 32, 32));
  for (std::size_t h = 0; h < 32; ++h) {
    for (std::size_t w = 0; w < 32; ++w) {
      in.at(0, 0, h, w) = static_cast<float>(
          std::sin(h * 0.3) + std::cos(w * 0.2) + 0.05 * rng.normal());
    }
  }
  double last = 1e30;
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    const double err = tensor::mse(in, make_codec(32, cf).round_trip(in));
    EXPECT_LE(err, last + 1e-9) << "cf=" << cf;
    last = err;
  }
}

TEST(DctChop, PreservesBlockMeans) {
  // CF >= 1 keeps the DC coefficient, so every 8×8 block mean survives.
  runtime::Rng rng(7);
  const DctChopCodec codec = make_codec(16, 1);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const Tensor out = codec.round_trip(in);
  for (std::size_t bi = 0; bi < 2; ++bi) {
    for (std::size_t bj = 0; bj < 2; ++bj) {
      double mean_in = 0.0, mean_out = 0.0;
      for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 8; ++c) {
          mean_in += in.at(0, 0, bi * 8 + r, bj * 8 + c);
          mean_out += out.at(0, 0, bi * 8 + r, bj * 8 + c);
        }
      }
      EXPECT_NEAR(mean_in / 64, mean_out / 64, 1e-4);
    }
  }
}

TEST(DctChop, ChannelsAreIndependent) {
  runtime::Rng rng(8);
  const DctChopCodec codec = make_codec(16, 4);
  Tensor in = Tensor::uniform(Shape::bchw(1, 3, 16, 16), rng);
  const Tensor out_all = codec.round_trip(in);
  // Round-tripping channel 1 alone gives the same plane.
  Tensor single(Shape::bchw(1, 1, 16, 16));
  single.set_plane(0, 0, in.slice_plane(0, 1));
  const Tensor out_single = codec.round_trip(single);
  EXPECT_TRUE(allclose(out_all.slice_plane(0, 1),
                       out_single.slice_plane(0, 0), 1e-5));
}

TEST(DctChop, FastPathMatchesReferenceMatmulSandwichExactly) {
  // The codec's structurally-sparse kernel must reproduce the plain
  // two-matmul sandwich of Eq. 4/6 element-for-element (identical
  // contributions in identical order — no new rounding).
  runtime::Rng rng(20);
  for (std::size_t cf : {1u, 3u, 4u, 8u}) {
    const DctChopCodec codec(
        {.height = 32, .width = 64, .cf = cf, .block = 8});
    const Tensor in = Tensor::uniform(Shape::bchw(2, 2, 32, 64), rng, -1.0f, 1.0f);
    const Tensor packed = codec.compress(in);
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t c = 0; c < 2; ++c) {
        const Tensor expected = tensor::matmul(
            codec.lhs(), tensor::matmul(in.slice_plane(b, c), codec.rhs()));
        const Tensor got = packed.slice_plane(b, c);
        for (std::size_t i = 0; i < expected.numel(); ++i) {
          ASSERT_EQ(got.at(i), expected.at(i)) << "cf=" << cf << " plane "
                                               << b << "," << c;
        }
      }
    }
  }
}

TEST(DctChop, NonSquareRoundTripThroughCodec) {
  runtime::Rng rng(21);
  const DctChopCodec codec({.height = 32, .width = 64, .cf = 4, .block = 8});
  const Shape original = Shape::bchw(2, 3, 32, 64);
  EXPECT_EQ(codec.compressed_shape(original), Shape::bchw(2, 3, 16, 32));
  EXPECT_DOUBLE_EQ(codec.compression_ratio(), 4.0);
  const Tensor in = Tensor::uniform(original, rng, -1.0f, 1.0f);
  const Tensor packed = codec.compress(in);
  EXPECT_NEAR(static_cast<double>(in.size_bytes()) / packed.size_bytes(),
              codec.compression_ratio(), 1e-9);
  const Tensor restored = codec.decompress(packed, original);
  EXPECT_EQ(restored.shape(), original);
  // Projection property holds on rectangles too.
  EXPECT_TRUE(allclose(codec.compress(restored), packed, 1e-4));
}

TEST(DctChop, NonSquareCfEightIsLossless) {
  runtime::Rng rng(22);
  const DctChopCodec codec({.height = 16, .width = 40, .cf = 8, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 2, 16, 40), rng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose(codec.round_trip(in), in, 1e-4));
}

TEST(DctChop, RectangularResolutionSupported) {
  runtime::Rng rng(9);
  const DctChopCodec codec(
      {.height = 16, .width = 32, .cf = 4, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(2, 1, 16, 32), rng);
  const Tensor packed = codec.compress(in);
  EXPECT_EQ(packed.shape(), Shape::bchw(2, 1, 8, 16));
  const Tensor out = codec.decompress(packed, in.shape());
  EXPECT_EQ(out.shape(), in.shape());
}

TEST(DctChop, WrongResolutionThrows) {
  const DctChopCodec codec = make_codec(16, 4);
  const Tensor wrong(Shape::bchw(1, 1, 24, 24));
  EXPECT_THROW(codec.compress(wrong), std::invalid_argument);
}

TEST(DctChop, WrongPackedShapeThrows) {
  const DctChopCodec codec = make_codec(16, 4);
  const Tensor packed(Shape::bchw(1, 1, 9, 8));
  EXPECT_THROW(codec.decompress(packed, Shape::bchw(1, 1, 16, 16)),
               io::CorruptStream);
}

TEST(DctChop, InvalidConfigThrows) {
  EXPECT_THROW(DctChopCodec({.height = 20, .width = 16, .cf = 4, .block = 8}),
               std::invalid_argument);
  EXPECT_THROW(DctChopCodec({.height = 16, .width = 16, .cf = 0, .block = 8}),
               std::invalid_argument);
  EXPECT_THROW(DctChopCodec({.height = 16, .width = 16, .cf = 9, .block = 8}),
               std::invalid_argument);
}

TEST(DctChop, NameEncodesConfig) {
  EXPECT_EQ(make_codec(16, 4).name(), "dct+chop(cf=4,block=8)");
}

class DctChopFlops : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctChopFlops, ClosedFormMatchesTwoMatmulDecomposition) {
  // Eq. 5/7 with the (2k−1) dot-product convention must equal the sum of
  // the two chained matmul costs.
  const std::size_t cf = GetParam();
  for (std::size_t n : {8u, 16u, 64u, 256u}) {
    const std::size_t cn = cf * n / 8;
    // compress: (n×n)·(n×cn) then (cn×n)·(n×cn)
    const std::size_t c1 = (2 * n - 1) * n * cn;
    const std::size_t c2 = (2 * n - 1) * cn * cn;
    EXPECT_EQ(DctChopCodec::flops_compress(n, cf), c1 + c2) << n;
    // decompress: (cn×cn)·(cn×n) then (n×cn)·(cn×n)
    const std::size_t d1 = (2 * cn - 1) * cn * n;
    const std::size_t d2 = (2 * cn - 1) * n * n;
    EXPECT_EQ(DctChopCodec::flops_decompress(n, cf), d1 + d2) << n;
  }
}

TEST_P(DctChopFlops, DecompressionCheaperBelowCfEight) {
  const std::size_t cf = GetParam();
  if (cf < 8) {
    EXPECT_LT(DctChopCodec::flops_decompress(64, cf),
              DctChopCodec::flops_compress(64, cf));
  } else {
    // At CF = 8 the paper's formulas coincide up to the n² correction.
    EXPECT_LE(DctChopCodec::flops_decompress(64, cf),
              DctChopCodec::flops_compress(64, cf));
  }
}

INSTANTIATE_TEST_SUITE_P(ChopFactors, DctChopFlops,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DctChopFlopsEq5, MatchesPaperPolynomialForm) {
  // Eq. 5: 2n³CF/8·(CF/8+1) − n²(CF/8 + CF²/64), evaluated in exact
  // integer arithmetic via a common denominator of 64.
  for (std::size_t n : {8u, 16u, 32u, 128u}) {
    for (std::size_t cf = 1; cf <= 8; ++cf) {
      const std::size_t lhs = 64 * DctChopCodec::flops_compress(n, cf);
      const std::size_t rhs =
          2 * n * n * n * cf * (cf + 8) - n * n * (8 * cf + cf * cf);
      EXPECT_EQ(lhs, rhs) << "n=" << n << " cf=" << cf;
    }
  }
}

TEST(DctChopFlopsEq7, MatchesPaperPolynomialForm) {
  // Eq. 7: 2n³CF/8·(CF/8+1) − n²(CF/8 + 1), common denominator 64.
  for (std::size_t n : {8u, 16u, 32u, 128u}) {
    for (std::size_t cf = 1; cf <= 8; ++cf) {
      const std::size_t lhs = 64 * DctChopCodec::flops_decompress(n, cf);
      const std::size_t rhs =
          2 * n * n * n * cf * (cf + 8) - n * n * (8 * cf + 64);
      EXPECT_EQ(lhs, rhs) << "n=" << n << " cf=" << cf;
    }
  }
}

}  // namespace
}  // namespace aic::core
