// Exhaustive property grid over the codec family: every (variant ×
// transform × CF × resolution × channel-count) combination must satisfy
// the invariants that make DCT+Chop a well-formed fixed-rate codec.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dct_chop.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

enum class Variant { kSquare, kTriangle, kPartialSerial };

struct GridCase {
  Variant variant;
  TransformKind transform;
  std::size_t cf;
  std::size_t resolution;
  std::size_t channels;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  std::string variant = c.variant == Variant::kSquare ? "sq"
                        : c.variant == Variant::kTriangle ? "tri"
                                                          : "ps";
  return variant + "_" + transform_name(c.transform) + "_cf" +
         std::to_string(c.cf) + "_n" + std::to_string(c.resolution) + "_c" +
         std::to_string(c.channels);
}

CodecPtr make_grid_codec(const GridCase& c) {
  const DctChopConfig config{.height = c.resolution,
                             .width = c.resolution,
                             .cf = c.cf,
                             .block = 8,
                             .transform = c.transform};
  switch (c.variant) {
    case Variant::kSquare:
      return std::make_shared<DctChopCodec>(config);
    case Variant::kTriangle:
      return std::make_shared<TriangleCodec>(config);
    case Variant::kPartialSerial:
      return std::make_shared<PartialSerialCodec>(
          PartialSerialConfig{.height = c.resolution,
                              .width = c.resolution,
                              .cf = c.cf,
                              .block = 8,
                              .transform = c.transform,
                              .subdivision = 2});
  }
  throw std::logic_error("bad variant");
}

class CodecGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(CodecGrid, Invariants) {
  const GridCase& c = GetParam();
  const CodecPtr codec = make_grid_codec(c);
  runtime::Rng rng(1000 + c.cf + c.resolution);
  const Tensor in = Tensor::uniform(
      Shape::bchw(2, c.channels, c.resolution, c.resolution), rng, -1, 1);

  // 1. compressed_shape is consistent with compress().
  const Tensor packed = codec->compress(in);
  ASSERT_EQ(packed.shape(), codec->compressed_shape(in.shape()));

  // 2. byte ratio equals nominal CR.
  EXPECT_NEAR(static_cast<double>(in.size_bytes()) / packed.size_bytes(),
              codec->compression_ratio(), 1e-9);

  // 3. decompress restores the original shape.
  const Tensor restored = codec->decompress(packed, in.shape());
  ASSERT_EQ(restored.shape(), in.shape());

  // 4. round trip is idempotent (the codec is a projection).
  const Tensor twice = codec->round_trip(restored);
  EXPECT_TRUE(tensor::allclose(restored, twice, 2e-4)) << codec->name();

  // 5. all outputs are finite.
  for (float v : restored.data()) {
    ASSERT_TRUE(std::isfinite(v));
  }

  // 6. constant inputs survive exactly (DC is always kept).
  const Tensor flat = Tensor::full(in.shape(), 0.25f);
  EXPECT_TRUE(tensor::allclose(codec->round_trip(flat), flat, 1e-5))
      << codec->name();
}

std::vector<GridCase> make_grid() {
  std::vector<GridCase> cases;
  for (Variant variant :
       {Variant::kSquare, Variant::kTriangle, Variant::kPartialSerial}) {
    for (TransformKind transform :
         {TransformKind::kDct2, TransformKind::kWalshHadamard}) {
      for (std::size_t cf : {2u, 5u, 8u}) {
        for (std::size_t resolution : {16u, 32u}) {
          const std::size_t channels = resolution == 16 ? 3 : 1;
          cases.push_back({variant, transform, cf, resolution, channels});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecGrid, ::testing::ValuesIn(make_grid()),
                         case_name);

}  // namespace
}  // namespace aic::core
