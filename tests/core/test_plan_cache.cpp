#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/chop.hpp"
#include "core/codec_factory.hpp"
#include "core/dct_chop.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << what << " at flat index " << i;
  }
}

// --- operand dedup (RHS = LHSᵀ, square axes share storage) ---

TEST(PlanOperands, RhsIsBitwiseTransposeOfLhs) {
  const auto plan = resolve_dct_chop_plan(Context::process_default(), 32, 64, 4, 8,
                                     TransformKind::kDct2);
  expect_bitwise_equal(plan->rhs_h(), plan->lhs_h().transposed(), "rhs_h");
  expect_bitwise_equal(plan->rhs_w(), plan->lhs_w().transposed(), "rhs_w");
  // Parity with the legacy independent construction path: make_rhs() was
  // make_lhs().transposed(), so sharing storage changes no bit.
  expect_bitwise_equal(plan->rhs_w(),
                       make_rhs(64, 4, 8, TransformKind::kDct2), "make_rhs");
  expect_bitwise_equal(plan->lhs_h(),
                       make_lhs(32, 4, 8, TransformKind::kDct2), "make_lhs");
}

TEST(PlanOperands, SquarePlanSharesOneOperandPair) {
  const auto square = resolve_dct_chop_plan(Context::process_default(), 32, 32, 4, 8,
                                    TransformKind::kDct2);
  EXPECT_TRUE(square->shares_square_operands());
  EXPECT_EQ(&square->lhs_h(), &square->lhs_w());
  EXPECT_EQ(&square->rhs_h(), &square->rhs_w());
  // Resident bytes bill the single shared pair once.
  EXPECT_EQ(square->resident_bytes(),
            square->lhs_h().size_bytes() + square->rhs_h().size_bytes());

  const auto rect = resolve_dct_chop_plan(Context::process_default(), 32, 64, 4, 8,
                                     TransformKind::kDct2);
  EXPECT_FALSE(rect->shares_square_operands());
  EXPECT_NE(&rect->lhs_h(), &rect->lhs_w());
  EXPECT_EQ(rect->resident_bytes(),
            rect->lhs_h().size_bytes() + rect->rhs_h().size_bytes() +
                rect->lhs_w().size_bytes() + rect->rhs_w().size_bytes());
}

// --- bitwise parity: fresh (uncached) plan vs cache-resolved plan ---

class PlanParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanParity, FreshVsCacheHitDctChopSquareAndRect) {
  const std::size_t cf = GetParam();
  runtime::Rng rng(101);
  struct Dims {
    std::size_t h, w;
  };
  for (const Dims d : {Dims{32, 32}, Dims{16, 32}, Dims{40, 16}}) {
    const PlanKey key =
        dct_chop_plan_key(d.h, d.w, cf, 8, TransformKind::kDct2);
    // Fresh: built directly, never cached. Cached: through the global
    // cache (a hit on every run after the first resolve).
    PlanCache scratch(/*byte_budget=*/0);
    const auto fresh = std::static_pointer_cast<const DctChopPlan>(
        build_core_plan(key, scratch));
    const auto cached = resolve_dct_chop_plan(Context::process_default(), d.h,
                                              d.w, cf, 8, TransformKind::kDct2);
    const Tensor in = Tensor::uniform(Shape::bchw(2, 3, d.h, d.w), rng,
                                      -1.0f, 1.0f);
    Tensor packed_fresh(fresh->packed_shape(in.shape()));
    Tensor packed_cached(cached->packed_shape(in.shape()));
    fresh->compress_into(in, packed_fresh);
    cached->compress_into(in, packed_cached);
    expect_bitwise_equal(packed_fresh, packed_cached, "compress");

    Tensor out_fresh(in.shape());
    Tensor out_cached(in.shape());
    fresh->decompress_into(packed_fresh, out_fresh);
    cached->decompress_into(packed_cached, out_cached);
    expect_bitwise_equal(out_fresh, out_cached, "decompress");
  }
}

TEST_P(PlanParity, PinnedVsShapeAgnosticCodecsMatchBitwise) {
  const std::size_t cf = GetParam();
  runtime::Rng rng(102);
  struct Dims {
    std::size_t h, w;
  };
  for (const Dims d : {Dims{32, 32}, Dims{16, 32}}) {
    const DctChopCodec pinned(
        {.height = d.h, .width = d.w, .cf = cf, .block = 8});
    const DctChopCodec agnostic({.cf = cf, .block = 8});
    const Tensor in = Tensor::uniform(Shape::bchw(1, 2, d.h, d.w), rng,
                                      -1.0f, 1.0f);
    expect_bitwise_equal(pinned.compress(in), agnostic.compress(in),
                         "pinned vs agnostic compress");
    expect_bitwise_equal(pinned.round_trip(in), agnostic.round_trip(in),
                         "pinned vs agnostic round trip");
  }
}

INSTANTIATE_TEST_SUITE_P(ChopFactors, PlanParity,
                         ::testing::Values(2, 4, 6));

class PartialParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartialParity, FreshVsCachedAcrossSubdivisions) {
  const std::size_t s = GetParam();
  runtime::Rng rng(103);
  const std::size_t res = 32 * s;  // chunks stay 32×32
  // First codec's construction builds (or reuses) the cached plan; the
  // second is a guaranteed cache hit. The serial chunk walk must produce
  // bitwise-identical streams either way.
  const PartialSerialCodec first({.height = res,
                                  .width = res,
                                  .cf = 4,
                                  .block = 8,
                                  .subdivision = s});
  const PartialSerialCodec second({.height = res,
                                   .width = res,
                                   .cf = 4,
                                   .block = 8,
                                   .subdivision = s});
  const Tensor in =
      Tensor::uniform(Shape::bchw(2, 1, res, res), rng, -1.0f, 1.0f);
  expect_bitwise_equal(first.compress(in), second.compress(in), "ps compress");
  expect_bitwise_equal(first.round_trip(in), second.round_trip(in),
                       "ps round trip");
}

INSTANTIATE_TEST_SUITE_P(Subdivisions, PartialParity,
                         ::testing::Values(1, 2, 4));

TEST(PlanParity, TriangleFreshVsCached) {
  runtime::Rng rng(104);
  const TriangleCodec first({.height = 32, .width = 32, .cf = 4, .block = 8});
  const TriangleCodec second({.height = 32, .width = 32, .cf = 4, .block = 8});
  const Tensor in =
      Tensor::uniform(Shape::bchw(2, 2, 32, 32), rng, -1.0f, 1.0f);
  expect_bitwise_equal(first.compress(in), second.compress(in), "sg compress");
  expect_bitwise_equal(first.round_trip(in), second.round_trip(in),
                       "sg round trip");
}

// --- cache mechanics on a standalone (non-global) instance ---

TEST(PlanCacheLocal, BuildsOncePerKeyAndCountsHits) {
  PlanCache cache(/*byte_budget=*/0);
  const PlanKey key = dct_chop_plan_key(16, 16, 4, 8, TransformKind::kDct2);
  const auto a = cache.resolve(key);
  const auto b = cache.resolve(key);
  EXPECT_EQ(a.get(), b.get());
  const PlanCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.builds, 1u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.entries, 1u);
  EXPECT_EQ(snap.resident_bytes, a->resident_bytes());
}

TEST(PlanCacheLocal, LruEvictionRespectsByteBudget) {
  PlanCache cache(/*byte_budget=*/0);
  const PlanKey k16 = dct_chop_plan_key(16, 16, 4, 8, TransformKind::kDct2);
  const PlanKey k24 = dct_chop_plan_key(24, 24, 4, 8, TransformKind::kDct2);
  const PlanKey k32 = dct_chop_plan_key(32, 32, 4, 8, TransformKind::kDct2);
  const auto p16 = cache.resolve(k16);

  // Budget for roughly one-and-a-half small plans: inserting more must
  // evict the least recently used entries.
  cache.set_byte_budget(p16->resident_bytes() * 3 / 2);
  cache.resolve(k24);  // evicts k16 (LRU), keeps k24 (MRU is never evicted)
  EXPECT_GE(cache.snapshot().evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);

  cache.resolve(k32);
  EXPECT_EQ(cache.size(), 1u);

  // Re-resolving an evicted key is a miss that rebuilds.
  const std::uint64_t builds_before = cache.snapshot().builds;
  cache.resolve(k16);
  EXPECT_EQ(cache.snapshot().builds, builds_before + 1);

  // An evicted plan stays usable while someone holds the shared_ptr.
  runtime::Rng rng(7);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const auto* chop = dynamic_cast<const DctChopPlan*>(p16.get());
  ASSERT_NE(chop, nullptr);
  Tensor packed(chop->packed_shape(in.shape()));
  chop->compress_into(in, packed);  // must not crash
}

TEST(PlanCacheLocal, NeverEvictsTheEntryJustInserted) {
  PlanCache cache(/*byte_budget=*/1);  // absurdly small budget
  const PlanKey key = dct_chop_plan_key(32, 32, 2, 8, TransformKind::kDct2);
  const auto plan = cache.resolve(key);
  // The MRU entry survives even though it alone exceeds the budget, so
  // an immediate second resolve is still a hit.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resolve(key).get(), plan.get());
}

TEST(PlanCacheLocal, ConcurrentResolveBuildsEachKeyExactlyOnce) {
  PlanCache cache(/*byte_budget=*/0);
  const std::vector<PlanKey> keys = {
      dct_chop_plan_key(16, 16, 2, 8, TransformKind::kDct2),
      dct_chop_plan_key(16, 16, 4, 8, TransformKind::kDct2),
      dct_chop_plan_key(16, 32, 4, 8, TransformKind::kDct2),
      dct_chop_plan_key(32, 32, 4, 8, TransformKind::kDct2),
      dct_chop_plan_key(32, 32, 6, 8, TransformKind::kDct2),
      dct_chop_plan_key(24, 24, 3, 8, TransformKind::kWalshHadamard),
  };
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 40;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const PlanKey& key = keys[(t + i) % keys.size()];
        const auto plan = cache.resolve(key);
        if (!plan || !(plan->key() == key)) mismatch = true;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(mismatch.load());
  const PlanCache::Snapshot snap = cache.snapshot();
  EXPECT_EQ(snap.builds, keys.size());
  EXPECT_EQ(snap.entries, keys.size());
  EXPECT_EQ(snap.hits + snap.misses, kThreads * kIters);
}

// --- zero rebuilds / zero reallocations on the cache-hit path ---

TEST(PlanCacheProcessDefault, MixedShapeSteadyStateBuildsAndReallocsStayFlat) {
  runtime::Rng rng(55);
  const CodecPtr codec = make_codec("dctchop:cf=4,block=8");
  const Tensor large = Tensor::uniform(Shape::bchw(2, 3, 32, 32), rng);
  const Tensor small = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng);

  // Warm both shapes: plans compile, scratch buffers grow to their max.
  (void)codec->round_trip(large);
  (void)codec->round_trip(small);

  const std::uint64_t builds = PlanCache::of(Context::process_default()).snapshot().builds;
  const std::size_t reallocs = tensor::sandwich_scratch_reallocs();
  for (int rep = 0; rep < 5; ++rep) {
    (void)codec->round_trip(large);
    (void)codec->round_trip(small);
  }
  const PlanCache::Snapshot after = PlanCache::of(Context::process_default()).snapshot();
  EXPECT_EQ(after.builds, builds)
      << "cache-hit compress must construct zero operands";
  EXPECT_EQ(tensor::sandwich_scratch_reallocs(), reallocs)
      << "steady-state sandwich calls must not reallocate scratch";
  EXPECT_GE(after.hits, 10u);
}

// --- workspace accounting (partial serializer satellite) ---

TEST(PlanWorkspace, PartialSerialReportsFullWorkingSet) {
  const auto plan = resolve_partial_serial_plan(
      Context::process_default(), 32, 32, 4, 8, TransformKind::kDct2, 2);
  const std::size_t batch = 3, channels = 2;
  const std::size_t planes = batch * channels;
  // s=2 on 32×32 -> 16×16 chunks, chopped to 8×8 at cf=4/block=8.
  const std::size_t staging =
      planes * (16 * 16 + 8 * 8) * sizeof(float);
  const std::size_t chunk_ws =
      plan->chunk_plan().workspace_bytes(batch, channels);
  EXPECT_EQ(plan->workspace_bytes(batch, channels), staging + chunk_ws);
  // Strictly more than the chunk executor alone: the old accounting
  // (chunk lhs+rhs bytes only) ignored the staging tensors entirely.
  EXPECT_GT(plan->workspace_bytes(batch, channels), chunk_ws);

  const PartialSerialCodec codec(
      {.height = 32, .width = 32, .cf = 4, .block = 8, .subdivision = 2});
  EXPECT_EQ(codec.workspace_bytes(batch, channels),
            plan->workspace_bytes(batch, channels));
}

}  // namespace
}  // namespace aic::core
