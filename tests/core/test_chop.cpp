#include "core/chop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

TEST(ChopMask, ShapeIsCfBlocksByN) {
  const Tensor m = chop_mask(24, 5, 8);
  EXPECT_EQ(m.shape(), Shape::matrix(15, 24));
}

TEST(ChopMask, EachRowHasExactlyOneOne) {
  const Tensor m = chop_mask(32, 3, 8);
  for (std::size_t r = 0; r < m.shape()[0]; ++r) {
    int ones = 0;
    for (std::size_t c = 0; c < m.shape()[1]; ++c) {
      const float v = m.at(r, c);
      EXPECT_TRUE(v == 0.0f || v == 1.0f);
      if (v == 1.0f) ++ones;
    }
    EXPECT_EQ(ones, 1) << "row " << r;
  }
}

TEST(ChopMask, SelectsLeadingCfColumnsPerBlock) {
  const Tensor m = chop_mask(16, 4, 8);
  // Block 0 rows 0..3 pick columns 0..3; block 1 rows 4..7 pick 8..11.
  for (std::size_t blk = 0; blk < 2; ++blk) {
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(m.at(blk * 4 + r, blk * 8 + r), 1.0f);
    }
  }
}

TEST(ChopMask, SandwichExtractsUpperLeftCorners) {
  runtime::Rng rng(1);
  const std::size_t n = 24, cf = 5;
  const Tensor d = Tensor::uniform(Shape::matrix(n, n), rng, -1.0f, 1.0f);
  const Tensor m = chop_mask(n, cf, 8);
  const Tensor y = tensor::matmul(tensor::matmul(m, d), m.transposed());
  ASSERT_EQ(y.shape(), Shape::matrix(cf * 3, cf * 3));
  for (std::size_t bi = 0; bi < 3; ++bi) {
    for (std::size_t bj = 0; bj < 3; ++bj) {
      for (std::size_t r = 0; r < cf; ++r) {
        for (std::size_t c = 0; c < cf; ++c) {
          EXPECT_EQ(y.at(bi * cf + r, bj * cf + c),
                    d.at(bi * 8 + r, bj * 8 + c));
        }
      }
    }
  }
}

TEST(ChopMask, MTransposeMRestoresWithZeros) {
  // Mᵀ·(M·D·Mᵀ)·M puts the corners back and zeroes everything else —
  // the idempotent "chop" projection.
  runtime::Rng rng(2);
  const std::size_t n = 16, cf = 3;
  const Tensor d = Tensor::uniform(Shape::matrix(n, n), rng, -1.0f, 1.0f);
  const Tensor m = chop_mask(n, cf, 8);
  const Tensor y = tensor::matmul(tensor::matmul(m, d), m.transposed());
  const Tensor restored =
      tensor::matmul(tensor::matmul(m.transposed(), y), m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool kept = (i % 8) < cf && (j % 8) < cf;
      EXPECT_EQ(restored.at(i, j), kept ? d.at(i, j) : 0.0f);
    }
  }
}

TEST(ChopMask, CfEqualsBlockIsPermutationIdentity) {
  const Tensor m = chop_mask(16, 8, 8);
  EXPECT_TRUE(allclose(m, Tensor::identity(16), 0.0));
}

TEST(ChopMask, InvalidArgumentsThrow) {
  EXPECT_THROW(chop_mask(20, 4, 8), std::invalid_argument);  // n % block
  EXPECT_THROW(chop_mask(16, 0, 8), std::invalid_argument);  // cf = 0
  EXPECT_THROW(chop_mask(16, 9, 8), std::invalid_argument);  // cf > block
  EXPECT_THROW(chop_mask(0, 4, 8), std::invalid_argument);   // n = 0
}

TEST(ChopRatio, MatchesEq3) {
  EXPECT_DOUBLE_EQ(chop_ratio(2), 16.0);
  EXPECT_DOUBLE_EQ(chop_ratio(3), 64.0 / 9.0);
  EXPECT_DOUBLE_EQ(chop_ratio(4), 4.0);
  EXPECT_DOUBLE_EQ(chop_ratio(5), 2.56);
  EXPECT_NEAR(chop_ratio(6), 1.78, 0.01);
  EXPECT_NEAR(chop_ratio(7), 1.31, 0.01);
  EXPECT_DOUBLE_EQ(chop_ratio(8), 1.0);
}

TEST(TriangleRatio, MatchesSection352) {
  // CR = 64 / (CF(CF+1)/2); improvement factor over square is 2CF/(CF+1).
  EXPECT_DOUBLE_EQ(triangle_ratio(2), 64.0 / 3.0);
  EXPECT_DOUBLE_EQ(triangle_ratio(7), 64.0 / 28.0);
  for (std::size_t cf = 2; cf <= 7; ++cf) {
    const double factor = triangle_ratio(cf) / chop_ratio(cf);
    EXPECT_NEAR(factor, 2.0 * cf / (cf + 1.0), 1e-9) << "cf=" << cf;
  }
}

TEST(MakeLhsRhs, ShapesMatchFig4) {
  const std::size_t n = 24, cf = 5;
  const Tensor lhs = make_lhs(n, cf);
  const Tensor rhs = make_rhs(n, cf);
  EXPECT_EQ(lhs.shape(), Shape::matrix(cf * n / 8, n));
  EXPECT_EQ(rhs.shape(), Shape::matrix(n, cf * n / 8));
}

TEST(MakeLhsRhs, RhsIsLhsTranspose) {
  const Tensor lhs = make_lhs(16, 4);
  const Tensor rhs = make_rhs(16, 4);
  EXPECT_TRUE(allclose(rhs, lhs.transposed(), 0.0));
}

TEST(MakeLhsRhs, LhsTimesRhsIsIdentity) {
  // LHS · RHS = M·T_L·T_Lᵀ·Mᵀ = M·Mᵀ = I (rows of M are orthonormal).
  const Tensor lhs = make_lhs(32, 3);
  const Tensor rhs = make_rhs(32, 3);
  EXPECT_TRUE(
      allclose(tensor::matmul(lhs, rhs), Tensor::identity(12), 1e-5));
}

}  // namespace
}  // namespace aic::core
