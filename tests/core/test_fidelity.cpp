#include "core/fidelity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dct_chop.hpp"
#include "core/triangle.hpp"
#include "runtime/rng.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Metrics, LosslessConfigurationReportsZeroError) {
  runtime::Rng rng(1);
  const DctChopCodec codec({.height = 16, .width = 16, .cf = 8, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const RateDistortion rd = evaluate_codec(codec, in);
  EXPECT_LT(rd.mse, 1e-8);
  EXPECT_GT(rd.psnr_db, 60.0);
  EXPECT_DOUBLE_EQ(rd.compression_ratio, 1.0);
}

TEST(Metrics, ReportsCodecNameAndBytes) {
  runtime::Rng rng(2);
  const DctChopCodec codec({.height = 16, .width = 16, .cf = 4, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng);
  const RateDistortion rd = evaluate_codec(codec, in);
  EXPECT_EQ(rd.codec, codec.name());
  EXPECT_EQ(rd.uncompressed_bytes, in.size_bytes());
  EXPECT_EQ(rd.compressed_bytes, in.size_bytes() / 4);
}

TEST(Metrics, DistortionGrowsAsCfShrinks) {
  runtime::Rng rng(3);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 3, 32, 32), rng);
  double last_mse = -1.0;
  for (std::size_t cf = 8; cf >= 1; --cf) {
    const DctChopCodec codec(
        {.height = 32, .width = 32, .cf = cf, .block = 8});
    const RateDistortion rd = evaluate_codec(codec, in);
    EXPECT_GE(rd.mse, last_mse - 1e-9) << "cf=" << cf;
    last_mse = rd.mse;
  }
}

TEST(Metrics, PsnrAndMseAreConsistent) {
  runtime::Rng rng(4);
  const DctChopCodec codec({.height = 16, .width = 16, .cf = 3, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const RateDistortion rd = evaluate_codec(codec, in, 1.0);
  EXPECT_NEAR(rd.psnr_db, 10.0 * std::log10(1.0 / rd.mse), 1e-6);
}

TEST(Metrics, TriangleCodecMeasurable) {
  runtime::Rng rng(5);
  const TriangleCodec codec({.height = 16, .width = 16, .cf = 4, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const RateDistortion rd = evaluate_codec(codec, in);
  EXPECT_GT(rd.compression_ratio, 4.0);
  EXPECT_GT(rd.max_abs_error, 0.0);
}

}  // namespace
}  // namespace aic::core
