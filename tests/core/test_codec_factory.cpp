#include "core/codec_factory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "baseline/color_quant.hpp"
#include "baseline/comparators.hpp"
#include "baseline/zfp_like.hpp"
#include "core/dct_chop.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Returns the diagnostic a malformed spec produces, failing if it does
// not throw std::invalid_argument.
std::string diagnostic(const std::string& spec) {
  try {
    (void)make_codec(spec);
  } catch (const std::invalid_argument& err) {
    return err.what();
  } catch (...) {
    ADD_FAILURE() << "spec \"" << spec << "\" threw a non-invalid_argument";
    return "";
  }
  ADD_FAILURE() << "spec \"" << spec << "\" did not throw";
  return "";
}

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "expected \"" << haystack << "\" to contain \"" << needle << "\"";
}

TEST(CodecFactory, BuildsDctChopWithDefaults) {
  const CodecPtr codec = make_codec("dctchop");
  const auto& chop = dynamic_cast<const DctChopCodec&>(*codec);
  EXPECT_EQ(chop.config().cf, 4u);
  EXPECT_EQ(chop.config().block, kDefaultBlock);
  EXPECT_EQ(chop.config().transform, TransformKind::kDct2);
  EXPECT_FALSE(chop.pinned());
  EXPECT_EQ(codec->spec(), "dctchop:cf=4,block=8");
}

TEST(CodecFactory, ParsesTypedParameters) {
  const CodecPtr codec =
      make_codec("dctchop:cf=6,block=8,transform=wht,h=32,w=64");
  const auto& chop = dynamic_cast<const DctChopCodec&>(*codec);
  EXPECT_EQ(chop.config().cf, 6u);
  EXPECT_EQ(chop.config().transform, TransformKind::kWalshHadamard);
  EXPECT_EQ(chop.config().height, 32u);
  EXPECT_EQ(chop.config().width, 64u);
  EXPECT_TRUE(chop.pinned());
}

TEST(CodecFactory, ToleratesWhitespaceAndEmptyItems) {
  const CodecPtr codec = make_codec("  dctchop : cf = 6 , , block = 8 ");
  const auto& chop = dynamic_cast<const DctChopCodec&>(*codec);
  EXPECT_EQ(chop.config().cf, 6u);
  EXPECT_EQ(chop.config().block, 8u);
}

TEST(CodecFactory, AliasesResolveToConcreteKinds) {
  EXPECT_NE(dynamic_cast<const DctChopCodec*>(make_codec("chop:cf=4").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<const DctChopCodec*>(make_codec("dct+chop:cf=4").get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<const PartialSerialCodec*>(make_codec("ps:cf=4,s=2").get()),
      nullptr);
  EXPECT_NE(dynamic_cast<const PartialSerialCodec*>(
                make_codec("dct+chop+ps:cf=4,s=2").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<const TriangleCodec*>(make_codec("sg:cf=4").get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<const TriangleCodec*>(make_codec("dct+chop+sg:cf=4").get()),
      nullptr);
}

TEST(CodecFactory, SpecRoundTripsForCoreKinds) {
  for (const std::string spec :
       {"dctchop:cf=4,block=8", "dctchop:cf=2,block=8,transform=wht",
        "dctchop:cf=4,block=8,h=32,w=32",
        "partial:cf=4,block=8,s=2", "partial:cf=4,block=8,s=2,h=64,w=64",
        "triangle:cf=4,block=8", "triangle:cf=6,block=8,transform=dst2"}) {
    const CodecPtr codec = make_codec(spec);
    EXPECT_EQ(codec->spec(), spec);
    // The canonical spec is itself parseable and canonical (fixpoint).
    EXPECT_EQ(make_codec(codec->spec())->spec(), spec);
  }
}

TEST(CodecFactory, RoundTrippedCodecBehavesIdentically) {
  runtime::Rng rng(11);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 2, 16, 16), rng);
  const CodecPtr a = make_codec("triangle:cf=4");
  const CodecPtr b = make_codec(a->spec());
  const Tensor pa = a->compress(in);
  const Tensor pb = b->compress(in);
  ASSERT_EQ(pa.shape(), pb.shape());
  for (std::size_t i = 0; i < pa.numel(); ++i) {
    ASSERT_EQ(pa.at(i), pb.at(i)) << "i=" << i;
  }
}

TEST(CodecFactory, BaselineComparatorsRegisterAndRoundTrip) {
  baseline::register_comparator_codecs();
  ASSERT_TRUE(CodecFactory::global().known("zfp"));
  ASSERT_TRUE(CodecFactory::global().known("sz"));
  ASSERT_TRUE(CodecFactory::global().known("jpeg"));
  ASSERT_TRUE(CodecFactory::global().known("colorquant"));
  ASSERT_TRUE(CodecFactory::global().known("cq"));

  for (const std::string spec : {"zfp:rate=8", "sz:eb=0.01", "jpeg:q=70",
                                 "jpeg:q=30,chroma=1", "colorquant:bits=4"}) {
    const CodecPtr codec = make_codec(spec);
    EXPECT_EQ(make_codec(codec->spec())->spec(), codec->spec()) << spec;
  }

  const auto& zfp =
      dynamic_cast<const baseline::ZfpLikeCodec&>(*make_codec("zfp:rate=8"));
  EXPECT_DOUBLE_EQ(zfp.compression_ratio(), 4.0);
  const auto& sz = dynamic_cast<const baseline::SzComparatorCodec&>(
      *make_codec("sz:eb=1e-3"));
  EXPECT_DOUBLE_EQ(sz.error_bound(), 1e-3);
  const auto& jpeg = dynamic_cast<const baseline::JpegComparatorCodec&>(
      *make_codec("jpeg:q=30,chroma=1"));
  EXPECT_EQ(jpeg.quality(), 30);
  EXPECT_TRUE(jpeg.chroma());
  EXPECT_NE(dynamic_cast<const baseline::ColorQuantCodec*>(
                make_codec("cq:bits=4").get()),
            nullptr);

  // Registration is idempotent: calling again must not throw or duplicate.
  baseline::register_comparator_codecs();
  std::size_t colorquant_listings = 0;
  for (const auto& [name, summary] : CodecFactory::global().list()) {
    colorquant_listings += (name == "colorquant");
  }
  EXPECT_EQ(colorquant_listings, 1u);
}

TEST(CodecFactory, ListExcludesAliasesAndIsSorted) {
  const auto entries = CodecFactory::global().list();
  ASSERT_GE(entries.size(), 3u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].first, entries[i].first);
  }
  for (const auto& [name, summary] : entries) {
    EXPECT_NE(name, "chop");
    EXPECT_NE(name, "sg");
    EXPECT_NE(name, "ps");
    EXPECT_FALSE(summary.empty()) << name;
  }
}

TEST(CodecFactory, RejectsMissingCodecName) {
  expect_contains(diagnostic(":cf=4"), "missing codec name");
  expect_contains(diagnostic("   "), "missing codec name");
}

TEST(CodecFactory, RejectsUnknownCodecNamingKnownKinds) {
  const std::string msg = diagnostic("dtcchop:cf=4");
  expect_contains(msg, "codec spec \"dtcchop:cf=4\"");
  expect_contains(msg, "unknown codec \"dtcchop\"");
  expect_contains(msg, "dctchop");
  expect_contains(msg, "partial");
  expect_contains(msg, "triangle");
  // Aliases are not advertised in the known-kind list.
  EXPECT_EQ(msg.find("dct+chop+sg"), std::string::npos) << msg;
}

TEST(CodecFactory, RejectsMalformedKeyValueItems) {
  expect_contains(diagnostic("dctchop:cf"), "expected key=value, got \"cf\"");
  expect_contains(diagnostic("dctchop:=4"), "empty key in \"=4\"");
  expect_contains(diagnostic("dctchop:cf="), "empty value for \"cf\"");
  expect_contains(diagnostic("dctchop:cf=4,cf=2"), "duplicate key \"cf\"");
}

TEST(CodecFactory, RejectsUnknownParameterNamingValidKeys) {
  const std::string msg = diagnostic("dctchop:cf=4,rate=8");
  expect_contains(msg, "unknown parameter \"rate\" for dctchop");
  expect_contains(msg, "valid:");
  expect_contains(msg, "cf");
  expect_contains(msg, "block");
  expect_contains(msg, "transform");
}

TEST(CodecFactory, RejectsBadParameterValues) {
  expect_contains(diagnostic("dctchop:cf=abc"),
                  "parameter \"cf\" expects a non-negative integer, got "
                  "\"abc\"");
  expect_contains(diagnostic("dctchop:cf=-2"),
                  "parameter \"cf\" expects a non-negative integer");
  // std::stoull out-of-range must surface the same diagnostic, not an
  // unhandled std::out_of_range.
  expect_contains(diagnostic("dctchop:cf=99999999999999999999"),
                  "parameter \"cf\" expects a non-negative integer");
  expect_contains(diagnostic("dctchop:cf=4x"),
                  "parameter \"cf\" expects a non-negative integer");
  expect_contains(diagnostic("dctchop:transform=fft"),
                  "parameter \"transform\" expects one of dct, wht, dst2; "
                  "got \"fft\"");
  baseline::register_comparator_codecs();
  expect_contains(diagnostic("sz:eb=fast"),
                  "parameter \"eb\" expects a number, got \"fast\"");
}

TEST(CodecFactory, BuilderGeometryErrorsStillPropagate) {
  // cf > block is a codec-constructor error, not a parse error; the
  // factory must let it through unchanged.
  EXPECT_THROW((void)make_codec("dctchop:cf=9,block=8"),
               std::invalid_argument);
  EXPECT_THROW((void)make_codec("dctchop:cf=4,block=8,h=30,w=30"),
               std::invalid_argument);
}

TEST(CodecFactory, ShapeAgnosticFactoryCodecCompressesTwoResolutions) {
  runtime::Rng rng(3);
  const CodecPtr codec = make_codec("dctchop:cf=4,block=8");
  for (const std::size_t res : {16u, 32u}) {
    const Tensor in = Tensor::uniform(Shape::bchw(1, 1, res, res), rng);
    const Tensor out = codec->round_trip(in);
    EXPECT_EQ(out.shape(), in.shape());
  }
}

}  // namespace
}  // namespace aic::core
