#include "core/triangle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/dct_chop.hpp"
#include "io/error.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

TriangleCodec make_codec(std::size_t n, std::size_t cf) {
  return TriangleCodec({.height = n, .width = n, .cf = cf, .block = 8});
}

TEST(Triangle, PackedShapeIsBlocksByTriangle) {
  const TriangleCodec codec = make_codec(24, 5);
  const Shape out = codec.compressed_shape(Shape::bchw(2, 3, 24, 24));
  // 9 blocks per plane, 15 retained values per block.
  EXPECT_EQ(out, Shape::bchw(2, 3, 9, 15));
}

TEST(Triangle, RetainedValuesPerBlockMatchesFormula) {
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    EXPECT_EQ(make_codec(16, cf).values_per_block(), cf * (cf + 1) / 2);
  }
}

TEST(Triangle, CompressionRatioImprovesBy2CfOverCfPlus1) {
  for (std::size_t cf = 2; cf <= 7; ++cf) {
    const TriangleCodec sg = make_codec(16, cf);
    const DctChopCodec dc({.height = 16, .width = 16, .cf = cf, .block = 8});
    EXPECT_NEAR(sg.compression_ratio() / dc.compression_ratio(),
                2.0 * cf / (cf + 1.0), 1e-9);
  }
}

TEST(Triangle, GatherScatterRoundTripsRetainedCoefficients) {
  // scatter(gather(y)) keeps every triangle coefficient bit-exact and
  // zeroes the rest: compressing the scattered result again must match.
  runtime::Rng rng(1);
  const TriangleCodec codec = make_codec(16, 4);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 2, 16, 16), rng);
  const Tensor packed = codec.compress(in);
  const Tensor restored = codec.decompress(packed, in.shape());
  const Tensor packed2 = codec.compress(restored);
  EXPECT_TRUE(allclose(packed, packed2, 1e-4));
}

TEST(Triangle, FirstPackedValuePerBlockIsDc) {
  runtime::Rng rng(2);
  const std::size_t cf = 4;
  const TriangleCodec codec = make_codec(16, cf);
  const DctChopCodec inner({.height = 16, .width = 16, .cf = cf, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  const Tensor chopped = inner.compress(in);
  const Tensor packed = codec.compress(in);
  // Block (bi, bj) of the chopped plane starts at (bi*cf, bj*cf); its DC
  // coefficient must be the first packed value of that block.
  for (std::size_t bi = 0; bi < 2; ++bi) {
    for (std::size_t bj = 0; bj < 2; ++bj) {
      EXPECT_EQ(packed.at(0, 0, bi * 2 + bj, 0),
                chopped.at(0, 0, bi * cf, bj * cf));
    }
  }
}

TEST(Triangle, MoreLossyThanSquareChopSameCf) {
  runtime::Rng rng(3);
  const Tensor in = Tensor::uniform(Shape::bchw(1, 3, 32, 32), rng);
  for (std::size_t cf = 2; cf <= 7; ++cf) {
    const TriangleCodec sg = make_codec(32, cf);
    const DctChopCodec dc({.height = 32, .width = 32, .cf = cf, .block = 8});
    const double err_sg = tensor::mse(in, sg.round_trip(in));
    const double err_dc = tensor::mse(in, dc.round_trip(in));
    EXPECT_GE(err_sg, err_dc) << "cf=" << cf;
  }
}

TEST(Triangle, ConstantImageStillLossless) {
  // DC survives the triangle for every CF.
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    const TriangleCodec codec = make_codec(16, cf);
    const Tensor in = Tensor::full(Shape::bchw(1, 1, 16, 16), -0.4f);
    EXPECT_TRUE(allclose(codec.round_trip(in), in, 1e-5)) << cf;
  }
}

TEST(Triangle, ByteRatioMatchesNominalRatio) {
  runtime::Rng rng(4);
  const TriangleCodec codec = make_codec(32, 5);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 32, 32), rng);
  const Tensor packed = codec.compress(in);
  EXPECT_NEAR(static_cast<double>(in.size_bytes()) / packed.size_bytes(),
              codec.compression_ratio(), 1e-9);
}

TEST(Triangle, IndicesAreCompileTimeSized) {
  const TriangleCodec codec = make_codec(24, 5);
  // 9 blocks × 15 values.
  EXPECT_EQ(codec.plane_indices().size(), 9u * 15u);
}

TEST(Triangle, PackedShapeMismatchThrows) {
  const TriangleCodec codec = make_codec(16, 4);
  const Tensor bad(Shape::bchw(1, 1, 4, 9));
  EXPECT_THROW(codec.decompress(bad, Shape::bchw(1, 1, 16, 16)),
               io::CorruptStream);
}

TEST(Triangle, NameEncodesCf) {
  EXPECT_EQ(make_codec(16, 3).name(), "dct+chop+sg(cf=3)");
}

}  // namespace
}  // namespace aic::core
