#include "core/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

class DctMatrixSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctMatrixSize, IsOrthonormal) {
  const std::size_t n = GetParam();
  const Tensor t = dct_matrix(n);
  EXPECT_TRUE(allclose(tensor::matmul(t, t.transposed()),
                       Tensor::identity(n), 1e-5));
  EXPECT_TRUE(allclose(tensor::matmul(t.transposed(), t),
                       Tensor::identity(n), 1e-5));
}

TEST_P(DctMatrixSize, RowsHaveUnitNorm) {
  const std::size_t n = GetParam();
  const Tensor t = dct_matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    double norm = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      norm += static_cast<double>(t.at(i, j)) * t.at(i, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-5) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctMatrixSize,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(DctMatrix, FirstRowIsConstant) {
  const Tensor t = dct_matrix(8);
  const float expected = 1.0f / std::sqrt(8.0f);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(t.at(0, j), expected, 1e-6);
  }
}

TEST(DctMatrix, ZeroSizeThrows) {
  EXPECT_THROW(dct_matrix(0), std::invalid_argument);
}

TEST(Dct, TransformOfConstantBlockIsPureDc) {
  const Tensor block = Tensor::full(Shape::matrix(8, 8), 3.0f);
  const Tensor t = dct_matrix(8);
  const Tensor d = tensor::matmul(tensor::matmul(t, block), t.transposed());
  // DC coefficient is N * mean = 8 * 3 = 24 for the orthonormal transform.
  EXPECT_NEAR(d.at(0, 0), 24.0f, 1e-4);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == 0 && j == 0) continue;
      EXPECT_NEAR(d.at(i, j), 0.0f, 1e-4) << i << "," << j;
    }
  }
}

TEST(Dct, MatrixFormMatchesEq1Reference) {
  runtime::Rng rng(1);
  const Tensor block = Tensor::uniform(Shape::matrix(8, 8), rng, -1.0f, 1.0f);
  const Tensor t = dct_matrix(8);
  const Tensor via_matrix =
      tensor::matmul(tensor::matmul(t, block), t.transposed());
  const Tensor via_sum = dct2d_reference(block);
  EXPECT_TRUE(allclose(via_matrix, via_sum, 1e-4));
}

TEST(Dct, RoundTripIsExact) {
  runtime::Rng rng(2);
  const Tensor block = Tensor::uniform(Shape::matrix(8, 8), rng, -1.0f, 1.0f);
  const Tensor t = dct_matrix(8);
  const Tensor d = tensor::matmul(tensor::matmul(t, block), t.transposed());
  const Tensor back = tensor::matmul(tensor::matmul(t.transposed(), d), t);
  EXPECT_TRUE(allclose(back, block, 1e-5));
}

TEST(Dct, EnergyIsPreserved) {
  // Parseval: orthonormal transforms preserve the Frobenius norm.
  runtime::Rng rng(3);
  const Tensor block = Tensor::uniform(Shape::matrix(8, 8), rng, -1.0f, 1.0f);
  const Tensor t = dct_matrix(8);
  const Tensor d = tensor::matmul(tensor::matmul(t, block), t.transposed());
  EXPECT_NEAR(tensor::sum(tensor::mul(block, block)),
              tensor::sum(tensor::mul(d, d)), 1e-3);
}

TEST(BlockDiagonal, StructureHoldsOffDiagonalZero) {
  const Tensor t_l = block_diagonal_dct(24, 8);
  EXPECT_EQ(t_l.shape(), Shape::matrix(24, 24));
  const Tensor t = dct_matrix(8);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 24; ++j) {
      if (i / 8 == j / 8) {
        EXPECT_EQ(t_l.at(i, j), t.at(i % 8, j % 8));
      } else {
        EXPECT_EQ(t_l.at(i, j), 0.0f);
      }
    }
  }
}

TEST(BlockDiagonal, IsOrthonormal) {
  const Tensor t_l = block_diagonal_dct(32, 8);
  EXPECT_TRUE(allclose(tensor::matmul(t_l, t_l.transposed()),
                       Tensor::identity(32), 1e-5));
}

TEST(BlockDiagonal, AppliesDctPerBlock) {
  runtime::Rng rng(4);
  const Tensor plane = Tensor::uniform(Shape::matrix(24, 24), rng, -1.0f, 1.0f);
  const Tensor t_l = block_diagonal_dct(24, 8);
  const Tensor via_matrix =
      tensor::matmul(tensor::matmul(t_l, plane), t_l.transposed());
  const Tensor via_blocks = blockwise_dct_reference(plane, 8);
  EXPECT_TRUE(allclose(via_matrix, via_blocks, 1e-4));
}

TEST(BlockDiagonal, IndivisibleSizeThrows) {
  EXPECT_THROW(block_diagonal_dct(20, 8), std::invalid_argument);
  EXPECT_THROW(block_diagonal_dct(8, 0), std::invalid_argument);
}

TEST(DctReference, NonSquareBlockThrows) {
  EXPECT_THROW(dct2d_reference(Tensor(Shape::matrix(4, 8))),
               std::invalid_argument);
}

}  // namespace
}  // namespace aic::core
