#include "core/partial_serializer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/dct_chop.hpp"
#include "io/error.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

TEST(PartialSerial, CompressedShapeMatchesUnserialized) {
  const PartialSerialCodec ps(
      {.height = 64, .width = 64, .cf = 4, .block = 8, .subdivision = 2});
  const DctChopCodec plain({.height = 64, .width = 64, .cf = 4, .block = 8});
  const Shape in = Shape::bchw(2, 3, 64, 64);
  EXPECT_EQ(ps.compressed_shape(in), plain.compressed_shape(in));
}

TEST(PartialSerial, SubdivisionOneEqualsPlainCodec) {
  runtime::Rng rng(1);
  const PartialSerialCodec ps(
      {.height = 32, .width = 32, .cf = 5, .block = 8, .subdivision = 1});
  const DctChopCodec plain({.height = 32, .width = 32, .cf = 5, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(2, 2, 32, 32), rng);
  EXPECT_TRUE(allclose(ps.compress(in), plain.compress(in), 1e-5));
}

TEST(PartialSerial, RoundTripEqualsUnserializedRoundTrip) {
  // The key correctness property of §3.5.1: chunked processing changes the
  // schedule, not the math. Chunk boundaries align with 8×8 blocks, so the
  // reconstruction is identical to the one-shot codec.
  runtime::Rng rng(2);
  for (std::size_t s : {1u, 2u, 4u}) {
    const PartialSerialCodec ps(
        {.height = 64, .width = 64, .cf = 3, .block = 8, .subdivision = s});
    const DctChopCodec plain({.height = 64, .width = 64, .cf = 3, .block = 8});
    const Tensor in = Tensor::uniform(Shape::bchw(2, 1, 64, 64), rng);
    EXPECT_TRUE(allclose(ps.round_trip(in), plain.round_trip(in), 1e-4))
        << "s=" << s;
  }
}

TEST(PartialSerial, OperatorBytesShrinkBySSquared) {
  const std::size_t n = 512, cf = 4;
  const PartialSerialCodec ps(
      {.height = n, .width = n, .cf = cf, .block = 8, .subdivision = 2});
  const std::size_t full = PartialSerialCodec::unserialized_operator_bytes(n, cf);
  EXPECT_EQ(ps.operator_bytes() * 4, full);
}

TEST(PartialSerial, EnablesSn30PmuScaleResolutions) {
  // §3.5.1's motivating numbers: one SN30 PMU holds 0.5 MB — a single
  // 362×362 fp32 matrix. At 512×512, an unserialized LHS (CF=4: 256×512
  // floats) plus the input plane exceeds it; with s=2 each chunk operator
  // fits comfortably.
  const std::size_t pmu_bytes = 512 * 1024;
  const std::size_t full_plane = 512 * 512 * sizeof(float);
  EXPECT_GT(full_plane, pmu_bytes);  // the problem
  const PartialSerialCodec ps(
      {.height = 512, .width = 512, .cf = 4, .block = 8, .subdivision = 2});
  const std::size_t chunk_plane = 256 * 256 * sizeof(float);
  EXPECT_LT(chunk_plane, pmu_bytes);  // the fix
  EXPECT_LT(ps.operator_bytes() / 2, pmu_bytes);
}

TEST(PartialSerial, NonSquareRoundTripMatchesPlainCodec) {
  // H≠W: chunk boundaries still align with 8×8 blocks, so chunked and
  // one-shot processing agree.
  runtime::Rng rng(3);
  const PartialSerialCodec ps(
      {.height = 32, .width = 64, .cf = 4, .block = 8, .subdivision = 2});
  const DctChopCodec plain({.height = 32, .width = 64, .cf = 4, .block = 8});
  const Shape original = Shape::bchw(2, 3, 32, 64);
  EXPECT_EQ(ps.compressed_shape(original), plain.compressed_shape(original));
  EXPECT_EQ(ps.compressed_shape(original), Shape::bchw(2, 3, 16, 32));
  const Tensor in = Tensor::uniform(original, rng, -1.0f, 1.0f);
  const Tensor packed = ps.compress(in);
  EXPECT_NEAR(static_cast<double>(in.size_bytes()) / packed.size_bytes(),
              ps.compression_ratio(), 1e-9);
  EXPECT_TRUE(allclose(packed, plain.compress(in), 1e-5));
  EXPECT_TRUE(allclose(ps.decompress(packed, original),
                       plain.round_trip(in), 1e-4));
}

TEST(PartialSerial, ChunkCopiesAreExact) {
  // The memcpy-based chunk scatter/gather must be a pure permutation:
  // at s=1 it degenerates to an identity copy around the plain codec.
  runtime::Rng rng(4);
  const PartialSerialCodec ps(
      {.height = 16, .width = 48, .cf = 8, .block = 8, .subdivision = 1});
  const DctChopCodec plain({.height = 16, .width = 48, .cf = 8, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(2, 1, 16, 48), rng);
  const Tensor a = ps.compress(in);
  const Tensor b = plain.compress(in);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << "flat index " << i;
  }
}

TEST(PartialSerial, CompressionRatioUnchanged) {
  const PartialSerialCodec ps(
      {.height = 64, .width = 64, .cf = 4, .block = 8, .subdivision = 2});
  EXPECT_DOUBLE_EQ(ps.compression_ratio(), 4.0);
}

TEST(PartialSerial, DecompressRejectsWrongShape) {
  const PartialSerialCodec ps(
      {.height = 32, .width = 32, .cf = 4, .block = 8, .subdivision = 2});
  const Tensor bad(Shape::bchw(1, 1, 15, 16));
  EXPECT_THROW(ps.decompress(bad, Shape::bchw(1, 1, 32, 32)),
               io::CorruptStream);
}

TEST(PartialSerial, InvalidConfigThrows) {
  EXPECT_THROW(PartialSerialCodec({.height = 32,
                                   .width = 32,
                                   .cf = 4,
                                   .block = 8,
                                   .subdivision = 0}),
               std::invalid_argument);
  EXPECT_THROW(PartialSerialCodec({.height = 32,
                                   .width = 32,
                                   .cf = 4,
                                   .block = 8,
                                   .subdivision = 3}),
               std::invalid_argument);  // 32 % 3 != 0
  // Chunk resolution must stay block-aligned: 32/4 = 8 is fine but 16/4=4
  // is not divisible by block=8.
  EXPECT_THROW(PartialSerialCodec({.height = 16,
                                   .width = 16,
                                   .cf = 4,
                                   .block = 8,
                                   .subdivision = 4}),
               std::invalid_argument);
}

TEST(PartialSerial, NameEncodesSubdivision) {
  const PartialSerialCodec ps(
      {.height = 64, .width = 64, .cf = 6, .block = 8, .subdivision = 2});
  EXPECT_EQ(ps.name(), "dct+chop+ps(cf=6,s=2)");
}

}  // namespace
}  // namespace aic::core
