#include "core/rate_control.hpp"

#include <gtest/gtest.h>

#include "core/dct_chop.hpp"
#include "data/synth.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor calibration_batch(std::size_t n, std::uint64_t seed) {
  runtime::Rng rng(seed);
  Tensor t(Shape::bchw(4, 1, n, n));
  for (std::size_t b = 0; b < 4; ++b) {
    tensor::Tensor plane = data::smooth_field(n, n, rng, 6, 0.5);
    data::add_gaussian_noise(plane, rng, 0.02);
    t.set_plane(b, 0, plane);
  }
  return t;
}

TEST(RateControl, ChoiceMeetsBudget) {
  const Tensor calibration = calibration_batch(32, 1);
  const auto choice = choose_chop_factor(calibration, 1e-3);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LE(choice->measured_mse, 1e-3);
}

TEST(RateControl, TighterBudgetMeansLowerRatio) {
  const Tensor calibration = calibration_batch(32, 2);
  const auto loose = choose_chop_factor(calibration, 1e-2);
  const auto tight = choose_chop_factor(calibration, 1e-6);
  ASSERT_TRUE(loose.has_value());
  ASSERT_TRUE(tight.has_value());
  EXPECT_LE(tight->compression_ratio, loose->compression_ratio);
  EXPECT_GE(tight->cf, loose->cf);
}

TEST(RateControl, ChoiceIsMostAggressiveWithinBudget) {
  // One CF below the chosen one must violate the budget (unless cf = 1).
  const Tensor calibration = calibration_batch(32, 3);
  const double budget = 1e-4;
  const auto choice = choose_chop_factor(calibration, budget);
  ASSERT_TRUE(choice.has_value());
  if (choice->cf > 1) {
    const auto curve = rate_distortion_curve(calibration);
    EXPECT_GT(curve[choice->cf - 2].measured_mse, budget);
  }
}

TEST(RateControl, HugeBudgetPicksCfOne) {
  const Tensor calibration = calibration_batch(16, 4);
  const auto choice = choose_chop_factor(calibration, 1e9);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->cf, 1u);
  EXPECT_DOUBLE_EQ(choice->compression_ratio, 64.0);
}

TEST(RateControl, PsnrVariantConsistentWithMse) {
  const Tensor calibration = calibration_batch(32, 5);
  const auto choice = choose_chop_factor_psnr(calibration, 35.0);
  ASSERT_TRUE(choice.has_value());
  EXPECT_GE(choice->measured_psnr_db, 35.0);
}

TEST(RateControl, CurveIsMonotone) {
  const Tensor calibration = calibration_batch(32, 6);
  const auto curve = rate_distortion_curve(calibration);
  ASSERT_EQ(curve.size(), 8u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].measured_mse, curve[i - 1].measured_mse + 1e-9);
    EXPECT_LT(curve[i].compression_ratio, curve[i - 1].compression_ratio);
  }
}

TEST(RateControl, MakeCodecForChoiceHonorsCf) {
  const Tensor calibration = calibration_batch(32, 7);
  const auto choice = choose_chop_factor(calibration, 1e-4);
  ASSERT_TRUE(choice.has_value());
  const auto codec = make_codec_for_choice(*choice, 32, 32);
  EXPECT_EQ(dynamic_cast<const DctChopCodec&>(*codec).config().cf,
            choice->cf);
  // The compiled codec reproduces the calibration error.
  const double err =
      tensor::mse(calibration, codec->round_trip(calibration));
  EXPECT_NEAR(err, choice->measured_mse, 1e-9);
}

TEST(RateControl, RejectsBadCalibration) {
  EXPECT_THROW(choose_chop_factor(Tensor(Shape::matrix(8, 8)), 1e-3),
               std::invalid_argument);
  EXPECT_THROW(choose_chop_factor(Tensor(Shape::bchw(1, 1, 10, 16)), 1e-3),
               std::invalid_argument);
}

TEST(RateControl, WorksWithAlternativeTransform) {
  const Tensor calibration = calibration_batch(32, 8);
  const auto choice = choose_chop_factor(calibration, 1e-3, 8,
                                         TransformKind::kWalshHadamard);
  ASSERT_TRUE(choice.has_value());
  EXPECT_LE(choice->measured_mse, 1e-3);
}

}  // namespace
}  // namespace aic::core
