#include "core/zigzag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace aic::core {
namespace {

TEST(Zigzag, EmptyForZeroSize) {
  EXPECT_TRUE(zigzag_order(0).empty());
}

TEST(Zigzag, SingleElement) {
  const auto order = zigzag_order(1);
  ASSERT_EQ(order.size(), 1u);
  const std::pair<std::size_t, std::size_t> origin{0, 0};
  EXPECT_EQ(order[0], origin);
}

TEST(Zigzag, IsPermutationOfAllCells) {
  for (std::size_t n : {2u, 3u, 8u, 16u}) {
    const auto flat = zigzag_flat(n);
    ASSERT_EQ(flat.size(), n * n);
    std::set<std::size_t> unique(flat.begin(), flat.end());
    EXPECT_EQ(unique.size(), n * n) << "n=" << n;
    EXPECT_EQ(*unique.rbegin(), n * n - 1);
  }
}

TEST(Zigzag, StartsAtDcEndsAtHighestFrequency) {
  const auto order = zigzag_order(8);
  const std::pair<std::size_t, std::size_t> first{0, 0};
  const std::pair<std::size_t, std::size_t> last{7, 7};
  EXPECT_EQ(order.front(), first);
  EXPECT_EQ(order.back(), last);
}

TEST(Zigzag, MatchesJpegStandardPrefixFor8x8) {
  // The first 10 entries of the canonical JPEG zig-zag scan.
  const auto flat = zigzag_flat(8);
  const std::size_t expected[] = {0, 1, 8, 16, 9, 2, 3, 10, 17, 24};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(flat[i], expected[i]) << "position " << i;
  }
}

TEST(Zigzag, DiagonalSumsAreNonDecreasing) {
  const auto order = zigzag_order(8);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i].first + order[i].second + 1,
              order[i - 1].first + order[i - 1].second);
  }
}

TEST(TriangleIndices, CountIsCfTimesCfPlusOneOverTwo) {
  for (std::size_t cf = 1; cf <= 8; ++cf) {
    EXPECT_EQ(triangle_indices(cf, 64).size(), cf * (cf + 1) / 2) << cf;
  }
}

TEST(TriangleIndices, AllWithinTriangle) {
  const std::size_t cf = 5, stride = 40;
  for (std::size_t idx : triangle_indices(cf, stride)) {
    const std::size_t r = idx / stride;
    const std::size_t c = idx % stride;
    EXPECT_LT(r + c, cf);
  }
}

TEST(TriangleIndices, AreUniqueAndZigzagOrdered) {
  const auto indices = triangle_indices(4, 16);
  std::set<std::size_t> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), indices.size());
  // First index is the DC coefficient.
  EXPECT_EQ(indices.front(), 0u);
}

TEST(TriangleIndices, StrideOneMatchesPackedLayout) {
  // With cf == stride the triangle indices address a cf-wide matrix.
  const auto indices = triangle_indices(3, 3);
  const std::set<std::size_t> expected = {0, 1, 2, 3, 4, 6};  // r*3+c, r+c<3
  EXPECT_EQ(std::set<std::size_t>(indices.begin(), indices.end()), expected);
}

}  // namespace
}  // namespace aic::core
