#include "core/codec_stats.hpp"

#include <gtest/gtest.h>

#include "core/dct_chop.hpp"
#include "core/partial_serializer.hpp"
#include "runtime/rng.hpp"
#include "tensor/tensor.hpp"

namespace aic::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(CodecStats, StartsAtZero) {
  const DctChopCodec codec({.height = 16, .width = 16, .cf = 4, .block = 8});
  const CodecStatsSnapshot snap = codec.stats().snapshot();
  EXPECT_EQ(snap.compress.calls, 0u);
  EXPECT_EQ(snap.decompress.calls, 0u);
  EXPECT_EQ(snap.planes(), 0u);
  EXPECT_EQ(snap.flops(), 0u);
  EXPECT_DOUBLE_EQ(snap.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(snap.compress.gflops_per_second(), 0.0);
}

TEST(CodecStats, DctChopCompressRecordsCallsPlanesFlopsBytes) {
  runtime::Rng rng(1);
  const std::size_t n = 16, cf = 4;
  const DctChopCodec codec({.height = n, .width = n, .cf = cf, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(3, 2, n, n), rng);
  const Tensor packed = codec.compress(in);
  const CodecStatsSnapshot snap = codec.stats().snapshot();
  EXPECT_EQ(snap.compress.calls, 1u);
  EXPECT_EQ(snap.compress.planes, 6u);
  EXPECT_EQ(snap.compress.flops, 6u * DctChopCodec::flops_compress(n, cf));
  EXPECT_EQ(snap.compress.bytes_in, in.size_bytes());
  EXPECT_EQ(snap.compress.bytes_out, packed.size_bytes());
  EXPECT_GE(snap.compress.seconds, 0.0);
  EXPECT_EQ(snap.decompress.calls, 0u);
}

TEST(CodecStats, DctChopDecompressRecordsEq7Flops) {
  runtime::Rng rng(2);
  const std::size_t n = 16, cf = 3;
  const DctChopCodec codec({.height = n, .width = n, .cf = cf, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(2, 2, n, n), rng);
  (void)codec.round_trip(in);
  const CodecStatsSnapshot snap = codec.stats().snapshot();
  EXPECT_EQ(snap.compress.calls, 1u);
  EXPECT_EQ(snap.decompress.calls, 1u);
  EXPECT_EQ(snap.decompress.planes, 4u);
  EXPECT_EQ(snap.decompress.flops,
            4u * DctChopCodec::flops_decompress(n, cf));
  EXPECT_EQ(snap.planes(), 8u);
}

TEST(CodecStats, RectangularFlopFormulasReduceToSquareForms) {
  for (std::size_t n : {16u, 32u, 64u}) {
    for (std::size_t cf = 1; cf <= 8; ++cf) {
      EXPECT_EQ(DctChopCodec::flops_compress_hw(n, n, cf),
                DctChopCodec::flops_compress(n, cf));
      EXPECT_EQ(DctChopCodec::flops_decompress_hw(n, n, cf),
                DctChopCodec::flops_decompress(n, cf));
    }
  }
}

TEST(CodecStats, AccumulatesAcrossCallsAndResets) {
  runtime::Rng rng(3);
  const DctChopCodec codec({.height = 16, .width = 16, .cf = 4, .block = 8});
  const Tensor in = Tensor::uniform(Shape::bchw(1, 1, 16, 16), rng);
  for (int i = 0; i < 3; ++i) (void)codec.compress(in);
  EXPECT_EQ(codec.stats().snapshot().compress.calls, 3u);
  EXPECT_EQ(codec.stats().snapshot().compress.planes, 3u);
  codec.stats().reset();
  const CodecStatsSnapshot snap = codec.stats().snapshot();
  EXPECT_EQ(snap.compress.calls, 0u);
  EXPECT_EQ(snap.flops(), 0u);
}

TEST(CodecStats, PartialSerialRecordsChunkedFlops) {
  runtime::Rng rng(4);
  const std::size_t s = 2;
  const PartialSerialCodec ps(
      {.height = 32, .width = 32, .cf = 4, .block = 8, .subdivision = s});
  const Tensor in = Tensor::uniform(Shape::bchw(2, 1, 32, 32), rng);
  (void)ps.round_trip(in);
  const CodecStatsSnapshot snap = ps.stats().snapshot();
  EXPECT_EQ(snap.compress.calls, 1u);
  EXPECT_EQ(snap.compress.planes, 2u);
  // s² chunk launches at the chunk resolution per plane.
  EXPECT_EQ(snap.compress.flops,
            2u * s * s * DctChopCodec::flops_compress(16, 4));
  EXPECT_EQ(snap.decompress.flops,
            2u * s * s * DctChopCodec::flops_decompress(16, 4));
  // The inner chunk codec keeps its own counters: s² calls per direction.
  const CodecStatsSnapshot inner = ps.chunk_codec().stats().snapshot();
  EXPECT_EQ(inner.compress.calls, s * s);
  EXPECT_EQ(inner.decompress.calls, s * s);
  EXPECT_EQ(inner.compress.flops, snap.compress.flops);
}

TEST(CodecStats, ThroughputHelpersUseRecordedTime) {
  CodecStats stats;
  stats.record_compress(/*planes=*/4, /*flops=*/2'000'000'000,
                        /*bytes_in=*/1'000'000'000, /*bytes_out=*/250'000'000,
                        /*nanos=*/2'000'000'000);
  const CodecStatsSnapshot snap = stats.snapshot();
  EXPECT_NEAR(snap.compress.gflops_per_second(), 1.0, 1e-9);
  EXPECT_NEAR(snap.compress.gigabytes_per_second(), 0.5, 1e-9);
}

TEST(CodecStats, SubMicrosecondCallsAccumulateWithoutLoss) {
  // A million 100 ns calls must sum to exactly 100 µs worth of time; the
  // old seconds-double API truncated each call to whole nanoseconds only
  // after a lossy double multiply.
  CodecStats stats;
  constexpr std::uint64_t kCalls = 1'000'000;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    stats.record_compress(/*planes=*/1, /*flops=*/1, /*bytes_in=*/1,
                          /*bytes_out=*/1, /*nanos=*/100);
  }
  const CodecStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.compress.calls, kCalls);
  EXPECT_DOUBLE_EQ(snap.compress.seconds,
                   static_cast<double>(kCalls * 100) / 1e9);  // exactly 0.1 s
}

}  // namespace
}  // namespace aic::core
