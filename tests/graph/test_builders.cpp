#include "graph/builders.hpp"

#include <gtest/gtest.h>

#include "core/dct_chop.hpp"
#include "core/triangle.hpp"
#include "graph/executor.hpp"
#include "runtime/rng.hpp"
#include "tensor/ops.hpp"

namespace aic::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

const core::DctChopConfig kConfig{
    .height = 16, .width = 16, .cf = 4, .block = 8};
const BatchSpec kSpec{.batch = 2, .channels = 3};

TEST(Builders, CompressGraphMatchesCodec) {
  runtime::Rng rng(1);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  Graph g = build_compress_graph(kConfig, kSpec);
  Executor exec(g);
  const Tensor via_graph = exec.run({in})[0];
  const core::DctChopCodec codec(kConfig);
  EXPECT_TRUE(allclose(via_graph, codec.compress(in), 1e-4));
}

TEST(Builders, DecompressGraphMatchesCodec) {
  runtime::Rng rng(2);
  const core::DctChopCodec codec(kConfig);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  const Tensor packed = codec.compress(in);
  Graph g = build_decompress_graph(kConfig, kSpec);
  Executor exec(g);
  const Tensor via_graph = exec.run({packed})[0];
  EXPECT_TRUE(allclose(via_graph, codec.decompress(packed, in.shape()), 1e-4));
}

TEST(Builders, CompressGraphHasExactlyTwoMatmuls) {
  // §3.3's claim: compression is two matrix multiplications, total.
  Graph g = build_compress_graph(kConfig, kSpec);
  std::size_t matmuls = 0;
  for (const Node& node : g.nodes()) {
    if (node.kind == OpKind::kMatMul) ++matmuls;
  }
  EXPECT_EQ(matmuls, 2u);
}

TEST(Builders, DecompressGraphHasExactlyTwoMatmuls) {
  Graph g = build_decompress_graph(kConfig, kSpec);
  std::size_t matmuls = 0;
  for (const Node& node : g.nodes()) {
    if (node.kind == OpKind::kMatMul) ++matmuls;
  }
  EXPECT_EQ(matmuls, 2u);
}

TEST(Builders, CompressGraphUsesOnlyPortableOps) {
  Graph g = build_compress_graph(kConfig, kSpec);
  for (OpKind kind : g.ops_used()) {
    EXPECT_NE(op_category(kind), OpCategory::kBitwise) << op_name(kind);
    EXPECT_NE(op_category(kind), OpCategory::kIndexed) << op_name(kind);
  }
}

TEST(Builders, TriangleGraphsUseIndexedOps) {
  Graph gc = build_triangle_compress_graph(kConfig, kSpec);
  Graph gd = build_triangle_decompress_graph(kConfig, kSpec);
  EXPECT_TRUE(gc.ops_used().contains(OpKind::kGather));
  EXPECT_TRUE(gd.ops_used().contains(OpKind::kScatter));
}

TEST(Builders, TriangleCompressMatchesTriangleCodec) {
  runtime::Rng rng(3);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  Graph g = build_triangle_compress_graph(kConfig, kSpec);
  Executor exec(g);
  const Tensor via_graph = exec.run({in})[0];
  const core::TriangleCodec codec(kConfig);
  const Tensor via_codec = codec.compress(in);
  // Same values; graph layout is [planes, 1, blocks·tri] vs BCHW packing.
  ASSERT_EQ(via_graph.numel(), via_codec.numel());
  for (std::size_t i = 0; i < via_graph.numel(); ++i) {
    ASSERT_NEAR(via_graph.at(i), via_codec.at(i), 1e-4) << i;
  }
}

TEST(Builders, TriangleRoundTripThroughGraphs) {
  runtime::Rng rng(4);
  const Tensor in = Tensor::uniform(Shape::bchw(2, 3, 16, 16), rng, -1, 1);
  Executor compress(build_triangle_compress_graph(kConfig, kSpec));
  const Tensor packed = compress.run({in})[0];
  Executor decompress(build_triangle_decompress_graph(kConfig, kSpec));
  const Tensor restored = decompress.run({packed})[0];
  const core::TriangleCodec codec(kConfig);
  EXPECT_TRUE(allclose(restored, codec.round_trip(in), 1e-4));
}

TEST(Builders, StaticFlopsTracksEq5PerPlane) {
  // Graph-level FLOPs must equal the Eq. 5 closed form per plane times
  // plane count (2mnk convention differs by the (2k−1) vs 2k detail, so
  // compare with the matching 2k-based expression).
  const std::size_t n = 16, cf = 4, planes = 6;
  Graph g = build_compress_graph(kConfig, kSpec);
  const std::size_t cn = cf * n / 8;
  const std::size_t per_plane = 2 * n * n * cn + 2 * cn * n * cn;
  EXPECT_EQ(g.static_flops(), planes * per_plane);
}

TEST(Builders, VleGraphRequiresBitwiseOps) {
  Graph g = build_vle_encode_graph(64);
  bool has_bitwise = false;
  for (OpKind kind : g.ops_used()) {
    if (op_category(kind) == OpCategory::kBitwise) has_bitwise = true;
  }
  EXPECT_TRUE(has_bitwise);
}

TEST(Builders, VleGraphExecutes) {
  Graph g = build_vle_encode_graph(4);
  Executor exec(g);
  const Tensor out =
      exec.run({Tensor(Shape::vector(4), {0.5f, 0.25f, 0.0f, 1.0f})})[0];
  EXPECT_EQ(out.shape(), Shape::vector(4));
  // quantize(0.5 / (1/64)) = 32; packed = (32<<16)|32; >>8 = 0x200020>>8.
  EXPECT_FLOAT_EQ(out.at(0), static_cast<float>((32u << 16 | 32u) >> 8));
}

TEST(Builders, CompressGraphConstantBytesMatchOperators) {
  Graph g = build_compress_graph(kConfig, kSpec);
  // LHS (8×16) + RHS (16×8) floats.
  EXPECT_EQ(g.constant_bytes(), (8u * 16 + 16 * 8) * sizeof(float));
}

}  // namespace
}  // namespace aic::graph
