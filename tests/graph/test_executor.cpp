#include "graph/executor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::allclose;

TEST(Executor, MatMulMatchesTensorKernel) {
  runtime::Rng rng(1);
  const Tensor a = Tensor::uniform(Shape::matrix(5, 7), rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape::matrix(7, 3), rng, -1.0f, 1.0f);
  Graph g;
  const NodeId in = g.input(a.shape());
  g.mark_output(g.matmul(in, g.constant(b)));
  Executor exec(g);
  const auto out = exec.run({a});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(allclose(out[0], tensor::matmul(a, b), 1e-5));
}

TEST(Executor, BatchedMatMulAppliesPerPlane) {
  runtime::Rng rng(2);
  const Tensor a = Tensor::uniform(Shape({4, 3, 6}), rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape::matrix(6, 2), rng, -1.0f, 1.0f);
  Graph g;
  const NodeId in = g.input(a.shape());
  g.mark_output(g.matmul(in, g.constant(b)));
  Executor exec(g);
  const Tensor out = exec.run({a})[0];
  ASSERT_EQ(out.shape(), Shape({4, 3, 2}));
  // Check plane 2 against a direct product.
  Tensor plane(Shape::matrix(3, 6));
  std::copy(a.raw() + 2 * 18, a.raw() + 3 * 18, plane.raw());
  Tensor expected = tensor::matmul(plane, b);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(out.at(2 * 6 + i), expected.at(i), 1e-5);
  }
}

TEST(Executor, LeftBroadcastMatMul) {
  runtime::Rng rng(3);
  const Tensor a = Tensor::uniform(Shape::matrix(2, 6), rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape({3, 6, 4}), rng, -1.0f, 1.0f);
  Graph g;
  const NodeId in = g.input(b.shape());
  g.mark_output(g.matmul(g.constant(a), in));
  Executor exec(g);
  EXPECT_EQ(exec.run({b})[0].shape(), Shape({3, 2, 4}));
}

TEST(Executor, AddMulRelu) {
  Graph g;
  const NodeId x = g.input(Shape::vector(3));
  const NodeId c = g.constant(Tensor(Shape::vector(3), {1, -5, 2}));
  const NodeId sum = g.add(x, c);
  const NodeId prod = g.mul(sum, c);
  g.mark_output(g.relu(prod));
  Executor exec(g);
  const Tensor out = exec.run({Tensor(Shape::vector(3), {1, 1, 1})})[0];
  // sum = {2,-4,3}; prod = {2,20,6}; relu keeps all.
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1), 20.0f);
  EXPECT_FLOAT_EQ(out.at(2), 6.0f);
}

TEST(Executor, ReluZeroesNegatives) {
  Graph g;
  const NodeId x = g.input(Shape::vector(3));
  g.mark_output(g.relu(x));
  Executor exec(g);
  const Tensor out = exec.run({Tensor(Shape::vector(3), {-1, 0, 2})})[0];
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2), 2.0f);
}

TEST(Executor, GatherScatterRoundTrip) {
  Graph g;
  const NodeId x = g.input(Shape({1, 1, 6}));
  const std::vector<std::size_t> idx = {5, 0, 3};
  const NodeId gathered = g.gather(x, idx);
  const NodeId scattered = g.scatter(gathered, idx, 6);
  g.mark_output(gathered);
  g.mark_output(scattered);
  Executor exec(g);
  const auto out = exec.run({Tensor(Shape({1, 1, 6}), {10, 11, 12, 13, 14, 15})});
  EXPECT_FLOAT_EQ(out[0].at(0), 15.0f);
  EXPECT_FLOAT_EQ(out[0].at(1), 10.0f);
  EXPECT_FLOAT_EQ(out[0].at(2), 13.0f);
  // Scatter restores gathered positions, zeroes the rest.
  EXPECT_FLOAT_EQ(out[1].at(0), 10.0f);
  EXPECT_FLOAT_EQ(out[1].at(1), 0.0f);
  EXPECT_FLOAT_EQ(out[1].at(3), 13.0f);
  EXPECT_FLOAT_EQ(out[1].at(5), 15.0f);
}

TEST(Executor, QuantizeDequantize) {
  Graph g;
  const NodeId x = g.input(Shape::vector(2));
  g.mark_output(g.dequantize(g.quantize(x, 0.5f), 0.5f));
  Executor exec(g);
  const Tensor out = exec.run({Tensor(Shape::vector(2), {1.3f, -0.7f})})[0];
  EXPECT_FLOAT_EQ(out.at(0), 1.5f);   // round(1.3/0.5)=3 -> 1.5
  EXPECT_FLOAT_EQ(out.at(1), -0.5f);  // round(-1.4)=-1 -> -0.5
}

TEST(Executor, BitOpsOperateOnIntegerValues) {
  Graph g;
  const NodeId x = g.input(Shape::vector(1));
  const NodeId shifted = g.bit_shift_left(x, 4);
  const NodeId back = g.bit_shift_right(shifted, 2);
  g.mark_output(back);
  Executor exec(g);
  const Tensor out = exec.run({Tensor(Shape::vector(1), {3.0f})})[0];
  EXPECT_FLOAT_EQ(out.at(0), 12.0f);  // 3 << 4 >> 2
}

TEST(Executor, BitAndOrNot) {
  Graph g;
  const NodeId x = g.input(Shape::vector(1));
  const NodeId c = g.constant(Tensor(Shape::vector(1), {12.0f}));
  g.mark_output(g.bit_and(x, c));
  g.mark_output(g.bit_or(x, c));
  g.mark_output(g.bit_not(g.bit_not(x)));
  Executor exec(g);
  const auto out = exec.run({Tensor(Shape::vector(1), {10.0f})});
  EXPECT_FLOAT_EQ(out[0].at(0), 8.0f);    // 1010 & 1100
  EXPECT_FLOAT_EQ(out[1].at(0), 14.0f);   // 1010 | 1100
  EXPECT_FLOAT_EQ(out[2].at(0), 10.0f);   // ~~x
}

TEST(Executor, TransposeRank3) {
  Graph g;
  const NodeId x = g.input(Shape({2, 2, 3}));
  g.mark_output(g.transpose(x));
  Executor exec(g);
  const Tensor in = Tensor::iota(Shape({2, 2, 3}));
  const Tensor out = exec.run({in})[0];
  EXPECT_EQ(out.shape(), Shape({2, 3, 2}));
  // Plane 1 of input: [[6,7,8],[9,10,11]] -> transposed [[6,9],[7,10],[8,11]].
  EXPECT_FLOAT_EQ(out.at(6 + 0), 6.0f);
  EXPECT_FLOAT_EQ(out.at(6 + 1), 9.0f);
  EXPECT_FLOAT_EQ(out.at(6 + 2), 7.0f);
}

TEST(Executor, TraceCountsFlopsAndBytes) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(4, 4));
  g.mark_output(g.matmul(a, g.constant(Tensor::identity(4))));
  Executor exec(g);
  exec.run({Tensor::identity(4)});
  const ExecutionTrace& trace = exec.trace();
  EXPECT_EQ(trace.flops, 2u * 4 * 4 * 4);
  EXPECT_EQ(trace.matmul_count, 1u);
  EXPECT_EQ(trace.input_bytes, 64u);
  EXPECT_EQ(trace.output_bytes, 64u);
  EXPECT_GT(trace.bytes_written, 0u);
}

TEST(Executor, TraceMinMatmulBytes) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(2, 2));
  const NodeId small = g.matmul(a, g.constant(Tensor::identity(2)));
  g.mark_output(g.matmul(small, g.constant(Tensor(Shape::matrix(2, 64)))));
  Executor exec(g);
  exec.run({Tensor::identity(2)});
  EXPECT_EQ(exec.trace().min_matmul_out_bytes, 16u);  // 2×2 floats
}

TEST(Executor, MissingInputThrows) {
  Graph g;
  g.input(Shape::vector(2));
  Executor exec(g);
  EXPECT_THROW(exec.run({}), std::invalid_argument);
}

TEST(Executor, InputShapeMismatchThrows) {
  Graph g;
  g.input(Shape::vector(2));
  Executor exec(g);
  EXPECT_THROW(exec.run({Tensor(Shape::vector(3))}), std::invalid_argument);
}

TEST(Executor, NoMarkedOutputsReturnsAllValues) {
  Graph g;
  const NodeId x = g.input(Shape::vector(1));
  g.relu(x);
  Executor exec(g);
  EXPECT_EQ(exec.run({Tensor(Shape::vector(1), {1.0f})}).size(), 2u);
}

}  // namespace
}  // namespace aic::graph
