#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/rng.hpp"

namespace aic::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Graph, InputNodeCarriesShape) {
  Graph g;
  const NodeId id = g.input(Shape::matrix(3, 4));
  EXPECT_EQ(g.node(id).kind, OpKind::kInput);
  EXPECT_EQ(g.node(id).shape, Shape::matrix(3, 4));
}

TEST(Graph, MatMulShapeInference) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(3, 4));
  const NodeId b = g.input(Shape::matrix(4, 5));
  EXPECT_EQ(g.node(g.matmul(a, b)).shape, Shape::matrix(3, 5));
}

TEST(Graph, MatMulBatchedLeftOperand) {
  Graph g;
  const NodeId a = g.input(Shape({6, 3, 4}));
  const NodeId b = g.input(Shape::matrix(4, 5));
  EXPECT_EQ(g.node(g.matmul(a, b)).shape, Shape({6, 3, 5}));
}

TEST(Graph, MatMulBatchedRightOperand) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(3, 4));
  const NodeId b = g.input(Shape({6, 4, 5}));
  EXPECT_EQ(g.node(g.matmul(a, b)).shape, Shape({6, 3, 5}));
}

TEST(Graph, MatMulInnerMismatchThrows) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(3, 4));
  const NodeId b = g.input(Shape::matrix(5, 6));
  EXPECT_THROW(g.matmul(a, b), std::invalid_argument);
}

TEST(Graph, ElementwiseRequiresSameShape) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(2, 2));
  const NodeId b = g.input(Shape::matrix(2, 3));
  EXPECT_THROW(g.add(a, b), std::invalid_argument);
  EXPECT_THROW(g.mul(a, b), std::invalid_argument);
}

TEST(Graph, ReshapeChecksNumel) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(2, 6));
  EXPECT_NO_THROW(g.reshape(a, Shape({3, 2, 2})));
  EXPECT_THROW(g.reshape(a, Shape::matrix(2, 5)), std::invalid_argument);
}

TEST(Graph, TransposeSwapsTrailingAxes) {
  Graph g;
  EXPECT_EQ(g.node(g.transpose(g.input(Shape::matrix(3, 4)))).shape,
            Shape::matrix(4, 3));
  EXPECT_EQ(g.node(g.transpose(g.input(Shape({5, 3, 4})))).shape,
            Shape({5, 4, 3}));
}

TEST(Graph, GatherShapeAndValidation) {
  Graph g;
  const NodeId a = g.input(Shape({2, 1, 10}));
  const NodeId out = g.gather(a, {0, 3, 7});
  EXPECT_EQ(g.node(out).shape, Shape({2, 1, 3}));
  EXPECT_THROW(g.gather(a, {10}), std::invalid_argument);
}

TEST(Graph, ScatterShapeAndValidation) {
  Graph g;
  const NodeId a = g.input(Shape({2, 1, 3}));
  const NodeId out = g.scatter(a, {0, 4, 9}, 10);
  EXPECT_EQ(g.node(out).shape, Shape({2, 1, 10}));
  EXPECT_THROW(g.scatter(a, {0, 1}, 10), std::invalid_argument);   // count
  EXPECT_THROW(g.scatter(a, {0, 4, 10}, 10), std::invalid_argument);  // range
}

TEST(Graph, OpsUsedReportsDistinctKinds) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(4, 4));
  const NodeId b = g.constant(Tensor::identity(4));
  g.relu(g.matmul(a, b));
  const auto ops = g.ops_used();
  EXPECT_TRUE(ops.contains(OpKind::kInput));
  EXPECT_TRUE(ops.contains(OpKind::kConstant));
  EXPECT_TRUE(ops.contains(OpKind::kMatMul));
  EXPECT_TRUE(ops.contains(OpKind::kRelu));
  EXPECT_FALSE(ops.contains(OpKind::kBitAnd));
}

TEST(Graph, StaticFlopsCountsMatmulAndElementwise) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(3, 4));
  const NodeId b = g.constant(Tensor(Shape::matrix(4, 5)));
  const NodeId c = g.matmul(a, b);  // 2*3*5*4 = 120
  g.relu(c);                        // 15
  EXPECT_EQ(g.static_flops(), 135u);
}

TEST(Graph, StaticFlopsBatchedMatmul) {
  Graph g;
  const NodeId a = g.input(Shape({10, 3, 4}));
  const NodeId b = g.constant(Tensor(Shape::matrix(4, 5)));
  g.matmul(a, b);  // 10 planes × 2*3*5*4
  EXPECT_EQ(g.static_flops(), 1200u);
}

TEST(Graph, ByteAccounting) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(8, 8));          // 256 B activation
  const NodeId w = g.constant(Tensor(Shape::matrix(8, 8)));  // 256 B constant
  g.matmul(a, w);  // 256 B activation
  EXPECT_EQ(g.constant_bytes(), 256u);
  EXPECT_EQ(g.activation_bytes(), 512u);
  EXPECT_EQ(g.max_tensor_bytes(), 256u);
}

TEST(Graph, MaxPlaneBytesUsesTrailingDims) {
  Graph g;
  g.input(Shape::bchw(100, 3, 16, 16));  // plane = 16*16*4 = 1024 B
  EXPECT_EQ(g.max_plane_bytes(), 1024u);
}

TEST(Graph, MaxMatmulDimTracksOperands) {
  Graph g;
  const NodeId a = g.input(Shape::matrix(100, 512));
  const NodeId b = g.constant(Tensor(Shape::matrix(512, 64)));
  g.matmul(a, b);
  EXPECT_EQ(g.max_matmul_dim(), 512u);
}

TEST(Graph, MarkOutputValidatesId) {
  Graph g;
  const NodeId a = g.input(Shape::vector(4));
  g.mark_output(a);
  EXPECT_EQ(g.outputs().size(), 1u);
  EXPECT_THROW(g.mark_output(99), std::invalid_argument);
}

TEST(Graph, InputIdsInOrder) {
  Graph g;
  const NodeId a = g.input(Shape::vector(1));
  g.constant(Tensor(Shape::vector(1)));
  const NodeId b = g.input(Shape::vector(2));
  const auto ids = g.input_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], b);
}

}  // namespace
}  // namespace aic::graph
