// libFuzzer entry point over RLE decode: untrusted symbol list + block
// length (the unsealed frame the robustness suite defines).

#include <cstddef>
#include <cstdint>
#include <string>

#include "cli/robustness_suite.hpp"
#include "io/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    (void)aic::cli::decode_rle_body(
        std::string(reinterpret_cast<const char*>(data), size));
  } catch (const aic::io::CorruptStream&) {
  }
  return 0;
}
