// libFuzzer entry point over archive deserialization + full decompress.
// Any input must either decode or raise aic::io::CorruptStream; every
// other exception (or a crash/hang) is a finding.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cli/robustness_suite.hpp"
#include "io/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    (void)aic::cli::decode_archive_bytes(
        std::string(reinterpret_cast<const char*>(data), size));
  } catch (const aic::io::CorruptStream&) {
    // Typed rejection is the contract for bad input.
  }
  return 0;
}
