// Standalone driver used when libFuzzer is unavailable (non-Clang
// toolchains): replays every corpus file through LLVMFuzzerTestOneInput
// exactly once, so the checked-in corpus still executes — under
// sanitizers when AIC_SANITIZE is on — even where -fsanitize=fuzzer
// cannot be linked. libFuzzer-style flags (-runs=..., -max_total_time=...)
// are accepted and ignored so both drivers share a command line.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg.front() == '-') continue;  // libFuzzer flag
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::exists(path)) {
      files.push_back(path);
    } else {
      std::cerr << "fuzz replay: no such input: " << arg << "\n";
      return 2;
    }
  }
  for (const auto& path : files) {
    std::ifstream file(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::cout << "replayed " << files.size() << " corpus inputs\n";
  return 0;
}
