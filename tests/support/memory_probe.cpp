#include "support/memory_probe.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#ifndef _WIN32
#include <sys/resource.h>
#include <unistd.h>
#endif

#ifdef __GLIBC__
#include <malloc.h>
#endif

namespace {

// Relaxed atomics: the counters are read only at measurement boundaries,
// and the counting itself must never allocate or lock.
std::atomic<std::uint64_t> g_total_allocs{0};
std::atomic<std::uint64_t> g_large_allocs{0};
std::atomic<std::uint64_t> g_large_bytes{0};
std::atomic<std::size_t> g_large_threshold{std::size_t{1} << 20};

void count(std::size_t size) noexcept {
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size >= g_large_threshold.load(std::memory_order_relaxed)) {
    g_large_allocs.fetch_add(1, std::memory_order_relaxed);
    g_large_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

void* counted_malloc(std::size_t size) noexcept {
  count(size);
  // malloc(0) may return nullptr legally; operator new must not.
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t alignment) noexcept {
  count(size);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + alignment - 1) / alignment * alignment;
#ifndef _WIN32
  return std::aligned_alloc(alignment, padded != 0 ? padded : alignment);
#else
  return _aligned_malloc(padded != 0 ? padded : alignment, alignment);
#endif
}

}  // namespace

// --------------------------------------------------------------------------
// Global operator new/delete replacement (C++17 aligned forms included).
// glibc's free() handles malloc and aligned_alloc pointers uniformly, so
// one delete implementation serves all new forms.

void* operator new(std::size_t size) {
  void* ptr = counted_malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = counted_aligned(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}

namespace aic::testsupport {

void set_large_alloc_threshold(std::size_t bytes) {
  g_large_threshold.store(bytes, std::memory_order_relaxed);
}

std::size_t large_alloc_threshold() {
  return g_large_threshold.load(std::memory_order_relaxed);
}

AllocStats alloc_stats() {
  AllocStats stats;
  stats.total_allocs = g_total_allocs.load(std::memory_order_relaxed);
  stats.large_allocs = g_large_allocs.load(std::memory_order_relaxed);
  stats.large_bytes = g_large_bytes.load(std::memory_order_relaxed);
  return stats;
}

std::size_t peak_rss_bytes() {
#ifndef _WIN32
  if (std::FILE* file = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::size_t kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof(line), file) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(file);
    if (found) return kb * 1024;
  }
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // Linux: kB
  }
#endif
  return 0;
}

bool reset_peak_rss() {
#ifndef _WIN32
  if (std::FILE* file = std::fopen("/proc/self/clear_refs", "w")) {
    const bool ok = std::fputs("5", file) >= 0;
    return std::fclose(file) == 0 && ok;
  }
#endif
  return false;
}

void release_freed_heap() {
#ifdef __GLIBC__
  malloc_trim(0);
#endif
}

}  // namespace aic::testsupport
