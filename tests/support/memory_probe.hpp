#pragma once

#include <cstddef>
#include <cstdint>

/// Heap / RSS instrumentation for benchmarks and tests that pin the
/// memory layer's behavior. Linking this library replaces the GLOBAL
/// operator new/delete of the binary with counting versions — link it
/// ONLY into binaries that opt in (bench_pipeline, allocation-gate
/// tests), never into the product libraries.
namespace aic::testsupport {

struct AllocStats {
  /// Every operator new / new[] call since process start.
  std::uint64_t total_allocs = 0;
  /// The subset at or above the large threshold.
  std::uint64_t large_allocs = 0;
  std::uint64_t large_bytes = 0;
};

/// Allocations >= `bytes` count as "large" from now on (default 1 MiB).
/// The steady-state gates track large allocations: per-chunk encode
/// strings and other sub-threshold churn are allowed, re-allocating a
/// payload-sized staging buffer per call is not.
void set_large_alloc_threshold(std::size_t bytes);
std::size_t large_alloc_threshold();

AllocStats alloc_stats();

/// Current peak resident set size in bytes (VmHWM from
/// /proc/self/status, getrusage fallback). 0 when unavailable.
std::size_t peak_rss_bytes();

/// Resets the kernel's peak-RSS water mark ("5" into
/// /proc/self/clear_refs) so per-phase peaks can be measured. Returns
/// false when the platform cannot reset — peak_rss_bytes() then reports
/// the process-lifetime high-water mark, and phase comparisons are only
/// meaningful in ascending-footprint order.
bool reset_peak_rss();

/// Returns heap pages the allocator caches back to the OS where
/// supported (glibc malloc_trim), so a phase that freed its buffers
/// stops inflating the next phase's RSS baseline. No-op elsewhere.
void release_freed_heap();

}  // namespace aic::testsupport
