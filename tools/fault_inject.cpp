// Fault-injection harness over every hardened decode path.
//
// Modes:
//   fault_inject --matrix              run the built-in mutation matrix
//                                      over all targets (default), then
//                                      replay the v4 targets through the
//                                      mmap (io::MappedFile) decode path
//   fault_inject --mmap-matrix         only the mmap replay pass
//   fault_inject --write-corpus <dir>  write fuzz corpus seeds and exit
//   fault_inject <file>...             replay raw mutant files through the
//                                      archive decoder (crash triage)
//
// Exit status is 0 only when every mutant either decoded bitwise-exactly
// or raised aic::io::CorruptStream.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/archive.hpp"
#include "cli/robustness_suite.hpp"
#include "io/error.hpp"
#include "io/mapped_file.hpp"
#include "io/tensor_io.hpp"
#include "obs/flight_recorder.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace {

/// Arms the flight recorder (memory-only: no per-mutant dump files) so a
/// matrix run doubles as a check that io::raise_corrupt() hands every
/// typed rejection to the recorder. A drift between `rejected` and the
/// obs.flight_dumps delta means some decode path throws CorruptStream
/// without going through raise_corrupt — a silent-drop regression.
struct FlightAudit {
  bool armed_here = false;
  std::uint64_t dumps_before = 0;

  FlightAudit() {
    aic::obs::flight::Options flight_options;
    flight_options.dump_on_corrupt = false;
    flight_options.signals = false;
    flight_options.terminate = false;
    armed_here = aic::obs::flight::arm(flight_options);
    dumps_before = aic::obs::flight::dumps();
  }

  /// Returns true when every typed rejection produced exactly one flight
  /// record.
  bool check(std::size_t total_rejected) {
    const std::uint64_t flight_records =
        aic::obs::flight::dumps() - dumps_before;
    if (armed_here) aic::obs::flight::disarm();
    std::cout << "flight records: " << flight_records << " for "
              << total_rejected << " typed rejections\n";
    if (flight_records != total_rejected) {
      std::cout << "  FAILURE flight-recorder record count != typed "
                << "rejections (a CorruptStream was thrown without "
                << "raise_corrupt)\n";
      return false;
    }
    return true;
  }
};

/// The mmap replay temp file, reused across every mutant so the sweep
/// costs one inode, not thousands.
std::filesystem::path mmap_replay_path() {
#ifndef _WIN32
  const std::string pid = std::to_string(static_cast<long long>(::getpid()));
#else
  const std::string pid = "win";
#endif
  return std::filesystem::temp_directory_path() /
         ("aic_fault_inject_mmap_" + pid + ".aicz");
}

/// Replays the v4 archive targets' full mutation matrices through the
/// zero-copy file path: each mutant is written to a reused temp file,
/// mapped with io::MappedFile, and decoded straight out of the mapping —
/// the exact bytes-never-touch-a-heap-string route `aicomp decompress`
/// takes. The contract is identical to the in-memory matrix: bitwise-
/// exact decode or a typed CorruptStream, with flight-recorder
/// accounting intact (mmap must not change where rejections surface).
int run_mmap_matrix() {
  FlightAudit audit;
  const std::filesystem::path path = mmap_replay_path();
  const aic::io::DecodeFn mmap_decode = [&path](const std::string& bytes) {
    {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    const aic::io::MappedFile file(path.string());
    const aic::cli::Archive archive =
        aic::cli::deserialize_archive(file.view());
    const aic::tensor::Tensor restored =
        aic::cli::make_archive_codec(archive)->decompress(
            archive.packed, archive.original_shape);
    return aic::io::serialize_tensor(restored);
  };

  bool ok = true;
  std::size_t total_rejected = 0;
  for (const aic::cli::RobustnessTarget& target :
       aic::cli::robustness_targets()) {
    if (target.name.find(":v4") == std::string::npos) continue;
    const aic::io::FaultReport report =
        aic::io::run_fault_matrix(target.bytes, mmap_decode, target.options);
    std::cout << target.name << " [mmap]: " << report.summary() << "\n";
    for (const std::string& failure : report.failures) {
      std::cout << "  FAILURE " << failure << "\n";
    }
    total_rejected += report.rejected;
    ok = ok && report.ok();
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);

  ok = audit.check(total_rejected) && ok;
  std::cout << (ok ? "mmap fault matrix clean" : "mmap fault matrix FAILED")
            << "\n";
  return ok ? 0 : 1;
}

int run_matrix() {
  FlightAudit audit;
  bool ok = true;
  std::size_t total_rejected = 0;
  for (const auto& [name, report] : aic::cli::run_robustness_suite()) {
    std::cout << name << ": " << report.summary() << "\n";
    for (const std::string& failure : report.failures) {
      std::cout << "  FAILURE " << failure << "\n";
    }
    total_rejected += report.rejected;
    ok = ok && report.ok();
  }
  ok = audit.check(total_rejected) && ok;
  std::cout << (ok ? "fault matrix clean" : "fault matrix FAILED") << "\n";
  // The v4 targets go through a second time via mmap so both decode
  // front ends face the identical mutant set.
  return run_mmap_matrix() == 0 && ok ? 0 : 1;
}

int write_corpus(const std::string& dir) {
  const std::vector<std::string> written = aic::cli::write_fuzz_corpus(dir);
  for (const std::string& path : written) std::cout << path << "\n";
  std::cout << written.size() << " corpus seeds written\n";
  return 0;
}

int replay(const std::vector<std::string>& paths) {
  int status = 0;
  for (const std::string& path : paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << path << ": cannot open\n";
      status = 1;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      const std::string decoded =
          aic::cli::decode_archive_bytes(buffer.str());
      std::cout << path << ": decoded (" << decoded.size() << " bytes)\n";
    } catch (const aic::io::CorruptStream& error) {
      std::cout << path << ": rejected: " << error.what() << "\n";
    } catch (const std::exception& error) {
      std::cout << path << ": UNTYPED " << error.what() << "\n";
      status = 1;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--matrix") return run_matrix();
    if (args[0] == "--mmap-matrix") return run_mmap_matrix();
    if (args[0] == "--write-corpus") {
      if (args.size() != 2) {
        std::cerr << "usage: fault_inject --write-corpus <dir>\n";
        return 2;
      }
      return write_corpus(args[1]);
    }
    return replay(args);
  } catch (const std::exception& error) {
    std::cerr << "fault_inject: " << error.what() << "\n";
    return 1;
  }
}
