// Fault-injection harness over every hardened decode path.
//
// Modes:
//   fault_inject --matrix              run the built-in mutation matrix
//                                      over all targets (default)
//   fault_inject --write-corpus <dir>  write fuzz corpus seeds and exit
//   fault_inject <file>...             replay raw mutant files through the
//                                      archive decoder (crash triage)
//
// Exit status is 0 only when every mutant either decoded bitwise-exactly
// or raised aic::io::CorruptStream.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/robustness_suite.hpp"
#include "io/error.hpp"

namespace {

int run_matrix() {
  bool ok = true;
  for (const auto& [name, report] : aic::cli::run_robustness_suite()) {
    std::cout << name << ": " << report.summary() << "\n";
    for (const std::string& failure : report.failures) {
      std::cout << "  FAILURE " << failure << "\n";
    }
    ok = ok && report.ok();
  }
  std::cout << (ok ? "fault matrix clean" : "fault matrix FAILED") << "\n";
  return ok ? 0 : 1;
}

int write_corpus(const std::string& dir) {
  const std::vector<std::string> written = aic::cli::write_fuzz_corpus(dir);
  for (const std::string& path : written) std::cout << path << "\n";
  std::cout << written.size() << " corpus seeds written\n";
  return 0;
}

int replay(const std::vector<std::string>& paths) {
  int status = 0;
  for (const std::string& path : paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << path << ": cannot open\n";
      status = 1;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      const std::string decoded =
          aic::cli::decode_archive_bytes(buffer.str());
      std::cout << path << ": decoded (" << decoded.size() << " bytes)\n";
    } catch (const aic::io::CorruptStream& error) {
      std::cout << path << ": rejected: " << error.what() << "\n";
    } catch (const std::exception& error) {
      std::cout << path << ": UNTYPED " << error.what() << "\n";
      status = 1;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--matrix") return run_matrix();
    if (args[0] == "--write-corpus") {
      if (args.size() != 2) {
        std::cerr << "usage: fault_inject --write-corpus <dir>\n";
        return 2;
      }
      return write_corpus(args[1]);
    }
    return replay(args);
  } catch (const std::exception& error) {
    std::cerr << "fault_inject: " << error.what() << "\n";
    return 1;
  }
}
