// Fault-injection harness over every hardened decode path.
//
// Modes:
//   fault_inject --matrix              run the built-in mutation matrix
//                                      over all targets (default)
//   fault_inject --write-corpus <dir>  write fuzz corpus seeds and exit
//   fault_inject <file>...             replay raw mutant files through the
//                                      archive decoder (crash triage)
//
// Exit status is 0 only when every mutant either decoded bitwise-exactly
// or raised aic::io::CorruptStream.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/robustness_suite.hpp"
#include "io/error.hpp"
#include "obs/flight_recorder.hpp"

namespace {

int run_matrix() {
  // Arm the flight recorder (memory-only: no per-mutant dump files) so the
  // matrix doubles as a check that io::raise_corrupt() hands every typed
  // rejection to the recorder. A drift between `rejected` and the
  // obs.flight_dumps delta means some decode path throws CorruptStream
  // without going through raise_corrupt — a silent-drop regression.
  aic::obs::flight::Options flight_options;
  flight_options.dump_on_corrupt = false;
  flight_options.signals = false;
  flight_options.terminate = false;
  const bool armed_here = aic::obs::flight::arm(flight_options);
  const std::uint64_t dumps_before = aic::obs::flight::dumps();

  bool ok = true;
  std::size_t total_rejected = 0;
  for (const auto& [name, report] : aic::cli::run_robustness_suite()) {
    std::cout << name << ": " << report.summary() << "\n";
    for (const std::string& failure : report.failures) {
      std::cout << "  FAILURE " << failure << "\n";
    }
    total_rejected += report.rejected;
    ok = ok && report.ok();
  }

  const std::uint64_t flight_records =
      aic::obs::flight::dumps() - dumps_before;
  if (armed_here) aic::obs::flight::disarm();
  std::cout << "flight records: " << flight_records << " for "
            << total_rejected << " typed rejections\n";
  if (flight_records != total_rejected) {
    std::cout << "  FAILURE flight-recorder record count != typed rejections "
              << "(a CorruptStream was thrown without raise_corrupt)\n";
    ok = false;
  }

  std::cout << (ok ? "fault matrix clean" : "fault matrix FAILED") << "\n";
  return ok ? 0 : 1;
}

int write_corpus(const std::string& dir) {
  const std::vector<std::string> written = aic::cli::write_fuzz_corpus(dir);
  for (const std::string& path : written) std::cout << path << "\n";
  std::cout << written.size() << " corpus seeds written\n";
  return 0;
}

int replay(const std::vector<std::string>& paths) {
  int status = 0;
  for (const std::string& path : paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << path << ": cannot open\n";
      status = 1;
      continue;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    try {
      const std::string decoded =
          aic::cli::decode_archive_bytes(buffer.str());
      std::cout << path << ": decoded (" << decoded.size() << " bytes)\n";
    } catch (const aic::io::CorruptStream& error) {
      std::cout << path << ": rejected: " << error.what() << "\n";
    } catch (const std::exception& error) {
      std::cout << path << ": UNTYPED " << error.what() << "\n";
      status = 1;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--matrix") return run_matrix();
    if (args[0] == "--write-corpus") {
      if (args.size() != 2) {
        std::cerr << "usage: fault_inject --write-corpus <dir>\n";
        return 2;
      }
      return write_corpus(args[1]);
    }
    return replay(args);
  } catch (const std::exception& error) {
    std::cerr << "fault_inject: " << error.what() << "\n";
    return 1;
  }
}
