// The aicomp command-line tool: generate, compress, decompress, inspect
// and evaluate tensors with the DCT+Chop codec family. See cli/cli.hpp.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return aic::cli::run_cli(args, std::cout, std::cerr);
}
