// Portability audit across the four simulated accelerators (§3.1).
//
// Compiles three graphs on every platform:
//   1. DCT+Chop (two matmuls)           — accepted everywhere
//   2. triangle scatter/gather variant  — IPU (and GPU/CPU) only
//   3. a VLE encoder fragment           — rejected by every accelerator
// and prints each compiler's verdict plus the simulated compression
// throughput where compilation succeeds.
//
//   ./build/examples/accelerator_portability

#include <iostream>

#include "accel/registry.hpp"
#include "graph/builders.hpp"
#include "io/table.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  const core::DctChopConfig config{
      .height = 64, .width = 64, .cf = 4, .block = 8};
  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const std::size_t payload = batch.batch * batch.channels * 64 * 64 * 4;

  io::Table table({"platform", "dct+chop", "GB/s", "scatter/gather",
                   "VLE encoder"});
  for (Platform platform : accel::all_platforms()) {
    const accel::Accelerator device = accel::make_accelerator(platform);

    const auto chop = device.compile_check(
        graph::build_compress_graph(config, batch));
    std::string throughput = "-";
    if (chop.ok) {
      const double seconds =
          device.estimate(graph::build_compress_graph(config, batch))
              .total_s();
      throughput = io::Table::num(
          accel::throughput_gbps(payload, seconds), 3);
    }
    const auto triangle = device.compile_check(
        graph::build_triangle_compress_graph(config, batch));
    const auto vle =
        device.compile_check(graph::build_vle_encode_graph(4096));

    table.add_row({device.spec().name, chop.ok ? "compiles" : "REJECTED",
                   throughput, triangle.ok ? "compiles" : "REJECTED",
                   vle.ok ? "compiles" : "REJECTED"});
  }
  table.print(std::cout);

  std::cout << "\nWhy the VLE fragment is rejected (sample diagnostic):\n  "
            << accel::make_accelerator(Platform::kCs2)
                   .compile_check(graph::build_vle_encode_graph(4096))
                   .error
            << "\n";
  return 0;
}
