// Compressed dataset storage end to end — the paper's primary use-case
// (§2.3: "compressing training data can lower disk storage costs,
// improve host-to-device communication ... and reduce device memory
// consumption").
//
// 1. Generate a synthetic dataset and write each training batch to disk
//    as an .aicz archive (codec config + packed coefficients).
// 2. Reload the archives, decompress, and train on the reconstructed
//    batches.
// 3. Report disk bytes saved and the accuracy cost vs. training on the
//    pristine data.
//
//   ./build/examples/compressed_dataset

#include <filesystem>
#include <iostream>

#include "cli/archive.hpp"
#include "data/benchmarks.hpp"
#include "io/table.hpp"

int main() {
  using namespace aic;

  const data::DatasetConfig config{.train_samples = 64,
                                   .test_samples = 32,
                                   .batch_size = 16,
                                   .resolution = 16,
                                   .seed = 2026};
  constexpr std::size_t kCf = 4;
  constexpr std::size_t kEpochs = 6;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "aic_compressed_dataset";
  std::filesystem::create_directories(dir);

  // --- 1. write the dataset compressed ---
  const data::Dataset dataset = data::make_denoise_dataset(config);
  std::size_t raw_bytes = 0, stored_bytes = 0;
  for (std::size_t i = 0; i < dataset.train.size(); ++i) {
    const cli::Archive archive = cli::compress_to_archive(
        dataset.train[i].input, kCf, 8, core::TransformKind::kDct2, false);
    const std::string path =
        (dir / ("batch" + std::to_string(i) + ".aicz")).string();
    cli::save_archive(archive, path);
    raw_bytes += dataset.train[i].input.size_bytes();
    stored_bytes += std::filesystem::file_size(path);
  }
  std::cout << "stored " << dataset.train.size() << " batches: " << raw_bytes
            << " B raw -> " << stored_bytes << " B on disk ("
            << io::Table::num(
                   static_cast<double>(raw_bytes) / stored_bytes, 4)
            << "x)\n";

  // --- 2. reload + decompress into a training-ready dataset ---
  std::vector<nn::Batch> restored_batches = dataset.train;  // targets kept
  for (std::size_t i = 0; i < restored_batches.size(); ++i) {
    const cli::Archive archive = cli::load_archive(
        (dir / ("batch" + std::to_string(i) + ".aicz")).string());
    restored_batches[i].input = cli::make_archive_codec(archive)->decompress(
        archive.packed, archive.original_shape);
  }

  // --- 3. train on pristine vs reconstructed data ---
  auto train = [&](const std::vector<nn::Batch>& batches) {
    runtime::Rng rng(7);
    auto model = nn::make_encoder_decoder(1, rng, 6);
    nn::Adam adam(model->params(), 0.004f);
    nn::Trainer trainer(*model, adam, nn::TaskKind::kRegression);
    double loss = 0.0;
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      trainer.train_epoch(batches);
      loss = trainer.evaluate(dataset.test).loss;
    }
    return loss;
  };
  const double pristine = train(dataset.train);
  const double reconstructed = train(restored_batches);

  io::Table table({"training data", "disk bytes", "final test loss"});
  table.add_row({"pristine fp32", std::to_string(raw_bytes),
                 io::Table::num(pristine, 5)});
  table.add_row({"dct+chop CR=4 archives", std::to_string(stored_bytes),
                 io::Table::num(reconstructed, 5)});
  table.print(std::cout);
  const double delta_pct = 100.0 * (reconstructed - pristine) /
                           (pristine == 0.0 ? 1.0 : pristine);
  std::cout << "\ntrade: " << io::Table::num(
                   static_cast<double>(raw_bytes) / stored_bytes, 3)
            << "x less disk for a " << io::Table::num(delta_pct, 3)
            << "% test-loss change (test data stays pristine here; the "
               "Fig. 8 benches route evaluation through the same codec "
               "pipeline and see em_denoise *improve*)\n";

  std::filesystem::remove_all(dir);
  return 0;
}
