// Training-data compression in a real training loop (§4.1, Fig. 7/8).
//
// Trains the em_denoise benchmark twice — without compression and with
// DCT+Chop at CR 4 — and prints per-epoch train/test loss. The run with
// compression typically *improves* test loss on this benchmark because
// chopping removes exactly the high-frequency noise the model must learn
// to suppress (the paper's most striking Fig. 8 result).
//
//   ./build/examples/train_with_compression

#include <iostream>
#include <memory>

#include "core/codec_factory.hpp"
#include "data/benchmarks.hpp"
#include "io/table.hpp"

int main() {
  using namespace aic;

  const data::DatasetConfig config{.train_samples = 96,
                                   .test_samples = 32,
                                   .batch_size = 16,
                                   .resolution = 24,
                                   .seed = 7};
  constexpr std::size_t kEpochs = 6;

  auto run = [&](core::CodecPtr codec, const std::string& label) {
    data::BenchmarkRun bench = data::make_benchmark("em_denoise", config,
                                                    std::move(codec));
    std::cout << "training em_denoise [" << label << "] ...\n";
    return bench.trainer->fit(bench.dataset.train, bench.dataset.test,
                              kEpochs);
  };

  const auto base = run(nullptr, "base");
  const auto compressed =
      run(core::make_codec("dctchop:cf=4,block=8"), "dct+chop CR=4");

  io::Table table({"epoch", "train loss (base)", "train loss (CR=4)",
                   "test loss (base)", "test loss (CR=4)"});
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    table.add_row({std::to_string(epoch + 1),
                   io::Table::num(base[epoch].train_loss, 5),
                   io::Table::num(compressed[epoch].train_loss, 5),
                   io::Table::num(base[epoch].test_loss, 5),
                   io::Table::num(compressed[epoch].test_loss, 5)});
  }
  std::cout << '\n';
  table.print(std::cout);

  const double base_final = base.back().test_loss;
  const double comp_final = compressed.back().test_loss;
  std::cout << "\nfinal test loss: base=" << base_final
            << "  compressed=" << comp_final << "  ("
            << (comp_final < base_final ? "compression helped"
                                        : "compression cost accuracy")
            << ")\n";
  return 0;
}
