// Error-targeted rate selection + activation compression (§6 future
// work, implemented).
//
// 1. Pick the most aggressive chop factor meeting a PSNR floor on a
//    calibration batch — the compile-time analogue of an error-bounded
//    compressor on platforms whose ratio must be fixed at compile time.
// 2. Train a small denoiser whose mid-activation is stored compressed
//    (straight-through gradients), the Fig. 1 "blue target".
//
//   ./build/examples/adaptive_rate

#include <iostream>
#include <memory>

#include "core/rate_control.hpp"
#include "data/synth.hpp"
#include "io/table.hpp"
#include "nn/compressed_activation.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

int main() {
  using namespace aic;
  using tensor::Shape;
  using tensor::Tensor;

  constexpr std::size_t kRes = 32;
  runtime::Rng rng(777);
  Tensor calibration(Shape::bchw(8, 1, kRes, kRes));
  for (std::size_t b = 0; b < 8; ++b) {
    Tensor plane = data::smooth_field(kRes, kRes, rng, 6, 0.4);
    data::add_gaussian_noise(plane, rng, 0.02);
    calibration.set_plane(b, 0, plane);
  }

  // --- 1. rate/distortion curve and error-targeted choice ---
  std::cout << "rate/distortion curve on the calibration batch:\n";
  io::Table curve_table({"CF", "CR", "MSE", "PSNR (dB)"});
  for (const auto& point : core::rate_distortion_curve(calibration)) {
    curve_table.add_row({std::to_string(point.cf),
                         io::Table::num(point.compression_ratio, 4),
                         io::Table::num(point.measured_mse, 3),
                         io::Table::num(point.measured_psnr_db, 4)});
  }
  curve_table.print(std::cout);

  const double psnr_floor = 38.0;
  const auto choice = core::choose_chop_factor_psnr(calibration, psnr_floor);
  if (!choice) {
    std::cout << "no CF meets the PSNR floor\n";
    return 1;
  }
  std::cout << "\nPSNR >= " << psnr_floor << " dB -> CF=" << choice->cf
            << " (CR=" << io::Table::num(choice->compression_ratio, 4)
            << ", measured " << io::Table::num(choice->measured_psnr_db, 4)
            << " dB)\n\n";
  const auto codec = core::make_codec_for_choice(*choice, kRes, kRes);

  // --- 2. activation compression in a training loop ---
  auto build_net = [&](core::CodecPtr act_codec, std::uint64_t seed) {
    runtime::Rng wrng(seed);
    auto net = std::make_unique<nn::Sequential>();
    net->add(std::make_unique<nn::CompressedActivation>(
            std::make_unique<nn::Conv2d>(1, 8, 3, 1, 1, wrng),
            std::move(act_codec)))
        .add(std::make_unique<nn::Relu>())
        .add(std::make_unique<nn::Conv2d>(8, 1, 3, 1, 1, wrng));
    return net;
  };

  auto train = [&](core::CodecPtr act_codec) {
    auto net = build_net(std::move(act_codec), 42);
    nn::Adam adam(net->params(), 0.004f);
    double loss_value = 0.0;
    for (int step = 0; step < 80; ++step) {
      const Tensor out = net->forward(calibration, true);
      const nn::LossResult loss = nn::mse_loss(out, calibration);
      loss_value = loss.value;
      adam.zero_grad();
      net->backward(loss.grad);
      adam.step();
    }
    return loss_value;
  };

  const double raw = train(nullptr);
  const double compressed = train(codec);
  std::cout << "identity-reconstruction training loss after 80 steps:\n"
            << "  raw activations:        " << io::Table::num(raw, 4) << "\n"
            << "  compressed activations: " << io::Table::num(compressed, 4)
            << "  (CR=" << io::Table::num(choice->compression_ratio, 4)
            << " on the stored activation)\n";
  std::cout << "\nactivation memory saved per layer: "
            << io::Table::num(100.0 * (1.0 - 1.0 / choice->compression_ratio),
                              4)
            << "%\n";
  return 0;
}
