// Partial serialization for high-resolution samples (§3.5.1, Fig. 15).
//
// 512×512 samples do not compile on the SN30 (a single tensor plane
// exceeds one 0.5 MB PMU). Subdividing each sample by s=2 shrinks the
// working set 4× and the chunks compile — at the cost of s² serial
// launches. This example shows the failing compile, the fix, and the
// simulated cost of the trade.
//
//   ./build/examples/high_res_pipeline

#include <iostream>

#include "accel/registry.hpp"
#include "core/codec_factory.hpp"
#include "core/partial_serializer.hpp"
#include "graph/builders.hpp"
#include "io/table.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  constexpr std::size_t kRes = 512, kCf = 4, kSub = 2;
  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const accel::Accelerator sn30 = accel::make_accelerator(Platform::kSn30);

  // 1. The unserialized 512×512 graph is rejected.
  const core::DctChopConfig full{
      .height = kRes, .width = kRes, .cf = kCf, .block = 8};
  const auto rejected =
      sn30.compile_check(graph::build_decompress_graph(full, batch));
  std::cout << "512x512 direct compile on SN30: "
            << (rejected.ok ? "ok (unexpected)" : "FAILED") << "\n  "
            << rejected.error << "\n\n";

  // 2. Each s=2 chunk is a 256×256 problem that compiles.
  const core::DctChopConfig chunk{
      .height = kRes / kSub, .width = kRes / kSub, .cf = kCf, .block = 8};
  const auto accepted =
      sn30.compile_check(graph::build_decompress_graph(chunk, batch));
  std::cout << "256x256 chunk compile on SN30: "
            << (accepted.ok ? "ok" : accepted.error) << "\n\n";

  // 3. Cost of the trade: s² serial chunk invocations vs one shot.
  const double chunk_time =
      sn30.estimate(graph::build_decompress_graph(chunk, batch)).total_s();
  const double serialized_time = chunk_time * kSub * kSub;
  const std::size_t payload = batch.batch * batch.channels * kRes * kRes * 4;

  io::Table table({"configuration", "operator bytes", "time (ms)",
                   "throughput (GB/s)"});
  const core::CodecPtr codec = core::make_codec(
      "partial:cf=4,block=8,s=2,h=512,w=512");
  const auto& ps = dynamic_cast<const core::PartialSerialCodec&>(*codec);
  table.add_row(
      {"512x512 direct",
       std::to_string(
           core::PartialSerialCodec::unserialized_operator_bytes(kRes, kCf)),
       "compile error", "-"});
  table.add_row({"512x512, s=2 partial serialization",
                 std::to_string(ps.operator_bytes()),
                 io::Table::num(serialized_time * 1e3, 4),
                 io::Table::num(accel::throughput_gbps(payload,
                                                       serialized_time),
                                3)});
  table.print(std::cout);

  std::cout << "\nhost working set for the serialized codec (pack scratch "
               "+ chunk staging, batch of "
            << batch.batch << "x" << batch.channels << "): "
            << ps.workspace_bytes(batch.batch, batch.channels) << " bytes\n";
  std::cout << "\nFig. 15 expectation: ~2.5-3.8x slowdown vs native "
               "256x256 processing, not the naive 4x.\n";
  return 0;
}
