// Quickstart: compress and decompress a batch of images with DCT+Chop.
//
// Demonstrates the core public API:
//   * make_codec       — build any codec from a spec string, e.g.
//                        "dctchop:cf=4" or "triangle:cf=7" (the same
//                        grammar `aicomp --codec` accepts)
//   * evaluate_codec   — rate/distortion measurement
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/codec_factory.hpp"
#include "core/fidelity.hpp"
#include "data/synth.hpp"
#include "io/table.hpp"
#include "runtime/rng.hpp"

int main() {
  using namespace aic;

  // A batch of 8 synthetic RGB images, 32×32, values in [0, 1].
  constexpr std::size_t kBatch = 8, kChannels = 3, kRes = 32;
  runtime::Rng rng(2024);
  tensor::Tensor images(
      tensor::Shape::bchw(kBatch, kChannels, kRes, kRes));
  for (std::size_t b = 0; b < kBatch; ++b) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      images.set_plane(b, c, data::smooth_field(kRes, kRes, rng, 6, 0.5));
    }
  }

  std::cout << "DCT+Chop on a " << images.shape().to_string()
            << " batch (" << images.size_bytes() << " bytes)\n\n";

  io::Table table({"codec", "CR", "MSE", "PSNR (dB)", "max |err|"});
  auto measure = [&](const std::string& spec) {
    // Shape-agnostic: the codec compiles its operator plan for 32×32 on
    // first use and reuses it from the process-wide plan cache after.
    const core::CodecPtr codec = core::make_codec(spec);
    const core::RateDistortion rd = core::evaluate_codec(*codec, images);
    table.add_row({codec->name(), io::Table::num(rd.compression_ratio, 3),
                   io::Table::num(rd.mse, 3), io::Table::num(rd.psnr_db, 4),
                   io::Table::num(rd.max_abs_error, 3)});
  };
  for (std::size_t cf = 2; cf <= 7; ++cf) {
    measure("dctchop:cf=" + std::to_string(cf));
  }
  // The triangle variant trades a little fidelity for 2CF/(CF+1)× ratio.
  for (std::size_t cf : {4u, 7u}) {
    measure("triangle:cf=" + std::to_string(cf));
  }
  table.print(std::cout);

  std::cout << "\nCompression is literally two matmuls: "
               "Y = (M·T_L) · A · (T_Lᵀ·Mᵀ)\n";
  return 0;
}
