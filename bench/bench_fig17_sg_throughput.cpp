// Fig. 17: simulated IPU decompression throughput of the scatter/gather
// optimization ("opt") against plain DCT+Chop ("dct") for 100 3-channel
// 32×32 images, CF 2..7.
//
// Expected shape (§4.2.4): SG is 1.5-2.7× slower while improving the
// compression ratio 1.3-1.75× — the ratio/throughput trade is not
// proportional.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  constexpr std::size_t kRes = 32;
  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const std::size_t payload = bench::payload_bytes(batch.batch, 3, kRes);
  const accel::Accelerator ipu = accel::make_accelerator(Platform::kIpu);

  io::CsvWriter csv({"cf", "dct_cr", "sg_cr", "dct_gbps", "sg_gbps",
                     "slowdown", "ratio_gain"});
  io::Table table({"CF", "dct CR", "opt CR", "dct (GB/s)", "opt (GB/s)",
                   "opt slowdown", "ratio gain"});

  std::cout << "=== Fig. 17: IPU decompression, dct vs scatter/gather "
               "(simulated) ===\n";
  for (const auto& point : bench::chop_sweep()) {
    const core::DctChopConfig config{
        .height = kRes, .width = kRes, .cf = point.cf, .block = 8};
    const double dct_time =
        ipu.estimate(graph::build_decompress_graph(config, batch)).total_s();
    const double sg_time =
        ipu.estimate(graph::build_triangle_decompress_graph(config, batch))
            .total_s();
    const double dct_gbps = accel::throughput_gbps(payload, dct_time);
    const double sg_gbps = accel::throughput_gbps(payload, sg_time);
    const double dct_cr = core::chop_ratio(point.cf);
    const double sg_cr = core::triangle_ratio(point.cf);

    table.add_row({std::to_string(point.cf), io::Table::num(dct_cr, 4),
                   io::Table::num(sg_cr, 4), io::Table::num(dct_gbps, 4),
                   io::Table::num(sg_gbps, 4),
                   io::Table::num(dct_gbps / sg_gbps, 3) + "x",
                   io::Table::num(sg_cr / dct_cr, 3) + "x"});
    csv.add_row({std::to_string(point.cf), io::Table::num(dct_cr, 4),
                 io::Table::num(sg_cr, 4), io::Table::num(dct_gbps, 4),
                 io::Table::num(sg_gbps, 4),
                 io::Table::num(dct_gbps / sg_gbps, 4),
                 io::Table::num(sg_cr / dct_cr, 4)});
  }
  table.print(std::cout);

  csv.save(bench::results_dir() + "/fig17_sg_throughput.csv");
  std::cout << "wrote " << bench::results_dir()
            << "/fig17_sg_throughput.csv\n";
  return 0;
}
