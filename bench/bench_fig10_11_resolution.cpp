// Figs. 10 & 11: simulated compression (Fig. 10) and decompression
// (Fig. 11) time across the four accelerators for 100 3-channel samples,
// sweeping resolution 32..512 and CF 2..7.
//
// Expected shapes (§4.2.2): time linear in pixel count everywhere;
// CS-2 fastest, then SN30, then IPU, then GroqChip; decompression times
// stratified by CR (lower CF = less ingress = faster); SN30 and GroqChip
// fail to compile at 512×512 ("OOM" cells).

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const std::size_t resolutions[] = {32, 64, 128, 256, 512};

  io::CsvWriter csv({"direction", "platform", "resolution", "cf", "cr",
                     "time_ms", "throughput_gbps"});

  for (const bool compress : {true, false}) {
    std::cout << "=== Fig. " << (compress ? "10 (compression)"
                                          : "11 (decompression)")
              << " time, 100 x 3ch samples ===\n";
    for (Platform platform : accel::paper_accelerators()) {
      const accel::Accelerator device = accel::make_accelerator(platform);
      io::Table table({"resolution", "CR=16.0", "CR=7.11", "CR=4.0",
                       "CR=2.56", "CR=1.78", "CR=1.31"});
      for (std::size_t n : resolutions) {
        std::vector<std::string> row = {std::to_string(n) + "x" +
                                        std::to_string(n)};
        for (const auto& point : bench::chop_sweep()) {
          const core::DctChopConfig config{
              .height = n, .width = n, .cf = point.cf, .block = 8};
          const graph::Graph g =
              compress ? graph::build_compress_graph(config, batch)
                       : graph::build_decompress_graph(config, batch);
          const auto time = bench::try_estimate(device, g);
          if (!time) {
            row.push_back("OOM");
            csv.add_row({compress ? "compress" : "decompress",
                         accel::platform_name(platform), std::to_string(n),
                         std::to_string(point.cf), point.cr_label, "OOM",
                         "OOM"});
            continue;
          }
          row.push_back(bench::ms(*time) + " ms");
          const double gbps = accel::throughput_gbps(
              bench::payload_bytes(batch.batch, batch.channels, n), *time);
          csv.add_row({compress ? "compress" : "decompress",
                       accel::platform_name(platform), std::to_string(n),
                       std::to_string(point.cf), point.cr_label,
                       bench::ms(*time), io::Table::num(gbps, 4)});
        }
        table.add_row(row);
      }
      std::cout << "-- " << device.spec().name << " --\n";
      table.print(std::cout);
    }
    std::cout << "\n";
  }

  csv.save(bench::results_dir() + "/fig10_11_resolution.csv");
  std::cout << "wrote " << bench::results_dir()
            << "/fig10_11_resolution.csv\n";
  return 0;
}
