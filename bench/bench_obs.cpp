// Measured overhead of the observability stack, guarding the "always-on
// telemetry is free" claim: a compiled-in-but-disabled AIC_TRACE_SCOPE
// and an idle interval exporter must each cost < 2% on a real codec
// workload. Writes BENCH_obs.json (override with --json=PATH) for the
// CI artifact.
//
// Four measurements:
//   span_disabled_ns      raw cost of one disabled span (relaxed load)
//   span_enabled_ns       raw cost of one recorded span (ring write)
//   tracing_overhead_pct  codec round-trip slowdown with tracing on
//   exporter_overhead_pct codec round-trip slowdown with the interval
//                         exporter sampling in the background

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "core/codec_factory.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "runtime/rng.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor.hpp"

namespace {

using aic::tensor::Shape;
using aic::tensor::Tensor;

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    aic::runtime::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

double overhead_pct(double baseline_s, double variant_s) {
  return baseline_s > 0.0 ? (variant_s - baseline_s) / baseline_s * 100.0
                          : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_obs.json";
  std::size_t iters = 64;        // codec round trips per measurement
  std::size_t span_iters = 2'000'000;  // raw span-cost loop length
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--iters=", 0) == 0) iters = std::stoul(arg.substr(8));
    if (arg.rfind("--span-iters=", 0) == 0)
      span_iters = std::stoul(arg.substr(13));
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
  }

  // ---- Raw span cost --------------------------------------------------
  aic::obs::set_tracing_enabled(false);
  const double disabled_s = best_seconds(reps, [&] {
    for (std::size_t i = 0; i < span_iters; ++i) {
      AIC_TRACE_SCOPE("bench.span");
    }
  });
  aic::obs::set_tracing_enabled(true);
  const double enabled_s = best_seconds(reps, [&] {
    for (std::size_t i = 0; i < span_iters; ++i) {
      AIC_TRACE_SCOPE("bench.span");
    }
  });
  aic::obs::set_tracing_enabled(false);
  const double span_disabled_ns =
      disabled_s / static_cast<double>(span_iters) * 1e9;
  const double span_enabled_ns =
      enabled_s / static_cast<double>(span_iters) * 1e9;
  std::cout << "== raw span: disabled " << span_disabled_ns << " ns, enabled "
            << span_enabled_ns << " ns\n";

  // ---- Codec workload under each telemetry regime ---------------------
  aic::runtime::Rng rng(42);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 3, 64, 64), rng);
  const aic::core::CodecPtr codec = aic::core::make_codec("dctchop:cf=4,block=8");
  const auto workload = [&] {
    for (std::size_t i = 0; i < iters; ++i) (void)codec->round_trip(input);
  };
  workload();  // warm the plan cache out of the measurement

  // The three regimes are interleaved rep by rep (baseline, traced,
  // exporting, repeat) so slow drift — turbo decay, scheduler noise —
  // hits all three equally instead of inflating whichever ran last;
  // each regime keeps its best rep.
  double baseline_s = 1e30, traced_s = 1e30, exporting_s = 1e30;
  aic::obs::Exporter::Options exporter_options;
  exporter_options.interval_ms = 250;
  for (int rep = 0; rep < reps; ++rep) {
    aic::obs::Exporter::global().stop();
    baseline_s = std::min(baseline_s, best_seconds(1, workload));

    aic::obs::set_tracing_enabled(true);
    traced_s = std::min(traced_s, best_seconds(1, workload));
    aic::obs::set_tracing_enabled(false);

    // Idle steady state: the exporter samples on its interval while the
    // workload runs untouched (the acceptance regime — scrape-ready but
    // quiescent).
    aic::obs::Exporter::global().start(exporter_options);
    exporting_s = std::min(exporting_s, best_seconds(1, workload));
    aic::obs::Exporter::global().stop();
  }

  const double tracing_pct = overhead_pct(baseline_s, traced_s);
  const double exporter_pct = overhead_pct(baseline_s, exporting_s);
  std::cout << "== codec workload: baseline " << baseline_s * 1e3
            << " ms, tracing on " << traced_s * 1e3 << " ms ("
            << tracing_pct << "%), exporter idle " << exporting_s * 1e3
            << " ms (" << exporter_pct << "%)\n";

  std::string json = "{\n  \"bench\": \"obs\",\n";
  json += "  \"iters\": " + std::to_string(iters) + ",\n";
  json += "  \"span_iters\": " + std::to_string(span_iters) + ",\n";
  json += "  \"span_disabled_ns\": " + std::to_string(span_disabled_ns) + ",\n";
  json += "  \"span_enabled_ns\": " + std::to_string(span_enabled_ns) + ",\n";
  json += "  \"workload_baseline_s\": " + std::to_string(baseline_s) + ",\n";
  json += "  \"workload_traced_s\": " + std::to_string(traced_s) + ",\n";
  json += "  \"workload_exporting_s\": " + std::to_string(exporting_s) + ",\n";
  json += "  \"tracing_overhead_pct\": " + std::to_string(tracing_pct) + ",\n";
  json += "  \"exporter_idle_overhead_pct\": " + std::to_string(exporter_pct) +
          "\n}\n";
  std::ofstream out(json_path);
  out << json;
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
