// Energy-normalized comparison — the caveat the paper's key takeaways
// flag explicitly: "power differences are not accounted for in this
// evaluation. Thus, we cannot directly compare performance differences
// between accelerators." Here we do account for them, with public
// board/system power figures, reporting joules per uncompressed GB.
//
// Expected picture: the CS-2's raw-throughput crown inverts under
// energy normalization (a 20 kW wafer vs 300 W boards); the IPU becomes
// the efficiency leader of the accelerators at moderate CR.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  constexpr std::size_t kRes = 256, kCf = 4;
  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const std::size_t payload = bench::payload_bytes(batch.batch, 3, kRes);
  const core::DctChopConfig config{
      .height = kRes, .width = kRes, .cf = kCf, .block = 8};

  io::Table table({"platform", "power (W)", "time (ms)",
                   "throughput (GB/s)", "energy (J/GB)"});
  io::CsvWriter csv({"platform", "direction", "watts", "time_ms", "gbps",
                     "joules_per_gb"});

  for (const bool compress : {true, false}) {
    std::cout << "=== energy per GB, "
              << (compress ? "compression" : "decompression")
              << " of 100 x 3ch 256x256 (CF=4) ===\n";
    io::Table dir_table({"platform", "power (W)", "time (ms)",
                         "throughput (GB/s)", "energy (J/GB)"});
    for (Platform platform : accel::all_platforms()) {
      if (platform == Platform::kCpu) continue;
      const accel::Accelerator device = accel::make_accelerator(platform);
      const graph::Graph g =
          compress ? graph::build_compress_graph(config, batch)
                   : graph::build_decompress_graph(config, batch);
      const auto time = bench::try_estimate(device, g);
      if (!time) continue;
      const double gbps = accel::throughput_gbps(payload, *time);
      const double joules_per_gb = device.spec().tdp_watts / gbps;
      dir_table.add_row({device.spec().name,
                         io::Table::num(device.spec().tdp_watts, 6),
                         bench::ms(*time), io::Table::num(gbps, 4),
                         io::Table::num(joules_per_gb, 4)});
      csv.add_row({device.spec().name, compress ? "compress" : "decompress",
                   io::Table::num(device.spec().tdp_watts, 6),
                   bench::ms(*time), io::Table::num(gbps, 4),
                   io::Table::num(joules_per_gb, 4)});
    }
    dir_table.print(std::cout);
    std::cout << "\n";
  }
  (void)table;

  std::cout << "(power figures are public board/system approximations — "
               "see accel/spec.cpp; the ordering inversion vs Figs. 10-13 "
               "is the point)\n";
  csv.save(bench::results_dir() + "/energy.csv");
  std::cout << "wrote " << bench::results_dir() << "/energy.csv\n";
  return 0;
}
