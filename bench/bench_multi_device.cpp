// §4.2.2 "Comparison with GPU", scaled out: a single GroqChip or IPU
// loses to the A100, but their deployed form factors — GroqNode
// (8 chips) and Graphcore Bow-Pod64 (64 IPUs) — shard the batch and
// overtake it. Decompression of 1024 3-channel 64×64 samples.

#include <iostream>

#include "accel/scaling.hpp"
#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  constexpr std::size_t kRes = 64, kBatch = 1024, kCf = 7;
  const std::size_t payload = bench::payload_bytes(kBatch, 3, kRes);

  const accel::Accelerator a100 = accel::make_accelerator(Platform::kA100);
  const double a100_time =
      a100.estimate(graph::build_decompress_graph(
              {.height = kRes, .width = kRes, .cf = kCf, .block = 8},
              {.batch = kBatch, .channels = 3}))
          .total_s();

  io::Table table({"deployment", "devices", "time (ms)",
                   "throughput (GB/s)", "vs A100"});
  io::CsvWriter csv({"deployment", "devices", "time_ms", "gbps",
                     "speedup_vs_a100"});
  auto add = [&](const std::string& name, std::size_t devices,
                 double seconds) {
    const double gbps = accel::throughput_gbps(payload, seconds);
    table.add_row({name, std::to_string(devices), bench::ms(seconds),
                   io::Table::num(gbps, 4),
                   io::Table::num(a100_time / seconds, 3) + "x"});
    csv.add_row({name, std::to_string(devices), bench::ms(seconds),
                 io::Table::num(gbps, 4),
                 io::Table::num(a100_time / seconds, 4)});
  };

  add("nvidia-a100", 1, a100_time);

  struct Deployment {
    Platform platform;
    std::string name;
    std::vector<std::size_t> device_counts;
  };
  const Deployment deployments[] = {
      {Platform::kIpu, "graphcore bow-pod", {1, 4, 16, 64}},
      {Platform::kGroq, "groqnode", {1, 2, 4, 8}},
  };

  for (const Deployment& deployment : deployments) {
    const accel::Accelerator device =
        accel::make_accelerator(deployment.platform);
    for (std::size_t n : deployment.device_counts) {
      const core::DctChopConfig config{
          .height = kRes, .width = kRes, .cf = kCf, .block = 8};
      const graph::Graph shard = graph::build_decompress_graph(
          config, {.batch = kBatch / n, .channels = 3});
      if (!device.compile_check(shard).ok) {
        // e.g. a single GroqChip cannot schedule the whole 1024 batch.
        table.add_row({deployment.name, std::to_string(n),
                       "shard does not compile", "-", "-"});
        csv.add_row({deployment.name, std::to_string(n), "OOM", "-", "-"});
        continue;
      }
      const accel::SimTime time = accel::estimate_data_parallel(
          device, shard, {.devices = n});
      add(deployment.name, n, time.total_s());
    }
  }

  std::cout << "=== multi-device scaling: decompression of 1024 x 3ch "
               "64x64 samples (CF=7, low-CR regime) ===\n";
  table.print(std::cout);
  std::cout << "\npaper claim: \"the CS-2 and SN30 RDU on their own can "
               "outperform the A100 ... GroqChip and IPU rely on "
               "scalability to outperform GPU\"\n";

  csv.save(bench::results_dir() + "/multi_device.csv");
  std::cout << "wrote " << bench::results_dir() << "/multi_device.csv\n";
  return 0;
}
