// Ablations of the §3.2 design choices the paper fixes by fiat:
//   A. square chop vs triangle keep-set at matched CF
//   B. transform block size (4 / 8 / 16) at matched CR
//   C. RGB direct vs JPEG-style YCbCr with chroma-heavy chopping
//   D. the two-matmul formulation vs a per-block loop (host wall time)

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/codec_factory.hpp"
#include "core/dct.hpp"
#include "core/fidelity.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "data/synth.hpp"
#include "runtime/timer.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace aic;
using tensor::Shape;
using tensor::Tensor;

// All codecs below are built from CodecFactory spec strings (the same
// grammar `aicomp --codec` accepts).
core::CodecPtr chop(std::size_t cf, std::size_t block = 8,
                    const std::string& extra = "") {
  return core::make_codec("dctchop:cf=" + std::to_string(cf) +
                          ",block=" + std::to_string(block) + extra);
}

Tensor make_batch(std::size_t batch, std::size_t channels, std::size_t n,
                  std::uint64_t seed) {
  runtime::Rng rng(seed);
  Tensor t(Shape::bchw(batch, channels, n, n));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      Tensor plane = data::smooth_field(n, n, rng, 6, 0.5);
      data::add_gaussian_noise(plane, rng, 0.03);
      t.set_plane(b, c, plane);
    }
  }
  return t;
}

// RGB <-> YCbCr (BT.601 full range), applied across the 3 channels.
Tensor rgb_to_ycbcr(const Tensor& rgb) {
  Tensor out(rgb.shape());
  const std::size_t batch = rgb.shape()[0];
  const std::size_t plane = rgb.shape()[2] * rgb.shape()[3];
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < plane; ++i) {
      const std::size_t base = (b * 3) * plane;
      const float r = rgb.at(base + i);
      const float g = rgb.at(base + plane + i);
      const float bl = rgb.at(base + 2 * plane + i);
      out.at(base + i) = 0.299f * r + 0.587f * g + 0.114f * bl;
      out.at(base + plane + i) = 0.5f + (-0.168736f * r - 0.331264f * g + 0.5f * bl);
      out.at(base + 2 * plane + i) = 0.5f + (0.5f * r - 0.418688f * g - 0.081312f * bl);
    }
  }
  return out;
}

Tensor ycbcr_to_rgb(const Tensor& ycc) {
  Tensor out(ycc.shape());
  const std::size_t batch = ycc.shape()[0];
  const std::size_t plane = ycc.shape()[2] * ycc.shape()[3];
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < plane; ++i) {
      const std::size_t base = (b * 3) * plane;
      const float y = ycc.at(base + i);
      const float cb = ycc.at(base + plane + i) - 0.5f;
      const float cr = ycc.at(base + 2 * plane + i) - 0.5f;
      out.at(base + i) = y + 1.402f * cr;
      out.at(base + plane + i) = y - 0.344136f * cb - 0.714136f * cr;
      out.at(base + 2 * plane + i) = y + 1.772f * cb;
    }
  }
  return out;
}

// Per-channel round trip with channel-specific chop factors.
Tensor per_channel_round_trip(const Tensor& input,
                              const std::array<std::size_t, 3>& cfs) {
  const std::size_t n = input.shape()[2];
  Tensor out(input.shape());
  for (std::size_t c = 0; c < 3; ++c) {
    const core::CodecPtr codec = chop(cfs[c]);
    Tensor channel(Shape::bchw(input.shape()[0], 1, n, n));
    for (std::size_t b = 0; b < input.shape()[0]; ++b) {
      channel.set_plane(b, 0, input.slice_plane(b, c));
    }
    const Tensor restored = codec->round_trip(channel);
    for (std::size_t b = 0; b < input.shape()[0]; ++b) {
      out.set_plane(b, c, restored.slice_plane(b, 0));
    }
  }
  return out;
}

// Reference per-block compressor: loops 8×8 tiles instead of the
// batched two-matmul formulation. Same math, different schedule.
Tensor per_block_round_trip(const Tensor& input, std::size_t cf) {
  const std::size_t n = input.shape()[2];
  const Tensor t = core::dct_matrix(8);
  const Tensor tt = t.transposed();
  Tensor out(input.shape());
  Tensor tile(Shape::matrix(8, 8));
  for (std::size_t b = 0; b < input.shape()[0]; ++b) {
    for (std::size_t c = 0; c < input.shape()[1]; ++c) {
      for (std::size_t bi = 0; bi < n; bi += 8) {
        for (std::size_t bj = 0; bj < n; bj += 8) {
          for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
              tile.at(i, j) = input.at(b, c, bi + i, bj + j);
            }
          }
          Tensor coeffs = tensor::matmul(tensor::matmul(t, tile), tt);
          for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
              if (i >= cf || j >= cf) coeffs.at(i, j) = 0.0f;
            }
          }
          const Tensor restored =
              tensor::matmul(tensor::matmul(tt, coeffs), t);
          for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < 8; ++j) {
              out.at(b, c, bi + i, bj + j) = restored.at(i, j);
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kRes = 64;
  const Tensor images = make_batch(8, 3, kRes, 404);

  // --- A. square vs triangle keep-set ---
  std::cout << "=== ablation A: square chop vs triangle keep-set ===\n";
  {
    io::Table table({"CF", "square CR", "square MSE", "triangle CR",
                     "triangle MSE", "MSE penalty"});
    for (const auto& point : bench::chop_sweep()) {
      const core::CodecPtr square = chop(point.cf);
      const core::CodecPtr triangle =
          core::make_codec("triangle:cf=" + std::to_string(point.cf));
      const auto rd_square = core::evaluate_codec(*square, images);
      const auto rd_triangle = core::evaluate_codec(*triangle, images);
      table.add_row(
          {std::to_string(point.cf),
           io::Table::num(rd_square.compression_ratio, 4),
           io::Table::num(rd_square.mse, 4),
           io::Table::num(rd_triangle.compression_ratio, 4),
           io::Table::num(rd_triangle.mse, 4),
           io::Table::num(rd_square.mse > 0
                              ? rd_triangle.mse / rd_square.mse
                              : 1.0,
                          3) +
               "x"});
    }
    table.print(std::cout);
  }

  // --- B. block size at matched CR = 4 ---
  std::cout << "\n=== ablation B: transform block size at CR=4 ===\n";
  {
    io::Table table({"block", "CF", "MSE", "PSNR (dB)", "operator bytes"});
    for (std::size_t block : {4u, 8u, 16u}) {
      const std::size_t cf = block / 2;  // CR = block²/cf² = 4
      // Pinned (h=/w=) so the operand tensors are inspectable below.
      const core::CodecPtr codec =
          chop(cf, block, ",h=" + std::to_string(kRes) +
                              ",w=" + std::to_string(kRes));
      const auto rd = core::evaluate_codec(*codec, images);
      const auto& dc = dynamic_cast<const core::DctChopCodec&>(*codec);
      const std::size_t operator_bytes =
          dc.lhs().size_bytes() + dc.rhs().size_bytes();
      table.add_row({std::to_string(block), std::to_string(cf),
                     io::Table::num(rd.mse, 4), io::Table::num(rd.psnr_db, 4),
                     std::to_string(operator_bytes)});
    }
    table.print(std::cout);
    std::cout << "(larger blocks capture more structure per coefficient "
                 "but cost bigger operators and coarser rate steps)\n";
  }

  // --- C. RGB direct vs YCbCr chroma-heavy chopping ---
  std::cout << "\n=== ablation C: RGB direct vs YCbCr (chroma chopped "
               "harder) ===\n";
  {
    // RGB: CF=4 on every channel (48 coeffs/block over 3 channels).
    const Tensor rgb_restored =
        per_channel_round_trip(images, {4, 4, 4});
    // YCbCr: CF=6 on luma, CF=2,2 on chroma (44 coeffs/block) — slightly
    // *higher* compression than the RGB config.
    const Tensor ycc = rgb_to_ycbcr(images);
    const Tensor ycc_restored = per_channel_round_trip(ycc, {6, 2, 2});
    const Tensor ycbcr_restored = ycbcr_to_rgb(ycc_restored);

    io::Table table({"pipeline", "kept coeffs/block (3ch)", "MSE",
                     "PSNR (dB)"});
    table.add_row({"RGB, CF=4/4/4", "48",
                   io::Table::num(tensor::mse(images, rgb_restored), 4),
                   io::Table::num(tensor::psnr(images, rgb_restored, 1.0), 4)});
    table.add_row({"YCbCr, CF=6/2/2", "44",
                   io::Table::num(tensor::mse(images, ycbcr_restored), 4),
                   io::Table::num(tensor::psnr(images, ycbcr_restored, 1.0),
                                  4)});
    table.print(std::cout);
    std::cout << "(the paper skips the colour transform to stay \"fast and "
                 "lightweight\" — this quantifies what that choice costs)\n";
  }

  // --- D. two-matmul formulation vs per-block loop, host wall time ---
  std::cout << "\n=== ablation D: two-matmul vs per-block loop (host) ===\n";
  {
    const core::CodecPtr codec = chop(4);
    constexpr int kReps = 5;

    runtime::Timer timer;
    Tensor via_matmul;
    for (int i = 0; i < kReps; ++i) via_matmul = codec->round_trip(images);
    const double matmul_time = timer.seconds() / kReps;

    timer.reset();
    Tensor via_blocks;
    for (int i = 0; i < kReps; ++i) via_blocks = per_block_round_trip(images, 4);
    const double block_time = timer.seconds() / kReps;

    io::Table table({"implementation", "time (ms)", "speedup",
                     "max |diff| vs other"});
    table.add_row({"two matmuls (Eq. 4/6)", bench::ms(matmul_time), "1x",
                   io::Table::num(tensor::max_abs_error(via_matmul,
                                                        via_blocks),
                                  3)});
    table.add_row({"per-block loop", bench::ms(block_time),
                   io::Table::num(block_time / matmul_time, 3) + "x slower",
                   "-"});
    table.print(std::cout);
    std::cout << "(both produce the same reconstruction; the batched "
                 "formulation is what the accelerators can actually run)\n";
  }

  // --- E. transform family (§6 future work: swap the block transform) ---
  std::cout << "\n=== ablation E: block transform family at each CF ===\n";
  {
    io::Table table({"CF", "dct MSE", "wht MSE", "dst2 MSE"});
    for (const auto& point : bench::chop_sweep()) {
      std::vector<std::string> row = {std::to_string(point.cf)};
      for (const char* kind : {"dct", "wht", "dst2"}) {
        const core::CodecPtr codec =
            chop(point.cf, 8, std::string(",transform=") + kind);
        row.push_back(io::Table::num(
            tensor::mse(images, codec->round_trip(images)), 4));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "(the graph shape — two matmuls — is identical for every "
                 "family, so portability and simulated throughput are "
                 "unchanged; only energy compaction differs)\n";
  }
  return 0;
}
