// Fig. 14: simulated A100 decompression time vs resolution for CF 2..7.
//
// Expected shape (§4.2.2): ≈2.5 GB/s, nearly flat across compression
// ratios — the device→host copy-back of the uncompressed result
// dominates, so CR barely matters. CS-2 and SN30 beat it; a single IPU
// or GroqChip does not.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const std::size_t resolutions[] = {32, 64, 128, 256, 512};
  const accel::Accelerator a100 = accel::make_accelerator(Platform::kA100);

  io::CsvWriter csv({"resolution", "cf", "cr", "time_ms",
                     "throughput_gbps"});
  io::Table table({"resolution", "CR=16.0", "CR=7.11", "CR=4.0", "CR=2.56",
                   "CR=1.78", "CR=1.31"});

  std::cout << "=== Fig. 14: A100 decompression time (simulated) ===\n";
  for (std::size_t n : resolutions) {
    std::vector<std::string> row = {std::to_string(n) + "x" +
                                    std::to_string(n)};
    for (const auto& point : bench::chop_sweep()) {
      const core::DctChopConfig config{
          .height = n, .width = n, .cf = point.cf, .block = 8};
      const double time =
          a100.estimate(graph::build_decompress_graph(config, batch))
              .total_s();
      row.push_back(bench::ms(time) + " ms");
      csv.add_row({std::to_string(n), std::to_string(point.cf),
                   point.cr_label, bench::ms(time),
                   io::Table::num(
                       accel::throughput_gbps(
                           bench::payload_bytes(batch.batch, 3, n), time),
                       4)});
    }
    table.add_row(row);
  }
  table.print(std::cout);

  // §4.2.2 comparison: who beats the A100. Measured at CF=7 (low CR),
  // the regime where decompression moves nearly full-size data — the
  // paper's single-IPU/single-GroqChip-lose-to-A100 claim; at high CR
  // the IPU's CR-stratified decompression can overtake the A100.
  const core::DctChopConfig cmp{
      .height = 256, .width = 256, .cf = 7, .block = 8};
  const double a100_time =
      a100.estimate(graph::build_decompress_graph(cmp, batch)).total_s();
  std::cout << "\nhead-to-head at 256x256 CF=7 (decompression):\n";
  for (Platform platform : accel::paper_accelerators()) {
    const accel::Accelerator device = accel::make_accelerator(platform);
    const double t =
        device.estimate(graph::build_decompress_graph(cmp, batch)).total_s();
    std::cout << "  " << device.spec().name << ": " << bench::ms(t)
              << " ms  (" << (t < a100_time ? "beats" : "loses to")
              << " A100 @ " << bench::ms(a100_time) << " ms)\n";
  }

  csv.save(bench::results_dir() + "/fig14_gpu.csv");
  std::cout << "wrote " << bench::results_dir() << "/fig14_gpu.csv\n";
  return 0;
}
