// Fig. 15: decompression throughput of s=2 partial serialization for
// 100 3-channel 512×512 images on SN30 and IPU, sweeping CF 7..2
// (left to right in the paper's figure).
//
// Expected shape: the 512×512 problem, impossible to compile directly on
// the SN30, runs via four serialized 256×256 chunks at a 2.5-3.8×
// (SN30) / 2.6-3.7× (IPU) throughput penalty versus native 256×256
// processing — far better than a naive 4× per-launch cost would suggest.

#include <iostream>

#include "bench/common.hpp"
#include "core/partial_serializer.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  constexpr std::size_t kRes = 512, kSub = 2, kChunk = kRes / kSub;
  const graph::BatchSpec batch{.batch = 100, .channels = 3};
  const std::size_t payload = bench::payload_bytes(batch.batch, 3, kRes);
  const std::size_t chunk_payload =
      bench::payload_bytes(batch.batch, 3, kChunk);

  io::CsvWriter csv({"platform", "cf", "cr", "ps_time_ms",
                     "ps_throughput_gbps", "native256_gbps", "slowdown"});

  std::cout << "=== Fig. 15: partial serialization s=2, 100 x 3ch 512x512 "
               "(decompression) ===\n";
  for (Platform platform : {Platform::kIpu, Platform::kSn30}) {
    const accel::Accelerator device = accel::make_accelerator(platform);
    const char* label = platform == Platform::kIpu ? "graphcore" : "samba";
    io::Table table({"CF", "CR", "PS throughput (GB/s)",
                     "native 256 (GB/s)", "slowdown"});
    // Paper sweeps CF = 7,6,5,4,3,2 left to right.
    for (auto it = bench::chop_sweep().rbegin();
         it != bench::chop_sweep().rend(); ++it) {
      const core::DctChopConfig chunk_config{
          .height = kChunk, .width = kChunk, .cf = it->cf, .block = 8};
      const graph::Graph chunk_graph =
          graph::build_decompress_graph(chunk_config, batch);

      const double ps_time = bench::partial_serialized_time(
          device, chunk_graph, kSub, chunk_payload);
      const double ps_gbps = accel::throughput_gbps(payload, ps_time);
      const double native_time = device.estimate(chunk_graph).total_s();
      const double native_gbps =
          accel::throughput_gbps(chunk_payload, native_time);
      const double slowdown = native_gbps / ps_gbps;

      table.add_row({std::to_string(it->cf), it->cr_label,
                     io::Table::num(ps_gbps, 4),
                     io::Table::num(native_gbps, 4),
                     io::Table::num(slowdown, 3) + "x"});
      csv.add_row({label, std::to_string(it->cf), it->cr_label,
                   bench::ms(ps_time), io::Table::num(ps_gbps, 4),
                   io::Table::num(native_gbps, 4),
                   io::Table::num(slowdown, 4)});
    }
    std::cout << "-- " << label << " --\n";
    table.print(std::cout);
  }

  // IPU bonus datapoint from the paper: the IPU *can* run 512×512
  // without serialization; no-serialization is only 1-8% faster.
  const accel::Accelerator ipu = accel::make_accelerator(Platform::kIpu);
  const core::DctChopConfig full{
      .height = kRes, .width = kRes, .cf = 4, .block = 8};
  const double direct =
      ipu.estimate(graph::build_decompress_graph(full, batch)).total_s();
  const core::DctChopConfig chunk_cfg{
      .height = kChunk, .width = kChunk, .cf = 4, .block = 8};
  const double ps = bench::partial_serialized_time(
      ipu, graph::build_decompress_graph(chunk_cfg, batch), kSub,
      chunk_payload);
  std::cout << "\nIPU 512x512 direct vs s=2: " << bench::ms(direct)
            << " ms vs " << bench::ms(ps) << " ms (direct is "
            << io::Table::num(100.0 * (ps - direct) / ps, 3)
            << "% faster)\n";

  csv.save(bench::results_dir() + "/fig15_partial_serialization.csv");
  std::cout << "wrote " << bench::results_dir()
            << "/fig15_partial_serialization.csv\n";
  return 0;
}
