// Figs. 12 & 13: simulated compression/decompression time across the
// accelerators for 3-channel 64×64 samples, sweeping batch size 10..5000
// and CF 2..7.
//
// Expected shapes (§4.2.2): linear in batch size on SN30/IPU/GroqChip;
// flat-then-linear on CS-2 (pipeline fill); GroqChip fails to compile
// beyond batch 1000 (static schedule limit).

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  constexpr std::size_t kRes = 64;
  const std::size_t batches[] = {10, 100, 500, 1000, 2000, 5000};

  io::CsvWriter csv({"direction", "platform", "batch", "cf", "cr",
                     "time_ms", "throughput_gbps"});

  for (const bool compress : {true, false}) {
    std::cout << "=== Fig. " << (compress ? "12 (compression)"
                                          : "13 (decompression)")
              << " time, 3ch 64x64 samples ===\n";
    for (Platform platform : accel::paper_accelerators()) {
      const accel::Accelerator device = accel::make_accelerator(platform);
      io::Table table({"batch", "CR=16.0", "CR=7.11", "CR=4.0", "CR=2.56",
                       "CR=1.78", "CR=1.31"});
      for (std::size_t bd : batches) {
        const graph::BatchSpec batch{.batch = bd, .channels = 3};
        std::vector<std::string> row = {std::to_string(bd)};
        for (const auto& point : bench::chop_sweep()) {
          const core::DctChopConfig config{
              .height = kRes, .width = kRes, .cf = point.cf, .block = 8};
          const graph::Graph g =
              compress ? graph::build_compress_graph(config, batch)
                       : graph::build_decompress_graph(config, batch);
          const auto time = bench::try_estimate(device, g);
          if (!time) {
            row.push_back("OOM");
            csv.add_row({compress ? "compress" : "decompress",
                         accel::platform_name(platform), std::to_string(bd),
                         std::to_string(point.cf), point.cr_label, "OOM",
                         "OOM"});
            continue;
          }
          row.push_back(bench::ms(*time) + " ms");
          csv.add_row({compress ? "compress" : "decompress",
                       accel::platform_name(platform), std::to_string(bd),
                       std::to_string(point.cf), point.cr_label,
                       bench::ms(*time),
                       io::Table::num(
                           accel::throughput_gbps(
                               bench::payload_bytes(bd, 3, kRes), *time),
                           4)});
        }
        table.add_row(row);
      }
      std::cout << "-- " << device.spec().name << " --\n";
      table.print(std::cout);
    }
    std::cout << "\n";
  }

  csv.save(bench::results_dir() + "/fig12_13_batch.csv");
  std::cout << "wrote " << bench::results_dir() << "/fig12_13_batch.csv\n";
  return 0;
}
