// §4.2.2 pipeline-overlap analysis: can decompression keep the training
// pipeline fed? The paper reports, for ResNet34 on CIFAR-10 batches of
// 100, ≈205 training samples/s on CS-2 against ≈330,000 decompressed
// samples/s, and ≈570 vs ≈220,000 on the SN30 — three orders of
// magnitude of headroom, so the codec hides inside the dataflow pipeline.

#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  // CIFAR-10 geometry: batches of 100 3×32×32 samples (Table 3).
  constexpr std::size_t kRes = 32, kBatch = 100;
  const graph::BatchSpec batch{.batch = kBatch, .channels = 3};
  const core::DctChopConfig config{
      .height = kRes, .width = kRes, .cf = 4, .block = 8};

  io::Table table({"platform", "train (samples/s)", "decompress (samples/s)",
                   "headroom", "verdict"});
  io::CsvWriter csv({"platform", "train_sps", "decompress_sps", "headroom"});

  for (Platform platform : {Platform::kCs2, Platform::kSn30}) {
    const accel::Accelerator device = accel::make_accelerator(platform);
    const double train_sps = device.spec().resnet34_train_samples_per_s;
    const double decompress_time =
        device.estimate(graph::build_decompress_graph(config, batch))
            .total_s();
    const double decompress_sps =
        static_cast<double>(kBatch) / decompress_time;
    const double headroom = decompress_sps / train_sps;

    table.add_row({device.spec().name, io::Table::num(train_sps, 4),
                   io::Table::num(decompress_sps, 6),
                   io::Table::num(headroom, 4) + "x",
                   headroom > 10.0 ? "codec hides in pipeline"
                                   : "codec may stall pipeline"});
    csv.add_row({device.spec().name, io::Table::num(train_sps, 6),
                 io::Table::num(decompress_sps, 6),
                 io::Table::num(headroom, 6)});
  }
  std::cout << "=== pipeline overlap: ResNet34/CIFAR-10 training vs "
               "decompression throughput ===\n";
  table.print(std::cout);
  std::cout << "\npaper reference points: CS-2 ~205 vs ~330,000 sps; "
               "SN30 ~570 vs ~220,000 sps\n";

  csv.save(bench::results_dir() + "/pipeline_overlap.csv");
  std::cout << "wrote " << bench::results_dir() << "/pipeline_overlap.csv\n";
  return 0;
}
