// Tables 1-3 of the paper, reproduced from the library's data.

#include <iostream>

#include "accel/spec.hpp"
#include "bench/common.hpp"
#include "data/benchmarks.hpp"

int main() {
  using namespace aic;

  std::cout << "=== Table 1: accelerator specifications ===\n";
  io::Table t1({"", "CS-2", "SN30", "GroqChip", "IPU"});
  const auto specs = {accel::cs2_spec(), accel::sn30_spec(),
                      accel::groq_spec(), accel::ipu_spec()};
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& spec : specs) cells.push_back(getter(spec));
    t1.add_row(cells);
  };
  row("CUs", [](const auto& s) { return std::to_string(s.compute_units); });
  row("OCM", [](const auto& s) {
    if (s.ocm_bytes >= (1ull << 30)) {
      return std::to_string(s.ocm_bytes >> 30) + " GB";
    }
    return std::to_string(s.ocm_bytes >> 20) + " MB";
  });
  row("OCM/CUs", [](const auto& s) {
    // Sub-100-KB figures print in KB (Table 1 writes "48 KB" for CS-2).
    if (s.ocm_per_cu_bytes < 100u << 10) {
      return std::to_string(s.ocm_per_cu_bytes >> 10) + " KB";
    }
    const double mb = static_cast<double>(s.ocm_per_cu_bytes) / (1 << 20);
    return io::Table::num(mb, 2) + " MB";
  });
  row("Software", [](const auto& s) { return s.software; });
  row("Arch.", [](const auto& s) { return accel::arch_name(s.arch); });
  t1.print(std::cout);

  std::cout << "\n=== Table 2: datasets ===\n";
  io::Table t2({"Dataset", "Size", "Type", "Task", "Sample Size"});
  for (const auto& d : data::table2_datasets()) {
    t2.add_row({d.dataset, d.size, d.type, d.task, d.sample_size});
  }
  t2.print(std::cout);

  std::cout << "\n=== Table 3: evaluation benchmarks ===\n";
  io::Table t3({"Test", "Dataset", "Task", "Network", "Sample Size",
                "Training Params."});
  for (const auto& b : data::table3_benchmarks()) {
    t3.add_row({b.test, b.dataset, b.task, b.network, b.sample_size,
                "BS=" + std::to_string(b.paper_batch_size) +
                    ", LR=" + io::Table::num(b.paper_learning_rate, 4)});
  }
  t3.print(std::cout);
  return 0;
}
