// Fig. 16: accuracy of the Graphcore scatter/gather (triangle) variant
// vs the no-compression baseline, on classify and em_denoise, CF 2..7.
//
// Expected shape (§4.2.4): classify drops ~1-2% more than square
// DCT+Chop at equal CF; em_denoise stays at or below baseline loss and
// can improve on it.

#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "core/codec_factory.hpp"
#include "data/benchmarks.hpp"

int main() {
  using namespace aic;

  // Same sizing/seed as the Fig. 7/8 bench so the SG series are directly
  // comparable against that run's square-chop series.
  const data::DatasetConfig classify_config{.train_samples = 96,
                                            .test_samples = 32,
                                            .batch_size = 16,
                                            .resolution = 24,
                                            .seed = 99};
  const data::DatasetConfig dense_config{.train_samples = 96,
                                         .test_samples = 32,
                                         .batch_size = 16,
                                         .resolution = 16,
                                         .seed = 99};
  constexpr std::size_t kEpochs = 6;

  io::CsvWriter csv({"benchmark", "series", "cr", "epoch", "train_loss",
                     "test_loss", "test_accuracy"});

  for (const std::string& name : {std::string("classify"),
                                  std::string("em_denoise")}) {
    const data::DatasetConfig& config =
        name == "classify" ? classify_config : dense_config;
    std::cout << "=== " << name << " (scatter/gather codec) ===\n";
    const bool use_accuracy = name == "classify";

    struct Series {
      std::string label;
      std::vector<nn::EpochMetrics> history;
    };
    std::vector<Series> all;

    auto train_one = [&](const std::string& label, core::CodecPtr codec) {
      data::BenchmarkRun run =
          data::make_benchmark(name, config, std::move(codec));
      all.push_back({label, run.trainer->fit(run.dataset.train,
                                             run.dataset.test, kEpochs)});
      std::cout << "  trained " << label << "\n";
    };

    train_one("base", nullptr);
    for (const auto& point : bench::chop_sweep()) {
      core::CodecPtr codec = core::make_codec(
          "triangle:cf=" + std::to_string(point.cf) + ",block=8");
      train_one("SG CR=" + io::Table::num(codec->compression_ratio(), 4),
                codec);
      for (std::size_t e = 0; e < kEpochs; ++e) {
        csv.add_row({name, all.back().label,
                     io::Table::num(codec->compression_ratio(), 4),
                     std::to_string(e + 1),
                     io::Table::num(all.back().history[e].train_loss, 6),
                     io::Table::num(all.back().history[e].test_loss, 6),
                     io::Table::num(all.back().history[e].test_accuracy, 6)});
      }
    }
    for (std::size_t e = 0; e < kEpochs; ++e) {
      csv.add_row({name, "base", "1", std::to_string(e + 1),
                   io::Table::num(all[0].history[e].train_loss, 6),
                   io::Table::num(all[0].history[e].test_loss, 6),
                   io::Table::num(all[0].history[e].test_accuracy, 6)});
    }

    io::Table table({"series", "final train loss", "final test loss",
                     "final accuracy", "% diff from base"});
    const double base_metric = use_accuracy
                                   ? all[0].history.back().test_accuracy
                                   : all[0].history.back().test_loss;
    for (const Series& s : all) {
      const double metric = use_accuracy ? s.history.back().test_accuracy
                                         : s.history.back().test_loss;
      const double pct =
          base_metric != 0.0 ? 100.0 * (metric - base_metric) / base_metric
                             : 0.0;
      table.add_row({s.label, io::Table::num(s.history.back().train_loss, 5),
                     io::Table::num(s.history.back().test_loss, 5),
                     io::Table::num(s.history.back().test_accuracy, 4),
                     io::Table::num(pct, 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  csv.save(bench::results_dir() + "/fig16_sg_accuracy.csv");
  std::cout << "wrote " << bench::results_dir() << "/fig16_sg_accuracy.csv\n";
  return 0;
}
