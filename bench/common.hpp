#pragma once

// Shared helpers for the per-figure bench harness binaries.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/registry.hpp"
#include "core/dct_chop.hpp"
#include "core/triangle.hpp"
#include "graph/builders.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "obs/metrics.hpp"

namespace aic::bench {

/// The CF sweep of §4.1 with the paper's CR labels.
struct ChopPoint {
  std::size_t cf;
  const char* cr_label;
};

inline const std::vector<ChopPoint>& chop_sweep() {
  static const std::vector<ChopPoint> sweep = {
      {2, "16.0"}, {3, "7.11"}, {4, "4.0"},
      {5, "2.56"}, {6, "1.78"}, {7, "1.31"}};
  return sweep;
}

/// Directory all benches write their CSV series into.
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Uncompressed payload bytes of a BD×C×n×n fp32 batch.
inline std::size_t payload_bytes(std::size_t batch, std::size_t channels,
                                 std::size_t n) {
  return batch * channels * n * n * sizeof(float);
}

/// Simulated time of one compression invocation; empty optional when the
/// platform compiler rejects the graph.
inline std::optional<double> try_estimate(const accel::Accelerator& device,
                                          const graph::Graph& g) {
  if (!device.compile_check(g).ok) return std::nullopt;
  return device.estimate(g).total_s();
}

/// Host-side staging bandwidth charged per chunk when the partial-
/// serialization optimization slices and reassembles samples on the host
/// (§3.5.1 / Fig. 15). Effective pageable-memory figure.
inline constexpr double kHostStagingGbps = 6.0;

/// Total simulated time of an s×s partially-serialized run built from a
/// per-chunk graph: s² serial invocations plus host staging of each
/// chunk's uncompressed extent.
inline double partial_serialized_time(const accel::Accelerator& device,
                                      const graph::Graph& chunk_graph,
                                      std::size_t subdivision,
                                      std::size_t chunk_payload_bytes) {
  const double chunk = device.estimate(chunk_graph).total_s();
  const double staging =
      static_cast<double>(chunk_payload_bytes) / (kHostStagingGbps * 1e9);
  return static_cast<double>(subdivision * subdivision) * (chunk + staging);
}

inline std::string ms(double seconds) {
  return io::Table::num(seconds * 1e3, 4);
}

/// Splices the process metrics registry into a google-benchmark JSON
/// report as a top-level "aic_metrics" object, so BENCH files carry
/// percentile data (p50/p90/p99 per histogram), not just means. Returns
/// false when `path` is unreadable or does not end in '}'.
inline bool merge_metrics_into_benchmark_json(const std::string& path) {
  std::string text;
  {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const std::size_t close = text.find_last_of('}');
  if (close == std::string::npos) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text.substr(0, close) << ",\n  \"aic_metrics\": "
      << obs::Registry::global().json() << "\n"
      << text.substr(close);
  return static_cast<bool>(out);
}

}  // namespace aic::bench
