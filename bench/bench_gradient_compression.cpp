// Gradient compression in distributed data-parallel training — the
// third Fig. 1 target (§2.2, QSGD/3LC family), exercised end to end:
// 4 simulated workers train the em_denoise benchmark while their
// gradient exchange passes through each compressor; we report final
// loss against interconnect bytes moved.

#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "data/benchmarks.hpp"
#include "nn/distributed.hpp"
#include "nn/gradient_compression.hpp"
#include "nn/models.hpp"

int main() {
  using namespace aic;

  const data::DatasetConfig config{.train_samples = 96,
                                   .test_samples = 32,
                                   .batch_size = 8,
                                   .resolution = 16,
                                   .seed = 77};
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kEpochs = 5;

  struct Entry {
    std::string label;
    nn::GradientCompressorPtr compressor;
    bool error_feedback = false;
  };
  const std::vector<Entry> entries = {
      {"fp32 all-reduce", nullptr},
      {"topk 10%", std::make_shared<nn::TopKCompressor>(0.10)},
      {"topk 1%", std::make_shared<nn::TopKCompressor>(0.01)},
      {"topk 1% + EF", std::make_shared<nn::TopKCompressor>(0.01), true},
      {"qsgd 4-bit", std::make_shared<nn::QsgdCompressor>(7)},
      {"qsgd 2-bit", std::make_shared<nn::QsgdCompressor>(1)},
      // (no EF rows for QSGD: error feedback targets *biased* compressors
      // like top-k; QSGD is already unbiased.)
  };

  io::Table table({"gradient codec", "final test loss", "wire MB",
                   "comm ratio"});
  io::CsvWriter csv({"codec", "final_test_loss", "wire_bytes",
                     "comm_ratio"});

  const data::Dataset dataset = data::make_denoise_dataset(config);
  for (const Entry& entry : entries) {
    runtime::Rng rng(4242);
    auto model = nn::make_encoder_decoder(1, rng, 6);
    nn::Adam adam(model->params(), 0.003f);
    nn::DistributedTrainer trainer(*model, adam, nn::TaskKind::kRegression,
                                   kWorkers, entry.compressor,
                                   entry.error_feedback);
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      trainer.train_epoch(dataset.train);
    }
    const double loss = trainer.evaluate(dataset.test).loss;
    const auto& stats = trainer.comm_stats();
    table.add_row({entry.label, io::Table::num(loss, 5),
                   io::Table::num(stats.compressed_bytes / 1e6, 4),
                   io::Table::num(stats.compression_ratio(), 4) + "x"});
    csv.add_row({entry.label, io::Table::num(loss, 6),
                 std::to_string(stats.compressed_bytes),
                 io::Table::num(stats.compression_ratio(), 4)});
    std::cout << "  trained with " << entry.label << "\n";
  }

  std::cout << "=== distributed em_denoise, " << kWorkers
            << " workers, " << kEpochs << " epochs ===\n";
  table.print(std::cout);
  std::cout << "\n(expected: large communication savings at modest loss "
               "cost — why §2.2's gradient target matters; these codecs "
               "need bit ops, so they too are CPU/GPU-only today)\n";

  csv.save(bench::results_dir() + "/gradient_compression.csv");
  std::cout << "wrote " << bench::results_dir()
            << "/gradient_compression.csv\n";
  return 0;
}
