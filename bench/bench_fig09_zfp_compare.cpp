// Fig. 9: DCT+Chop vs the zfp-style fixed-rate codec at matched
// compression ratios, on the classify and em_denoise benchmarks (the
// two the paper compares; ZFP runs on CPU only — §4.2.1).
//
// Expected shape: on classify, ZFP holds accuracy at higher CR than
// DCT+Chop; on em_denoise the two are close, and both can beat the
// uncompressed baseline.

#include <iostream>
#include <memory>

#include "baseline/comparators.hpp"
#include "bench/common.hpp"
#include "core/codec_factory.hpp"
#include "data/benchmarks.hpp"

int main() {
  using namespace aic;

  baseline::register_comparator_codecs();

  const data::DatasetConfig classify_config{.train_samples = 96,
                                            .test_samples = 32,
                                            .batch_size = 16,
                                            .resolution = 24,
                                            .seed = 99};
  const data::DatasetConfig dense_config{.train_samples = 96,
                                         .test_samples = 32,
                                         .batch_size = 16,
                                         .resolution = 16,
                                         .seed = 99};
  constexpr std::size_t kEpochs = 6;

  io::CsvWriter csv({"benchmark", "codec", "cr", "final_test_loss",
                     "final_test_accuracy", "pct_diff_from_base"});

  for (const std::string& name : {std::string("classify"),
                                  std::string("em_denoise")}) {
    const data::DatasetConfig& config =
        name == "classify" ? classify_config : dense_config;
    std::cout << "=== " << name << " ===\n";
    const bool use_accuracy = name == "classify";

    struct Entry {
      std::string label;
      double cr;
      core::CodecPtr codec;
    };
    std::vector<Entry> entries;
    entries.push_back({"base", 1.0, nullptr});
    // Matched CRs: 16 and 4 for both codec families, every codec built
    // from its factory spec.
    for (std::size_t cf : {2u, 4u}) {
      core::CodecPtr codec =
          core::make_codec("dctchop:cf=" + std::to_string(cf) + ",block=8");
      entries.push_back({"dct CR=" + io::Table::num(codec->compression_ratio(), 3),
                         codec->compression_ratio(), codec});
    }
    for (int rate : {2, 8}) {
      core::CodecPtr codec =
          core::make_codec("zfp:rate=" + std::to_string(rate));
      entries.push_back({"zfp CR=" + io::Table::num(codec->compression_ratio(), 3),
                         codec->compression_ratio(), codec});
    }

    double base_metric = 0.0;
    io::Table table({"codec", "CR", "final test loss", "final accuracy",
                     "% diff from base"});
    for (const Entry& entry : entries) {
      data::BenchmarkRun run = data::make_benchmark(name, config, entry.codec);
      const auto history =
          run.trainer->fit(run.dataset.train, run.dataset.test, kEpochs);
      const double loss = history.back().test_loss;
      const double acc = history.back().test_accuracy;
      const double metric = use_accuracy ? acc : loss;
      if (entry.label == "base") base_metric = metric;
      const double pct =
          base_metric != 0.0 ? 100.0 * (metric - base_metric) / base_metric
                             : 0.0;
      table.add_row({entry.label, io::Table::num(entry.cr, 4),
                     io::Table::num(loss, 5), io::Table::num(acc, 4),
                     io::Table::num(pct, 4)});
      csv.add_row({name, entry.label, io::Table::num(entry.cr, 4),
                   io::Table::num(loss, 6), io::Table::num(acc, 6),
                   io::Table::num(pct, 4)});
      std::cout << "  trained " << entry.label << "\n";
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  csv.save(bench::results_dir() + "/fig09_zfp_compare.csv");
  std::cout << "wrote " << bench::results_dir() << "/fig09_zfp_compare.csv\n";
  return 0;
}
