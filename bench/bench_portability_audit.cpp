// §3.1 operator-portability audit: which compressor designs compile on
// which platform, and why the rejected ones are rejected. This is the
// paper's central design argument rendered as a table.

#include <functional>
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace aic;
  using accel::Platform;

  const core::DctChopConfig config{
      .height = 32, .width = 32, .cf = 4, .block = 8};
  const graph::BatchSpec batch{.batch = 10, .channels = 3};

  struct Candidate {
    std::string name;
    std::function<graph::Graph()> build;
  };
  const std::vector<Candidate> candidates = {
      {"dct+chop compress", [&] { return graph::build_compress_graph(config, batch); }},
      {"dct+chop decompress", [&] { return graph::build_decompress_graph(config, batch); }},
      {"triangle gather (sg)", [&] { return graph::build_triangle_compress_graph(config, batch); }},
      {"triangle scatter (sg)", [&] { return graph::build_triangle_decompress_graph(config, batch); }},
      {"VLE encoder (RLE/Huffman core)", [] { return graph::build_vle_encode_graph(4096); }},
  };

  std::vector<std::string> headers = {"graph"};
  for (Platform platform : accel::all_platforms()) {
    headers.push_back(accel::platform_name(platform));
  }
  io::Table table(headers);
  io::CsvWriter csv({"graph", "platform", "compiles", "error"});

  std::vector<std::string> rejection_notes;
  for (const Candidate& candidate : candidates) {
    std::vector<std::string> row = {candidate.name};
    for (Platform platform : accel::all_platforms()) {
      const accel::Accelerator device = accel::make_accelerator(platform);
      const auto result = device.compile_check(candidate.build());
      row.push_back(result.ok ? "yes" : "NO");
      csv.add_row({candidate.name, accel::platform_name(platform),
                   result.ok ? "yes" : "no", result.error});
      if (!result.ok && rejection_notes.size() < 6) {
        rejection_notes.push_back(result.error);
      }
    }
    table.add_row(row);
  }

  std::cout << "=== operator portability audit (compiles?) ===\n";
  table.print(std::cout);
  std::cout << "\nsample compiler diagnostics:\n";
  for (const std::string& note : rejection_notes) {
    std::cout << "  - " << note << "\n";
  }

  // Per-op category summary: the §3.1 story in one table.
  std::cout << "\n=== operator support by platform ===\n";
  io::Table ops({"operator", "cs2", "sn30", "groq", "ipu", "a100", "cpu"});
  for (graph::OpKind kind :
       {graph::OpKind::kMatMul, graph::OpKind::kReshape,
        graph::OpKind::kGather, graph::OpKind::kScatter,
        graph::OpKind::kBitShiftLeft, graph::OpKind::kBitNot}) {
    std::vector<std::string> row = {graph::op_name(kind)};
    for (Platform platform : accel::all_platforms()) {
      row.push_back(accel::make_accelerator(platform)
                            .spec()
                            .supported_ops.contains(kind)
                        ? "yes"
                        : "-");
    }
    ops.add_row(row);
  }
  ops.print(std::cout);

  csv.save(bench::results_dir() + "/portability_audit.csv");
  std::cout << "wrote " << bench::results_dir()
            << "/portability_audit.csv\n";
  return 0;
}
