// Figs. 7 & 8: training loss per epoch (Fig. 7) and test loss/accuracy
// percent difference from the no-compression baseline (Fig. 8) for the
// four Table 3 benchmarks, sweeping DCT+Chop CR over the paper's six
// chop factors.
//
// Expected shapes (paper §4.2.1):
//   * em_denoise / optical_damage / slstr_cloud: training loss tracks
//     baseline at every CR; em_denoise *improves* under compression.
//   * classify: accuracy degrades monotonically with CR; CF >= 5 stays
//     within ~3% of baseline.
//
// Scaled down for a single host core: 24×24 samples, 96 train / 32 test,
// 8 epochs (paper: full resolution, 30 epochs).

#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "core/codec_factory.hpp"
#include "core/dct_chop.hpp"
#include "data/benchmarks.hpp"

int main() {
  using namespace aic;

  // classify needs 24×24 so the class signal spans several DCT bins;
  // the dense benchmarks are cheaper at 16×16 without losing shape.
  const data::DatasetConfig classify_config{.train_samples = 96,
                                            .test_samples = 32,
                                            .batch_size = 16,
                                            .resolution = 24,
                                            .seed = 99};
  const data::DatasetConfig dense_config{.train_samples = 96,
                                         .test_samples = 32,
                                         .batch_size = 16,
                                         .resolution = 16,
                                         .seed = 99};
  constexpr std::size_t kEpochs = 6;

  io::CsvWriter csv({"benchmark", "series", "cr", "epoch", "train_loss",
                     "test_loss", "test_accuracy"});

  for (const std::string& name : data::benchmark_names()) {
    const data::DatasetConfig& config =
        name == "classify" ? classify_config : dense_config;
    std::cout << "=== " << name << " ===\n";

    struct Series {
      std::string label;
      double cr;
      std::vector<nn::EpochMetrics> history;
    };
    std::vector<Series> all;

    auto train_one = [&](const std::string& label, double cr,
                         core::CodecPtr codec) {
      data::BenchmarkRun run =
          data::make_benchmark(name, config, std::move(codec));
      all.push_back({label, cr,
                     run.trainer->fit(run.dataset.train, run.dataset.test,
                                      kEpochs)});
      std::cout << "  trained " << label << "\n";
    };

    train_one("base", 1.0, nullptr);
    for (const auto& point : bench::chop_sweep()) {
      // Shape-agnostic factory codec: the trainer resolves the plan for
      // each batch resolution from the process-wide cache.
      core::CodecPtr codec = core::make_codec(
          "dctchop:cf=" + std::to_string(point.cf) + ",block=8");
      const double cr = codec->compression_ratio();
      train_one(std::string("CR=") + point.cr_label, cr, std::move(codec));
    }

    // Fig. 7: training loss per epoch.
    {
      std::vector<std::string> headers = {"epoch"};
      for (const auto& s : all) headers.push_back(s.label);
      io::Table fig7(headers);
      for (std::size_t e = 0; e < kEpochs; ++e) {
        std::vector<std::string> row = {std::to_string(e + 1)};
        for (const auto& s : all) {
          row.push_back(io::Table::num(s.history[e].train_loss, 5));
        }
        fig7.add_row(row);
      }
      std::cout << "-- Fig. 7 series: training loss --\n";
      fig7.print(std::cout);
    }

    // Fig. 8: percent difference from base per epoch. For classify the
    // paper reports accuracy difference (higher better); for the rest,
    // test-loss difference (lower better).
    const bool use_accuracy = name == "classify";
    {
      std::vector<std::string> headers = {"epoch"};
      for (std::size_t i = 1; i < all.size(); ++i) {
        headers.push_back(all[i].label);
      }
      io::Table fig8(headers);
      for (std::size_t e = 0; e < kEpochs; ++e) {
        std::vector<std::string> row = {std::to_string(e + 1)};
        const double base = use_accuracy ? all[0].history[e].test_accuracy
                                         : all[0].history[e].test_loss;
        for (std::size_t i = 1; i < all.size(); ++i) {
          const double value = use_accuracy
                                   ? all[i].history[e].test_accuracy
                                   : all[i].history[e].test_loss;
          const double pct = base != 0.0 ? 100.0 * (value - base) / base : 0;
          row.push_back(io::Table::num(pct, 4));
        }
        fig8.add_row(row);
      }
      std::cout << "-- Fig. 8 series: test "
                << (use_accuracy ? "accuracy" : "loss")
                << " % difference from base --\n";
      fig8.print(std::cout);
    }

    for (const auto& s : all) {
      for (std::size_t e = 0; e < kEpochs; ++e) {
        csv.add_row({name, s.label, io::Table::num(s.cr, 4),
                     std::to_string(e + 1),
                     io::Table::num(s.history[e].train_loss, 6),
                     io::Table::num(s.history[e].test_loss, 6),
                     io::Table::num(s.history[e].test_accuracy, 6)});
      }
    }

    // Headline checks from §4.2.1 printed as a verdict line.
    const double base_final = all[0].history.back().test_loss;
    if (name == "em_denoise") {
      std::size_t improved = 0;
      for (std::size_t i = 1; i < all.size(); ++i) {
        if (all[i].history.back().test_loss < base_final) ++improved;
      }
      std::cout << "verdict: " << improved << "/" << all.size() - 1
                << " compressed series beat the baseline (paper: "
                   "compression helps em_denoise)\n";
    }
    if (name == "classify") {
      const double base_acc = all[0].history.back().test_accuracy;
      const double cf7_acc = all.back().history.back().test_accuracy;
      std::cout << "verdict: CF=7 accuracy drop = "
                << io::Table::num(100.0 * (base_acc - cf7_acc), 4)
                << "% (paper: <3% for CF in [5,7])\n";
    }
    std::cout << "\n";
  }

  csv.save(bench::results_dir() + "/fig07_08_accuracy.csv");
  std::cout << "wrote " << bench::results_dir() << "/fig07_08_accuracy.csv\n";
  return 0;
}
