// Measured (wall-clock) throughput of the chunked v4 archive pipeline:
// encode/decode GB/s against the thread count, the chunk-size sweep, and
// the v3-vs-v4 single-thread encode comparison that guards the "raw
// chunking costs nothing" claim. Writes BENCH_pipeline.json (override
// with --json=PATH) for the CI artifact.
//
// The acceptance target — >= 3x faster 8-thread round trip on the
// single-plane 1024x1024 CF=4 payload — is only observable on a host
// with >= 8 cores; the JSON records hardware_threads so a 1-core CI
// runner's numbers are not misread as a scaling regression.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/chunk_entropy.hpp"
#include "cli/archive.hpp"
#include "runtime/context.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "tensor/tensor.hpp"

namespace {

using aic::cli::Archive;
using aic::cli::ArchiveWriteOptions;
using aic::tensor::Shape;
using aic::tensor::Tensor;

constexpr const char* kSpec = "dctchop:cf=4,block=8";

/// A session with a private pool of exactly `threads` workers — sweep
/// points no longer resize a process-wide pool out from under each other.
aic::Context session(std::size_t threads) {
  aic::Context::Options options;
  options.threads = threads;
  options.own_pool = true;
  return aic::Context(options);
}

/// Best-of-N wall seconds of `fn` (first call warm-up is included in the
/// reps: the plan cache hides behind the min).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    aic::runtime::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

double gbps(std::size_t bytes, double seconds) {
  return static_cast<double>(bytes) / seconds / 1e9;
}

struct SweepPoint {
  std::size_t threads = 0;
  std::size_t chunk_bytes = 0;
  double encode_gbps = 0.0;
  double decode_gbps = 0.0;
  double roundtrip_s = 0.0;
};

void append_point(std::string& json, const SweepPoint& p, bool thread_axis) {
  json += "    {";
  json += thread_axis ? "\"threads\": " + std::to_string(p.threads)
                      : "\"chunk_bytes\": " + std::to_string(p.chunk_bytes);
  json += ", \"encode_gbps\": " + std::to_string(p.encode_gbps);
  json += ", \"decode_gbps\": " + std::to_string(p.decode_gbps);
  json += ", \"roundtrip_s\": " + std::to_string(p.roundtrip_s);
  json += "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pipeline.json";
  std::size_t res = 1024;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--res=", 0) == 0) res = std::stoul(arg.substr(6));
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
  }

  // The acceptance payload: single-plane 1024x1024, CF=4 (CR 4.0).
  aic::runtime::Rng rng(42);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, res, res), rng);
  const std::size_t input_bytes = input.size_bytes();

  std::string json = "{\n  \"bench\": \"pipeline\",\n";
  json += "  \"resolution\": " + std::to_string(res) + ",\n";
  json += "  \"input_bytes\": " + std::to_string(input_bytes) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";

  // ---- Thread sweep: fused encode and chunk-parallel decode ----------
  std::cout << "== thread sweep (" << res << "x" << res << ", CF=4, raw chunks)\n";
  double roundtrip_1t = 0.0, roundtrip_8t = 0.0;
  json += "  \"thread_sweep\": [\n";
  bool first = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const aic::Context ctx = session(threads);
    const ArchiveWriteOptions options{};  // v4, 64 KiB chunks, raw
    std::string bytes;
    const double encode_s = best_seconds(reps, [&] {
      bytes = compress_to_archive_bytes(input, kSpec, options, nullptr, ctx);
    });
    const double decode_s = best_seconds(
        reps, [&] { (void)aic::cli::deserialize_archive(bytes, ctx); });
    const SweepPoint p{.threads = threads,
                       .encode_gbps = gbps(input_bytes, encode_s),
                       .decode_gbps = gbps(input_bytes, decode_s),
                       .roundtrip_s = encode_s + decode_s};
    if (threads == 1) roundtrip_1t = p.roundtrip_s;
    if (threads == 8) roundtrip_8t = p.roundtrip_s;
    if (!first) json += ",\n";
    first = false;
    append_point(json, p, /*thread_axis=*/true);
    std::cout << "  threads=" << threads << "  encode " << p.encode_gbps
              << " GB/s  decode " << p.decode_gbps << " GB/s  roundtrip "
              << p.roundtrip_s * 1e3 << " ms\n";
  }
  json += "\n  ],\n";

  // ---- Chunk-size sweep at 8 threads ---------------------------------
  std::cout << "== chunk-size sweep (8 threads)\n";
  json += "  \"chunk_sweep\": [\n";
  first = true;
  const aic::Context ctx8 = session(8);
  for (const std::size_t chunk_bytes :
       {std::size_t{4} << 10, std::size_t{16} << 10, std::size_t{64} << 10,
        std::size_t{256} << 10, std::size_t{1} << 20}) {
    const ArchiveWriteOptions options{.chunk_bytes = chunk_bytes};
    std::string bytes;
    const double encode_s = best_seconds(reps, [&] {
      bytes = compress_to_archive_bytes(input, kSpec, options, nullptr, ctx8);
    });
    const double decode_s = best_seconds(
        reps, [&] { (void)aic::cli::deserialize_archive(bytes, ctx8); });
    const SweepPoint p{.chunk_bytes = chunk_bytes,
                       .encode_gbps = gbps(input_bytes, encode_s),
                       .decode_gbps = gbps(input_bytes, decode_s),
                       .roundtrip_s = encode_s + decode_s};
    if (!first) json += ",\n";
    first = false;
    append_point(json, p, /*thread_axis=*/false);
    std::cout << "  chunk=" << (chunk_bytes >> 10) << "KiB  encode "
              << p.encode_gbps << " GB/s  decode " << p.decode_gbps
              << " GB/s\n";
  }
  json += "\n  ],\n";

  // ---- v3 vs v4 single-thread encode (container overhead guard) ------
  const aic::Context ctx1 = session(1);
  const Archive archive =
      aic::cli::compress_to_archive(input, kSpec, nullptr, ctx1);
  const double v3_s = best_seconds(
      reps, [&] { (void)aic::cli::serialize_archive(archive, 3u, ctx1); });
  const double v4_s = best_seconds(reps, [&] {
    (void)aic::cli::serialize_archive(archive, ArchiveWriteOptions{}, ctx1);
  });
  std::cout << "== 1-thread container serialize: v3 "
            << gbps(input_bytes, v3_s) << " GB/s, v4 "
            << gbps(input_bytes, v4_s) << " GB/s\n";
  json += "  \"serialize_1t_v3_gbps\": " +
          std::to_string(gbps(input_bytes, v3_s)) + ",\n";
  json += "  \"serialize_1t_v4_gbps\": " +
          std::to_string(gbps(input_bytes, v4_s)) + ",\n";
  const double speedup = roundtrip_8t > 0.0 ? roundtrip_1t / roundtrip_8t : 0.0;
  json += "  \"roundtrip_speedup_8t_vs_1t\": " + std::to_string(speedup) + "\n}\n";
  std::cout << "== roundtrip speedup 8t vs 1t: " << speedup << "x\n";

  std::ofstream out(json_path);
  out << json;
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
