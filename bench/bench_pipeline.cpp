// Measured (wall-clock) throughput of the chunked v4 archive pipeline:
// encode/decode GB/s against the thread count, the chunk-size sweep, and
// the v3-vs-v4 single-thread encode comparison that guards the "raw
// chunking costs nothing" claim. Writes BENCH_pipeline.json (override
// with --json=PATH) for the CI artifact.
//
// The memory section (this binary links the aic_memprobe operator
// new/delete replacement) additionally measures steady-state heap
// allocations per compress call after warmup and per-phase peak RSS of
// the streaming vs in-memory codec paths, writing BENCH_memory.json
// (--mem-json=PATH). With --fail-on-steady-state-allocs the process
// exits 1 when a warmed-up compress call still makes any large
// (>= 256 KiB) allocation — the CI allocation gate.
//
// The acceptance target — >= 3x faster 8-thread round trip on the
// single-plane 1024x1024 CF=4 payload — is only observable on a host
// with >= 8 cores; the JSON records hardware_threads so a 1-core CI
// runner's numbers are not misread as a scaling regression.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/chunk_entropy.hpp"
#include "cli/archive.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/context.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "support/memory_probe.hpp"
#include "tensor/tensor.hpp"

namespace {

using aic::cli::Archive;
using aic::cli::ArchiveWriteOptions;
using aic::tensor::Shape;
using aic::tensor::Tensor;

constexpr const char* kSpec = "dctchop:cf=4,block=8";

/// A session with a private pool of exactly `threads` workers — sweep
/// points no longer resize a process-wide pool out from under each other.
aic::Context session(std::size_t threads) {
  aic::Context::Options options;
  options.threads = threads;
  options.own_pool = true;
  return aic::Context(options);
}

/// Best-of-N wall seconds of `fn` (first call warm-up is included in the
/// reps: the plan cache hides behind the min).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    aic::runtime::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

double gbps(std::size_t bytes, double seconds) {
  return static_cast<double>(bytes) / seconds / 1e9;
}

struct SweepPoint {
  std::size_t threads = 0;
  std::size_t chunk_bytes = 0;
  double encode_gbps = 0.0;
  double decode_gbps = 0.0;
  double roundtrip_s = 0.0;
  double encode_allocs = 0.0;  // heap allocations per encode call
  std::size_t peak_rss = 0;    // bytes, high-water after this point
};

void append_point(std::string& json, const SweepPoint& p, bool thread_axis) {
  json += "    {";
  json += thread_axis ? "\"threads\": " + std::to_string(p.threads)
                      : "\"chunk_bytes\": " + std::to_string(p.chunk_bytes);
  json += ", \"encode_gbps\": " + std::to_string(p.encode_gbps);
  json += ", \"decode_gbps\": " + std::to_string(p.decode_gbps);
  json += ", \"roundtrip_s\": " + std::to_string(p.roundtrip_s);
  json += ", \"encode_allocs\": " + std::to_string(p.encode_allocs);
  json += ", \"peak_rss_bytes\": " + std::to_string(p.peak_rss);
  json += "}";
}

double mb(std::size_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pipeline.json";
  std::string mem_json_path = "BENCH_memory.json";
  std::size_t res = 1024;
  int reps = 3;
  bool fail_on_steady_state_allocs = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--mem-json=", 0) == 0) mem_json_path = arg.substr(11);
    if (arg.rfind("--res=", 0) == 0) res = std::stoul(arg.substr(6));
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
    if (arg == "--fail-on-steady-state-allocs") {
      fail_on_steady_state_allocs = true;
    }
  }
  // Payload-sized staging must be pooled; per-chunk encode strings
  // (64 KiB default chunks) are allowed churn.
  aic::testsupport::set_large_alloc_threshold(256 * 1024);

  // The acceptance payload: single-plane 1024x1024, CF=4 (CR 4.0).
  aic::runtime::Rng rng(42);
  const Tensor input = Tensor::uniform(Shape::bchw(1, 1, res, res), rng);
  const std::size_t input_bytes = input.size_bytes();

  std::string json = "{\n  \"bench\": \"pipeline\",\n";
  json += "  \"resolution\": " + std::to_string(res) + ",\n";
  json += "  \"input_bytes\": " + std::to_string(input_bytes) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";

  // ---- Thread sweep: fused encode and chunk-parallel decode ----------
  std::cout << "== thread sweep (" << res << "x" << res << ", CF=4, raw chunks)\n";
  double roundtrip_1t = 0.0, roundtrip_8t = 0.0;
  json += "  \"thread_sweep\": [\n";
  bool first = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const aic::Context ctx = session(threads);
    const ArchiveWriteOptions options{};  // v4, 64 KiB chunks, raw
    std::string bytes;
    // Warm lap so the plan cache + buffer pool are primed, then count
    // heap allocations across the timed laps (reused output string — the
    // steady-state serving shape).
    compress_to_archive_bytes(input, kSpec, options, nullptr, ctx, bytes);
    const aic::testsupport::AllocStats allocs_before =
        aic::testsupport::alloc_stats();
    const double encode_s = best_seconds(reps, [&] {
      compress_to_archive_bytes(input, kSpec, options, nullptr, ctx, bytes);
    });
    const aic::testsupport::AllocStats allocs_after =
        aic::testsupport::alloc_stats();
    const double decode_s = best_seconds(
        reps, [&] { (void)aic::cli::deserialize_archive(bytes, ctx); });
    const SweepPoint p{
        .threads = threads,
        .encode_gbps = gbps(input_bytes, encode_s),
        .decode_gbps = gbps(input_bytes, decode_s),
        .roundtrip_s = encode_s + decode_s,
        .encode_allocs =
            static_cast<double>(allocs_after.total_allocs -
                                allocs_before.total_allocs) /
            reps,
        .peak_rss = aic::testsupport::peak_rss_bytes()};
    if (threads == 1) roundtrip_1t = p.roundtrip_s;
    if (threads == 8) roundtrip_8t = p.roundtrip_s;
    if (!first) json += ",\n";
    first = false;
    append_point(json, p, /*thread_axis=*/true);
    std::cout << "  threads=" << threads << "  encode " << p.encode_gbps
              << " GB/s  decode " << p.decode_gbps << " GB/s  roundtrip "
              << p.roundtrip_s * 1e3 << " ms  allocs/encode "
              << p.encode_allocs << "  peakRSS " << mb(p.peak_rss) << " MB\n";
  }
  json += "\n  ],\n";

  // ---- Chunk-size sweep at 8 threads ---------------------------------
  std::cout << "== chunk-size sweep (8 threads)\n";
  json += "  \"chunk_sweep\": [\n";
  first = true;
  const aic::Context ctx8 = session(8);
  for (const std::size_t chunk_bytes :
       {std::size_t{4} << 10, std::size_t{16} << 10, std::size_t{64} << 10,
        std::size_t{256} << 10, std::size_t{1} << 20}) {
    const ArchiveWriteOptions options{.chunk_bytes = chunk_bytes};
    std::string bytes;
    const double encode_s = best_seconds(reps, [&] {
      bytes = compress_to_archive_bytes(input, kSpec, options, nullptr, ctx8);
    });
    const double decode_s = best_seconds(
        reps, [&] { (void)aic::cli::deserialize_archive(bytes, ctx8); });
    const SweepPoint p{.chunk_bytes = chunk_bytes,
                       .encode_gbps = gbps(input_bytes, encode_s),
                       .decode_gbps = gbps(input_bytes, decode_s),
                       .roundtrip_s = encode_s + decode_s};
    if (!first) json += ",\n";
    first = false;
    append_point(json, p, /*thread_axis=*/false);
    std::cout << "  chunk=" << (chunk_bytes >> 10) << "KiB  encode "
              << p.encode_gbps << " GB/s  decode " << p.decode_gbps
              << " GB/s\n";
  }
  json += "\n  ],\n";

  // ---- v3 vs v4 single-thread encode (container overhead guard) ------
  const aic::Context ctx1 = session(1);
  const Archive archive =
      aic::cli::compress_to_archive(input, kSpec, nullptr, ctx1);
  const double v3_s = best_seconds(
      reps, [&] { (void)aic::cli::serialize_archive(archive, 3u, ctx1); });
  const double v4_s = best_seconds(reps, [&] {
    (void)aic::cli::serialize_archive(archive, ArchiveWriteOptions{}, ctx1);
  });
  std::cout << "== 1-thread container serialize: v3 "
            << gbps(input_bytes, v3_s) << " GB/s, v4 "
            << gbps(input_bytes, v4_s) << " GB/s\n";
  json += "  \"serialize_1t_v3_gbps\": " +
          std::to_string(gbps(input_bytes, v3_s)) + ",\n";
  json += "  \"serialize_1t_v4_gbps\": " +
          std::to_string(gbps(input_bytes, v4_s)) + ",\n";
  const double speedup = roundtrip_8t > 0.0 ? roundtrip_1t / roundtrip_8t : 0.0;
  json += "  \"roundtrip_speedup_8t_vs_1t\": " + std::to_string(speedup) + "\n}\n";
  std::cout << "== roundtrip speedup 8t vs 1t: " << speedup << "x\n";

  std::ofstream out(json_path);
  out << json;
  std::cout << "wrote " << json_path << "\n";

  // ---- Memory: steady-state allocations + per-phase peak RSS ---------
  // A multi-plane payload (batch 8 x 3 channels) so the streaming
  // window (one plane + one chunk) is genuinely smaller than the whole
  // archive — the single-plane acceptance tensor cannot show the
  // bounded-memory win because its plane IS the payload.
  std::cout << "== memory (8x3x" << res << "x" << res << ", 8 threads)\n";
  const aic::Context mem_ctx = session(8);
  const Tensor mem_input =
      Tensor::uniform(Shape::bchw(8, 3, res, res), rng);
  const ArchiveWriteOptions mem_options{};

  // Steady-state allocation gate: after a warm lap, compress with a
  // reused output string must make zero large (>= 256 KiB) allocations —
  // payload staging, scratch tensors, and the output all come from the
  // session's pools.
  std::string reused_bytes;
  compress_to_archive_bytes(mem_input, kSpec, mem_options, nullptr, mem_ctx,
                            reused_bytes);
  constexpr int kSteadyCalls = 5;
  const aic::testsupport::AllocStats steady_before =
      aic::testsupport::alloc_stats();
  for (int i = 0; i < kSteadyCalls; ++i) {
    compress_to_archive_bytes(mem_input, kSpec, mem_options, nullptr,
                              mem_ctx, reused_bytes);
  }
  const aic::testsupport::AllocStats steady_after =
      aic::testsupport::alloc_stats();
  const double steady_allocs =
      static_cast<double>(steady_after.total_allocs -
                          steady_before.total_allocs) /
      kSteadyCalls;
  const double steady_large =
      static_cast<double>(steady_after.large_allocs -
                          steady_before.large_allocs) /
      kSteadyCalls;
  std::cout << "  steady-state compress: " << steady_allocs
            << " allocs/call, " << steady_large << " large (>= "
            << aic::testsupport::large_alloc_threshold()
            << " B) allocs/call\n";

  // Per-phase peak RSS. Each phase gets a FRESH session so slabs and
  // scratch tensors cached by earlier phases (or the steady-state laps
  // above — trim() cannot reach leased scratch) don't inflate its
  // baseline, and streaming phases run FIRST so ascending-footprint
  // order keeps the comparison honest even when the kernel cannot reset
  // VmHWM. Freed heap is returned to the OS between phases.
  const std::string stream_path =
      (std::filesystem::temp_directory_path() /
       ("aic_bench_memory_" + std::to_string(res) + ".aicz"))
          .string();
  reused_bytes.clear();
  reused_bytes.shrink_to_fit();
  mem_ctx.buffer_pool().trim();
  aic::testsupport::release_freed_heap();
  const bool rss_resettable = aic::testsupport::reset_peak_rss();

  double encode_stream_s = 0.0;
  std::size_t encode_stream_rss = 0;
  {
    const aic::Context phase_ctx = session(8);
    std::ofstream file(stream_path, std::ios::binary | std::ios::trunc);
    aic::runtime::Timer timer;
    (void)compress_to_stream(mem_input, kSpec, file, mem_options, nullptr,
                             phase_ctx);
    encode_stream_s = timer.seconds();
    encode_stream_rss = aic::testsupport::peak_rss_bytes();
  }
  aic::testsupport::release_freed_heap();
  (void)aic::testsupport::reset_peak_rss();

  double decode_stream_s = 0.0;
  std::size_t decode_stream_rss = 0;
  {
    const aic::Context phase_ctx = session(8);
    std::ifstream file(stream_path, std::ios::binary);
    aic::runtime::Timer timer;
    (void)aic::cli::decompress_from_stream(file, phase_ctx);
    decode_stream_s = timer.seconds();
    decode_stream_rss = aic::testsupport::peak_rss_bytes();
  }
  aic::testsupport::release_freed_heap();
  (void)aic::testsupport::reset_peak_rss();

  double encode_inmem_s = 0.0;
  std::size_t encode_inmem_rss = 0;
  {
    const aic::Context phase_ctx = session(8);
    aic::runtime::Timer timer;
    const std::string bytes = compress_to_archive_bytes(
        mem_input, kSpec, mem_options, nullptr, phase_ctx);
    encode_inmem_s = timer.seconds();
    encode_inmem_rss = aic::testsupport::peak_rss_bytes();
  }
  aic::testsupport::release_freed_heap();
  (void)aic::testsupport::reset_peak_rss();

  double decode_inmem_s = 0.0;
  std::size_t decode_inmem_rss = 0;
  {
    const aic::Context phase_ctx = session(8);
    std::ifstream file(stream_path, std::ios::binary);
    std::ostringstream slurped;
    slurped << file.rdbuf();
    const std::string bytes = slurped.str();
    aic::runtime::Timer timer;
    (void)aic::cli::deserialize_archive(bytes, phase_ctx);
    decode_inmem_s = timer.seconds();
    decode_inmem_rss = aic::testsupport::peak_rss_bytes();
  }
  std::remove(stream_path.c_str());

  const auto reduction = [](std::size_t stream, std::size_t inmem) {
    return inmem == 0 ? 0.0
                      : 1.0 - static_cast<double>(stream) /
                                  static_cast<double>(inmem);
  };
  const std::size_t mem_bytes = mem_input.size_bytes();
  std::cout << "  encode: stream " << mb(encode_stream_rss)
            << " MB peak @ " << gbps(mem_bytes, encode_stream_s)
            << " GB/s vs in-memory " << mb(encode_inmem_rss) << " MB peak @ "
            << gbps(mem_bytes, encode_inmem_s) << " GB/s  ("
            << reduction(encode_stream_rss, encode_inmem_rss) * 100
            << "% peak-RSS reduction)\n";
  std::cout << "  decode: stream " << mb(decode_stream_rss)
            << " MB peak @ " << gbps(mem_bytes, decode_stream_s)
            << " GB/s vs in-memory " << mb(decode_inmem_rss) << " MB peak @ "
            << gbps(mem_bytes, decode_inmem_s) << " GB/s  ("
            << reduction(decode_stream_rss, decode_inmem_rss) * 100
            << "% peak-RSS reduction)\n";

  std::string mem_json = "{\n  \"bench\": \"memory\",\n";
  mem_json += "  \"resolution\": " + std::to_string(res) + ",\n";
  mem_json += "  \"mem_input_bytes\": " + std::to_string(mem_bytes) + ",\n";
  mem_json += "  \"steady_state_calls\": " + std::to_string(kSteadyCalls) +
              ",\n";
  mem_json +=
      "  \"steady_state_allocs_per_compress\": " +
      std::to_string(steady_allocs) + ",\n";
  mem_json += "  \"steady_state_large_allocs_per_compress\": " +
              std::to_string(steady_large) + ",\n";
  mem_json += "  \"large_alloc_threshold_bytes\": " +
              std::to_string(aic::testsupport::large_alloc_threshold()) +
              ",\n";
  mem_json += std::string("  \"peak_rss_resettable\": ") +
              (rss_resettable ? "true" : "false") + ",\n";
  mem_json += "  \"encode_stream_peak_rss_bytes\": " +
              std::to_string(encode_stream_rss) + ",\n";
  mem_json += "  \"encode_inmemory_peak_rss_bytes\": " +
              std::to_string(encode_inmem_rss) + ",\n";
  mem_json += "  \"decode_stream_peak_rss_bytes\": " +
              std::to_string(decode_stream_rss) + ",\n";
  mem_json += "  \"decode_inmemory_peak_rss_bytes\": " +
              std::to_string(decode_inmem_rss) + ",\n";
  mem_json += "  \"encode_peak_rss_reduction\": " +
              std::to_string(reduction(encode_stream_rss,
                                       encode_inmem_rss)) + ",\n";
  mem_json += "  \"decode_peak_rss_reduction\": " +
              std::to_string(reduction(decode_stream_rss,
                                       decode_inmem_rss)) + ",\n";
  mem_json += "  \"encode_stream_gbps\": " +
              std::to_string(gbps(mem_bytes, encode_stream_s)) + ",\n";
  mem_json += "  \"encode_inmemory_gbps\": " +
              std::to_string(gbps(mem_bytes, encode_inmem_s)) + ",\n";
  mem_json += "  \"decode_stream_gbps\": " +
              std::to_string(gbps(mem_bytes, decode_stream_s)) + ",\n";
  mem_json += "  \"decode_inmemory_gbps\": " +
              std::to_string(gbps(mem_bytes, decode_inmem_s)) + "\n}\n";
  std::ofstream mem_out(mem_json_path);
  mem_out << mem_json;
  std::cout << "wrote " << mem_json_path << "\n";

  if (fail_on_steady_state_allocs && steady_large > 0.0) {
    std::cout << "FAIL: steady-state compress still makes " << steady_large
              << " large allocations per call after warmup\n";
    return 1;
  }
  return 0;
}
