// google-benchmark microbenchmarks of the library's hot kernels: the
// two-matmul codec paths, the underlying GEMM, and the baseline codecs.
// These measure *real host execution*, complementing the simulated
// accelerator timings of the figure benches.
//
// Every GEMM/sandwich bench exists per kernel backend (scalar vs avx2) so
// the SIMD speedup is a first-class, machine-readable result. Run with
// `--json[=path]` to emit google-benchmark's JSON report (default path
// BENCH_kernels.json in the working directory).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/jpeg_codec.hpp"
#include "baseline/zfp_like.hpp"
#include "bench/common.hpp"
#include "core/codec_factory.hpp"
#include "core/dct_chop.hpp"
#include "data/synth.hpp"
#include "runtime/cpu_features.hpp"
#include "runtime/rng.hpp"
#include "tensor/matmul.hpp"

namespace {

using namespace aic;
using runtime::KernelBackend;
using tensor::Shape;
using tensor::Tensor;
using tensor::Trans;

/// Pins the kernel backend for a bench loop, restoring on scope exit.
/// Returns false (after flagging the bench as skipped) when the host
/// cannot run the requested backend.
class BackendScope {
 public:
  BackendScope(benchmark::State& state, KernelBackend backend)
      : saved_(runtime::kernel_backend()) {
    if (backend == KernelBackend::kAvx2 &&
        !(runtime::cpu_features().avx2 && runtime::cpu_features().fma)) {
      state.SkipWithError("host lacks AVX2+FMA");
      return;
    }
    runtime::set_kernel_backend(backend);
    ok_ = true;
  }
  ~BackendScope() { runtime::set_kernel_backend(saved_); }
  explicit operator bool() const { return ok_; }

 private:
  KernelBackend saved_;
  bool ok_ = false;
};

// Chop-family codecs are built from CodecFactory specs, pinned to the
// bench resolution so plan resolution happens outside the timed loop.
core::CodecPtr make_chop(const char* kind, std::size_t n, std::size_t cf) {
  return core::make_codec(std::string(kind) + ":cf=" + std::to_string(cf) +
                          ",block=8,h=" + std::to_string(n) +
                          ",w=" + std::to_string(n));
}

Tensor make_batch(std::size_t batch, std::size_t channels, std::size_t n) {
  runtime::Rng rng(1);
  Tensor t(Shape::bchw(batch, channels, n, n));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      t.set_plane(b, c, data::smooth_field(n, n, rng, 4, 0.4));
    }
  }
  return t;
}

// Publishes a codec's CodecStats counters alongside the benchmark timings.
void report_codec_stats(benchmark::State& state, const core::Codec& codec) {
  const core::CodecStatsSnapshot snap = codec.stats().snapshot();
  state.counters["planes"] = static_cast<double>(snap.planes());
  state.counters["eq_flops"] = static_cast<double>(snap.flops());
  if (snap.compress.calls > 0) {
    state.counters["comp_GFLOP/s"] = snap.compress.gflops_per_second();
    state.counters["comp_GB/s"] = snap.compress.gigabytes_per_second();
  }
  if (snap.decompress.calls > 0) {
    state.counters["decomp_GFLOP/s"] = snap.decompress.gflops_per_second();
  }
  state.counters["scratch_reallocs"] =
      static_cast<double>(tensor::sandwich_scratch_reallocs());
}

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  runtime::Rng rng(2);
  const Tensor a = Tensor::uniform(Shape::matrix(n, n), rng, -1, 1);
  const Tensor b = Tensor::uniform(Shape::matrix(n, n), rng, -1, 1);
  Tensor c(Shape::matrix(n, n));
  for (auto _ : state) {
    tensor::matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// Single-thread GEMM GFLOP/s per backend and transpose mode. Operands are
// allocated in their *stored* orientation (the packing stage folds the
// transpose), so NT/TN measure exactly what Linear/Conv2d backward issue.
// Shapes: square sweep + the two training-path shapes (MLP hidden layer
// 128×784×256 and conv im2col 32×144×1024).
void gemm_bench(benchmark::State& state, KernelBackend backend, Trans ta,
                Trans tb) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const std::size_t n = static_cast<std::size_t>(state.range(2));
  BackendScope scope(state, backend);
  if (!scope) return;
  runtime::Rng rng(5);
  const Tensor a =
      ta == Trans::kNo ? Tensor::uniform(Shape::matrix(m, k), rng, -1, 1)
                       : Tensor::uniform(Shape::matrix(k, m), rng, -1, 1);
  const Tensor b =
      tb == Trans::kNo ? Tensor::uniform(Shape::matrix(k, n), rng, -1, 1)
                       : Tensor::uniform(Shape::matrix(n, k), rng, -1, 1);
  Tensor c(Shape::matrix(m, n));
  for (auto _ : state) {
    tensor::matmul_into(a, b, c, ta, tb);
    benchmark::DoNotOptimize(c.raw());
  }
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flops));
}
BENCHMARK_CAPTURE(gemm_bench, scalar_nn, KernelBackend::kScalar, Trans::kNo,
                  Trans::kNo)
    ->Args({128, 128, 128})
    ->Args({256, 256, 256})
    ->Args({512, 512, 512})
    ->Args({128, 784, 256})
    ->Args({32, 144, 1024});
BENCHMARK_CAPTURE(gemm_bench, avx2_nn, KernelBackend::kAvx2, Trans::kNo,
                  Trans::kNo)
    ->Args({128, 128, 128})
    ->Args({256, 256, 256})
    ->Args({512, 512, 512})
    ->Args({128, 784, 256})
    ->Args({32, 144, 1024});
// Linear forward: x [B,F] · Wᵀ with W stored [O,F].
BENCHMARK_CAPTURE(gemm_bench, scalar_nt, KernelBackend::kScalar, Trans::kNo,
                  Trans::kYes)
    ->Args({128, 784, 256});
BENCHMARK_CAPTURE(gemm_bench, avx2_nt, KernelBackend::kAvx2, Trans::kNo,
                  Trans::kYes)
    ->Args({128, 784, 256});
// Linear backward dW: goᵀ [O,B] · x with go stored [B,O].
BENCHMARK_CAPTURE(gemm_bench, scalar_tn, KernelBackend::kScalar, Trans::kYes,
                  Trans::kNo)
    ->Args({256, 128, 784});
BENCHMARK_CAPTURE(gemm_bench, avx2_tn, KernelBackend::kAvx2, Trans::kYes,
                  Trans::kNo)
    ->Args({256, 128, 784});

// Full codec round trip (compress + decompress) per backend: how much of
// the microkernel win survives end-to-end through the banded sandwich.
void sandwich_roundtrip_bench(benchmark::State& state, KernelBackend backend) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t cf = static_cast<std::size_t>(state.range(1));
  BackendScope scope(state, backend);
  if (!scope) return;
  const core::CodecPtr codec = make_chop("dctchop", n, cf);
  const Tensor batch = make_batch(4, 3, n);
  for (auto _ : state) {
    Tensor packed = codec->compress(batch);
    Tensor restored = codec->decompress(packed, batch.shape());
    benchmark::DoNotOptimize(restored.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size_bytes()));
  report_codec_stats(state, *codec);
}
BENCHMARK_CAPTURE(sandwich_roundtrip_bench, scalar, KernelBackend::kScalar)
    ->Args({256, 4});
BENCHMARK_CAPTURE(sandwich_roundtrip_bench, avx2, KernelBackend::kAvx2)
    ->Args({256, 4});

void BM_DctChopCompress(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t cf = static_cast<std::size_t>(state.range(1));
  const core::CodecPtr codec = make_chop("dctchop", n, cf);
  const Tensor batch = make_batch(4, 3, n);
  for (auto _ : state) {
    Tensor packed = codec->compress(batch);
    benchmark::DoNotOptimize(packed.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size_bytes()));
  report_codec_stats(state, *codec);
}
BENCHMARK(BM_DctChopCompress)
    ->Args({32, 2})
    ->Args({32, 7})
    ->Args({64, 4})
    ->Args({128, 4});

void BM_DctChopDecompress(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t cf = static_cast<std::size_t>(state.range(1));
  const core::CodecPtr codec = make_chop("dctchop", n, cf);
  const Tensor batch = make_batch(4, 3, n);
  const Tensor packed = codec->compress(batch);
  for (auto _ : state) {
    Tensor restored = codec->decompress(packed, batch.shape());
    benchmark::DoNotOptimize(restored.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size_bytes()));
  report_codec_stats(state, *codec);
}
BENCHMARK(BM_DctChopDecompress)->Args({32, 2})->Args({64, 4})->Args({128, 4});

// The acceptance workload of this repo's hot path: compress + decompress a
// 16×3×1024×1024 batch at CF=4 through the structurally-sparse batched
// kernel. `scratch_reallocs` stays flat across iterations — the steady
// state performs zero per-plane heap allocations inside the sandwich.
void BM_DctChopRoundTripLargeBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t cf = static_cast<std::size_t>(state.range(1));
  const core::CodecPtr codec = make_chop("dctchop", n, cf);
  const Tensor batch = make_batch(16, 3, n);
  for (auto _ : state) {
    Tensor packed = codec->compress(batch);
    Tensor restored = codec->decompress(packed, batch.shape());
    benchmark::DoNotOptimize(restored.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size_bytes()));
  report_codec_stats(state, *codec);
}
BENCHMARK(BM_DctChopRoundTripLargeBatch)
    ->Args({1024, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Same sandwich, structure hint withheld: the generic dense-plane path
// (what every compress ran before the structural fast path existed, minus
// its per-plane allocations). The ratio to BM_DctChopCompress is the win
// from exploiting the chop sparsity structurally.
void BM_SandwichDenseReference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t cf = static_cast<std::size_t>(state.range(1));
  const Tensor lhs = core::make_lhs(n, cf);
  const Tensor rhs = core::make_rhs(n, cf);
  const Tensor batch = make_batch(4, 3, n);
  Tensor packed(Shape::bchw(4, 3, cf * n / 8, cf * n / 8));
  for (auto _ : state) {
    tensor::sandwich_planes_into(lhs, batch, rhs, packed, {});
    benchmark::DoNotOptimize(packed.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size_bytes()));
}
BENCHMARK(BM_SandwichDenseReference)->Args({64, 4})->Args({128, 4});

void BM_TriangleRoundTrip(benchmark::State& state) {
  const std::size_t cf = static_cast<std::size_t>(state.range(0));
  const core::CodecPtr codec = make_chop("triangle", 32, cf);
  const Tensor batch = make_batch(4, 3, 32);
  for (auto _ : state) {
    Tensor out = codec->round_trip(batch);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_TriangleRoundTrip)->Arg(2)->Arg(4)->Arg(7);

void BM_ZfpLikeCompress(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  const baseline::ZfpLikeCodec codec(rate);
  runtime::Rng rng(3);
  const Tensor plane = data::smooth_field(64, 64, rng, 4, 0.4);
  for (auto _ : state) {
    auto words = codec.compress_plane(plane);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plane.size_bytes()));
}
BENCHMARK(BM_ZfpLikeCompress)->Arg(2)->Arg(8)->Arg(16);

void BM_JpegLikeCompress(benchmark::State& state) {
  const int quality = static_cast<int>(state.range(0));
  const baseline::JpegLikeCodec codec(quality);
  runtime::Rng rng(4);
  const Tensor plane = data::smooth_field(64, 64, rng, 4, 0.4);
  for (auto _ : state) {
    auto stream = codec.compress_plane(plane);
    benchmark::DoNotOptimize(stream.bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plane.size_bytes()));
}
BENCHMARK(BM_JpegLikeCompress)->Arg(10)->Arg(50)->Arg(90);

void BM_MakeOperators(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Tensor lhs = core::make_lhs(n, 4);
    benchmark::DoNotOptimize(lhs.raw());
  }
}
BENCHMARK(BM_MakeOperators)->Arg(64)->Arg(256);

}  // namespace

// Custom entry point: `--json[=path]` is sugar for google-benchmark's
// `--benchmark_out=<path> --benchmark_out_format=json` (default path
// BENCH_kernels.json), so CI can request the machine-readable report
// without knowing the library's flag spelling.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  bool want_json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      want_json = true;
      json_path = "BENCH_kernels.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(std::strlen("--json="));
    } else {
      args.push_back(arg);
    }
  }
  if (want_json) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> raw;
  raw.reserve(args.size());
  for (std::string& a : args) raw.push_back(a.data());
  int raw_argc = static_cast<int>(raw.size());
  benchmark::Initialize(&raw_argc, raw.data());
  if (benchmark::ReportUnrecognizedArguments(raw_argc, raw.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (want_json &&
      !aic::bench::merge_metrics_into_benchmark_json(json_path)) {
    std::fprintf(stderr, "warning: could not merge aic_metrics into %s\n",
                 json_path.c_str());
  }
  return 0;
}
