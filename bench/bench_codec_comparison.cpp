// Cross-codec rate/distortion survey (beyond the paper's figures, ties
// its narrative together): every compressor in the repository measured
// on the same synthetic image batch, annotated with where it can run.
//
// The expected picture is the paper's §2.2/§5 argument in one table:
// the VLE-based codecs (JPEG-style, SZ-style) dominate rate/distortion
// but compile nowhere; the fixed-rate, matmul-only DCT+Chop family is
// the portable point on the frontier.
//
// Every codec here is built from its CodecFactory spec string — the
// same grammar `aicomp --codec` accepts.

#include <iostream>
#include <string>
#include <vector>

#include "baseline/comparators.hpp"
#include "bench/common.hpp"
#include "core/codec_factory.hpp"
#include "core/fidelity.hpp"
#include "data/synth.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace aic;
  using tensor::Shape;
  using tensor::Tensor;

  baseline::register_comparator_codecs();

  constexpr std::size_t kRes = 64;
  runtime::Rng rng(1234);
  Tensor images(Shape::bchw(8, 1, kRes, kRes));
  for (std::size_t b = 0; b < 8; ++b) {
    Tensor plane = data::smooth_field(kRes, kRes, rng, 6, 0.45);
    data::add_gaussian_noise(plane, rng, 0.02);
    images.set_plane(b, 0, plane);
  }

  struct Entry {
    std::string spec;
    std::string runs_on;
  };
  const std::vector<Entry> entries = {
      // Fixed-rate, matmul-only family: portable everywhere.
      {"dctchop:cf=2", "all 4 accelerators"},
      {"dctchop:cf=4", "all 4 accelerators"},
      {"dctchop:cf=6", "all 4 accelerators"},
      {"triangle:cf=2", "IPU only (scatter/gather)"},
      {"triangle:cf=4", "IPU only (scatter/gather)"},
      {"colorquant:bits=4", "all (quantize only)"},
      {"colorquant:bits=8", "all (quantize only)"},
      // Fixed-rate bit-plane codec: bit shifts -> CPU/GPU only.
      {"zfp:rate=2", "CPU/GPU (bit shifts)"},
      {"zfp:rate=8", "CPU/GPU (bit shifts)"},
      // Variable-rate codecs (achieved stream bytes, not a fixed shape).
      {"jpeg:q=30", "CPU/GPU (VLE, variable rate)"},
      {"jpeg:q=70", "CPU/GPU (VLE, variable rate)"},
      {"sz:eb=1e-2", "CPU/GPU (VLE, variable rate)"},
      {"sz:eb=1e-3", "CPU/GPU (VLE, variable rate)"},
  };

  io::Table table({"codec", "CR", "PSNR (dB)", "max |err|", "runs on"});
  io::CsvWriter csv({"codec", "cr", "psnr_db", "max_err", "portability"});
  for (const Entry& entry : entries) {
    const core::CodecPtr codec = core::make_codec(entry.spec);
    const auto rd = core::evaluate_codec(*codec, images);
    table.add_row({codec->name(), io::Table::num(rd.compression_ratio, 4),
                   io::Table::num(rd.psnr_db, 4),
                   io::Table::num(rd.max_abs_error, 3), entry.runs_on});
    csv.add_row({codec->name(), io::Table::num(rd.compression_ratio, 6),
                 io::Table::num(rd.psnr_db, 6),
                 io::Table::num(rd.max_abs_error, 6), entry.runs_on});
  }

  std::cout << "=== codec survey on 8x 1ch " << kRes << "x" << kRes
            << " noisy smooth fields ===\n";
  table.print(std::cout);
  std::cout << "\n(the VLE codecs win rate/distortion but fail every "
               "accelerator compiler — §3.1's core trade-off)\n";

  csv.save(bench::results_dir() + "/codec_comparison.csv");
  std::cout << "wrote " << bench::results_dir() << "/codec_comparison.csv\n";
  return 0;
}
