// Cross-codec rate/distortion survey (beyond the paper's figures, ties
// its narrative together): every compressor in the repository measured
// on the same synthetic image batch, annotated with where it can run.
//
// The expected picture is the paper's §2.2/§5 argument in one table:
// the VLE-based codecs (JPEG-style, SZ-style) dominate rate/distortion
// but compile nowhere; the fixed-rate, matmul-only DCT+Chop family is
// the portable point on the frontier.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "baseline/color_quant.hpp"
#include "baseline/jpeg_codec.hpp"
#include "baseline/sz_like.hpp"
#include "baseline/zfp_like.hpp"
#include "bench/common.hpp"
#include "core/metrics.hpp"
#include "core/triangle.hpp"
#include "data/synth.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace aic;
  using tensor::Shape;
  using tensor::Tensor;

  constexpr std::size_t kRes = 64;
  runtime::Rng rng(1234);
  Tensor images(Shape::bchw(8, 1, kRes, kRes));
  for (std::size_t b = 0; b < 8; ++b) {
    Tensor plane = data::smooth_field(kRes, kRes, rng, 6, 0.45);
    data::add_gaussian_noise(plane, rng, 0.02);
    images.set_plane(b, 0, plane);
  }

  io::Table table({"codec", "CR", "PSNR (dB)", "max |err|", "runs on"});
  io::CsvWriter csv({"codec", "cr", "psnr_db", "max_err", "portability"});
  auto add = [&](const std::string& name, double cr, double psnr,
                 double max_err, const std::string& where) {
    table.add_row({name, io::Table::num(cr, 4), io::Table::num(psnr, 4),
                   io::Table::num(max_err, 3), where});
    csv.add_row({name, io::Table::num(cr, 6), io::Table::num(psnr, 6),
                 io::Table::num(max_err, 6), where});
  };

  // Fixed-rate, matmul-only family: portable everywhere.
  for (std::size_t cf : {2u, 4u, 6u}) {
    const core::DctChopCodec codec(
        {.height = kRes, .width = kRes, .cf = cf, .block = 8});
    const auto rd = core::evaluate_codec(codec, images);
    add(codec.name(), rd.compression_ratio, rd.psnr_db, rd.max_abs_error,
        "all 4 accelerators");
  }
  for (std::size_t cf : {2u, 4u}) {
    const core::TriangleCodec codec(
        {.height = kRes, .width = kRes, .cf = cf, .block = 8});
    const auto rd = core::evaluate_codec(codec, images);
    add(codec.name(), rd.compression_ratio, rd.psnr_db, rd.max_abs_error,
        "IPU only (scatter/gather)");
  }
  for (std::size_t bits : {4u, 8u}) {
    const baseline::ColorQuantCodec codec(bits);
    const auto rd = core::evaluate_codec(codec, images);
    add(codec.name(), rd.compression_ratio, rd.psnr_db, rd.max_abs_error,
        "all (quantize only)");
  }
  // Fixed-rate bit-plane codec: bit shifts -> CPU/GPU only.
  for (double rate : {2.0, 8.0}) {
    const baseline::ZfpLikeCodec codec(rate);
    const auto rd = core::evaluate_codec(codec, images);
    add(codec.name(), rd.compression_ratio, rd.psnr_db, rd.max_abs_error,
        "CPU/GPU (bit shifts)");
  }
  // Variable-rate codecs: measured per-plane, averaged.
  for (int quality : {30, 70}) {
    const baseline::JpegLikeCodec codec(quality);
    double ratio = 0.0, mse = 0.0, max_err = 0.0;
    for (std::size_t b = 0; b < 8; ++b) {
      const Tensor plane = images.slice_plane(b, 0);
      const auto stream = codec.compress_plane(plane);
      ratio += baseline::JpegLikeCodec::achieved_ratio(stream);
      const Tensor restored = codec.decompress_plane(stream, kRes, kRes);
      mse += tensor::mse(plane, restored);
      max_err = std::max(max_err, tensor::max_abs_error(plane, restored));
    }
    ratio /= 8.0;
    mse /= 8.0;
    add("jpeg-like(q=" + std::to_string(quality) + ")", ratio,
        10.0 * std::log10(1.0 / mse), max_err,
        "CPU/GPU (VLE, variable rate)");
  }
  for (double bound : {1e-2, 1e-3}) {
    const baseline::SzLikeCodec codec(bound);
    double ratio = 0.0;
    const Tensor restored = codec.round_trip(images, &ratio);
    add("sz-like(eb=" + io::Table::num(bound, 2) + ")", ratio,
        tensor::psnr(images, restored, 1.0),
        tensor::max_abs_error(images, restored),
        "CPU/GPU (VLE, variable rate)");
  }

  std::cout << "=== codec survey on 8x 1ch " << kRes << "x" << kRes
            << " noisy smooth fields ===\n";
  table.print(std::cout);
  std::cout << "\n(the VLE codecs win rate/distortion but fail every "
               "accelerator compiler — §3.1's core trade-off)\n";

  csv.save(bench::results_dir() + "/codec_comparison.csv");
  std::cout << "wrote " << bench::results_dir() << "/codec_comparison.csv\n";
  return 0;
}
