// Fig. 3: fraction of 8×8 blocks with a nonzero quantized DCT
// coefficient at each position, per colour channel and JPEG quality
// factor, over 1000 synthetic 32×32 CIFAR-like images.
//
// Expected shape: near-100% at the DC corner, decaying towards the
// high-frequency corner; lower quality factors sparsify the map. This is
// the paper's motivation for chopping the upper-left corner.

#include <iostream>

#include "baseline/jpeg_codec.hpp"
#include "bench/common.hpp"
#include "data/synth.hpp"
#include "runtime/rng.hpp"

int main() {
  using namespace aic;

  constexpr std::size_t kImages = 1000, kRes = 32;
  const int qualities[] = {5, 25, 50, 75, 95};

  // CIFAR-like content: band-limited structure plus pixel noise,
  // channel-decorrelated by independent draws.
  runtime::Rng rng(303);
  std::vector<std::vector<tensor::Tensor>> channels(3);
  for (std::size_t i = 0; i < kImages; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      tensor::Tensor plane = data::smooth_field(kRes, kRes, rng, 6, 0.6);
      data::add_gaussian_noise(plane, rng, 0.05);
      channels[c].push_back(std::move(plane));
    }
  }

  io::CsvWriter csv({"channel", "quality", "row", "col", "nonzero_fraction"});
  const char* channel_names[] = {"blue", "green", "red"};

  for (std::size_t c = 0; c < 3; ++c) {
    for (int quality : qualities) {
      const auto census = baseline::nonzero_census(channels[c], quality);
      std::cout << "channel=" << channel_names[c] << " QF=" << quality
                << "  (% of blocks with nonzero coefficient)\n";
      for (std::size_t r = 0; r < 8; ++r) {
        std::cout << "  ";
        for (std::size_t col = 0; col < 8; ++col) {
          const double pct = 100.0 * census[r * 8 + col];
          std::printf("%5.1f ", pct);
          csv.add_row({channel_names[c], std::to_string(quality),
                       std::to_string(r), std::to_string(col),
                       io::Table::num(census[r * 8 + col], 5)});
        }
        std::cout << "\n";
      }
      // Paper shape checks, printed for eyeballing.
      const double dc = census[0];
      const double corner = census[63];
      std::cout << "  DC=" << io::Table::num(100 * dc, 4)
                << "%  high-freq corner=" << io::Table::num(100 * corner, 4)
                << "%\n\n";
    }
  }
  csv.save(bench::results_dir() + "/fig03_jpeg_heatmap.csv");
  std::cout << "wrote " << bench::results_dir()
            << "/fig03_jpeg_heatmap.csv\n";
  return 0;
}
