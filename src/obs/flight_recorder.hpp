#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace aic::obs::flight {

/// Crash / corruption flight recorder. Once armed it:
///   - installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGILL, SIGFPE,
///     SIGABRT) and a std::terminate handler that dump a self-contained
///     `.aicflight` JSON — last-N trace spans per thread, the most
///     recent metrics snapshot, any typed-corruption records, and
///     cpu_features/build provenance — before re-raising;
///   - captures one in-memory corruption record (and bumps the
///     `obs.flight_dumps` counter) every time `io::raise_corrupt()`
///     rejects untrusted input, optionally also writing the dump file
///     per rejection (`dump_on_corrupt`).
///
/// The fatal-signal path touches only pre-allocated buffers: span
/// copies, the metrics JSON (pre-rendered by the exporter / at arm
/// time), provenance, and the output formatting buffer are all fixed
/// storage, and the dump is written with plain open/write/fsync —
/// async-signal-cautious by construction (no malloc, no locks, no
/// iostreams on that path).
struct Options {
  /// Dump file path. Written whole on each dump (not appended).
  std::string path = "aic.aicflight";
  /// Most-recent spans copied per thread into a dump.
  std::size_t spans_per_thread = 64;
  /// Write a dump file for every raise_corrupt() rejection too (the
  /// in-memory record + counter are unconditional while armed).
  bool dump_on_corrupt = false;
  /// Install the fatal-signal handlers.
  bool signals = true;
  /// Install the std::terminate handler.
  bool terminate = true;
};

/// Arms the recorder. Idempotent: returns false (no re-configuration)
/// when already armed.
bool arm(const Options& options);

/// Uninstalls the handlers installed by arm() (best effort) and stops
/// recording corruption events. Counters and the path survive.
void disarm();

bool is_armed() noexcept;

/// The configured dump path ("" when never armed).
std::string dump_path();

/// Attaches a provenance key/value (cpu features, build flavor, ...)
/// embedded in every dump. Fixed slots; extra entries beyond the slot
/// budget are dropped. Values are copied.
void set_provenance(const char* key, const char* value) noexcept;

/// Called by io::raise_corrupt() on every typed rejection. No-op when
/// disarmed; otherwise appends an in-memory record, bumps
/// `obs.flight_dumps`, and (with dump_on_corrupt) writes the dump file.
void record_corrupt(const char* kind, const char* message) noexcept;

/// Total corruption records captured while armed (== the
/// `obs.flight_dumps` counter).
std::uint64_t dumps() noexcept;

/// Pre-renders `metrics_json` into the recorder's fixed buffer so fatal
/// dumps embed telemetry without touching the registry mid-signal. The
/// interval exporter calls this on every sample.
void note_metrics_json(const std::string& metrics_json) noexcept;

/// Full-fidelity dump (locks and allocation allowed — NOT for signal
/// handlers): fresh metrics snapshot, sorted spans, records, provenance.
/// Returns false when the file cannot be written.
bool dump_now(const char* reason, const char* detail);

}  // namespace aic::obs::flight

namespace aic::obs {
struct MetricsSnapshot;
namespace flight {
/// note_metrics_json(snapshot serialized) — exporter convenience.
void note_metrics(const MetricsSnapshot& snapshot);
}  // namespace flight
}  // namespace aic::obs
