#include "obs/flight_recorder.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace aic::obs::flight {

namespace {

// ---------------------------------------------------------------------------
// Fixed storage. Everything the fatal-signal path reads or writes lives
// here — no allocation happens after arm().

constexpr std::size_t kMaxPath = 512;
constexpr std::size_t kMaxRecords = 64;
constexpr std::size_t kMaxProvenance = 16;
constexpr std::size_t kMaxDumpSpans = 2048;
constexpr std::size_t kMetricsBufBytes = 128 * 1024;
constexpr std::size_t kOutBufBytes = 512 * 1024;

struct CorruptRecord {
  char kind[32];
  char message[192];
  std::uint64_t mono_ns;
};

struct ProvenanceSlot {
  char key[48];
  char value[192];
};

char g_path[kMaxPath] = "aic.aicflight";
std::atomic<bool> g_armed{false};
std::atomic<bool> g_dump_on_corrupt{false};
std::size_t g_spans_per_thread = 64;

CorruptRecord g_records[kMaxRecords]{};
std::atomic<std::uint64_t> g_record_head{0};

ProvenanceSlot g_provenance[kMaxProvenance]{};
std::atomic<std::size_t> g_provenance_count{0};

/// Double-buffered pre-rendered metrics JSON: the writer fills the
/// inactive buffer then flips `g_metrics_active`; the signal handler
/// copies whichever buffer is active (a racing flip means it reads the
/// previous complete rendering — never a torn one).
char g_metrics_buf[2][kMetricsBufBytes];
std::size_t g_metrics_len[2] = {0, 0};
std::atomic<int> g_metrics_active{-1};
std::mutex g_metrics_writer_mutex;

TraceSpan g_span_scratch[kMaxDumpSpans];
char g_out_buf[kOutBufBytes];
std::atomic<bool> g_in_fatal_dump{false};

std::atomic<std::uint64_t> g_dump_count{0};
Counter* g_dump_counter = nullptr;   // obs.flight_dumps
Counter* g_file_counter = nullptr;   // obs.flight_files

#if !defined(_WIN32)
struct sigaction g_previous_actions[NSIG]{};
#endif
std::terminate_handler g_previous_terminate = nullptr;
bool g_signals_installed = false;
bool g_terminate_installed = false;

// ---------------------------------------------------------------------------
// Signal-cautious formatting into a fixed buffer: no snprintf for the
// hot pieces, just byte appends and manual integer rendering.

struct BufWriter {
  char* buf;
  std::size_t cap;
  std::size_t len = 0;

  void put(char c) {
    if (len < cap) buf[len++] = c;
  }
  void puts(const char* s) {
    for (; *s != '\0'; ++s) put(*s);
  }
  void put_u64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }
  void put_i64(std::int64_t v) {
    if (v < 0) {
      put('-');
      put_u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      put_u64(static_cast<std::uint64_t>(v));
    }
  }
  /// JSON string literal with quote/backslash/control escaping.
  void put_json(const char* s) {
    put('"');
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        put('\\');
        put(static_cast<char>(c));
      } else if (c < 0x20) {
        puts("\\u00");
        const char* hex = "0123456789abcdef";
        put(hex[c >> 4]);
        put(hex[c & 0xf]);
      } else {
        put(static_cast<char>(c));
      }
    }
    put('"');
  }
  void put_raw(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) put(data[i]);
  }
};

void copy_str(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

// ---------------------------------------------------------------------------
// Dump body (shared by the signal path and dump_now): renders the whole
// .aicflight JSON into `writer` from fixed storage only.

void render_dump(BufWriter& writer, const char* reason, const char* detail,
                 int signal_number, const TraceSpan* spans,
                 std::size_t span_count) {
  writer.puts("{\"format\":\"aicflight\",\"version\":1,\"reason\":");
  writer.put_json(reason);
  writer.puts(",\"detail\":");
  writer.put_json(detail != nullptr ? detail : "");
  writer.puts(",\"signal\":");
  writer.put_i64(signal_number);
  writer.puts(",\"mono_ns\":");
  writer.put_u64(trace_now_ns());
  writer.puts(",\"flight_dumps\":");
  writer.put_u64(g_dump_count.load(std::memory_order_relaxed));

  writer.puts(",\"provenance\":{");
  const std::size_t prov =
      g_provenance_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < prov && i < kMaxProvenance; ++i) {
    if (i != 0) writer.put(',');
    writer.put_json(g_provenance[i].key);
    writer.put(':');
    writer.put_json(g_provenance[i].value);
  }
  writer.puts("}");

  writer.puts(",\"corrupt_records\":[");
  const std::uint64_t head = g_record_head.load(std::memory_order_acquire);
  const std::uint64_t live = head < kMaxRecords ? head : kMaxRecords;
  for (std::uint64_t i = head - live; i < head; ++i) {
    const CorruptRecord& record = g_records[i % kMaxRecords];
    if (i != head - live) writer.put(',');
    writer.puts("{\"kind\":");
    writer.put_json(record.kind);
    writer.puts(",\"message\":");
    writer.put_json(record.message);
    writer.puts(",\"mono_ns\":");
    writer.put_u64(record.mono_ns);
    writer.put('}');
  }
  writer.puts("]");

  writer.puts(",\"metrics\":");
  const int active = g_metrics_active.load(std::memory_order_acquire);
  if (active >= 0 && g_metrics_len[active] > 0) {
    writer.put_raw(g_metrics_buf[active], g_metrics_len[active]);
  } else {
    writer.puts("null");
  }

  writer.puts(",\"spans\":[");
  for (std::size_t i = 0; i < span_count; ++i) {
    const TraceSpan& span = spans[i];
    if (i != 0) writer.put(',');
    writer.puts("{\"name\":");
    writer.put_json(span.name != nullptr ? span.name : "?");
    writer.puts(",\"tid\":");
    writer.put_u64(span.tid);
    writer.puts(",\"start_ns\":");
    writer.put_u64(span.start_ns);
    writer.puts(",\"dur_ns\":");
    writer.put_u64(span.dur_ns);
    writer.puts(",\"depth\":");
    writer.put_u64(span.depth);
    writer.put('}');
  }
  writer.puts("]}\n");
}

/// open/write/fsync/close with plain POSIX calls (async-signal-safe).
bool write_file_raw(const char* path, const char* data, std::size_t len) {
#if defined(_WIN32)
  FILE* file = std::fopen(path, "wb");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(data, 1, len, file) == len;
  std::fclose(file);
  return ok;
#else
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return written == len;
#endif
}

/// The fatal path: fixed buffers only. Reentrancy-guarded so a crash
/// inside the dump itself cannot recurse.
void fatal_dump(const char* reason, const char* detail, int signal_number) {
  if (g_in_fatal_dump.exchange(true, std::memory_order_acq_rel)) return;
  const std::size_t span_count = collect_trace_unsynchronized(
      g_span_scratch, kMaxDumpSpans, g_spans_per_thread);
  BufWriter writer{g_out_buf, kOutBufBytes};
  render_dump(writer, reason, detail, signal_number, g_span_scratch,
              span_count);
  write_file_raw(g_path, g_out_buf, writer.len);
  g_in_fatal_dump.store(false, std::memory_order_release);
}

void signal_handler(int signal_number) {
  char name[16];
  copy_str(name, sizeof(name), "signal");
  fatal_dump("signal", name, signal_number);
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (exit codes, core dumps intact).
  std::signal(signal_number, SIG_DFL);
  std::raise(signal_number);
}

void terminate_handler() {
  const char* what = "std::terminate";
  // Best effort: name the active exception if there is one.
  if (std::current_exception() != nullptr) what = "uncaught exception";
  fatal_dump("terminate", what, 0);
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

constexpr int kFatalSignals[] = {
#if defined(_WIN32)
    SIGSEGV, SIGABRT, SIGILL, SIGFPE,
#else
    SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE,
#endif
};

void install_signal_handlers() {
#if defined(_WIN32)
  for (const int sig : kFatalSignals) std::signal(sig, signal_handler);
#else
  struct sigaction action {};
  action.sa_handler = signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_NODEFER;
  for (const int sig : kFatalSignals) {
    sigaction(sig, &action, &g_previous_actions[sig]);
  }
#endif
  g_signals_installed = true;
}

void uninstall_signal_handlers() {
  if (!g_signals_installed) return;
#if defined(_WIN32)
  for (const int sig : kFatalSignals) std::signal(sig, SIG_DFL);
#else
  for (const int sig : kFatalSignals) {
    sigaction(sig, &g_previous_actions[sig], nullptr);
  }
#endif
  g_signals_installed = false;
}

std::mutex& arm_mutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

}  // namespace

bool arm(const Options& options) {
  std::lock_guard lock(arm_mutex());
  if (g_armed.load(std::memory_order_acquire)) return false;
  copy_str(g_path, kMaxPath, options.path.c_str());
  g_spans_per_thread = options.spans_per_thread;
  g_dump_on_corrupt.store(options.dump_on_corrupt,
                          std::memory_order_release);
  g_dump_counter = &Registry::global().counter("obs.flight_dumps");
  g_file_counter = &Registry::global().counter("obs.flight_files");

  // Build provenance baked in at compile time; callers layer runtime
  // facts (cpu_features, backend) on top via set_provenance().
#if defined(__clang__)
  set_provenance("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  set_provenance("compiler", "gcc " __VERSION__);
#else
  set_provenance("compiler", "unknown");
#endif
#if defined(NDEBUG)
  set_provenance("build", "release");
#else
  set_provenance("build", "debug");
#endif

  // Seed the metrics buffer so even a crash before the first exporter
  // sample dumps something.
  note_metrics(snapshot_registry());

  if (options.signals) install_signal_handlers();
  if (options.terminate) {
    g_previous_terminate = std::set_terminate(terminate_handler);
    g_terminate_installed = true;
  }
  g_armed.store(true, std::memory_order_release);
  return true;
}

void disarm() {
  std::lock_guard lock(arm_mutex());
  if (!g_armed.load(std::memory_order_acquire)) return;
  g_armed.store(false, std::memory_order_release);
  uninstall_signal_handlers();
  if (g_terminate_installed) {
    std::set_terminate(g_previous_terminate != nullptr ? g_previous_terminate
                                                       : std::abort);
    g_terminate_installed = false;
  }
}

bool is_armed() noexcept { return g_armed.load(std::memory_order_acquire); }

std::string dump_path() { return g_path; }

void set_provenance(const char* key, const char* value) noexcept {
  if (key == nullptr) return;
  const std::size_t count =
      g_provenance_count.load(std::memory_order_acquire);
  // Same key overwrites its slot; new keys append while slots remain.
  for (std::size_t i = 0; i < count; ++i) {
    if (std::strncmp(g_provenance[i].key, key,
                     sizeof(g_provenance[i].key)) == 0) {
      copy_str(g_provenance[i].value, sizeof(g_provenance[i].value), value);
      return;
    }
  }
  if (count >= kMaxProvenance) return;
  copy_str(g_provenance[count].key, sizeof(g_provenance[count].key), key);
  copy_str(g_provenance[count].value, sizeof(g_provenance[count].value),
           value);
  g_provenance_count.store(count + 1, std::memory_order_release);
}

void record_corrupt(const char* kind, const char* message) noexcept {
  if (!g_armed.load(std::memory_order_acquire)) return;
  const std::uint64_t slot =
      g_record_head.fetch_add(1, std::memory_order_acq_rel);
  CorruptRecord& record = g_records[slot % kMaxRecords];
  copy_str(record.kind, sizeof(record.kind), kind);
  copy_str(record.message, sizeof(record.message), message);
  record.mono_ns = trace_now_ns();
  g_dump_count.fetch_add(1, std::memory_order_relaxed);
  if (g_dump_counter != nullptr) g_dump_counter->add();
  if (g_dump_on_corrupt.load(std::memory_order_acquire)) {
    dump_now("corrupt", kind);
  }
}

std::uint64_t dumps() noexcept {
  return g_dump_count.load(std::memory_order_relaxed);
}

void note_metrics_json(const std::string& metrics_json) noexcept {
  // Serialized writers; the flip keeps signal readers on complete data.
  std::lock_guard lock(g_metrics_writer_mutex);
  const int active = g_metrics_active.load(std::memory_order_relaxed);
  const int target = active == 0 ? 1 : 0;
  const std::size_t len =
      metrics_json.size() < kMetricsBufBytes ? metrics_json.size() : 0;
  if (len == 0 && !metrics_json.empty()) return;  // oversized: keep old
  std::memcpy(g_metrics_buf[target], metrics_json.data(), len);
  g_metrics_len[target] = len;
  g_metrics_active.store(target, std::memory_order_release);
}

bool dump_now(const char* reason, const char* detail) {
  // Full-fidelity path: refresh the metrics buffer first, then reuse the
  // fixed-storage renderer so both paths produce identical documents.
  // Serialized against concurrent dump_now callers (the scratch buffers
  // are shared fixed storage); the signal path stays lock-free.
  static std::mutex* dump_mutex = new std::mutex();
  note_metrics(snapshot_registry());
  std::lock_guard lock(*dump_mutex);
  const std::size_t span_count = collect_trace_unsynchronized(
      g_span_scratch, kMaxDumpSpans, g_spans_per_thread);
  BufWriter writer{g_out_buf, kOutBufBytes};
  render_dump(writer, reason, detail, 0, g_span_scratch, span_count);
  const bool ok = write_file_raw(g_path, g_out_buf, writer.len);
  if (ok && g_file_counter != nullptr) g_file_counter->add();
  return ok;
}

void note_metrics(const MetricsSnapshot& snapshot) {
  note_metrics_json(snapshot_json(snapshot));
}

}  // namespace aic::obs::flight
