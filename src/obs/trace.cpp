#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

namespace aic::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using clock_type = std::chrono::steady_clock;

constexpr std::size_t kDefaultCapacity = 65536;
constexpr std::size_t kMinCapacity = 16;

/// One thread's span ring. Only the owner thread writes; `head` counts
/// total pushes so readers can tell how much of the ring is live (and how
/// much wrapped). Buffers are shared_ptr-owned by the registry so they
/// survive thread exit and export stays safe.
struct ThreadTraceBuffer {
  explicit ThreadTraceBuffer(std::uint32_t id, std::size_t capacity)
      : tid(id), ring(std::max(capacity, kMinCapacity)) {}

  void push(const TraceSpan& span) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    ring[h % ring.size()] = span;
    head.store(h + 1, std::memory_order_release);
  }

  const std::uint32_t tid;
  std::uint32_t depth = 0;  // owner-thread only
  std::vector<TraceSpan> ring;
  std::atomic<std::uint64_t> head{0};
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

/// Lock-free mirror of the registered buffers for the fatal-signal path:
/// raw pointers stay valid forever (the registry is leaky and its buffer
/// vector never shrinks), so a signal handler can walk them without the
/// mutex. Threads beyond the mirror capacity are simply not visible to
/// collect_trace_unsynchronized.
constexpr std::size_t kMaxMirroredBuffers = 256;
std::atomic<ThreadTraceBuffer*> g_buffer_mirror[kMaxMirroredBuffers]{};
std::atomic<std::size_t> g_buffer_mirror_count{0};

// Leaky singletons: metrics/trace recording may run from static
// destructors of other TUs, so these are never destroyed.
TraceRegistry& registry() {
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

std::atomic<std::size_t> g_capacity{0};  // 0 = uninitialized

std::size_t resolve_capacity() {
  std::size_t cap = g_capacity.load(std::memory_order_relaxed);
  if (cap != 0) return cap;
  cap = kDefaultCapacity;
  if (const char* raw = std::getenv("AIC_TRACE_BUFFER_EVENTS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end != raw && *end == '\0' && v > 0) cap = static_cast<std::size_t>(v);
  }
  g_capacity.store(cap, std::memory_order_relaxed);
  return cap;
}

clock_type::time_point trace_epoch() {
  static const clock_type::time_point epoch = clock_type::now();
  return epoch;
}

ThreadTraceBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> tls = [] {
    TraceRegistry& reg = registry();
    std::lock_guard lock(reg.mutex);
    auto buffer = std::make_shared<ThreadTraceBuffer>(reg.next_tid++,
                                                      resolve_capacity());
    reg.buffers.push_back(buffer);
    const std::size_t slot =
        g_buffer_mirror_count.load(std::memory_order_relaxed);
    if (slot < kMaxMirroredBuffers) {
      g_buffer_mirror[slot].store(buffer.get(), std::memory_order_release);
      g_buffer_mirror_count.store(slot + 1, std::memory_order_release);
    }
    return buffer;
  }();
  return *tls;
}

std::uint64_t buffer_dropped(const ThreadTraceBuffer& buffer) {
  const std::uint64_t h = buffer.head.load(std::memory_order_acquire);
  return h > buffer.ring.size() ? h - buffer.ring.size() : 0;
}

void json_escape(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out << hex;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
}

/// AIC_TRACE bootstrap: truthy values enable recording; any other
/// non-empty value is treated as an output path and additionally
/// registers an at-exit Chrome-trace export, so every binary honours the
/// variable without code changes.
struct EnvBootstrap {
  EnvBootstrap() {
    const char* raw = std::getenv("AIC_TRACE");
    if (raw == nullptr || *raw == '\0' || std::strcmp(raw, "0") == 0) return;
    set_tracing_enabled(true);
    const bool flag_only = std::strcmp(raw, "1") == 0 ||
                           std::strcmp(raw, "true") == 0 ||
                           std::strcmp(raw, "on") == 0;
    if (!flag_only) {
      static std::string path;  // must outlive the atexit callback
      path = raw;
      std::atexit([] { export_chrome_trace_file(path); });
    }
  }
};
EnvBootstrap g_env_bootstrap;

}  // namespace

void set_tracing_enabled(bool enabled) noexcept {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void clear_trace() noexcept {
  TraceRegistry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (auto& buffer : reg.buffers) {
    buffer->head.store(0, std::memory_order_release);
  }
}

void set_trace_buffer_capacity(std::size_t events) noexcept {
  g_capacity.store(std::max(events, kMinCapacity),
                   std::memory_order_relaxed);
}

std::size_t trace_buffer_capacity() noexcept { return resolve_capacity(); }

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock_type::now() -
                                                           trace_epoch())
          .count());
}

std::uint64_t trace_events_dropped() noexcept {
  TraceRegistry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::uint64_t dropped = 0;
  for (const auto& buffer : reg.buffers) dropped += buffer_dropped(*buffer);
  return dropped;
}

std::vector<TraceSpan> collect_trace() {
  std::vector<TraceSpan> out;
  TraceRegistry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (const auto& buffer : reg.buffers) {
    const std::uint64_t h = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t live =
        std::min<std::uint64_t>(h, buffer->ring.size());
    for (std::uint64_t i = h - live; i < h; ++i) {
      out.push_back(buffer->ring[i % buffer->ring.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return out;
}

std::size_t collect_trace_unsynchronized(TraceSpan* out,
                                         std::size_t max_total,
                                         std::size_t per_thread) noexcept {
  if (out == nullptr || max_total == 0) return 0;
  std::size_t written = 0;
  const std::size_t buffers =
      std::min(g_buffer_mirror_count.load(std::memory_order_acquire),
               kMaxMirroredBuffers);
  for (std::size_t b = 0; b < buffers && written < max_total; ++b) {
    const ThreadTraceBuffer* buffer =
        g_buffer_mirror[b].load(std::memory_order_acquire);
    if (buffer == nullptr) continue;
    const std::uint64_t h = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(
        {h, buffer->ring.size(), per_thread});
    for (std::uint64_t i = h - live; i < h && written < max_total; ++i) {
      out[written++] = buffer->ring[i % buffer->ring.size()];
    }
  }
  return written;
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceSpan>& spans) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::uint32_t last_tid = 0;
  for (const TraceSpan& span : spans) {
    if (span.tid != last_tid) {
      last_tid = span.tid;
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << span.tid << ",\"args\":{\"name\":\"aic-thread-" << span.tid
          << "\"}}";
    }
    if (!first) out << ",";
    first = false;
    char ts[32], dur[32];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(span.start_ns) / 1e3);
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(span.dur_ns) / 1e3);
    out << "{\"name\":\"";
    json_escape(out, span.name != nullptr ? span.name : "?");
    out << "\",\"cat\":\"aic\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << ts << ",\"dur\":" << dur
        << ",\"args\":{\"depth\":" << span.depth << "}}";
  }
  out << "]}";
  out.flush();
}

void export_chrome_trace(std::ostream& out) {
  // Freeze recording so the snapshot below cannot race ring overwrites.
  set_tracing_enabled(false);
  write_chrome_trace(out, collect_trace());
}

bool export_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  export_chrome_trace(out);
  return static_cast<bool>(out);
}

void TraceScope::begin(const char* name) noexcept {
  ThreadTraceBuffer& buffer = local_buffer();
  name_ = name;
  depth_ = buffer.depth++;
  start_ns_ = trace_now_ns();
}

void TraceScope::end() noexcept {
  ThreadTraceBuffer& buffer = local_buffer();
  if (buffer.depth > 0) --buffer.depth;
  // A scope that straddled a disable (export in flight) fixes its depth
  // but records nothing — the snapshot stays stable.
  if (!tracing_enabled()) return;
  const std::uint64_t now = trace_now_ns();
  buffer.push(TraceSpan{name_, start_ns_, now - start_ns_, buffer.tid,
                        depth_});
}

}  // namespace aic::obs
