#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aic::obs {

/// One closed span recorded by a thread. `name` is the static string
/// literal handed to AIC_TRACE_SCOPE — it is never copied, so recording
/// allocates nothing.
struct TraceSpan {
  const char* name = nullptr;
  /// Monotonic nanoseconds since the process trace epoch (first use of
  /// the tracing clock).
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Sequential per-thread trace id (1-based, assigned at first record).
  std::uint32_t tid = 0;
  /// Nesting depth of the span within its recording thread (0 = root).
  std::uint32_t depth = 0;
};

namespace detail {
/// Global on/off switch. Read with one relaxed load per AIC_TRACE_SCOPE;
/// extern so the disabled fast path inlines to load+branch.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when spans are being recorded. The disabled check is the only
/// cost a compiled-in AIC_TRACE_SCOPE pays (<2% on every measured path).
inline bool tracing_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Flips recording globally. `AIC_TRACE=1` (or `AIC_TRACE=<out.json>`,
/// which also registers an at-exit Chrome-trace export to that path)
/// enables it at startup.
void set_tracing_enabled(bool enabled) noexcept;

/// Drops every recorded span; registered thread buffers stay alive.
void clear_trace() noexcept;

/// Ring capacity (spans) given to buffers of threads that record their
/// first span *after* this call. Defaults to 65536, or the
/// `AIC_TRACE_BUFFER_EVENTS` environment variable.
void set_trace_buffer_capacity(std::size_t events) noexcept;
std::size_t trace_buffer_capacity() noexcept;

/// Monotonic nanoseconds since the trace epoch (the span timebase).
std::uint64_t trace_now_ns() noexcept;

/// Spans overwritten by ring wraparound (process-wide, cumulative).
std::uint64_t trace_events_dropped() noexcept;

/// Snapshot of every thread's retained spans, sorted by (tid, start,
/// depth). Call with tracing disabled (or quiescent threads) for an
/// exact snapshot; concurrent recording can drop in-flight spans.
std::vector<TraceSpan> collect_trace();

/// Async-signal-cautious span collector for the flight recorder: copies
/// up to `per_thread` most-recent spans from each live thread ring into
/// `out` (capacity `max_total`) without taking locks or allocating.
/// Rings may be written concurrently, so individual spans can tear —
/// callers treat the result as best-effort. Returns the spans written.
std::size_t collect_trace_unsynchronized(TraceSpan* out,
                                         std::size_t max_total,
                                         std::size_t per_thread) noexcept;

/// Serializes `spans` as Chrome trace-event JSON without touching the
/// global tracing state (the live `/tracez` endpoint uses this against a
/// collect_trace() snapshot while recording continues).
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceSpan>& spans);

/// Writes the Chrome trace-event JSON (the `chrome://tracing` / Perfetto
/// format): one "X" complete event per span, ts/dur in microseconds,
/// plus thread_name metadata. Disables tracing first so the snapshot is
/// stable.
void export_chrome_trace(std::ostream& out);

/// export_chrome_trace to a file; false when the file cannot be written.
bool export_chrome_trace_file(const std::string& path);

/// RAII span recorder behind AIC_TRACE_SCOPE. When tracing is disabled
/// the constructor is one relaxed load and a branch and the destructor
/// is a null check.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept {
    if (tracing_enabled()) begin(name);
  }
  ~TraceScope() {
    if (name_ != nullptr) end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace aic::obs

#define AIC_OBS_CONCAT_INNER(a, b) a##b
#define AIC_OBS_CONCAT(a, b) AIC_OBS_CONCAT_INNER(a, b)

/// Records `name` (a string literal) as a span covering the enclosing
/// scope. Compiles to a branch-on-disabled no-op when tracing is off.
#define AIC_TRACE_SCOPE(name) \
  ::aic::obs::TraceScope AIC_OBS_CONCAT(aic_trace_scope_, __LINE__)(name)
