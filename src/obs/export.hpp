#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace aic::obs {

/// Point-in-time copy of the whole metrics registry, timestamped on both
/// the monotonic trace timebase (correlates with spans) and the wall
/// clock (what a scrape / JSONL consumer wants).
struct MetricsSnapshot {
  std::uint64_t mono_ns = 0;  ///< trace_now_ns() at capture.
  std::int64_t wall_ms = 0;   ///< Unix epoch milliseconds at capture.
  /// Monotonically increasing capture index (assigned by SnapshotRing;
  /// 0 for ad-hoc snapshots that never entered a ring).
  std::uint64_t sequence = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Captures every instrument of Registry::global() right now.
MetricsSnapshot snapshot_registry();

/// One JSON object (single line, no trailing newline) with the snapshot's
/// timestamps and the full counter/gauge/histogram state — the JSONL
/// time-series record format of the interval exporter.
void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot);
std::string snapshot_json(const MetricsSnapshot& snapshot);

/// Bounded ring of timestamped snapshots: push overwrites the oldest
/// entry once `capacity` is reached. Thread-safe.
class SnapshotRing {
 public:
  explicit SnapshotRing(std::size_t capacity);

  /// Stamps `snapshot.sequence` (1-based push index) and stores it.
  void push(MetricsSnapshot snapshot);
  /// Retained snapshots, oldest first.
  std::vector<MetricsSnapshot> snapshots() const;
  /// Most recent snapshot; nullopt-like empty snapshot when none pushed.
  MetricsSnapshot latest() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;
  /// Total pushes over the ring's lifetime (>= size once wrapped).
  std::uint64_t total_pushed() const;

 private:
  struct Impl;
  std::size_t capacity_;
  std::shared_ptr<Impl> impl_;
};

/// Background sampler: snapshots the registry every `interval_ms` into a
/// bounded in-memory ring, and (optionally) appends one JSONL record per
/// sample to `jsonl_path`. One process-wide instance behind global();
/// start/stop are idempotent.
class Exporter {
 public:
  struct Options {
    std::uint64_t interval_ms = 1000;
    std::size_t ring_capacity = 128;
    /// Append-only JSONL time series ("" disables the file leg).
    std::string jsonl_path;
  };

  static Exporter& global();

  /// Spawns the sampler thread. Returns false (and changes nothing) when
  /// already running. Takes one sample synchronously before returning so
  /// `latest()` is never empty after a successful start.
  bool start(const Options& options);
  /// Joins the sampler thread; safe to call when not running. The ring
  /// keeps its samples so post-mortem reads still work after stop().
  void stop();
  bool running() const noexcept;
  const Options& options() const noexcept;

  /// Takes one sample immediately (works with or without the thread).
  MetricsSnapshot sample_now();
  /// Most recent sample (empty snapshot when none was ever taken).
  MetricsSnapshot latest() const;
  /// The snapshot ring (valid for the process lifetime).
  const SnapshotRing& ring() const;
  /// Samples taken over the exporter's lifetime (across restarts).
  std::uint64_t samples_taken() const noexcept;

 private:
  Exporter();
  struct Impl;
  Impl* impl_;
};

/// Environment bootstrap for the whole continuous-telemetry stack; safe
/// to call from several entry points (CLI, Trainer) — each leg starts at
/// most once:
///   AIC_METRICS_EXPORT_MS=<ms>  start the interval exporter
///   AIC_METRICS_JSONL=<path>    JSONL leg (implies exporter, 1000 ms
///                               default interval when _MS is unset)
///   AIC_OBS_PORT=<port>         start the HTTP endpoint
///   AIC_FLIGHT=<path>           arm the flight recorder
///   AIC_FLIGHT_ON_CORRUPT=1     also dump a file per typed rejection
/// Returns true when any leg is active afterwards.
bool observability_bootstrap_from_env();

}  // namespace aic::obs
