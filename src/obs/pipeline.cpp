#include "obs/pipeline.hpp"

#include "obs/metrics.hpp"

namespace aic::obs {

namespace {

struct Handles {
  Counter& chunks_encoded = Registry::global().counter("pipeline.chunks_encoded");
  Counter& chunks_decoded = Registry::global().counter("pipeline.chunks_decoded");
  Counter& encode_reallocs = Registry::global().counter("pipeline.encode_reallocs");
  Histogram& encode_ns = Registry::global().histogram("pipeline.chunk_encode.ns");
  Histogram& decode_ns = Registry::global().histogram("pipeline.chunk_decode.ns");
  Gauge& last_chunk_bytes = Registry::global().gauge("pipeline.last_chunk_bytes");
  Gauge& last_chunks = Registry::global().gauge("pipeline.last_chunks");
  Gauge& overlap_efficiency = Registry::global().gauge("pipeline.overlap_efficiency");
};

Handles& handles() {
  static Handles h;
  return h;
}

}  // namespace

void PipelineMetrics::record_chunk_encoded(std::uint64_t nanos) {
  Handles& h = handles();
  h.chunks_encoded.add(1);
  h.encode_ns.record(nanos);
}

void PipelineMetrics::record_encode_reallocs(std::size_t reallocs) {
  if (reallocs > 0) handles().encode_reallocs.add(reallocs);
}

void PipelineMetrics::record_chunk_decoded(std::uint64_t nanos) {
  Handles& h = handles();
  h.chunks_decoded.add(1);
  h.decode_ns.record(nanos);
}

void PipelineMetrics::record_archive_layout(std::size_t chunk_bytes,
                                            std::size_t chunks) {
  Handles& h = handles();
  h.last_chunk_bytes.set(static_cast<double>(chunk_bytes));
  h.last_chunks.set(static_cast<double>(chunks));
}

void PipelineMetrics::record_overlap(std::uint64_t transform_ns,
                                     std::uint64_t encode_ns,
                                     std::uint64_t wall_ns) {
  if (wall_ns == 0) return;
  handles().overlap_efficiency.set(
      static_cast<double>(transform_ns + encode_ns) /
      static_cast<double>(wall_ns));
}

PipelineMetrics& PipelineMetrics::global() {
  static PipelineMetrics metrics;
  return metrics;
}

}  // namespace aic::obs
