#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace aic::obs {

/// Monotonic event counter. One relaxed fetch_add per add — always-on.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (queue depth, drift ratio, ...).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a Histogram with the percentile math.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Rank-interpolated percentile estimate, p in [0, 1]. Exact to within
  /// one log2 bucket; the exact extrema are `min`/`max`.
  double percentile(double p) const;
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }
};

/// Log2-bucketed latency/value histogram: bucket 0 holds [0, 2), bucket
/// i ≥ 1 holds [2^i, 2^(i+1)). Recording is three relaxed atomic adds
/// plus two CAS extrema updates — cheap enough to stay always-on.
///
/// Coherence guarantee: reset() and snapshot() are serialized through a
/// generation seqlock, so a snapshot never mixes pre-reset totals with
/// post-reset buckets (each snapshot observes one reset epoch; it
/// retries while a reset is in flight). record() stays lock-free and is
/// NOT serialized against either: a snapshot concurrent with recording
/// can see an individual record half-applied (bucket bumped before
/// count/sum — record order is bucket, count, sum), and records that
/// overlap a reset may be partially erased. Within one reset epoch the
/// invariant `sum(buckets) >= count` always holds for snapshots taken
/// by this method.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive lower bound of a bucket (0 for bucket 0, else 2^i).
  static std::uint64_t bucket_lower(std::size_t index) noexcept;
  /// Exclusive upper bound as a double (2^(i+1); exceeds uint64 at 63).
  static double bucket_upper(std::size_t index) noexcept;

  void record(std::uint64_t value) noexcept;
  HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
  /// Seqlock epoch: odd while a reset is rewriting the fields.
  std::atomic<std::uint64_t> generation_{0};
};

/// Process-wide named-instrument registry. Lookup takes a mutex (cache
/// the returned reference on hot paths — instruments are never deleted,
/// so references stay valid for the process lifetime); updates through
/// the instruments are lock-free.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,mean,p50,p90,p99}}}
  void write_json(std::ostream& out) const;
  std::string json() const;

  /// Zeroes every registered instrument (registration survives).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

namespace detail {
/// Writes `s` as a JSON string literal (quotes included), escaping
/// quotes, backslashes, and control characters. Shared by the registry,
/// the snapshot exporter, and the flight recorder.
void write_json_string(std::ostream& out, const std::string& s);
/// Writes a finite double with %.6g, or `null` for NaN/inf.
void write_json_number(std::ostream& out, double value);
}  // namespace detail

}  // namespace aic::obs
