#pragma once

#include <iosfwd>
#include <string>

#include "obs/export.hpp"

namespace aic::obs {

/// Maps a registry instrument name onto the OpenMetrics name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots and other illegal characters become
/// underscores, and a leading digit gains an underscore prefix
/// ("plan_cache.hit" -> "plan_cache_hit").
std::string openmetrics_name(const std::string& name);

/// OpenMetrics 1.0 text exposition of one snapshot
/// (application/openmetrics-text). Families are emitted sorted by name:
///   counters    -> `# TYPE x counter` + `x_total <v>`
///   gauges      -> `# TYPE x gauge` + `x <v>`
///   histograms  -> `# TYPE x histogram` + cumulative
///                  `x_bucket{le="<2^(i+1)>"}` rows derived from the
///                  log2 buckets, a closing `le="+Inf"` row equal to
///                  `x_count`, plus `x_sum` and `x_count`
/// and the exposition ends with the mandatory `# EOF`.
void write_openmetrics(std::ostream& out, const MetricsSnapshot& snapshot);
std::string openmetrics_text(const MetricsSnapshot& snapshot);

}  // namespace aic::obs
