#include "obs/export.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/trace.hpp"

namespace aic::obs {

MetricsSnapshot snapshot_registry() {
  MetricsSnapshot snapshot;
  snapshot.mono_ns = trace_now_ns();
  snapshot.wall_ms = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const Registry& registry = Registry::global();
  snapshot.counters = registry.counters();
  snapshot.gauges = registry.gauges();
  snapshot.histograms = registry.histograms();
  return snapshot;
}

void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\"t_ms\":" << snapshot.wall_ms
      << ",\"mono_ns\":" << snapshot.mono_ns
      << ",\"sequence\":" << snapshot.sequence << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ",";
    first = false;
    detail::write_json_string(out, name);
    out << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ",";
    first = false;
    detail::write_json_string(out, name);
    out << ":";
    detail::write_json_number(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : snapshot.histograms) {
    if (!first) out << ",";
    first = false;
    detail::write_json_string(out, name);
    out << ":{\"count\":" << snap.count << ",\"sum\":" << snap.sum
        << ",\"min\":" << snap.min << ",\"max\":" << snap.max << ",\"p50\":";
    detail::write_json_number(out, snap.p50());
    out << ",\"p90\":";
    detail::write_json_number(out, snap.p90());
    out << ",\"p99\":";
    detail::write_json_number(out, snap.p99());
    out << "}";
  }
  out << "}}";
}

std::string snapshot_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_snapshot_json(out, snapshot);
  return out.str();
}

// ---------------------------------------------------------------------------
// SnapshotRing

struct SnapshotRing::Impl {
  mutable std::mutex mutex;
  std::vector<MetricsSnapshot> ring;
  std::uint64_t pushed = 0;
};

SnapshotRing::SnapshotRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      impl_(std::make_shared<Impl>()) {}

void SnapshotRing::push(MetricsSnapshot snapshot) {
  std::lock_guard lock(impl_->mutex);
  snapshot.sequence = ++impl_->pushed;
  if (impl_->ring.size() < capacity_) {
    impl_->ring.push_back(std::move(snapshot));
  } else {
    impl_->ring[(impl_->pushed - 1) % capacity_] = std::move(snapshot);
  }
}

std::vector<MetricsSnapshot> SnapshotRing::snapshots() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<MetricsSnapshot> out;
  out.reserve(impl_->ring.size());
  // The ring fills in push order until wrap; afterwards the oldest entry
  // sits right after the newest write position.
  const std::size_t size = impl_->ring.size();
  const std::size_t start =
      size < capacity_ ? 0 : static_cast<std::size_t>(impl_->pushed % capacity_);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(impl_->ring[(start + i) % size]);
  }
  return out;
}

MetricsSnapshot SnapshotRing::latest() const {
  std::lock_guard lock(impl_->mutex);
  if (impl_->ring.empty()) return MetricsSnapshot{};
  return impl_->ring[(impl_->pushed - 1) % capacity_];
}

std::size_t SnapshotRing::size() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->ring.size();
}

std::uint64_t SnapshotRing::total_pushed() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->pushed;
}

// ---------------------------------------------------------------------------
// Exporter

struct Exporter::Impl {
  mutable std::mutex mutex;            // guards start/stop transitions
  std::condition_variable wake;        // wakes the sampler for stop()
  std::mutex wake_mutex;
  std::thread sampler;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<std::uint64_t> samples{0};
  Options options;
  SnapshotRing ring{128};

  Counter* sample_counter = nullptr;
  Histogram* sample_ns = nullptr;

  MetricsSnapshot take_sample() {
    const std::uint64_t begin = trace_now_ns();
    MetricsSnapshot snapshot = snapshot_registry();
    ring.push(snapshot);
    samples.fetch_add(1, std::memory_order_relaxed);
    if (sample_counter != nullptr) sample_counter->add();
    if (!options.jsonl_path.empty()) {
      std::ofstream out(options.jsonl_path, std::ios::app);
      if (out) {
        write_snapshot_json(out, snapshot);
        out << "\n";
      }
    }
    // Keep the flight recorder's pre-rendered metrics buffer fresh so a
    // fatal signal dumps telemetry at most one interval old.
    flight::note_metrics(snapshot);
    if (sample_ns != nullptr) sample_ns->record(trace_now_ns() - begin);
    return snapshot;
  }
};

Exporter::Exporter() : impl_(new Impl()) {
  impl_->sample_counter = &Registry::global().counter("obs.export.samples");
  impl_->sample_ns = &Registry::global().histogram("obs.export.sample_ns");
}

Exporter& Exporter::global() {
  // Leaky singleton, same lifetime policy as Registry.
  static Exporter* exporter = new Exporter();
  return *exporter;
}

bool Exporter::start(const Options& options) {
  std::lock_guard lock(impl_->mutex);
  if (impl_->running.load(std::memory_order_acquire)) return false;
  impl_->options = options;
  if (impl_->options.interval_ms == 0) impl_->options.interval_ms = 1000;
  if (impl_->ring.capacity() != options.ring_capacity &&
      options.ring_capacity > 0) {
    impl_->ring = SnapshotRing(options.ring_capacity);
  }
  impl_->stop_requested.store(false, std::memory_order_release);
  impl_->take_sample();
  impl_->running.store(true, std::memory_order_release);
  Impl* impl = impl_;
  impl_->sampler = std::thread([impl] {
    while (!impl->stop_requested.load(std::memory_order_acquire)) {
      std::unique_lock lock(impl->wake_mutex);
      impl->wake.wait_for(
          lock, std::chrono::milliseconds(impl->options.interval_ms), [impl] {
            return impl->stop_requested.load(std::memory_order_acquire);
          });
      if (impl->stop_requested.load(std::memory_order_acquire)) break;
      impl->take_sample();
    }
  });
  return true;
}

void Exporter::stop() {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->running.load(std::memory_order_acquire)) return;
  {
    std::lock_guard wake_lock(impl_->wake_mutex);
    impl_->stop_requested.store(true, std::memory_order_release);
  }
  impl_->wake.notify_all();
  if (impl_->sampler.joinable()) impl_->sampler.join();
  impl_->running.store(false, std::memory_order_release);
}

bool Exporter::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

const Exporter::Options& Exporter::options() const noexcept {
  return impl_->options;
}

MetricsSnapshot Exporter::sample_now() { return impl_->take_sample(); }

MetricsSnapshot Exporter::latest() const {
  if (impl_->ring.total_pushed() == 0) return snapshot_registry();
  return impl_->ring.latest();
}

const SnapshotRing& Exporter::ring() const { return impl_->ring; }

std::uint64_t Exporter::samples_taken() const noexcept {
  return impl_->samples.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Environment bootstrap

namespace {

bool env_truthy(const char* value) {
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

bool observability_bootstrap_from_env() {
  bool active = false;

  const char* jsonl = std::getenv("AIC_METRICS_JSONL");
  const std::uint64_t interval = env_u64("AIC_METRICS_EXPORT_MS", 0);
  if (interval > 0 || (jsonl != nullptr && *jsonl != '\0')) {
    Exporter::Options options;
    options.interval_ms = interval > 0 ? interval : 1000;
    if (jsonl != nullptr) options.jsonl_path = jsonl;
    Exporter::global().start(options);  // false when already running: fine
    active = true;
  }

  const std::uint64_t port = env_u64("AIC_OBS_PORT", 0);
  if (std::getenv("AIC_OBS_PORT") != nullptr) {
    HttpServer::Options options;
    options.port = static_cast<std::uint16_t>(port);
    HttpServer::global().start(options);
    active = true;
  }

  const char* flight_path = std::getenv("AIC_FLIGHT");
  if (env_truthy(flight_path)) {
    flight::Options options;
    // AIC_FLIGHT=1 arms with the default path; anything else is a path.
    if (std::strcmp(flight_path, "1") != 0) options.path = flight_path;
    options.dump_on_corrupt = env_truthy(std::getenv("AIC_FLIGHT_ON_CORRUPT"));
    flight::arm(options);
    active = true;
  }

  return active;
}

}  // namespace aic::obs
