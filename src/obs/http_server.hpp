#pragma once

#include <cstdint>
#include <string>

namespace aic::obs {

/// Minimal portable blocking-socket HTTP/1.0 endpoint on its own thread,
/// serving the continuous-telemetry surface:
///   GET /metrics  OpenMetrics text exposition of a fresh registry
///                 snapshot (Content-Type application/openmetrics-text)
///   GET /healthz  200 "ok" liveness probe
///   GET /tracez   last-N retained spans as Chrome trace-event JSON
///                 (open in Perfetto), without disturbing recording
///
/// One connection is handled at a time (a Prometheus scrape every few
/// seconds is the design load); the accept loop polls with a short
/// timeout so stop() never blocks on a quiet socket. Scrapes bump
/// `obs.http.requests` / `obs.http.scrapes`.
class HttpServer {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    std::uint16_t port = 0;
    /// Spans served by /tracez (most recent first in collection order).
    std::size_t tracez_spans = 4096;
  };

  static HttpServer& global();

  /// Binds and spawns the server thread. Returns false when already
  /// running or when the socket cannot be bound (logged to stderr).
  bool start(const Options& options);
  /// Stops the thread and closes the socket; idempotent.
  void stop();
  bool running() const noexcept;
  /// The bound port (resolves port 0); 0 when not running.
  std::uint16_t port() const noexcept;

  /// Request router, exposed for direct testing without a socket:
  /// fills `body`/`content_type` and returns the HTTP status code.
  static int route(const std::string& path, std::string& body,
                   std::string& content_type, std::size_t tracez_spans);

 private:
  HttpServer();
  struct Impl;
  Impl* impl_;
};

}  // namespace aic::obs
