#pragma once

#include <cstddef>
#include <cstdint>

namespace aic::obs {

/// Central handles for the parallel-archive-pipeline metrics, so every
/// layer (chunk entropy coders, archive v4 serialize/deserialize, the
/// fused transform/encode pipeline) records into the same registry names:
///
///   pipeline.chunks_encoded / pipeline.chunks_decoded   counters
///   pipeline.encode_reallocs                            counter
///   pipeline.chunk_encode.ns / pipeline.chunk_decode.ns histograms
///   pipeline.last_chunk_bytes / pipeline.last_chunks    gauges
///   pipeline.overlap_efficiency                         gauge
///
/// overlap_efficiency is (transform_ns + encode_ns) / wall_ns of the last
/// fused compress: 1.0 means fully serial, values approaching 2.0 mean
/// the producer (GEMM sandwich transform) and consumer (chunk entropy
/// encode) stages ran concurrently.
struct PipelineMetrics {
  void record_chunk_encoded(std::uint64_t nanos);
  void record_chunk_decoded(std::uint64_t nanos);
  /// Mid-encode byte-buffer growths (the exact-accounting reserve path
  /// keeps this at zero in steady state; tests assert on the counter).
  void record_encode_reallocs(std::size_t reallocs);
  void record_archive_layout(std::size_t chunk_bytes, std::size_t chunks);
  void record_overlap(std::uint64_t transform_ns, std::uint64_t encode_ns,
                      std::uint64_t wall_ns);

  static PipelineMetrics& global();
};

}  // namespace aic::obs
