#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace aic::obs {

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < 2) return 0;
  const std::size_t index = static_cast<std::size_t>(std::bit_width(value)) - 1;
  return std::min(index, kBuckets - 1);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  return index == 0 ? 0 : (std::uint64_t{1} << index);
}

double Histogram::bucket_upper(std::size_t index) noexcept {
  return std::ldexp(1.0, static_cast<int>(index) + 1);
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  // Seqlock read: retry while a reset is in flight (odd generation) or
  // completed between our two fences, so the copy never mixes pre-reset
  // totals with post-reset buckets. Bounded so a pathological reset loop
  // cannot livelock the reader; after the bound the last read wins.
  HistogramSnapshot out;
  for (int attempt = 0; attempt < 1024; ++attempt) {
    const std::uint64_t before = generation_.load(std::memory_order_acquire);
    if (before & 1) continue;  // reset rewriting the fields right now
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
    const std::uint64_t min = min_.load(std::memory_order_relaxed);
    out.min = out.count > 0 ? min : 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (generation_.load(std::memory_order_relaxed) == before) break;
  }
  return out;
}

void Histogram::reset() noexcept {
  // Seqlock write: generation goes odd, the fields are zeroed, then it
  // goes even again — snapshot() retries across the whole window.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 1.0) * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next >= target) {
      const double lower = static_cast<double>(Histogram::bucket_lower(i));
      const double upper = Histogram::bucket_upper(i);
      const double frac =
          (target - cumulative) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * frac;
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl& Registry::impl() const {
  // Leaky singleton: instruments may be updated from static destructors
  // of other translation units, so the registry is never destroyed.
  static Impl* impl = new Impl();
  return *impl;
}

Registry& Registry::global() {
  static Registry* registry = new Registry();
  return *registry;
}

namespace {
template <typename Map>
auto& find_or_create(Map& map, const std::string& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<typename Map::mapped_type::
                                               element_type>())
             .first;
  }
  return *it->second;
}
}  // namespace

Counter& Registry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  return find_or_create(i.counters, name);
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  return find_or_create(i.gauges, name);
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  return find_or_create(i.histograms, name);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters()
    const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(i.gauges.size());
  for (const auto& [name, gauge] : i.gauges) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(i.histograms.size());
  for (const auto& [name, histogram] : i.histograms) {
    out.emplace_back(name, histogram->snapshot());
  }
  return out;
}

namespace detail {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out << hex;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

void write_json_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out << buffer;
}

}  // namespace detail

namespace {
using detail::write_json_number;
using detail::write_json_string;
}  // namespace

void Registry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters()) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges()) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":";
    write_json_number(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : histograms()) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":{\"count\":" << snap.count << ",\"sum\":" << snap.sum
        << ",\"min\":" << snap.min << ",\"max\":" << snap.max << ",\"mean\":";
    write_json_number(out, snap.mean());
    out << ",\"p50\":";
    write_json_number(out, snap.p50());
    out << ",\"p90\":";
    write_json_number(out, snap.p90());
    out << ",\"p99\":";
    write_json_number(out, snap.p99());
    out << "}";
  }
  out << "}}";
}

std::string Registry::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard lock(i.mutex);
  for (auto& [name, counter] : i.counters) counter->reset();
  for (auto& [name, gauge] : i.gauges) gauge->reset();
  for (auto& [name, histogram] : i.histograms) histogram->reset();
}

}  // namespace aic::obs
