#include "obs/http_server.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/trace.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace aic::obs {

// ---------------------------------------------------------------------------
// Routing (transport-independent, unit-testable)

int HttpServer::route(const std::string& path, std::string& body,
                      std::string& content_type, std::size_t tracez_spans) {
  Registry::global().counter("obs.http.requests").add();
  if (path == "/metrics" || path.rfind("/metrics?", 0) == 0) {
    Registry::global().counter("obs.http.scrapes").add();
    // A scrape always reflects the registry *now* (and lands in the
    // snapshot ring so /metrics and the interval exporter share one
    // timeline).
    const MetricsSnapshot snapshot = Exporter::global().sample_now();
    body = openmetrics_text(snapshot);
    content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8";
    return 200;
  }
  if (path == "/healthz" || path.rfind("/healthz?", 0) == 0) {
    body = "ok\n";
    content_type = "text/plain; charset=utf-8";
    return 200;
  }
  if (path == "/tracez" || path.rfind("/tracez?", 0) == 0) {
    std::vector<TraceSpan> spans = collect_trace();
    if (spans.size() > tracez_spans) {
      // Keep the most recent spans; collect_trace sorts by (tid, start)
      // so drop from the front per global start order instead.
      std::sort(spans.begin(), spans.end(),
                [](const TraceSpan& a, const TraceSpan& b) {
                  return a.start_ns < b.start_ns;
                });
      spans.erase(spans.begin(),
                  spans.end() - static_cast<std::ptrdiff_t>(tracez_spans));
      std::sort(spans.begin(), spans.end(),
                [](const TraceSpan& a, const TraceSpan& b) {
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return a.start_ns < b.start_ns;
                });
    }
    std::ostringstream out;
    write_chrome_trace(out, spans);
    body = out.str();
    content_type = "application/json; charset=utf-8";
    return 200;
  }
  body = "not found\n";
  content_type = "text/plain; charset=utf-8";
  return 404;
}

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

std::string build_response(int status, const std::string& content_type,
                           const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << status << " " << status_text(status) << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

#if defined(_WIN32)

// Windows lacks the POSIX socket surface this endpoint uses; the server
// degrades to a stub so the rest of the obs stack keeps building.
struct HttpServer::Impl {};
HttpServer::HttpServer() : impl_(new Impl()) {}
HttpServer& HttpServer::global() {
  static HttpServer* server = new HttpServer();
  return *server;
}
bool HttpServer::start(const Options&) {
  std::fprintf(stderr, "aic-obs: HTTP endpoint unavailable on this platform\n");
  return false;
}
void HttpServer::stop() {}
bool HttpServer::running() const noexcept { return false; }
std::uint16_t HttpServer::port() const noexcept { return 0; }

#else

struct HttpServer::Impl {
  std::mutex mutex;  // start/stop transitions
  std::thread server;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<std::uint16_t> port{0};
  int listen_fd = -1;
  Options options;

  void serve_connection(int fd) {
    // Read until the end of the request headers (or 8 KiB, whichever
    // comes first); only the request line matters to the router.
    std::string request;
    char buffer[2048];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      request.append(buffer, static_cast<std::size_t>(n));
    }
    std::string body, content_type;
    int status;
    const std::size_t line_end = request.find("\r\n");
    std::istringstream line(request.substr(0, line_end));
    std::string method, path;
    line >> method >> path;
    if (method.empty() || path.empty()) {
      status = 400;
      body = "bad request\n";
      content_type = "text/plain; charset=utf-8";
    } else if (method != "GET" && method != "HEAD") {
      status = 405;
      body = "method not allowed\n";
      content_type = "text/plain; charset=utf-8";
    } else {
      status = route(path, body, content_type, options.tracez_spans);
    }
    if (method == "HEAD") body.clear();
    const std::string response = build_response(status, content_type, body);
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  }

  void loop() {
    while (!stop_requested.load(std::memory_order_acquire)) {
      struct pollfd pfd {};
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      struct timeval timeout {};
      timeout.tv_sec = 2;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
      serve_connection(fd);
      ::close(fd);
    }
  }
};

HttpServer::HttpServer() : impl_(new Impl()) {}

HttpServer& HttpServer::global() {
  // Leaky singleton, same lifetime policy as Registry.
  static HttpServer* server = new HttpServer();
  return *server;
}

bool HttpServer::start(const Options& options) {
  std::lock_guard lock(impl_->mutex);
  if (impl_->running.load(std::memory_order_acquire)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("aic-obs: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in address {};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_ANY);
  address.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&address),
             sizeof(address)) < 0 ||
      ::listen(fd, 16) < 0) {
    std::perror("aic-obs: bind/listen");
    ::close(fd);
    return false;
  }
  socklen_t address_len = sizeof(address);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&address),
                &address_len);
  impl_->listen_fd = fd;
  impl_->options = options;
  impl_->port.store(ntohs(address.sin_port), std::memory_order_release);
  impl_->stop_requested.store(false, std::memory_order_release);
  impl_->running.store(true, std::memory_order_release);
  Impl* impl = impl_;
  impl_->server = std::thread([impl] { impl->loop(); });
  return true;
}

void HttpServer::stop() {
  std::lock_guard lock(impl_->mutex);
  if (!impl_->running.load(std::memory_order_acquire)) return;
  impl_->stop_requested.store(true, std::memory_order_release);
  if (impl_->server.joinable()) impl_->server.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->port.store(0, std::memory_order_release);
  impl_->running.store(false, std::memory_order_release);
}

bool HttpServer::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t HttpServer::port() const noexcept {
  return impl_->port.load(std::memory_order_acquire);
}

#endif  // !_WIN32

}  // namespace aic::obs
