#include "obs/openmetrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace aic::obs {

namespace {

bool legal_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

void write_double(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
    return;
  }
  if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
    return;
  }
  // Integral values print without an exponent or trailing zeros so the
  // common case (counts, byte totals) stays exact and grep-friendly.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    out << buffer;
    return;
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  out << buffer;
}

/// `le` label value of a log2 bucket's exclusive upper bound. Exact
/// integers below 2^53; the top buckets fall back to %.17g (still a
/// strictly increasing sequence, which is all the grammar needs).
void write_le(std::ostream& out, std::size_t bucket) {
  const double upper = Histogram::bucket_upper(bucket);
  if (upper < 9007199254740992.0) {  // 2^53: exact in double
    out << static_cast<std::uint64_t>(upper);
  } else {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.17g", upper);
    out << buffer;
  }
}

template <typename T>
std::vector<std::pair<std::string, T>> sorted(
    std::vector<std::pair<std::string, T>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    out.push_back(legal_name_char(c, /*first=*/false) ? c : '_');
  }
  if (out.empty() || !legal_name_char(out.front(), /*first=*/true)) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_openmetrics(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : sorted(snapshot.counters)) {
    const std::string metric = openmetrics_name(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << "_total " << value << "\n";
  }
  for (const auto& [name, value] : sorted(snapshot.gauges)) {
    const std::string metric = openmetrics_name(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << " ";
    write_double(out, value);
    out << "\n";
  }
  for (const auto& [name, snap] : sorted(snapshot.histograms)) {
    const std::string metric = openmetrics_name(name);
    out << "# TYPE " << metric << " histogram\n";
    // The registry's log2 buckets hold per-bucket counts; exposition
    // buckets are cumulative. Emit up to the highest occupied bucket,
    // then the mandatory le="+Inf" row which must equal _count.
    std::size_t top = 0;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] != 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top; ++i) {
      cumulative += snap.buckets[i];
      out << metric << "_bucket{le=\"";
      write_le(out, i);
      out << "\"} " << cumulative << "\n";
    }
    // A record() racing the snapshot bumps its bucket before count, so
    // the bucket total can momentarily exceed count; the +Inf row (and
    // _count, which must equal it) takes the max to stay cumulative.
    const std::uint64_t total = std::max(cumulative, snap.count);
    out << metric << "_bucket{le=\"+Inf\"} " << total << "\n";
    out << metric << "_count " << total << "\n";
    out << metric << "_sum " << snap.sum << "\n";
  }
  out << "# EOF\n";
}

std::string openmetrics_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_openmetrics(out, snapshot);
  return out.str();
}

}  // namespace aic::obs
