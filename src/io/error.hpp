#pragma once

#include <stdexcept>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace aic::io {

/// Why a decode path rejected its input. Every category maps 1:1 onto an
/// `io.decode_error.<name>` counter in obs::Registry, so corrupt-input
/// rates are observable per failure mode (`aicomp --metrics`).
enum class CorruptKind {
  kTruncated,         // stream ends before a field / payload completes
  kBadMagic,          // leading magic bytes are not ours
  kBadVersion,        // container version outside the supported range
  kChecksumMismatch,  // stored CRC32C disagrees with the bytes
  kBadHeaderField,    // a header field fails validation (kind, dims, ...)
  kOverflow,          // size arithmetic would overflow (dims product, ...)
  kPayloadMismatch,   // payload disagrees with what the header promises
  kBadCodeTable,      // entropy-code table is invalid (lengths, Kraft)
  kBadSymbol,         // bitstream decodes to an impossible symbol/run
};

inline const char* corrupt_kind_name(CorruptKind kind) noexcept {
  switch (kind) {
    case CorruptKind::kTruncated: return "truncated";
    case CorruptKind::kBadMagic: return "bad_magic";
    case CorruptKind::kBadVersion: return "bad_version";
    case CorruptKind::kChecksumMismatch: return "checksum_mismatch";
    case CorruptKind::kBadHeaderField: return "bad_header_field";
    case CorruptKind::kOverflow: return "overflow";
    case CorruptKind::kPayloadMismatch: return "payload_mismatch";
    case CorruptKind::kBadCodeTable: return "bad_code_table";
    case CorruptKind::kBadSymbol: return "bad_symbol";
  }
  return "unknown";
}

/// Typed rejection of untrusted decode input (archives, bitstreams,
/// entropy-code tables). Every decode path in the repository promises to
/// either succeed bitwise-exactly or throw this — never crash, hang, or
/// return silently wrong tensors. Derives std::runtime_error so legacy
/// call sites catching that keep working.
///
/// This header is a dependency-free leaf (obs + <stdexcept> only) so the
/// lower layers (baseline, core) can throw the io taxonomy without
/// linking against aic_io.
class CorruptStream : public std::runtime_error {
 public:
  CorruptStream(CorruptKind kind, const std::string& message)
      : std::runtime_error(std::string("corrupt stream [") +
                           corrupt_kind_name(kind) + "]: " + message),
        kind_(kind) {}

  CorruptKind kind() const noexcept { return kind_; }

 private:
  CorruptKind kind_;
};

/// Throws CorruptStream after bumping the `io.decode_error` counters and
/// handing the rejection to the flight recorder (one record per typed
/// rejection while armed — the robustness suite asserts the 1:1 pairing).
/// All internal throw sites funnel through here (not the constructor) so
/// exception copies never double count.
[[noreturn]] inline void raise_corrupt(CorruptKind kind,
                                       const std::string& message) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("io.decode_error").add();
  registry.counter(std::string("io.decode_error.") + corrupt_kind_name(kind))
      .add();
  obs::flight::record_corrupt(corrupt_kind_name(kind), message.c_str());
  throw CorruptStream(kind, message);
}

}  // namespace aic::io
