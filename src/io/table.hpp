#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace aic::io {

/// Fixed-width console table used by the bench harness to print
/// paper-style rows (tables and figure series).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 4);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aic::io
