#include "io/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aic::io {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(cells);
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << escape(cells[c]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  return out.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  file << to_string();
}

}  // namespace aic::io
