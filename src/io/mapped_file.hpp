#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace aic::io {

/// Read-only view of a whole file, memory-mapped when the platform
/// allows it so archive decode consumes the on-disk bytes with zero
/// copies. Falls back to a heap read (identical `view()` semantics) when
/// mmap is unavailable (AIC_NO_MMAP=1, an empty file, a non-regular
/// file such as a pipe, or a Windows build — the _WIN32 stub always
/// reads).
///
/// The length reported by `view()` is captured once at open (fstat), and
/// every consumer bounds-checks against it (io::ByteReader), so a header
/// that claims more bytes than the file holds is rejected as
/// CorruptKind::kTruncated *before* any byte past the mapping is
/// dereferenced — the classic mid-file SIGBUS is a validation error
/// here, not a crash. (A file truncated by another process *after* the
/// map is taken remains outside the trust model, exactly as it is for a
/// heap read racing the same truncation.)
class MappedFile {
 public:
  MappedFile() = default;
  /// Opens and maps (or reads) `path`. Throws std::runtime_error when
  /// the file cannot be opened or read.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      unmap();
      swap(other);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file's bytes; valid until this object is destroyed or moved
  /// from. Empty for a default-constructed (or empty-file) instance.
  std::string_view view() const noexcept {
    return mapped_ ? std::string_view(static_cast<const char*>(addr_), size_)
                   : std::string_view(fallback_);
  }
  std::size_t size() const noexcept { return view().size(); }

  /// True when the bytes come from an actual mmap (false: heap
  /// fallback). Exposed so tests can force and verify both paths.
  bool mapped() const noexcept { return mapped_; }

 private:
  void unmap() noexcept;
  void swap(MappedFile& other) noexcept {
    std::swap(addr_, other.addr_);
    std::swap(size_, other.size_);
    std::swap(mapped_, other.mapped_);
    fallback_.swap(other.fallback_);
  }

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;
};

}  // namespace aic::io
