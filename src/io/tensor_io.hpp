#pragma once

#include <string>
#include <string_view>

#include "tensor/tensor.hpp"

namespace aic::io {

/// Binary tensor serialization (little-endian, versioned header):
///
///   magic "AICT" | u32 version | u32 rank | u64 dims[rank] | f32 data[]
///
/// Used to persist compressed datasets and precomputed LHS/RHS operators
/// between runs; round-trips bit-exactly.
void save_tensor(const tensor::Tensor& tensor, const std::string& path);

/// Loads a tensor written by save_tensor. Throws std::runtime_error on
/// malformed files.
tensor::Tensor load_tensor(const std::string& path);

/// In-memory variants (the file functions are thin wrappers). The
/// string_view overload is the primary implementation: it parses
/// non-owning bytes (e.g. a mapped file or a pooled staging buffer)
/// without the historical copy into an owned string.
std::string serialize_tensor(const tensor::Tensor& tensor);
tensor::Tensor deserialize_tensor(std::string_view bytes);

/// Parsed + validated serialize_tensor header (everything before the f32
/// data).
struct TensorHeaderInfo {
  tensor::Shape shape;
  std::size_t header_bytes = 0;   // 12 + 8 * rank
  std::size_t payload_bytes = 0;  // numel * sizeof(float)
};

/// Largest possible serialize_tensor header (rank == Shape::kMaxRank) —
/// the prefix a streaming reader must stage before this header can be
/// parsed.
std::size_t max_tensor_header_bytes();

/// Validates the tensor header at the front of `prefix` with exactly the
/// typed CorruptStream rejections deserialize_tensor raises (bad magic /
/// version / rank / dims / overflow), then checks the dims' payload
/// accounts for precisely `total_bytes - header_bytes` — so callers that
/// stream the f32 data separately (the chunked archive's
/// decode-into-tensor path) share one validation order with the
/// all-in-memory reader. `prefix` needs to hold only
/// min(total_bytes, max_tensor_header_bytes()) bytes.
TensorHeaderInfo parse_tensor_header(std::string_view prefix,
                                     std::size_t total_bytes);

/// The header bytes serialize_tensor would emit for `shape` (everything
/// before the f32 data). The chunked-archive pipeline writes this once
/// and streams plane data in behind it instead of materializing the
/// whole serialized string up front.
std::string serialize_tensor_header(const tensor::Shape& shape);

/// Exact size of serialize_tensor's output for `shape`, overflow-checked
/// (raises CorruptStream(kOverflow)). Lets archive readers validate an
/// untrusted payload length before allocating anything.
std::size_t serialized_tensor_bytes(const tensor::Shape& shape);

}  // namespace aic::io
