#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace aic::io {

/// Binary tensor serialization (little-endian, versioned header):
///
///   magic "AICT" | u32 version | u32 rank | u64 dims[rank] | f32 data[]
///
/// Used to persist compressed datasets and precomputed LHS/RHS operators
/// between runs; round-trips bit-exactly.
void save_tensor(const tensor::Tensor& tensor, const std::string& path);

/// Loads a tensor written by save_tensor. Throws std::runtime_error on
/// malformed files.
tensor::Tensor load_tensor(const std::string& path);

/// In-memory variants (the file functions are thin wrappers).
std::string serialize_tensor(const tensor::Tensor& tensor);
tensor::Tensor deserialize_tensor(const std::string& bytes);

/// The header bytes serialize_tensor would emit for `shape` (everything
/// before the f32 data). The chunked-archive pipeline writes this once
/// and streams plane data in behind it instead of materializing the
/// whole serialized string up front.
std::string serialize_tensor_header(const tensor::Shape& shape);

/// Exact size of serialize_tensor's output for `shape`, overflow-checked
/// (raises CorruptStream(kOverflow)). Lets archive readers validate an
/// untrusted payload length before allocating anything.
std::size_t serialized_tensor_bytes(const tensor::Shape& shape);

}  // namespace aic::io
