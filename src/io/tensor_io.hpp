#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace aic::io {

/// Binary tensor serialization (little-endian, versioned header):
///
///   magic "AICT" | u32 version | u32 rank | u64 dims[rank] | f32 data[]
///
/// Used to persist compressed datasets and precomputed LHS/RHS operators
/// between runs; round-trips bit-exactly.
void save_tensor(const tensor::Tensor& tensor, const std::string& path);

/// Loads a tensor written by save_tensor. Throws std::runtime_error on
/// malformed files.
tensor::Tensor load_tensor(const std::string& path);

/// In-memory variants (the file functions are thin wrappers).
std::string serialize_tensor(const tensor::Tensor& tensor);
tensor::Tensor deserialize_tensor(const std::string& bytes);

}  // namespace aic::io
