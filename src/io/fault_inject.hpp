#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace aic::io {

/// Shape of the deterministic mutation matrix run_fault_matrix applies
/// to one valid byte stream. All mutation families are reproducible
/// (bit positions and seeds are fixed), so a failure names an exact
/// mutant that can be replayed.
struct FaultMatrixOptions {
  /// Flip every bit of the first `header_bytes` bytes, one mutant per
  /// bit. 0 disables the sweep.
  std::size_t header_bytes = 0;
  /// Truncate the stream at every byte boundary in [0, size) stepping by
  /// `truncate_stride`. 0 disables truncation mutants.
  std::size_t truncate_stride = 1;
  /// Seeded single-bit flips spread over the whole stream (payload
  /// included), `random_flips` mutants drawn from xoshiro(seed).
  std::size_t random_flips = 64;
  std::uint64_t seed = 1;
  /// When true a successful decode that differs from the baseline is
  /// tolerated (pre-checksum v2 containers cannot detect payload flips);
  /// when false it is reported as silent corruption.
  bool allow_divergence = false;
  /// Caller-supplied mutants appended verbatim to the matrix (header
  /// field sweeps with recomputed CRCs, version sweeps, ...). Paired
  /// with a label for failure messages.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Outcome tally of one matrix run. The hardening contract is
/// `failures.empty()`: every mutant either decoded bitwise-exactly or
/// raised aic::io::CorruptStream.
struct FaultReport {
  std::size_t mutants = 0;
  std::size_t exact = 0;      // decoded and matched the baseline bytes
  std::size_t rejected = 0;   // raised CorruptStream (the typed error)
  std::size_t divergent = 0;  // decoded but differed (allow_divergence)
  /// One line per contract violation: untyped exception or silent
  /// corruption, prefixed with the mutant's label.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string summary() const;
  /// Folds another report (e.g. a second mutation family) into this one.
  void merge(const FaultReport& other);
};

/// Decode callback: parse + fully decode `bytes`, returning a canonical
/// byte serialization of the result for bitwise comparison. Expected to
/// throw aic::io::CorruptStream (and nothing else) on bad input.
using DecodeFn = std::function<std::string(const std::string&)>;

/// Runs the deterministic mutation matrix over `bytes`, classifying
/// every `decode` outcome. The unmutated stream must decode; its result
/// is the bitwise baseline.
FaultReport run_fault_matrix(const std::string& bytes, const DecodeFn& decode,
                             const FaultMatrixOptions& options);

}  // namespace aic::io
