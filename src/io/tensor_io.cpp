#include "io/tensor_io.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "io/byte_reader.hpp"
#include "io/error.hpp"

namespace aic::io {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr char kMagic[4] = {'A', 'I', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

}  // namespace

std::string serialize_tensor_header(const Shape& shape) {
  std::string out;
  out.reserve(12 + 8 * shape.rank());
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, kVersion);
  append<std::uint32_t>(out, static_cast<std::uint32_t>(shape.rank()));
  for (std::size_t axis = 0; axis < shape.rank(); ++axis) {
    append<std::uint64_t>(out, shape[axis]);
  }
  return out;
}

std::size_t serialized_tensor_bytes(const Shape& shape) {
  std::size_t numel = 1;
  for (std::size_t axis = 0; axis < shape.rank(); ++axis) {
    numel = checked_mul(numel, shape[axis], "tensor_io dims");
  }
  return 12 + 8 * shape.rank() +
         checked_mul(numel, sizeof(float), "tensor_io payload");
}

std::string serialize_tensor(const Tensor& tensor) {
  std::string out;
  out.reserve(serialized_tensor_bytes(tensor.shape()));
  out += serialize_tensor_header(tensor.shape());
  out.append(reinterpret_cast<const char*>(tensor.raw()),
             tensor.size_bytes());
  return out;
}

std::size_t max_tensor_header_bytes() { return 12 + 8 * Shape::kMaxRank; }

TensorHeaderInfo parse_tensor_header(std::string_view prefix,
                                     std::size_t total_bytes) {
  ByteReader reader(prefix, "tensor_io");
  reader.require(sizeof(kMagic), "magic");
  if (std::memcmp(prefix.data(), kMagic, sizeof(kMagic)) != 0) {
    raise_corrupt(CorruptKind::kBadMagic, "tensor_io: bad magic");
  }
  (void)reader.read_bytes(sizeof(kMagic), "magic");
  const auto version = reader.read<std::uint32_t>("version");
  if (version != kVersion) {
    raise_corrupt(CorruptKind::kBadVersion,
                  "tensor_io: found version " + std::to_string(version) +
                      ", supported version " + std::to_string(kVersion));
  }
  const auto rank = reader.read<std::uint32_t>("rank");
  if (rank > Shape::kMaxRank) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "tensor_io: rank " + std::to_string(rank) +
                      " exceeds max rank " + std::to_string(Shape::kMaxRank));
  }
  // The dims product is overflow-checked and validated against the
  // remaining payload before the Tensor is allocated, so adversarial
  // dims can neither wrap the element count nor trigger a huge alloc.
  std::size_t dims[Shape::kMaxRank] = {};
  std::size_t numel = 1;
  for (std::uint32_t axis = 0; axis < rank; ++axis) {
    const auto dim = reader.read<std::uint64_t>("dims");
    if (dim > std::numeric_limits<std::uint32_t>::max()) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "tensor_io: dim " + std::to_string(dim) +
                        " is implausibly large");
    }
    dims[axis] = static_cast<std::size_t>(dim);
    numel = checked_mul(numel, dims[axis], "tensor_io dims");
  }
  TensorHeaderInfo info;
  info.header_bytes = 12 + 8 * rank;
  info.payload_bytes = checked_mul(numel, sizeof(float), "tensor_io payload");
  if (info.payload_bytes != total_bytes - info.header_bytes) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "tensor_io: dims promise " +
                      std::to_string(info.payload_bytes) +
                      " payload bytes, stream has " +
                      std::to_string(total_bytes - info.header_bytes));
  }
  switch (rank) {
    case 0: info.shape = Shape::scalar(); break;
    case 1: info.shape = Shape::vector(dims[0]); break;
    case 2: info.shape = Shape::matrix(dims[0], dims[1]); break;
    case 3: info.shape = Shape({dims[0], dims[1], dims[2]}); break;
    default:
      info.shape = Shape::bchw(dims[0], dims[1], dims[2], dims[3]);
      break;
  }
  return info;
}

Tensor deserialize_tensor(std::string_view bytes) {
  const TensorHeaderInfo info = parse_tensor_header(bytes, bytes.size());
  Tensor tensor(info.shape);
  std::memcpy(tensor.raw(), bytes.data() + info.header_bytes,
              info.payload_bytes);
  return tensor;
}

void save_tensor(const Tensor& tensor, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("tensor_io: cannot open " + path);
  const std::string bytes = serialize_tensor(tensor);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("tensor_io: write failed: " + path);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("tensor_io: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return deserialize_tensor(bytes);
}

}  // namespace aic::io
