#include "io/tensor_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace aic::io {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr char kMagic[4] = {'A', 'I', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

template <typename T>
T read(const std::string& bytes, std::size_t& cursor) {
  if (cursor + sizeof(T) > bytes.size()) {
    throw std::runtime_error("tensor_io: truncated stream");
  }
  T value;
  std::memcpy(&value, bytes.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

std::string serialize_tensor(const Tensor& tensor) {
  std::string out;
  out.reserve(24 + tensor.size_bytes());
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, kVersion);
  append<std::uint32_t>(out, static_cast<std::uint32_t>(tensor.shape().rank()));
  for (std::size_t axis = 0; axis < tensor.shape().rank(); ++axis) {
    append<std::uint64_t>(out, tensor.shape()[axis]);
  }
  out.append(reinterpret_cast<const char*>(tensor.raw()),
             tensor.size_bytes());
  return out;
}

Tensor deserialize_tensor(const std::string& bytes) {
  std::size_t cursor = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("tensor_io: bad magic");
  }
  cursor += sizeof(kMagic);
  const auto version = read<std::uint32_t>(bytes, cursor);
  if (version != kVersion) {
    throw std::runtime_error("tensor_io: unsupported version " +
                             std::to_string(version));
  }
  const auto rank = read<std::uint32_t>(bytes, cursor);
  if (rank > Shape::kMaxRank) {
    throw std::runtime_error("tensor_io: rank too large");
  }
  std::size_t dims[Shape::kMaxRank] = {};
  std::size_t numel = 1;
  for (std::uint32_t axis = 0; axis < rank; ++axis) {
    dims[axis] = static_cast<std::size_t>(read<std::uint64_t>(bytes, cursor));
    numel *= dims[axis];
  }
  Shape shape;
  switch (rank) {
    case 0: shape = Shape::scalar(); break;
    case 1: shape = Shape::vector(dims[0]); break;
    case 2: shape = Shape::matrix(dims[0], dims[1]); break;
    case 3: shape = Shape({dims[0], dims[1], dims[2]}); break;
    default: shape = Shape::bchw(dims[0], dims[1], dims[2], dims[3]); break;
  }
  if (cursor + numel * sizeof(float) != bytes.size()) {
    throw std::runtime_error("tensor_io: payload size mismatch");
  }
  Tensor tensor(shape);
  std::memcpy(tensor.raw(), bytes.data() + cursor, numel * sizeof(float));
  return tensor;
}

void save_tensor(const Tensor& tensor, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("tensor_io: cannot open " + path);
  const std::string bytes = serialize_tensor(tensor);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("tensor_io: write failed: " + path);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("tensor_io: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return deserialize_tensor(bytes);
}

}  // namespace aic::io
