#include "io/fault_inject.hpp"

#include <exception>
#include <sstream>
#include <typeinfo>

#include "io/error.hpp"
#include "runtime/rng.hpp"

namespace aic::io {

namespace {

/// Decodes one mutant and files the outcome into `report`. `baseline` is
/// the canonical decode of the untouched stream.
void classify(const std::string& label, const std::string& mutant,
              const DecodeFn& decode, const std::string& baseline,
              bool allow_divergence, FaultReport& report) {
  ++report.mutants;
  try {
    const std::string decoded = decode(mutant);
    if (decoded == baseline) {
      ++report.exact;
      return;
    }
    ++report.divergent;
    if (!allow_divergence) {
      report.failures.push_back(label + ": decoded without error but the "
                                        "result differs (silent corruption)");
    }
  } catch (const CorruptStream&) {
    ++report.rejected;
  } catch (const std::exception& error) {
    report.failures.push_back(label + ": untyped " +
                              std::string(typeid(error).name()) + ": " +
                              error.what());
  } catch (...) {
    report.failures.push_back(label + ": non-std exception escaped");
  }
}

}  // namespace

std::string FaultReport::summary() const {
  std::ostringstream out;
  out << mutants << " mutants: " << exact << " exact, " << rejected
      << " rejected (CorruptStream), " << divergent << " divergent, "
      << failures.size() << " failures";
  return out.str();
}

void FaultReport::merge(const FaultReport& other) {
  mutants += other.mutants;
  exact += other.exact;
  rejected += other.rejected;
  divergent += other.divergent;
  failures.insert(failures.end(), other.failures.begin(),
                  other.failures.end());
}

FaultReport run_fault_matrix(const std::string& bytes, const DecodeFn& decode,
                             const FaultMatrixOptions& options) {
  FaultReport report;

  // The untouched stream is the contract's baseline; it must decode.
  std::string baseline;
  try {
    baseline = decode(bytes);
  } catch (const std::exception& error) {
    report.failures.push_back(std::string("baseline: valid stream failed to "
                                          "decode: ") +
                              error.what());
    return report;
  }

  const auto flip_bit = [&](std::size_t bit) {
    std::string mutant = bytes;
    mutant[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    return mutant;
  };

  // 1. Exhaustive bit flips over the header region.
  const std::size_t header_bytes =
      std::min(options.header_bytes, bytes.size());
  for (std::size_t bit = 0; bit < header_bytes * 8; ++bit) {
    classify("header bit " + std::to_string(bit), flip_bit(bit), decode,
             baseline, options.allow_divergence, report);
  }

  // 2. Truncation at every byte boundary (always strictly shorter, so no
  // mutant aliases the baseline).
  if (options.truncate_stride > 0) {
    for (std::size_t cut = 0; cut < bytes.size();
         cut += options.truncate_stride) {
      classify("truncate at " + std::to_string(cut), bytes.substr(0, cut),
               decode, baseline, options.allow_divergence, report);
    }
  }

  // 3. Seeded single-bit flips across the whole stream.
  runtime::Rng rng(options.seed);
  for (std::size_t i = 0; i < options.random_flips && !bytes.empty(); ++i) {
    const std::size_t bit =
        static_cast<std::size_t>(rng.uniform_index(bytes.size() * 8));
    classify("random flip #" + std::to_string(i) + " (bit " +
                 std::to_string(bit) + ")",
             flip_bit(bit), decode, baseline, options.allow_divergence,
             report);
  }

  // 4. Caller-supplied mutants (field sweeps with fixed-up CRCs, ...).
  for (const auto& [label, mutant] : options.extra) {
    classify(label, mutant, decode, baseline, options.allow_divergence,
             report);
  }

  return report;
}

}  // namespace aic::io
