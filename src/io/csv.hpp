#pragma once

#include <string>
#include <vector>

namespace aic::io {

/// Minimal CSV writer for bench output files (one per figure, so results
/// can be re-plotted outside the harness).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  /// Serializes headers + rows. Cells containing commas, quotes or
  /// newlines are quoted per RFC 4180.
  std::string to_string() const;

  /// Writes to `path`; throws std::runtime_error on failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aic::io
