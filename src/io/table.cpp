#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace aic::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << value;
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
          << " | ";
    }
    out << "\n";
  };
  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace aic::io
