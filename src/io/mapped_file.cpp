#include "io/mapped_file.hpp"

#include <fstream>
#include <iterator>
#include <stdexcept>

#include "runtime/env.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace aic::io {

namespace {

/// Heap fallback shared by every non-mmap path; the view() contract is
/// identical either way.
std::string read_whole_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("mapped_file: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (file.bad()) {
    throw std::runtime_error("mapped_file: read failed: " + path);
  }
  return bytes;
}

}  // namespace

#ifdef _WIN32

// Windows stub: no mmap attempt, always the heap read.
MappedFile::MappedFile(const std::string& path)
    : fallback_(read_whole_file(path)) {}

void MappedFile::unmap() noexcept { fallback_.clear(); }

#else

MappedFile::MappedFile(const std::string& path) {
  if (runtime::env_size_t("AIC_NO_MMAP", 0) != 0) {
    fallback_ = read_whole_file(path);
    return;
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("mapped_file: cannot open " + path);
  }
  struct stat info {};
  if (::fstat(fd, &info) != 0 || !S_ISREG(info.st_mode) ||
      info.st_size == 0) {
    // Pipes, devices, and empty files take the read path (mmap of length
    // 0 is EINVAL; mmap of a pipe is ENODEV).
    ::close(fd);
    fallback_ = read_whole_file(path);
    return;
  }
  const std::size_t size = static_cast<std::size_t>(info.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    fallback_ = read_whole_file(path);
    return;
  }
  addr_ = addr;
  size_ = size;
  mapped_ = true;
}

void MappedFile::unmap() noexcept {
  if (mapped_ && addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

#endif  // _WIN32

MappedFile::~MappedFile() { unmap(); }

}  // namespace aic::io
