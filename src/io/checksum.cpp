#include "io/checksum.hpp"

#include <array>

namespace aic::io {

namespace {

// 8 derived tables: table[0] is the classic byte-at-a-time CRC32C table,
// table[k][b] extends table[k-1][b] by one zero byte, letting the hot
// loop fold 8 input bytes per iteration.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
      std::uint32_t crc = byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][byte] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t byte = 0; byte < 256; ++byte) {
        const std::uint32_t prev = t[k - 1][byte];
        t[k][byte] = (prev >> 8) ^ t[0][prev & 0xFFu];
      }
    }
  }
};

constexpr Crc32cTables kTables;

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(bytes[0]) |
                                    static_cast<std::uint32_t>(bytes[1]) << 8 |
                                    static_cast<std::uint32_t>(bytes[2]) << 16 |
                                    static_cast<std::uint32_t>(bytes[3]) << 24);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][bytes[4]] ^ kTables.t[2][bytes[5]] ^
          kTables.t[1][bytes[6]] ^ kTables.t[0][bytes[7]];
    bytes += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *bytes++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace aic::io
