#pragma once

#include <cstddef>
#include <cstdint>

namespace aic::io {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) over a
/// byte range. This is the checksum the archive v3 container stores for
/// its header and payload; the software slice-by-8 table implementation
/// runs at several GB/s, far above archive decode throughput.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace aic::io
