#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "io/error.hpp"

namespace aic::io {

/// Multiplies two sizes, raising CorruptStream(kOverflow) on wrap. Used
/// wherever untrusted dims are folded into an element count or byte size
/// before any allocation happens.
inline std::size_t checked_mul(std::size_t a, std::size_t b,
                               const char* what) {
  std::size_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    raise_corrupt(CorruptKind::kOverflow,
                  std::string(what) + ": size product overflows");
  }
  return out;
}

/// Bounds-safe cursor over an untrusted byte buffer. All checks are in
/// subtraction form (`need > size - cursor`) so adversarial cursors or
/// field sizes can never wrap the comparison the way `cursor + need >
/// size` can. Every violation raises a typed CorruptStream.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, const char* context = "stream")
      : bytes_(bytes), context_(context) {}

  std::size_t cursor() const noexcept { return cursor_; }
  std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }

  /// Raises kTruncated unless `count` more bytes are available.
  void require(std::size_t count, const char* what) const {
    if (count > remaining()) {
      raise_corrupt(CorruptKind::kTruncated,
                    std::string(context_) + ": truncated reading " + what +
                        " (need " + std::to_string(count) + " bytes, have " +
                        std::to_string(remaining()) + ")");
    }
  }

  /// Reads one little-endian trivially-copyable value.
  template <typename T>
  T read(const char* what) {
    require(sizeof(T), what);
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  /// Consumes `count` bytes and returns a view of them.
  std::string_view read_bytes(std::size_t count, const char* what) {
    require(count, what);
    const std::string_view out = bytes_.substr(cursor_, count);
    cursor_ += count;
    return out;
  }

  /// The unconsumed tail of the buffer (does not advance).
  std::string_view rest() const { return bytes_.substr(cursor_); }

 private:
  std::string_view bytes_;
  const char* context_;
  std::size_t cursor_ = 0;
};

}  // namespace aic::io
