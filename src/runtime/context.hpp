#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace aic::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace aic::obs

namespace aic::runtime {

class BufferPool;
class ThreadPool;

/// The pool `parallel_for` fans out on: the innermost `Context::PoolScope`
/// bound on the calling thread, else the process-default pool (created on
/// first use, sized from AIC_THREADS / AIC_NUM_THREADS). The returned
/// shared_ptr keeps the pool alive across a concurrent
/// `Context::set_process_threads` swap.
std::shared_ptr<ThreadPool> current_pool();

}  // namespace aic::runtime

namespace aic {

/// An explicit, cheaply copyable session handle that bundles everything a
/// compression workload used to reach through process-wide singletons for:
///
///   - a thread pool (owned by this context, or a shared reference to the
///     process-default pool),
///   - a plan cache with its own byte budget (created lazily by the core
///     layer via `core::PlanCache::of(ctx)` — the runtime layer stores it
///     type-erased so it does not depend on core),
///   - codec/pipeline knobs (archive chunk bytes, entropy mode, archive
///     version),
///   - an observability scope: a metric-name prefix under which per-context
///     instruments are registered in the *global* registry, so existing
///     OpenMetrics export / snapshot / flight-recorder paths see per-session
///     series without any new plumbing.
///
/// Copying a Context copies a shared_ptr; copies refer to the same session
/// (same pool, same plan cache, same counters). Two distinct Context objects
/// constructed from Options are fully isolated apart from whatever pool they
/// share.
///
/// `Context::process_default()` (and the default constructor) return a handle
/// to one process-wide session configured from the environment — exactly the
/// behavior the old singletons provided.
class Context {
 public:
  /// Sentinel: resolve the plan-cache budget from AIC_PLAN_CACHE_BYTES
  /// (library default when unset).
  static constexpr std::size_t kPlanCacheBytesFromEnv =
      static_cast<std::size_t>(-1);

  struct Options {
    /// Workers for a pool owned by this context. 0 = do not own a pool:
    /// share the process-default pool (or `pool` below when set).
    std::size_t threads = 0;
    /// Force a private hardware-sized pool even when `threads == 0`.
    bool own_pool = false;
    /// Explicit pool to share; overrides `threads` / `own_pool`.
    std::shared_ptr<runtime::ThreadPool> pool;
    /// Byte budget for this context's plan cache.
    std::size_t plan_cache_bytes = kPlanCacheBytesFromEnv;
    /// Archive chunk size; 0 = library default.
    std::size_t chunk_bytes = 0;
    /// Numeric value of baseline::ChunkEntropy (stored untyped because the
    /// baseline layer sits above the runtime layer).
    int entropy_mode = 0;
    /// Container version for new archives.
    std::uint32_t archive_version = 4;
    /// Metric-name prefix (e.g. "session0.") for per-context instruments.
    /// Contexts with an empty prefix keep their plan-cache metrics private
    /// (the process-default context publishes unprefixed, as before).
    std::string obs_prefix;
  };

  /// Equivalent to `process_default()`.
  Context();
  /// A new isolated session.
  explicit Context(const Options& options);

  /// The process-wide session: shares the process-default pool, uses the
  /// env-configured plan-cache budget, publishes unprefixed metrics. All
  /// calls return handles to the same underlying session.
  static Context process_default();

  /// The pool this context executes on. For the process-default context the
  /// pool is fetched (and lazily created) at call time, so it observes
  /// `set_process_threads`.
  runtime::ThreadPool& pool() const;
  /// Shared ownership of the same pool (keeps it alive across resizes).
  std::shared_ptr<runtime::ThreadPool> pool_handle() const;

  /// This session's scratch recycler (created lazily; budget from
  /// AIC_MEMPOOL_BYTES). Its mempool.* instruments are registered under
  /// this context's obs_prefix. Distinct sessions never share buffers.
  runtime::BufferPool& buffer_pool() const;
  /// Shared ownership (keeps the pool's slabs alive past the context).
  std::shared_ptr<runtime::BufferPool> buffer_pool_handle() const;

  bool is_process_default() const noexcept;
  /// Raw option value; kPlanCacheBytesFromEnv means "resolve from env".
  std::size_t plan_cache_bytes() const noexcept;
  std::size_t chunk_bytes() const noexcept;
  int entropy_mode() const noexcept;
  std::uint32_t archive_version() const noexcept;
  const std::string& obs_prefix() const noexcept;

  /// `obs_prefix() + name`.
  std::string metric_name(const std::string& name) const;
  /// Per-context instruments, registered in the global registry under the
  /// prefixed name so export/flight paths pick them up automatically.
  /// Lookup takes the registry mutex — cache the reference on hot paths.
  obs::Counter& counter(const std::string& name) const;
  obs::Gauge& gauge(const std::string& name) const;
  obs::Histogram& histogram(const std::string& name) const;

  /// Two handles to the same underlying session?
  bool same_session(const Context& other) const noexcept {
    return impl_ == other.impl_;
  }

  /// RAII: binds this context's pool as the executor `parallel_for` (and
  /// therefore the tensor kernels) uses on the current thread. Nested
  /// scopes restore the previous binding on destruction. Hot-path entry
  /// points (codec compress/decompress, archive fan-out, trainer epochs)
  /// open one of these so deep kernels run on the session's pool without
  /// threading a Context through every layer.
  class PoolScope {
   public:
    explicit PoolScope(const Context& ctx);
    ~PoolScope();
    PoolScope(const PoolScope&) = delete;
    PoolScope& operator=(const PoolScope&) = delete;

   private:
    std::shared_ptr<runtime::ThreadPool> pool_;
    std::shared_ptr<runtime::ThreadPool>* previous_;
  };

  /// Replaces the process-default pool with one of `num_threads` workers
  /// (0 = hardware concurrency). Throws std::runtime_error while any other
  /// context, PoolScope, or in-flight parallel_for holds the pool —
  /// resizing under live submitters was a use-after-free race; now it is
  /// an explicit rejection. Handout and swap are serialized by one mutex,
  /// and the old pool joins its workers when the last holder drops it.
  static void set_process_threads(std::size_t num_threads);

  /// One documented precedence order for worker-count configuration:
  /// CLI flag (pass as `flag_value`, 0 = unset) > AIC_THREADS >
  /// AIC_NUM_THREADS (legacy alias) > hardware concurrency. Returns 0 to
  /// mean "hardware" so the result feeds ThreadPool's constructor directly.
  static std::size_t resolve_thread_count(std::size_t flag_value = 0);

  /// Type-erased per-context lazily initialized state for higher layers
  /// (the core layer's PlanCache lives in kPlanCache). The factory runs at
  /// most once per context per slot, under the context's slot mutex.
  enum class Slot : std::size_t { kPlanCache = 0, kArchiveScratch = 1, kCount };
  std::shared_ptr<void> slot(
      Slot which,
      const std::function<std::shared_ptr<void>()>& factory) const;

 private:
  struct Impl;
  explicit Context(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<Impl> impl_;
};

}  // namespace aic
