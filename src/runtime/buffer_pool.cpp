#include "runtime/buffer_pool.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/env.hpp"

namespace aic::runtime {

namespace {

constexpr std::size_t kMinShift = 6;   // 64 B
constexpr std::size_t kMaxShift = 46;  // 64 TiB: anything above is a bug
constexpr std::size_t kNumClasses = kMaxShift - kMinShift + 1;

constexpr std::size_t kDefaultBudgetBytes = std::size_t{256} << 20;

std::size_t class_index_for(std::size_t bytes) {
  const std::size_t capacity =
      std::max(BufferPool::kMinClassBytes, std::bit_ceil(bytes));
  const std::size_t shift =
      static_cast<std::size_t>(std::countr_zero(capacity));
  if (shift > kMaxShift) {
    throw std::invalid_argument("BufferPool: request of " +
                                std::to_string(bytes) +
                                " bytes exceeds the largest size class");
  }
  return shift - kMinShift;
}

std::size_t class_capacity(std::size_t index) {
  return std::size_t{1} << (index + kMinShift);
}

}  // namespace

struct BufferPool::State {
  mutable std::mutex mutex;
  std::size_t budget_bytes = 0;

  struct FreeBlock {
    char* ptr = nullptr;
    std::uint64_t stamp = 0;  // release order, for LRU eviction
  };
  // free_lists[c] holds blocks of class_capacity(c); reuse is LIFO (the
  // most recently released block is cache-hot), eviction is FIFO per
  // class with the globally oldest stamp going first.
  std::array<std::vector<FreeBlock>, kNumClasses> free_lists;
  std::uint64_t tick = 0;

  Stats stats;

  // Optional mirrored instruments (global registry references are stable
  // for the process lifetime).
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* recycled = nullptr;
  obs::Gauge* resident = nullptr;

  void publish_resident_locked() {
    stats.resident_bytes = stats.cached_bytes + stats.leased_bytes;
    if (resident != nullptr) {
      resident->set(static_cast<double>(stats.resident_bytes));
    }
  }

  // Frees least-recently-released cached blocks until at most
  // `keep_bytes` stay cached. Caller holds the mutex.
  void evict_to_locked(std::size_t keep_bytes) {
    while (stats.cached_bytes > keep_bytes) {
      std::size_t victim_class = kNumClasses;
      std::uint64_t oldest = 0;
      for (std::size_t c = 0; c < kNumClasses; ++c) {
        if (free_lists[c].empty()) continue;
        const std::uint64_t stamp = free_lists[c].front().stamp;
        if (victim_class == kNumClasses || stamp < oldest) {
          victim_class = c;
          oldest = stamp;
        }
      }
      if (victim_class == kNumClasses) return;  // nothing cached
      std::vector<FreeBlock>& list = free_lists[victim_class];
      std::free(list.front().ptr);
      list.erase(list.begin());
      const std::size_t capacity = class_capacity(victim_class);
      stats.cached_bytes -= capacity;
      stats.trimmed_bytes += capacity;
    }
  }

  void release(char* ptr, std::size_t class_index) {
    std::lock_guard lock(mutex);
    const std::size_t capacity = class_capacity(class_index);
    stats.leased_bytes -= capacity;
    if (budget_bytes == 0) {
      std::free(ptr);
      stats.trimmed_bytes += capacity;
    } else {
      free_lists[class_index].push_back({ptr, ++tick});
      stats.cached_bytes += capacity;
      evict_to_locked(budget_bytes);
    }
    publish_resident_locked();
  }

  ~State() {
    for (auto& list : free_lists) {
      for (const FreeBlock& block : list) std::free(block.ptr);
    }
  }
};

void BufferPool::Buffer::reset() noexcept {
  if (state_) {
    state_->release(data_, class_index_for(capacity_));
    state_.reset();
  }
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
}

std::size_t BufferPool::budget_from_env() {
  return env_size_t("AIC_MEMPOOL_BYTES", kDefaultBudgetBytes);
}

BufferPool::BufferPool() : BufferPool(budget_from_env()) {}

BufferPool::BufferPool(std::size_t budget_bytes)
    : state_(std::make_shared<State>()) {
  state_->budget_bytes = budget_bytes;
}

BufferPool::~BufferPool() = default;

BufferPool::Buffer BufferPool::acquire(std::size_t bytes) {
  const std::size_t index = class_index_for(bytes);
  const std::size_t capacity = class_capacity(index);
  char* ptr = nullptr;
  {
    std::lock_guard lock(state_->mutex);
    std::vector<State::FreeBlock>& list = state_->free_lists[index];
    if (!list.empty()) {
      ptr = list.back().ptr;
      list.pop_back();
      state_->stats.cached_bytes -= capacity;
      state_->stats.hits += 1;
      state_->stats.recycled_bytes += capacity;
      if (state_->hits != nullptr) state_->hits->add();
      if (state_->recycled != nullptr) state_->recycled->add(capacity);
    } else {
      state_->stats.misses += 1;
      if (state_->misses != nullptr) state_->misses->add();
    }
  }
  if (ptr == nullptr) {
    ptr = static_cast<char*>(std::aligned_alloc(kAlignment, capacity));
    if (ptr == nullptr) throw std::bad_alloc();
  }
  {
    std::lock_guard lock(state_->mutex);
    state_->stats.leased_bytes += capacity;
    state_->publish_resident_locked();
  }
  return Buffer(state_, ptr, bytes, capacity);
}

void BufferPool::trim(std::size_t keep_bytes) {
  std::lock_guard lock(state_->mutex);
  state_->evict_to_locked(keep_bytes);
  state_->publish_resident_locked();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard lock(state_->mutex);
  return state_->stats;
}

std::size_t BufferPool::budget_bytes() const {
  std::lock_guard lock(state_->mutex);
  return state_->budget_bytes;
}

void BufferPool::attach_metrics(const std::string& prefix) {
  obs::Registry& registry = obs::Registry::global();
  std::lock_guard lock(state_->mutex);
  state_->hits = &registry.counter(prefix + "mempool.hits");
  state_->misses = &registry.counter(prefix + "mempool.misses");
  state_->recycled = &registry.counter(prefix + "mempool.recycled_bytes");
  state_->resident = &registry.gauge(prefix + "mempool.resident_bytes");
  state_->publish_resident_locked();
}

}  // namespace aic::runtime
