#include "runtime/context.hpp"

#include <algorithm>
#include <array>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/env.hpp"
#include "runtime/thread_pool.hpp"

namespace aic {

namespace {

// The process-default pool. This file is the ONLY place in the tree that
// may hold process-wide pool state (CI greps for violations). Handout
// (current_pool / pool_handle) and replacement (set_process_threads) are
// serialized by g_process_pool_mutex; shared_ptr ownership means a swap
// can never free a pool someone is still submitting to — the old pool
// joins its workers when the last holder releases it.
std::mutex g_process_pool_mutex;
std::shared_ptr<runtime::ThreadPool>& process_pool_storage() {
  static std::shared_ptr<runtime::ThreadPool> pool;
  return pool;
}

std::shared_ptr<runtime::ThreadPool> process_pool() {
  std::lock_guard lock(g_process_pool_mutex);
  std::shared_ptr<runtime::ThreadPool>& pool = process_pool_storage();
  if (!pool) {
    pool = std::make_shared<runtime::ThreadPool>(
        Context::resolve_thread_count(0));
  }
  return pool;
}

// Innermost PoolScope binding on this thread; parallel_for routes through
// it so deep kernels (gemm, sandwich transforms) run on the scoping
// context's pool without a Context parameter in every signature.
thread_local std::shared_ptr<runtime::ThreadPool>* tls_bound_pool = nullptr;

}  // namespace

namespace runtime {

std::shared_ptr<ThreadPool> current_pool() {
  if (tls_bound_pool != nullptr) return *tls_bound_pool;
  return process_pool();
}

}  // namespace runtime

struct Context::Impl {
  Options options;
  bool process_default = false;
  /// Durable pool reference for session contexts. Empty for the
  /// process-default context, which fetches the live process pool per call
  /// so it observes set_process_threads.
  std::shared_ptr<runtime::ThreadPool> pool;
  /// Per-session scratch recycler, created on first use under slot_mutex.
  std::shared_ptr<runtime::BufferPool> buffer_pool;
  /// Lazily initialized higher-layer state (core's PlanCache, ...).
  std::mutex slot_mutex;
  std::array<std::shared_ptr<void>, static_cast<std::size_t>(Slot::kCount)>
      slots;
};

Context::Context() : Context(process_default()) {}

Context::Context(const Options& options) : impl_(std::make_shared<Impl>()) {
  impl_->options = options;
  if (options.pool) {
    impl_->pool = options.pool;
  } else if (options.threads > 0 || options.own_pool) {
    impl_->pool = std::make_shared<runtime::ThreadPool>(options.threads);
  } else {
    // Share the process-default pool. The durable reference is what makes
    // set_process_threads reject while this session is alive.
    impl_->pool = process_pool();
  }
}

Context Context::process_default() {
  static std::shared_ptr<Impl> process_impl = [] {
    auto impl = std::make_shared<Impl>();
    impl->process_default = true;
    impl->options.plan_cache_bytes = kPlanCacheBytesFromEnv;
    return impl;
  }();
  return Context(process_impl);
}

runtime::ThreadPool& Context::pool() const { return *pool_handle(); }

std::shared_ptr<runtime::ThreadPool> Context::pool_handle() const {
  if (impl_->pool) return impl_->pool;
  return process_pool();
}

runtime::BufferPool& Context::buffer_pool() const {
  return *buffer_pool_handle();
}

std::shared_ptr<runtime::BufferPool> Context::buffer_pool_handle() const {
  std::lock_guard lock(impl_->slot_mutex);
  if (!impl_->buffer_pool) {
    impl_->buffer_pool = std::make_shared<runtime::BufferPool>();
    impl_->buffer_pool->attach_metrics(impl_->options.obs_prefix);
  }
  return impl_->buffer_pool;
}

bool Context::is_process_default() const noexcept {
  return impl_->process_default;
}

std::size_t Context::plan_cache_bytes() const noexcept {
  return impl_->options.plan_cache_bytes;
}

std::size_t Context::chunk_bytes() const noexcept {
  return impl_->options.chunk_bytes;
}

int Context::entropy_mode() const noexcept {
  return impl_->options.entropy_mode;
}

std::uint32_t Context::archive_version() const noexcept {
  return impl_->options.archive_version;
}

const std::string& Context::obs_prefix() const noexcept {
  return impl_->options.obs_prefix;
}

std::string Context::metric_name(const std::string& name) const {
  return impl_->options.obs_prefix + name;
}

obs::Counter& Context::counter(const std::string& name) const {
  return obs::Registry::global().counter(metric_name(name));
}

obs::Gauge& Context::gauge(const std::string& name) const {
  return obs::Registry::global().gauge(metric_name(name));
}

obs::Histogram& Context::histogram(const std::string& name) const {
  return obs::Registry::global().histogram(metric_name(name));
}

Context::PoolScope::PoolScope(const Context& ctx)
    : pool_(ctx.pool_handle()), previous_(tls_bound_pool) {
  tls_bound_pool = &pool_;
}

Context::PoolScope::~PoolScope() { tls_bound_pool = previous_; }

void Context::set_process_threads(std::size_t num_threads) {
  std::lock_guard lock(g_process_pool_mutex);
  std::shared_ptr<runtime::ThreadPool>& pool = process_pool_storage();
  if (pool && pool.use_count() > 1) {
    throw std::runtime_error(
        "Context::set_process_threads: the process pool is held by another "
        "context, PoolScope, or in-flight parallel_for; resize rejected");
  }
  const std::size_t resolved =
      num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : num_threads;
  if (pool && pool->size() == resolved) return;
  pool.reset();  // sole owner: joins the old workers before the swap
  pool = std::make_shared<runtime::ThreadPool>(num_threads);
}

std::size_t Context::resolve_thread_count(std::size_t flag_value) {
  if (flag_value > 0) return flag_value;
  return runtime::env_size_t("AIC_THREADS",
                             runtime::env_size_t("AIC_NUM_THREADS", 0));
}

std::shared_ptr<void> Context::slot(
    Slot which,
    const std::function<std::shared_ptr<void>()>& factory) const {
  std::lock_guard lock(impl_->slot_mutex);
  std::shared_ptr<void>& cell =
      impl_->slots[static_cast<std::size_t>(which)];
  if (!cell) cell = factory();
  return cell;
}

}  // namespace aic
