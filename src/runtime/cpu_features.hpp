#pragma once

namespace aic::runtime {

/// Instruction-set tiers the GEMM kernel layer can dispatch to.
///
/// kAvx2 means AVX2 *and* FMA (they ship together on every AVX2 part we
/// care about, and the microkernel needs both); kScalar is the portable
/// fallback that must work on any host.
enum class KernelBackend { kScalar, kAvx2 };

/// Host ISA capabilities, probed once on first use (thread-safe, cached).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

const CpuFeatures& cpu_features() noexcept;

/// The backend the kernel layer currently dispatches to. Initialized on
/// first use to the widest tier the host supports, unless the
/// AIC_FORCE_SCALAR environment variable is truthy (A/B testing knob).
KernelBackend kernel_backend() noexcept;

/// Overrides the active backend (parity tests, per-backend benchmarks).
/// Throws std::invalid_argument when the host cannot execute `backend`.
void set_kernel_backend(KernelBackend backend);

/// Stable lowercase name of a backend ("scalar", "avx2").
const char* kernel_backend_name(KernelBackend backend) noexcept;

/// Name of the active backend.
const char* kernel_backend_name() noexcept;

}  // namespace aic::runtime
