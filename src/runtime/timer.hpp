#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace aic::runtime {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed integer nanoseconds — lossless for stats accumulation.
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Streaming mean / variance / extrema accumulator (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace aic::runtime
