#include "runtime/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace aic::runtime {

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::size_t>(value);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::string value(raw);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return value == "1" || value == "true" || value == "on" || value == "yes";
}

}  // namespace aic::runtime
