#pragma once

#include <cstddef>
#include <functional>

namespace aic::runtime {

/// Grain-size policy for `parallel_for`.
struct ParallelOptions {
  /// Minimum number of iterations per chunk; ranges smaller than this run
  /// inline on the calling thread.
  std::size_t grain = 1024;
};

/// Runs `body(i)` for every i in [begin, end) across the global thread
/// pool, splitting the range into contiguous chunks.
///
/// Blocks until all chunks complete. Exceptions thrown by `body` are
/// rethrown on the calling thread (the first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ParallelOptions options = {});

/// Chunked variant: `body(chunk_begin, chunk_end)` is invoked once per
/// contiguous chunk, which avoids per-iteration call overhead in kernels.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ParallelOptions options = {});

}  // namespace aic::runtime
