#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace aic::runtime {

/// Grain-size policy for `parallel_for`.
struct ParallelOptions {
  /// Minimum number of iterations per chunk; ranges smaller than this run
  /// inline on the calling thread.
  std::size_t grain = 1024;
};

/// Process-wide counters describing how `parallel_for` partitioned its
/// most recent ranges (see parallel_for_stats()). Split decisions are
/// otherwise invisible, which made grain regressions (N tasks for 2
/// chunks of work) impossible to assert on.
struct ParallelForStats {
  /// Ranges executed inline on the caller (small range, size-1 pool, or
  /// re-entrant call from a worker).
  std::uint64_t inline_runs = 0;
  /// Ranges fanned out over the pool.
  std::uint64_t parallel_runs = 0;
  /// Iterations, chosen chunk size, and task count of the most recent
  /// fanned-out range.
  std::uint64_t last_total = 0;
  std::uint64_t last_chunk = 0;
  std::uint64_t last_tasks = 0;
};

/// Snapshot of the partitioning counters (thread-safe, relaxed reads).
ParallelForStats parallel_for_stats();

/// Zeroes the partitioning counters.
void reset_parallel_for_stats();

/// Runs `body(i)` for every i in [begin, end) across the global thread
/// pool, splitting the range into contiguous chunks.
///
/// Blocks until all chunks complete. Exceptions thrown by `body` are
/// rethrown on the calling thread (the first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ParallelOptions options = {});

/// Chunked variant: `body(chunk_begin, chunk_end)` is invoked once per
/// contiguous chunk, which avoids per-iteration call overhead in kernels.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         ParallelOptions options = {});

}  // namespace aic::runtime
