#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace aic::runtime {

/// RAII owner of a cacheline/SIMD-aligned float-compatible byte buffer.
///
/// Tensor storage uses 64-byte alignment so vectorized matmul kernels can
/// assume aligned loads on every row start.
template <typename T, std::size_t Alignment = 64>
class AlignedBuffer {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : count_(count) {
    if (count_ == 0) return;
    const std::size_t bytes =
        (count_ * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    data_ = static_cast<T*>(std::aligned_alloc(Alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace aic::runtime
