#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/logging.hpp"

namespace aic::runtime {

namespace {

// Identifies the pool (if any) whose worker_loop owns the current thread.
thread_local const ThreadPool* tls_worker_pool = nullptr;

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge =
      obs::Registry::global().gauge("pool.queue_depth");
  return gauge;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  AIC_LOG_DEBUG << "thread_pool: starting " << num_threads << " workers";
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::in_worker_thread() const noexcept {
  return tls_worker_pool == this;
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::post after shutdown");
    }
    queue_.push_back(std::move(task));
    peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queue_.size());
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  {
    std::lock_guard lock(mutex_);
    out.tasks_executed = tasks_executed_;
    out.peak_queue_depth = peak_queue_depth_;
  }
  out.tasks_inlined = tasks_inlined_.load(std::memory_order_relaxed);
  return out;
}

void ThreadPool::reset_stats() {
  std::lock_guard lock(mutex_);
  tasks_executed_ = 0;
  peak_queue_depth_ = 0;
  tasks_inlined_.store(0, std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      AIC_TRACE_SCOPE("pool.idle");
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ is set and the queue has drained.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
      ++in_flight_;
    }
    {
      AIC_TRACE_SCOPE("pool.task");
      task();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      ++tasks_executed_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace aic::runtime
