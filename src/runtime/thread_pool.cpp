#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/env.hpp"

namespace aic::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::post after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_size_t("AIC_NUM_THREADS", 0));
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ is set and the queue has drained.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace aic::runtime
