#include "runtime/cpu_features.hpp"

#include <atomic>
#include <stdexcept>

#include "runtime/env.hpp"

namespace aic::runtime {
namespace {

CpuFeatures probe() noexcept {
  CpuFeatures features;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports covers cpuid *and* the OS xsave support bits,
  // so a true result means the instructions are actually executable.
  __builtin_cpu_init();
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return features;
}

KernelBackend default_backend() {
  if (env_flag("AIC_FORCE_SCALAR")) return KernelBackend::kScalar;
  const CpuFeatures& features = cpu_features();
  if (features.avx2 && features.fma) return KernelBackend::kAvx2;
  return KernelBackend::kScalar;
}

std::atomic<KernelBackend>& active_backend() {
  static std::atomic<KernelBackend> backend{default_backend()};
  return backend;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

KernelBackend kernel_backend() noexcept {
  return active_backend().load(std::memory_order_relaxed);
}

void set_kernel_backend(KernelBackend backend) {
  if (backend == KernelBackend::kAvx2 &&
      !(cpu_features().avx2 && cpu_features().fma)) {
    throw std::invalid_argument(
        "set_kernel_backend: host does not support AVX2+FMA");
  }
  active_backend().store(backend, std::memory_order_relaxed);
}

const char* kernel_backend_name(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kScalar:
      return "scalar";
  }
  return "scalar";
}

const char* kernel_backend_name() noexcept {
  return kernel_backend_name(kernel_backend());
}

}  // namespace aic::runtime
