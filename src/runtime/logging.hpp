#pragma once

#include <sstream>
#include <string>

namespace aic::runtime {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style one-shot log line: emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace aic::runtime

#define AIC_LOG_DEBUG ::aic::runtime::detail::LogLine(::aic::runtime::LogLevel::kDebug)
#define AIC_LOG_INFO ::aic::runtime::detail::LogLine(::aic::runtime::LogLevel::kInfo)
#define AIC_LOG_WARN ::aic::runtime::detail::LogLine(::aic::runtime::LogLevel::kWarn)
#define AIC_LOG_ERROR ::aic::runtime::detail::LogLine(::aic::runtime::LogLevel::kError)
