#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/thread_pool.hpp"

namespace aic::runtime {

namespace {

struct AtomicParallelForStats {
  std::atomic<std::uint64_t> inline_runs{0};
  std::atomic<std::uint64_t> parallel_runs{0};
  std::atomic<std::uint64_t> last_total{0};
  std::atomic<std::uint64_t> last_chunk{0};
  std::atomic<std::uint64_t> last_tasks{0};
};

AtomicParallelForStats& stats_slot() {
  static AtomicParallelForStats stats;
  return stats;
}

}  // namespace

ParallelForStats parallel_for_stats() {
  const AtomicParallelForStats& s = stats_slot();
  ParallelForStats out;
  out.inline_runs = s.inline_runs.load(std::memory_order_relaxed);
  out.parallel_runs = s.parallel_runs.load(std::memory_order_relaxed);
  out.last_total = s.last_total.load(std::memory_order_relaxed);
  out.last_chunk = s.last_chunk.load(std::memory_order_relaxed);
  out.last_tasks = s.last_tasks.load(std::memory_order_relaxed);
  return out;
}

void reset_parallel_for_stats() {
  AtomicParallelForStats& s = stats_slot();
  s.inline_runs.store(0, std::memory_order_relaxed);
  s.parallel_runs.store(0, std::memory_order_relaxed);
  s.last_total.store(0, std::memory_order_relaxed);
  s.last_chunk.store(0, std::memory_order_relaxed);
  s.last_tasks.store(0, std::memory_order_relaxed);
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    ParallelOptions options) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  // The transient shared_ptr also pins the pool across the fan-out, so a
  // concurrent Context::set_process_threads rejects instead of tearing
  // down a pool with our chunks in its queue.
  const std::shared_ptr<ThreadPool> pool_handle = current_pool();
  ThreadPool& pool = *pool_handle;
  const std::size_t grain = std::max<std::size_t>(options.grain, 1);

  // Re-entrant calls (a pool task invoking parallel_for) must not queue
  // chunks behind themselves: a worker blocking on futures served by its
  // own pool deadlocks at size 1 and oversubscribes above it. Degrade to
  // inline execution on the calling worker instead.
  if (total <= grain || pool.size() == 1 || pool.in_worker_thread()) {
    stats_slot().inline_runs.fetch_add(1, std::memory_order_relaxed);
    body(begin, end);
    return;
  }

  // Task-count policy. `grain_tasks` is the most tasks the grain allows.
  // Small ranges (fewer grain-units than workers) get exactly that many
  // equal chunks — spawning pool-size tasks for 2 chunks of work only
  // adds queue traffic. Mid-size ranges get one task per worker. Only
  // ranges with ample work (>= 4 grain-units per worker) use the 4x
  // oversubscription that load-balances unevenly priced iterations.
  const std::size_t grain_tasks = (total + grain - 1) / grain;
  std::size_t tasks;
  if (grain_tasks <= pool.size()) {
    tasks = grain_tasks;
  } else if (grain_tasks < pool.size() * 4) {
    tasks = pool.size();
  } else {
    tasks = pool.size() * 4;
  }
  const std::size_t chunk = std::max(grain, (total + tasks - 1) / tasks);

  {
    AtomicParallelForStats& s = stats_slot();
    s.parallel_runs.fetch_add(1, std::memory_order_relaxed);
    s.last_total.store(total, std::memory_order_relaxed);
    s.last_chunk.store(chunk, std::memory_order_relaxed);
    s.last_tasks.store((total + chunk - 1) / chunk,
                       std::memory_order_relaxed);
  }

  std::vector<std::future<void>> futures;
  futures.reserve((total + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ParallelOptions options) {
  parallel_for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

}  // namespace aic::runtime
