#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace aic::runtime {

void parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    ParallelOptions options) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t grain = std::max<std::size_t>(options.grain, 1);

  // Re-entrant calls (a pool task invoking parallel_for) must not queue
  // chunks behind themselves: a worker blocking on futures served by its
  // own pool deadlocks at size 1 and oversubscribes above it. Degrade to
  // inline execution on the calling worker instead.
  if (total <= grain || pool.size() == 1 || max_chunks <= 1 ||
      pool.in_worker_thread()) {
    body(begin, end);
    return;
  }

  const std::size_t chunk =
      std::max(grain, (total + max_chunks - 1) / max_chunks);
  std::vector<std::future<void>> futures;
  futures.reserve((total + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ParallelOptions options) {
  parallel_for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      options);
}

}  // namespace aic::runtime
