#pragma once

#include <cstdint>
#include <vector>

namespace aic::runtime {

/// Deterministic, seedable PRNG (xoshiro256** with splitmix64 seeding).
///
/// Every stochastic component in the repository (dataset generators,
/// weight initialization, noise injection) draws from an explicitly
/// seeded Rng so that experiments are bit-reproducible run to run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derives an independent child stream (for per-sample generators).
  Rng fork();

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& indices);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace aic::runtime
