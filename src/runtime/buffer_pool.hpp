#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace aic::runtime {

/// Size-class slab recycler for the aligned scratch the hot paths used to
/// re-malloc on every call: archive payload staging, streaming windows,
/// chunk bounce buffers, and any other transient byte span that repeats
/// its size across calls.
///
/// Blocks are 64-byte aligned and bucketed by power-of-two capacity
/// (minimum 64 bytes). `acquire(n)` pops a cached block of the matching
/// class (a *hit*) or allocates a fresh one (a *miss*); the returned
/// Buffer is a move-only RAII handle that returns the block to the pool
/// on destruction. Handles share ownership of the pool's internal state,
/// so a Buffer may safely outlive the BufferPool (and the Context) that
/// produced it.
///
/// Cached (free) bytes are capped by a budget (AIC_MEMPOOL_BYTES, default
/// 256 MiB): releases that push the cache over the budget evict the
/// least-recently-released blocks first. Leased bytes are never counted
/// against the budget — the pool cannot reclaim memory a caller still
/// holds.
///
/// Thread-safe: acquire/release/trim may race freely across threads.
/// Observability: `attach_metrics(prefix)` registers
/// `<prefix>mempool.hits` / `.misses` / `.recycled_bytes` counters and a
/// `<prefix>mempool.resident_bytes` gauge in the global registry, so a
/// Context's pool publishes under its session scope with no extra
/// plumbing.
class BufferPool {
 public:
  static constexpr std::size_t kAlignment = 64;
  static constexpr std::size_t kMinClassBytes = 64;

  /// Resolved AIC_MEMPOOL_BYTES budget (library default when unset).
  static std::size_t budget_from_env();

  struct State;

  /// Move-only handle over one pooled block. `size()` is the requested
  /// byte count; `capacity()` is the size-class the block actually holds.
  /// Destruction (or `reset()`) returns the block to its pool.
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& other) noexcept { swap(other); }
    Buffer& operator=(Buffer&& other) noexcept {
      if (this != &other) {
        reset();
        swap(other);
      }
      return *this;
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { reset(); }

    char* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return capacity_; }
    std::string_view view() const noexcept { return {data_, size_}; }
    explicit operator bool() const noexcept { return data_ != nullptr; }

    /// Returns the block to the pool early (no-op on an empty handle).
    void reset() noexcept;

   private:
    friend class BufferPool;
    Buffer(std::shared_ptr<State> state, char* data, std::size_t size,
           std::size_t capacity) noexcept
        : state_(std::move(state)),
          data_(data),
          size_(size),
          capacity_(capacity) {}
    void swap(Buffer& other) noexcept {
      state_.swap(other.state_);
      std::swap(data_, other.data_);
      std::swap(size_, other.size_);
      std::swap(capacity_, other.capacity_);
    }

    std::shared_ptr<State> state_;
    char* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
  };

  /// Counter snapshot (see attach_metrics for the exported names).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t recycled_bytes = 0;
    std::uint64_t trimmed_bytes = 0;
    std::size_t cached_bytes = 0;    // free, budget-capped
    std::size_t leased_bytes = 0;    // held by live Buffers
    std::size_t resident_bytes = 0;  // cached + leased
  };

  /// Budget resolved from AIC_MEMPOOL_BYTES.
  BufferPool();
  /// Explicit cached-byte budget (0 = cache nothing: every release frees).
  explicit BufferPool(std::size_t budget_bytes);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A 64-byte-aligned block of at least `bytes` bytes (contents
  /// unspecified — recycled blocks are NOT zeroed).
  Buffer acquire(std::size_t bytes);

  /// Evicts least-recently-released blocks until at most `keep_bytes`
  /// stay cached.
  void trim(std::size_t keep_bytes = 0);

  Stats stats() const;
  std::size_t budget_bytes() const;

  /// Registers `<prefix>mempool.*` instruments in the global registry and
  /// mirrors every subsequent pool event into them.
  void attach_metrics(const std::string& prefix);

 private:
  std::shared_ptr<State> state_;
};

}  // namespace aic::runtime
