#include "runtime/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "runtime/env.hpp"

namespace aic::runtime {
namespace {

int initial_level() {
  // AIC_LOG_LEVEL: debug|info|warn|error (or 0-3). Unset/unknown → info.
  const std::string raw = env_string("AIC_LOG_LEVEL", "");
  if (raw == "debug" || raw == "0") return static_cast<int>(LogLevel::kDebug);
  if (raw == "info" || raw == "1") return static_cast<int>(LogLevel::kInfo);
  if (raw == "warn" || raw == "2") return static_cast<int>(LogLevel::kWarn);
  if (raw == "error" || raw == "3") return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_level{initial_level()};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Small sequential id so log lines are greppable by thread without the
/// platform's opaque (and recycled) native handles.
std::uint32_t this_thread_log_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
#if defined(_WIN32)
  localtime_s(&tm, &secs);
#else
  localtime_r(&secs, &tm);
#endif
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%s t%u %s] %s\n", stamp, this_thread_log_id(),
               level_name(level), message.c_str());
}

}  // namespace aic::runtime
