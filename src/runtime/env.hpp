#pragma once

#include <cstddef>
#include <string>

namespace aic::runtime {

/// Reads an environment variable as a size_t; returns `fallback` when the
/// variable is unset or unparsable.
std::size_t env_size_t(const char* name, std::size_t fallback);

/// Reads an environment variable as a string; returns `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

/// True when the variable is set to a truthy value ("1", "true", "on",
/// "yes"; case-insensitive).
bool env_flag(const char* name, bool fallback = false);

}  // namespace aic::runtime
