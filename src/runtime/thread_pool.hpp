#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace aic::runtime {

/// Point-in-time counters of a ThreadPool (see ThreadPool::stats()).
struct ThreadPoolStats {
  /// Tasks that ran on a worker thread.
  std::uint64_t tasks_executed = 0;
  /// Re-entrant submits that ran inline on the calling worker instead of
  /// being queued (see ThreadPool::submit).
  std::uint64_t tasks_inlined = 0;
  /// High-water mark of the task queue since construction / reset_stats().
  std::uint64_t peak_queue_depth = 0;
};

/// A fixed-size worker pool with a single FIFO task queue.
///
/// The pool is the execution backend for `parallel_for` and for the
/// accelerator simulators' host-side math. Tasks are arbitrary
/// `void()` callables; `submit` additionally returns a future for
/// callables with a result.
///
/// Re-entry safety: a `submit` issued from one of the pool's own worker
/// threads runs inline on that worker instead of being queued. Queueing
/// would let every worker block on futures only the same pool can
/// serve — a guaranteed deadlock at size 1 and oversubscription above it.
///
/// Threads are joined in the destructor (RAII); submitting after
/// `shutdown()` throws.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` picks
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of *this* pool's workers.
  bool in_worker_thread() const noexcept;

  /// Enqueues a fire-and-forget task.
  void post(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. Called from a
  /// worker of this pool, the task runs inline on the caller and the
  /// returned future is already ready (re-entry guard, see class docs).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = packaged->get_future();
    if (in_worker_thread()) {
      tasks_inlined_.fetch_add(1, std::memory_order_relaxed);
      (*packaged)();
      return result;
    }
    post([packaged]() { (*packaged)(); });
    return result;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

  /// Stops accepting tasks and joins workers after draining the queue.
  void shutdown();

  /// Cumulative execution counters (thread-safe).
  ThreadPoolStats stats() const;

  /// Zeroes the counters returned by stats().
  void reset_stats();

  // There are intentionally no process-wide accessors or resizers here.
  // The process-default pool is owned by aic::Context (runtime/context.cpp):
  // reach it via Context::process_default().pool(), bind a session pool
  // with Context::PoolScope, and resize with Context::set_process_threads
  // — which rejects the resize while anyone holds the pool instead of
  // racing in-flight submitters.

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  // tasks_executed_ / peak_queue_depth_ are guarded by mutex_;
  // tasks_inlined_ is atomic because inline submits bypass the lock.
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t peak_queue_depth_ = 0;
  std::atomic<std::uint64_t> tasks_inlined_{0};
};

}  // namespace aic::runtime
