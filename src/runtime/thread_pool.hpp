#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace aic::runtime {

/// A fixed-size worker pool with a single FIFO task queue.
///
/// The pool is the execution backend for `parallel_for` and for the
/// accelerator simulators' host-side math. Tasks are arbitrary
/// `void()` callables; `submit` additionally returns a future for
/// callables with a result.
///
/// Threads are joined in the destructor (RAII); submitting after
/// `shutdown()` throws.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` picks
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a fire-and-forget task.
  void post(std::function<void()> task);

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = packaged->get_future();
    post([packaged]() { (*packaged)(); });
    return result;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

  /// Stops accepting tasks and joins workers after draining the queue.
  void shutdown();

  /// Process-wide pool, sized from AIC_NUM_THREADS when set.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace aic::runtime
