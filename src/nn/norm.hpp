#pragma once

#include "nn/layer.hpp"

namespace aic::nn {

/// Batch normalization over the channel axis of BCHW tensors.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode uses the running estimates.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "batchnorm2d"; }

  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_;
  float epsilon_;
  Param gamma_;  // scale, [C]
  Param beta_;   // shift, [C]
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;
  // Backward caches (training only).
  tensor::Tensor normalized_;
  std::vector<float> batch_inv_std_;
};

}  // namespace aic::nn
