#include "nn/distributed.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace aic::nn {

using tensor::Tensor;

DistributedTrainer::DistributedTrainer(Layer& model, Optimizer& optimizer,
                                       TaskKind task, std::size_t workers,
                                       GradientCompressorPtr compressor,
                                       bool error_feedback)
    : model_(model),
      optimizer_(optimizer),
      task_(task),
      workers_(workers),
      compressor_(std::move(compressor)),
      error_feedback_(error_feedback) {
  if (workers_ == 0) {
    throw std::invalid_argument("DistributedTrainer: workers must be >= 1");
  }
}

LossResult DistributedTrainer::compute_loss(const Tensor& output,
                                            const Batch& batch) {
  switch (task_) {
    case TaskKind::kClassification:
      return softmax_cross_entropy(output, batch.labels);
    case TaskKind::kRegression:
      return mse_loss(output, batch.target);
    case TaskKind::kSegmentation:
      return bce_with_logits(output, batch.target);
  }
  throw std::logic_error("unknown task");
}

double DistributedTrainer::train_epoch(const std::vector<Batch>& batches) {
  const std::vector<Param*> params = model_.params();
  double total_loss = 0.0;
  std::size_t batch_count = 0;

  for (std::size_t group = 0; group < batches.size(); group += workers_) {
    const std::size_t group_size =
        std::min(workers_, batches.size() - group);

    // Accumulated (post-wire) gradients for this synchronous step.
    std::vector<Tensor> averaged;
    averaged.reserve(params.size());
    for (Param* p : params) averaged.emplace_back(p->value.shape());

    for (std::size_t worker = 0; worker < group_size; ++worker) {
      const Batch& batch = batches[group + worker];
      optimizer_.zero_grad();
      const Tensor output = model_.forward(batch.input, /*train=*/true);
      const LossResult loss = compute_loss(output, batch);
      model_.backward(loss.grad);
      total_loss += loss.value;
      ++batch_count;

      // The worker's gradients traverse the interconnect.
      if (error_feedback_ && residuals_.size() < workers_) {
        residuals_.resize(workers_);
      }
      if (error_feedback_ && residuals_[worker].empty()) {
        residuals_[worker].reserve(params.size());
        for (Param* p : params) {
          residuals_[worker].emplace_back(p->value.shape());
        }
      }
      for (std::size_t i = 0; i < params.size(); ++i) {
        const Tensor& raw = params[i]->grad;
        stats_.raw_bytes += raw.size_bytes();
        Tensor wire = raw;
        if (compressor_) {
          Tensor to_send = raw;
          if (error_feedback_) {
            tensor::axpy(to_send, residuals_[worker][i], 1.0f);
          }
          wire = compressor_->round_trip(to_send);
          if (error_feedback_) {
            residuals_[worker][i] = tensor::sub(to_send, wire);
          }
          stats_.compressed_bytes += compressor_->wire_bytes(raw);
        } else {
          stats_.compressed_bytes += raw.size_bytes();
        }
        tensor::axpy(averaged[i], wire,
                     1.0f / static_cast<float>(group_size));
      }
    }

    // Apply the averaged (possibly lossy) gradients through the shared
    // optimizer — all replicas stay in lockstep by construction.
    optimizer_.zero_grad();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->grad = averaged[i];
    }
    optimizer_.step();
    ++stats_.steps;
  }
  return batch_count == 0 ? 0.0
                          : total_loss / static_cast<double>(batch_count);
}

Trainer::EvalResult DistributedTrainer::evaluate(
    const std::vector<Batch>& batches) {
  Trainer::EvalResult result;
  if (batches.empty()) return result;
  for (const Batch& batch : batches) {
    const Tensor output = model_.forward(batch.input, /*train=*/false);
    result.loss += compute_loss(output, batch).value;
    switch (task_) {
      case TaskKind::kClassification:
        result.accuracy += accuracy(output, batch.labels);
        break;
      case TaskKind::kSegmentation:
        result.accuracy += pixel_accuracy(output, batch.target);
        break;
      case TaskKind::kRegression:
        break;
    }
  }
  result.loss /= static_cast<double>(batches.size());
  result.accuracy /= static_cast<double>(batches.size());
  return result;
}

}  // namespace aic::nn
