#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace aic::nn {

/// Optimizer over a fixed parameter set. `step()` consumes accumulated
/// gradients; `zero_grad()` resets them for the next batch.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

 protected:
  std::vector<Param*> params_;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void step() override;

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f);

  void step() override;

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::size_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

}  // namespace aic::nn
