#include "nn/unet.hpp"

#include <stdexcept>

#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  if (a.shape()[0] != b.shape()[0] || a.shape()[2] != b.shape()[2] ||
      a.shape()[3] != b.shape()[3]) {
    throw std::invalid_argument("concat_channels: incompatible shapes");
  }
  const std::size_t batch = a.shape()[0];
  const std::size_t ca = a.shape()[1];
  const std::size_t cb = b.shape()[1];
  Tensor out(Shape::bchw(batch, ca + cb, a.shape()[2], a.shape()[3]));
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ca; ++c) {
      out.set_plane(n, c, a.slice_plane(n, c));
    }
    for (std::size_t c = 0; c < cb; ++c) {
      out.set_plane(n, ca + c, b.slice_plane(n, c));
    }
  }
  return out;
}

std::pair<Tensor, Tensor> split_channels(const Tensor& grad,
                                         std::size_t first_channels) {
  const std::size_t batch = grad.shape()[0];
  const std::size_t total = grad.shape()[1];
  const std::size_t rest = total - first_channels;
  Tensor a(Shape::bchw(batch, first_channels, grad.shape()[2], grad.shape()[3]));
  Tensor b(Shape::bchw(batch, rest, grad.shape()[2], grad.shape()[3]));
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < first_channels; ++c) {
      a.set_plane(n, c, grad.slice_plane(n, c));
    }
    for (std::size_t c = 0; c < rest; ++c) {
      b.set_plane(n, c, grad.slice_plane(n, first_channels + c));
    }
  }
  return {std::move(a), std::move(b)};
}

UNetMini::UNetMini(std::size_t in_channels, std::size_t base_channels,
                   std::size_t out_channels, runtime::Rng& rng)
    : base_channels_(base_channels) {
  enc1_.add(std::make_unique<Conv2d>(in_channels, base_channels, 3, 1, 1, rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(base_channels, base_channels, 3, 1, 1,
                                    rng))
      .add(std::make_unique<Relu>());
  enc2_.add(std::make_unique<Conv2d>(base_channels, 2 * base_channels, 3, 1,
                                     1, rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(2 * base_channels, 2 * base_channels, 3,
                                    1, 1, rng))
      .add(std::make_unique<Relu>());
  dec_.add(std::make_unique<Conv2d>(3 * base_channels, base_channels, 3, 1, 1,
                                    rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(base_channels, out_channels, 1, 1, 0,
                                    rng));
}

Tensor UNetMini::forward(const Tensor& input, bool train) {
  enc1_out_ = enc1_.forward(input, train);
  const Tensor down = pool_.forward(enc1_out_, train);
  const Tensor deep = enc2_.forward(down, train);
  const Tensor up = up_.forward(deep, train);
  const Tensor merged = concat_channels(enc1_out_, up);
  return dec_.forward(merged, train);
}

Tensor UNetMini::backward(const Tensor& grad_output) {
  const Tensor grad_merged = dec_.backward(grad_output);
  auto [grad_skip, grad_up] = split_channels(grad_merged, base_channels_);
  const Tensor grad_deep = up_.backward(grad_up);
  const Tensor grad_down = enc2_.backward(grad_deep);
  Tensor grad_enc1 = pool_.backward(grad_down);
  tensor::axpy(grad_enc1, grad_skip, 1.0f);  // skip path contribution
  return enc1_.backward(grad_enc1);
}

std::vector<Param*> UNetMini::params() {
  std::vector<Param*> all = enc1_.params();
  for (Param* p : enc2_.params()) all.push_back(p);
  for (Param* p : dec_.params()) all.push_back(p);
  return all;
}

}  // namespace aic::nn
