#pragma once

#include "core/codec.hpp"
#include "nn/layer.hpp"

namespace aic::nn {

/// Activation compression (§2.2 / Fig. 1 "blue targets", §6 future
/// work): wraps a layer and round-trips its *output* through a fixed-
/// rate codec during the forward pass, modeling activations stored
/// compressed between forward and backward.
///
/// The backward pass uses the straight-through estimator: gradients flow
/// through the codec unchanged. That is exactly the approximation
/// activation-compression systems like ActNN/COMET make — the stored
/// (compressed) activation perturbs downstream computation, but the
/// codec itself is treated as identity for differentiation.
class CompressedActivation final : public Layer {
 public:
  CompressedActivation(LayerPtr inner, core::CodecPtr codec)
      : inner_(std::move(inner)), codec_(std::move(codec)) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override {
    const tensor::Tensor raw = inner_->forward(input, train);
    if (!codec_ || !train) return raw;
    return codec_->round_trip(raw);
  }

  tensor::Tensor backward(const tensor::Tensor& grad_output) override {
    // Straight-through: d(codec)/d(x) ≈ I.
    return inner_->backward(grad_output);
  }

  std::vector<Param*> params() override { return inner_->params(); }
  std::string name() const override {
    return "compressed(" + inner_->name() + ")";
  }

  const core::Codec* codec() const { return codec_.get(); }

 private:
  LayerPtr inner_;
  core::CodecPtr codec_;
};

}  // namespace aic::nn
