#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace aic::nn {

/// The three task families of Table 3: image classification (classify),
/// dense regression (em_denoise / optical_damage), and per-pixel
/// segmentation (slstr_cloud).
enum class TaskKind { kClassification, kRegression, kSegmentation };

/// One minibatch. `labels` is used by classification; `target` by the
/// dense tasks (and ignored by classification).
struct Batch {
  tensor::Tensor input;
  tensor::Tensor target;
  std::vector<std::size_t> labels;
};

/// Per-epoch record matching the series of Figs. 7/8.
struct EpochMetrics {
  double train_loss = 0.0;
  double test_loss = 0.0;
  double test_accuracy = 0.0;  // top-1 or pixel accuracy; 0 for regression
};

/// Drives the §4.1 experimental loop: the codec models *dataset
/// compression*, so every input batch — training and evaluation alike —
/// is compressed and immediately decompressed before the forward pass
/// ("each batch is first compressed and then decompressed", §4.2.1).
/// Targets/labels are never compressed. The "base" series passes a null
/// codec and reads pristine data.
class Trainer {
 public:
  /// `codec == nullptr` is the paper's "base" (no compression) series.
  /// `ctx` is the session the run executes in (pool binding for the
  /// forward/backward kernels and the train.* metric scope).
  Trainer(Layer& model, Optimizer& optimizer, TaskKind task,
          core::CodecPtr codec = nullptr,
          Context ctx = Context::process_default());

  /// Builds the codec through core::CodecFactory into `ctx`.
  /// Shape-agnostic specs (no h=/w= keys) let one trainer consume batches
  /// of different resolutions in a single run — plans are resolved per
  /// batch shape from the context's PlanCache, so no operands are rebuilt.
  Trainer(Layer& model, Optimizer& optimizer, TaskKind task,
          const std::string& codec_spec,
          Context ctx = Context::process_default());

  /// One pass over the training batches; returns the mean batch loss.
  double train_epoch(const std::vector<Batch>& batches);

  struct EvalResult {
    double loss = 0.0;
    double accuracy = 0.0;
  };
  /// Loss (and accuracy where defined) over the evaluation batches.
  EvalResult evaluate(const std::vector<Batch>& batches);

  /// train_epoch + evaluate for `epochs` rounds.
  std::vector<EpochMetrics> fit(const std::vector<Batch>& train,
                                const std::vector<Batch>& test,
                                std::size_t epochs);

  const core::Codec* codec() const { return codec_.get(); }

 private:
  LossResult compute_loss(const tensor::Tensor& output, const Batch& batch);

  Layer& model_;
  Optimizer& optimizer_;
  TaskKind task_;
  core::CodecPtr codec_;
  Context ctx_;
};

}  // namespace aic::nn
