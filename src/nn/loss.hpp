#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace aic::nn {

/// Loss value plus the gradient with respect to the model output.
struct LossResult {
  double value = 0.0;
  tensor::Tensor grad;
};

/// Softmax cross-entropy over [B, K, 1, 1] logits with integer labels.
/// Gradient is (softmax − onehot)/B.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::size_t>& labels);

/// Top-1 accuracy of [B, K, 1, 1] logits against labels.
double accuracy(const tensor::Tensor& logits,
                const std::vector<std::size_t>& labels);

/// Mean squared error between same-shaped tensors; gradient is
/// 2(pred − target)/N.
LossResult mse_loss(const tensor::Tensor& prediction,
                    const tensor::Tensor& target);

/// Numerically stable per-element binary cross-entropy on logits with
/// {0,1} targets; gradient is (sigmoid − target)/N.
LossResult bce_with_logits(const tensor::Tensor& logits,
                           const tensor::Tensor& targets);

/// Fraction of pixels whose thresholded sigmoid matches the target mask.
double pixel_accuracy(const tensor::Tensor& logits,
                      const tensor::Tensor& targets);

}  // namespace aic::nn
