#pragma once

#include "nn/container.hpp"
#include "nn/layer.hpp"

namespace aic::nn {

/// A compact two-level UNet for dense per-pixel prediction — the
/// slstr_cloud segmentation architecture of Table 3, scaled to the
/// synthetic dataset resolution.
///
///   enc1 ── pool ── enc2 ── up ── concat(enc1) ── dec ── head
///
/// Skip connections concatenate encoder features with the upsampled
/// decoder path along the channel axis.
class UNetMini final : public Layer {
 public:
  UNetMini(std::size_t in_channels, std::size_t base_channels,
           std::size_t out_channels, runtime::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "unet-mini"; }

 private:
  Sequential enc1_;
  MaxPool2d pool_;
  Sequential enc2_;
  UpsampleNearest2x up_;
  Sequential dec_;
  std::size_t base_channels_;
  tensor::Tensor enc1_out_;  // cached for the skip connection
};

/// Channel-axis concatenation helpers used by the UNet skip path.
tensor::Tensor concat_channels(const tensor::Tensor& a,
                               const tensor::Tensor& b);
/// Splits a channel-concatenated gradient back into the two parts.
std::pair<tensor::Tensor, tensor::Tensor> split_channels(
    const tensor::Tensor& grad, std::size_t first_channels);

}  // namespace aic::nn
