#include "nn/gradient_compression.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aic::nn {

using tensor::Tensor;

TopKCompressor::TopKCompressor(double fraction) : fraction_(fraction) {
  if (!(fraction_ > 0.0) || fraction_ > 1.0) {
    throw std::invalid_argument("TopKCompressor: fraction must be in (0, 1]");
  }
}

Tensor TopKCompressor::round_trip(const Tensor& grad) {
  const std::size_t n = grad.numel();
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fraction_ * n)));
  if (keep >= n) return grad;

  // nth_element on magnitudes to find the keep-threshold.
  std::vector<float> magnitudes(n);
  for (std::size_t i = 0; i < n; ++i) {
    magnitudes[i] = std::fabs(grad.at(i));
  }
  std::nth_element(magnitudes.begin(), magnitudes.begin() + (keep - 1),
                   magnitudes.end(), std::greater<>());
  const float threshold = magnitudes[keep - 1];

  Tensor out(grad.shape());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n && kept < keep; ++i) {
    if (std::fabs(grad.at(i)) >= threshold) {
      out.at(i) = grad.at(i);
      ++kept;
    }
  }
  return out;
}

std::size_t TopKCompressor::wire_bytes(const Tensor& grad) const {
  const std::size_t keep = std::max<std::size_t>(
      1,
      static_cast<std::size_t>(std::llround(fraction_ * grad.numel())));
  return keep * (sizeof(float) + sizeof(std::uint32_t));  // (value, index)
}

std::string TopKCompressor::name() const {
  std::ostringstream out;
  out << "topk(" << fraction_ << ")";
  return out.str();
}

QsgdCompressor::QsgdCompressor(std::size_t levels, std::uint64_t seed)
    : levels_(levels), rng_(seed) {
  if (levels_ == 0) {
    throw std::invalid_argument("QsgdCompressor: levels must be >= 1");
  }
}

Tensor QsgdCompressor::round_trip(const Tensor& grad) {
  double norm_sq = 0.0;
  for (float v : grad.data()) {
    norm_sq += static_cast<double>(v) * v;
  }
  const double norm = std::sqrt(norm_sq);
  Tensor out(grad.shape());
  if (norm == 0.0) return out;

  const double s = static_cast<double>(levels_);
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const double v = grad.at(i);
    const double scaled = std::fabs(v) / norm * s;  // in [0, s]
    const double floor_level = std::floor(scaled);
    const double probability = scaled - floor_level;
    const double level =
        floor_level + (rng_.uniform() < probability ? 1.0 : 0.0);
    out.at(i) = static_cast<float>((v < 0 ? -1.0 : 1.0) * norm * level / s);
  }
  return out;
}

std::size_t QsgdCompressor::wire_bytes(const Tensor& grad) const {
  // sign + ceil(log2(levels+1)) bits per entry, plus the fp32 norm.
  const double bits_per_entry =
      1.0 + std::ceil(std::log2(static_cast<double>(levels_) + 1.0));
  return static_cast<std::size_t>(
             std::ceil(bits_per_entry * static_cast<double>(grad.numel()) /
                       8.0)) +
         sizeof(float);
}

std::string QsgdCompressor::name() const {
  std::ostringstream out;
  out << "qsgd(levels=" << levels_ << ")";
  return out.str();
}

}  // namespace aic::nn
