#include "nn/container.hpp"

#include "nn/conv2d.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {

using tensor::Tensor;

Sequential& Sequential::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, train);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

ResidualBlock::ResidualBlock(std::size_t in_channels,
                             std::size_t out_channels, std::size_t stride,
                             runtime::Rng& rng) {
  body_.add(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                     rng))
      .add(std::make_unique<BatchNorm2d>(out_channels))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng))
      .add(std::make_unique<BatchNorm2d>(out_channels));
  if (stride != 1 || in_channels != out_channels) {
    projection_ =
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  const Tensor f = body_.forward(input, train);
  const Tensor skip =
      projection_ ? projection_->forward(input, train) : input;
  return final_relu_.forward(tensor::add(f, skip), train);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  const Tensor g = final_relu_.backward(grad_output);
  Tensor grad_input = body_.backward(g);
  if (projection_) {
    tensor::axpy(grad_input, projection_->backward(g), 1.0f);
  } else {
    tensor::axpy(grad_input, g, 1.0f);
  }
  return grad_input;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> all = body_.params();
  if (projection_) {
    for (Param* p : projection_->params()) all.push_back(p);
  }
  return all;
}

}  // namespace aic::nn
