#include "nn/models.hpp"

#include "nn/conv2d.hpp"
#include "nn/norm.hpp"
#include "nn/unet.hpp"

namespace aic::nn {

LayerPtr make_resnet_classifier(std::size_t in_channels,
                                std::size_t num_classes, runtime::Rng& rng,
                                std::size_t base_channels) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(in_channels, base_channels, 3, 1, 1, rng))
      .add(std::make_unique<BatchNorm2d>(base_channels))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<ResidualBlock>(base_channels, base_channels, 1,
                                           rng))
      .add(std::make_unique<ResidualBlock>(base_channels, 2 * base_channels,
                                           2, rng))
      .add(std::make_unique<ResidualBlock>(2 * base_channels,
                                           4 * base_channels, 2, rng))
      .add(std::make_unique<GlobalAvgPool>())
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Linear>(4 * base_channels, num_classes, rng));
  return net;
}

LayerPtr make_encoder_decoder(std::size_t channels, runtime::Rng& rng,
                              std::size_t base_channels) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(channels, base_channels, 3, 1, 1, rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<MaxPool2d>())
      .add(std::make_unique<Conv2d>(base_channels, 2 * base_channels, 3, 1, 1,
                                    rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<UpsampleNearest2x>())
      .add(std::make_unique<Conv2d>(2 * base_channels, base_channels, 3, 1, 1,
                                    rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(base_channels, channels, 1, 1, 0, rng));
  return net;
}

LayerPtr make_autoencoder(std::size_t channels, runtime::Rng& rng,
                          std::size_t base_channels) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(channels, base_channels, 3, 1, 1, rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<MaxPool2d>())
      .add(std::make_unique<Conv2d>(base_channels, base_channels / 2, 3, 1, 1,
                                    rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<Conv2d>(base_channels / 2, base_channels, 3, 1, 1,
                                    rng))
      .add(std::make_unique<Relu>())
      .add(std::make_unique<UpsampleNearest2x>())
      .add(std::make_unique<Conv2d>(base_channels, channels, 3, 1, 1, rng))
      .add(std::make_unique<Sigmoid>());
  return net;
}

LayerPtr make_unet(std::size_t in_channels, std::size_t out_channels,
                   runtime::Rng& rng, std::size_t base_channels) {
  return std::make_unique<UNetMini>(in_channels, base_channels, out_channels,
                                    rng);
}

}  // namespace aic::nn
