#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace aic::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Relu::forward(const Tensor& input, bool) {
  input_ = input;
  return tensor::map(input, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad(grad_output.shape());
  const auto in = input_.data();
  const auto go = grad_output.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = in[i] > 0.0f ? go[i] : 0.0f;
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool) {
  output_ = tensor::map(
      input, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  return output_;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad(grad_output.shape());
  const auto y = output_.data();
  const auto go = grad_output.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = go[i] * y[i] * (1.0f - y[i]);
  }
  return grad;
}

Linear::Linear(std::size_t in_features, std::size_t out_features,
               runtime::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::normal(
          Shape::matrix(out_features, in_features), rng, 0.0f,
          std::sqrt(2.0f / static_cast<float>(in_features)))),
      bias_(Tensor(Shape::vector(out_features))) {}

Tensor Linear::forward(const Tensor& input, bool) {
  if (input.shape().rank() != 4 || input.shape()[1] != in_features_ ||
      input.shape()[2] != 1 || input.shape()[3] != 1) {
    throw std::invalid_argument("Linear: expected [B, " +
                                std::to_string(in_features_) + ", 1, 1]");
  }
  input_ = input;
  const std::size_t batch = input.shape()[0];
  Tensor out(Shape::bchw(batch, out_features_, 1, 1));
  // x [B, F] times Wᵀ [F, O] — transpose folded into the kernel's packing
  // stage, no materialized Wᵀ copy.
  const Tensor x = input.reshaped(Shape::matrix(batch, in_features_));
  Tensor y(Shape::matrix(batch, out_features_));
  tensor::matmul_into(x, weight_.value, y, tensor::Trans::kNo,
                      tensor::Trans::kYes);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_features_; ++o) {
      out.at(b, o, 0, 0) = y.at(b, o) + bias_.value.at(o);
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.shape()[0];
  const Tensor go =
      grad_output.reshaped(Shape::matrix(batch, out_features_));
  const Tensor x = input_.reshaped(Shape::matrix(batch, in_features_));
  // dW += goᵀ · x ; db = Σ_b go ; dx = go · W. The transpose flag avoids
  // a goᵀ copy, and accumulate=true folds the gradient sum into the
  // kernel instead of a dw temporary + axpy pass.
  tensor::matmul_into(go, x, weight_.grad, tensor::Trans::kYes,
                      tensor::Trans::kNo, /*accumulate=*/true);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_features_; ++o) {
      bias_.grad.at(o) += go.at(b, o);
    }
  }
  Tensor dx(Shape::matrix(batch, in_features_));
  tensor::matmul_into(go, weight_.value, dx);
  return dx.reshaped(input_.shape());
}

Tensor Flatten::forward(const Tensor& input, bool) {
  input_shape_ = input.shape();
  return input.reshaped(
      Shape::bchw(input.shape()[0], input.numel() / input.shape()[0], 1, 1));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

Tensor MaxPool2d::forward(const Tensor& input, bool) {
  input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("MaxPool2d: odd spatial dims");
  }
  Tensor out(Shape::bchw(batch, channels, h / 2, w / 2));
  argmax_.assign(out.numel(), 0);
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < h; i += 2) {
        for (std::size_t j = 0; j < w; j += 2) {
          float best = input.at(b, c, i, j);
          std::size_t best_index =
              ((b * channels + c) * h + i) * w + j;
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              const float v = input.at(b, c, i + di, j + dj);
              if (v > best) {
                best = v;
                best_index = ((b * channels + c) * h + i + di) * w + j + dj;
              }
            }
          }
          out.at(cursor) = best;
          argmax_[cursor] = best_index;
          ++cursor;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad.at(argmax_[i]) += grad_output.at(i);
  }
  return grad;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool) {
  input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t spatial = input.shape()[2] * input.shape()[3];
  Tensor out(Shape::bchw(batch, channels, 1, 1));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      double acc = 0.0;
      for (std::size_t h = 0; h < input.shape()[2]; ++h) {
        for (std::size_t w = 0; w < input.shape()[3]; ++w) {
          acc += input.at(b, c, h, w);
        }
      }
      out.at(b, c, 0, 0) = static_cast<float>(acc / spatial);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  const float inv =
      1.0f / static_cast<float>(input_shape_[2] * input_shape_[3]);
  for (std::size_t b = 0; b < input_shape_[0]; ++b) {
    for (std::size_t c = 0; c < input_shape_[1]; ++c) {
      const float g = grad_output.at(b, c, 0, 0) * inv;
      for (std::size_t h = 0; h < input_shape_[2]; ++h) {
        for (std::size_t w = 0; w < input_shape_[3]; ++w) {
          grad.at(b, c, h, w) = g;
        }
      }
    }
  }
  return grad;
}

Tensor UpsampleNearest2x::forward(const Tensor& input, bool) {
  input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  Tensor out(Shape::bchw(batch, channels, 2 * h, 2 * w));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          const float v = input.at(b, c, i, j);
          out.at(b, c, 2 * i, 2 * j) = v;
          out.at(b, c, 2 * i, 2 * j + 1) = v;
          out.at(b, c, 2 * i + 1, 2 * j) = v;
          out.at(b, c, 2 * i + 1, 2 * j + 1) = v;
        }
      }
    }
  }
  return out;
}

Tensor UpsampleNearest2x::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  for (std::size_t b = 0; b < input_shape_[0]; ++b) {
    for (std::size_t c = 0; c < input_shape_[1]; ++c) {
      for (std::size_t i = 0; i < input_shape_[2]; ++i) {
        for (std::size_t j = 0; j < input_shape_[3]; ++j) {
          grad.at(b, c, i, j) = grad_output.at(b, c, 2 * i, 2 * j) +
                                grad_output.at(b, c, 2 * i, 2 * j + 1) +
                                grad_output.at(b, c, 2 * i + 1, 2 * j) +
                                grad_output.at(b, c, 2 * i + 1, 2 * j + 1);
        }
      }
    }
  }
  return grad;
}

}  // namespace aic::nn
