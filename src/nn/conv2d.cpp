#include "nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/matmul.hpp"
#include "tensor/gemm_kernels.hpp"

namespace aic::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::size_t conv_out(std::size_t extent, std::size_t kernel,
                     std::size_t stride, std::size_t padding) {
  return (extent + 2 * padding - kernel) / stride + 1;
}

}  // namespace

Tensor im2col(const Tensor& input, std::size_t sample, std::size_t kernel,
              std::size_t stride, std::size_t padding) {
  const std::size_t channels = input.shape()[1];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  const std::size_t oh = conv_out(h, kernel, stride, padding);
  const std::size_t ow = conv_out(w, kernel, stride, padding);
  Tensor columns(Shape::matrix(channels * kernel * kernel, oh * ow));
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kernel; ++ki) {
      for (std::size_t kj = 0; kj < kernel; ++kj) {
        const std::size_t row = (c * kernel + ki) * kernel + kj;
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi * stride + ki) -
              static_cast<std::ptrdiff_t>(padding);
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(oj * stride + kj) -
                static_cast<std::ptrdiff_t>(padding);
            float value = 0.0f;
            if (ii >= 0 && jj >= 0 && ii < static_cast<std::ptrdiff_t>(h) &&
                jj < static_cast<std::ptrdiff_t>(w)) {
              value = input.at(sample, c, static_cast<std::size_t>(ii),
                               static_cast<std::size_t>(jj));
            }
            columns.at(row, oi * ow + oj) = value;
          }
        }
      }
    }
  }
  return columns;
}

void col2im(const Tensor& columns, Tensor& grad_input, std::size_t sample,
            std::size_t kernel, std::size_t stride, std::size_t padding) {
  const std::size_t channels = grad_input.shape()[1];
  const std::size_t h = grad_input.shape()[2];
  const std::size_t w = grad_input.shape()[3];
  const std::size_t oh = conv_out(h, kernel, stride, padding);
  const std::size_t ow = conv_out(w, kernel, stride, padding);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kernel; ++ki) {
      for (std::size_t kj = 0; kj < kernel; ++kj) {
        const std::size_t row = (c * kernel + ki) * kernel + kj;
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi * stride + ki) -
              static_cast<std::ptrdiff_t>(padding);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(oj * stride + kj) -
                static_cast<std::ptrdiff_t>(padding);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) continue;
            grad_input.at(sample, c, static_cast<std::size_t>(ii),
                          static_cast<std::size_t>(jj)) +=
                columns.at(row, oi * ow + oj);
          }
        }
      }
    }
  }
}

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               runtime::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(Tensor::normal(
          Shape::matrix(out_channels, in_channels * kernel * kernel), rng,
          0.0f,
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel)))),
      bias_(Tensor(Shape::vector(out_channels))) {}

Tensor Conv2d::forward(const Tensor& input, bool) {
  if (input.shape().rank() != 4 || input.shape()[1] != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input shape " +
                                input.shape().to_string());
  }
  input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  out_h_ = conv_out(input.shape()[2], kernel_, stride_, padding_);
  out_w_ = conv_out(input.shape()[3], kernel_, stride_, padding_);
  const std::size_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::size_t col_cols = out_h_ * out_w_;

  // Cache all per-sample column matrices stacked for backward.
  columns_ = Tensor(Shape({batch, col_rows, col_cols}));
  Tensor out(Shape::bchw(batch, out_channels_, out_h_, out_w_));
  for (std::size_t b = 0; b < batch; ++b) {
    const Tensor cols = im2col(input, b, kernel_, stride_, padding_);
    std::copy(cols.raw(), cols.raw() + cols.numel(),
              columns_.raw() + b * col_rows * col_cols);
    Tensor y(Shape::matrix(out_channels_, col_cols));
    tensor::matmul_into(weight_.value, cols, y);
    for (std::size_t o = 0; o < out_channels_; ++o) {
      const float bias = bias_.value.at(o);
      for (std::size_t s = 0; s < col_cols; ++s) {
        out.at(((b * out_channels_ + o) * out_h_ + s / out_w_) * out_w_ +
               s % out_w_) = y.at(o, s) + bias;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t batch = input_shape_[0];
  const std::size_t col_rows = in_channels_ * kernel_ * kernel_;
  const std::size_t col_cols = out_h_ * out_w_;
  Tensor grad_input(input_shape_);

  for (std::size_t b = 0; b < batch; ++b) {
    // go_mat: [out_channels, H'·W'] slice of the output gradient.
    Tensor go(Shape::matrix(out_channels_, col_cols));
    for (std::size_t o = 0; o < out_channels_; ++o) {
      for (std::size_t s = 0; s < col_cols; ++s) {
        go.at(o, s) = grad_output.at(b, o, s / out_w_, s % out_w_);
      }
    }
    // dW += go · colsᵀ ; db += Σ_s go ; dcols = Wᵀ · go. The sample's
    // column matrix is used in place inside the stacked columns_ cache
    // (no copy), and both transposes are packing flags, not temporaries.
    const float* cols = columns_.raw() + b * col_rows * col_cols;
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, out_channels_,
                 col_rows, col_cols, go.raw(), col_cols, cols, col_cols,
                 weight_.grad.raw(), col_rows, /*accumulate=*/true);
    for (std::size_t o = 0; o < out_channels_; ++o) {
      double acc = 0.0;
      for (std::size_t s = 0; s < col_cols; ++s) acc += go.at(o, s);
      bias_.grad.at(o) += static_cast<float>(acc);
    }
    Tensor dcols(Shape::matrix(col_rows, col_cols));
    tensor::matmul_into(weight_.value, go, dcols, tensor::Trans::kYes,
                        tensor::Trans::kNo);
    col2im(dcols, grad_input, b, kernel_, stride_, padding_);
  }
  return grad_input;
}

}  // namespace aic::nn
