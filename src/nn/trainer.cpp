#include "nn/trainer.hpp"

#include <stdexcept>

#include "core/codec_factory.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/cpu_features.hpp"
#include "runtime/timer.hpp"

namespace aic::nn {

using tensor::Tensor;

Trainer::Trainer(Layer& model, Optimizer& optimizer, TaskKind task,
                 core::CodecPtr codec, Context ctx)
    : model_(model),
      optimizer_(optimizer),
      task_(task),
      codec_(std::move(codec)),
      ctx_(std::move(ctx)) {
  // A long-lived training run is exactly what the continuous-telemetry
  // stack exists for: AIC_OBS_PORT / AIC_METRICS_EXPORT_MS /
  // AIC_METRICS_JSONL / AIC_FLIGHT light it up here so a Prometheus
  // scrape works against a live fit() without any CLI involvement.
  // Idempotent — each leg starts at most once per process.
  obs::flight::set_provenance("cpu_backend", runtime::kernel_backend_name());
  obs::observability_bootstrap_from_env();
}

Trainer::Trainer(Layer& model, Optimizer& optimizer, TaskKind task,
                 const std::string& codec_spec, Context ctx)
    : Trainer(model, optimizer, task, core::make_codec(codec_spec, ctx),
              ctx) {}

LossResult Trainer::compute_loss(const Tensor& output, const Batch& batch) {
  switch (task_) {
    case TaskKind::kClassification:
      return softmax_cross_entropy(output, batch.labels);
    case TaskKind::kRegression:
      return mse_loss(output, batch.target);
    case TaskKind::kSegmentation:
      return bce_with_logits(output, batch.target);
  }
  throw std::logic_error("unknown task");
}

double Trainer::train_epoch(const std::vector<Batch>& batches) {
  AIC_TRACE_SCOPE("train.epoch");
  // Forward/backward kernels (and any codec with a different context)
  // fan out on this trainer's session pool.
  Context::PoolScope pool_scope(ctx_);
  obs::Histogram& batch_latency = ctx_.histogram("train.batch.ns");
  double total = 0.0;
  for (const Batch& batch : batches) {
    AIC_TRACE_SCOPE("train.batch");
    runtime::Timer timer;
    // §4.1: "each batch is first compressed and then decompressed, so
    // that increasing levels of loss ... can be studied".
    Tensor input = batch.input;
    if (codec_) {
      AIC_TRACE_SCOPE("train.compress");
      input = codec_->round_trip(batch.input);
    }
    Tensor output;
    {
      AIC_TRACE_SCOPE("train.forward");
      output = model_.forward(input, /*train=*/true);
    }
    const LossResult loss = compute_loss(output, batch);
    {
      AIC_TRACE_SCOPE("train.backward");
      optimizer_.zero_grad();
      model_.backward(loss.grad);
      optimizer_.step();
    }
    total += loss.value;
    batch_latency.record(timer.nanos());
  }
  return batches.empty() ? 0.0 : total / static_cast<double>(batches.size());
}

Trainer::EvalResult Trainer::evaluate(const std::vector<Batch>& batches) {
  AIC_TRACE_SCOPE("train.evaluate");
  Context::PoolScope pool_scope(ctx_);
  EvalResult result;
  if (batches.empty()) return result;
  for (const Batch& batch : batches) {
    // Dataset compression applies to evaluation reads too: the stored
    // test samples pass through the same codec pipeline.
    const Tensor input =
        codec_ ? codec_->round_trip(batch.input) : batch.input;
    const Tensor output = model_.forward(input, /*train=*/false);
    result.loss += compute_loss(output, batch).value;
    switch (task_) {
      case TaskKind::kClassification:
        result.accuracy += accuracy(output, batch.labels);
        break;
      case TaskKind::kSegmentation:
        result.accuracy += pixel_accuracy(output, batch.target);
        break;
      case TaskKind::kRegression:
        break;
    }
  }
  result.loss /= static_cast<double>(batches.size());
  result.accuracy /= static_cast<double>(batches.size());
  return result;
}

std::vector<EpochMetrics> Trainer::fit(const std::vector<Batch>& train,
                                       const std::vector<Batch>& test,
                                       std::size_t epochs) {
  std::vector<EpochMetrics> history;
  history.reserve(epochs);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    EpochMetrics metrics;
    metrics.train_loss = train_epoch(train);
    const EvalResult eval = evaluate(test);
    metrics.test_loss = eval.loss;
    metrics.test_accuracy = eval.accuracy;
    history.push_back(metrics);
  }
  return history;
}

}  // namespace aic::nn
