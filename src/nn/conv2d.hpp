#pragma once

#include "nn/layer.hpp"

namespace aic::nn {

/// 2-D convolution over BCHW tensors, lowered to im2col + matmul — the
/// same lowering the accelerators' compilers use, keeping the training
/// substrate dominated by the operation every platform optimizes (§3.2).
class Conv2d final : public Layer {
 public:
  /// Square kernel, symmetric padding. Output spatial size is
  /// (H + 2·padding − kernel)/stride + 1.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         runtime::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "conv2d"; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Param weight_;  // [out, in·k·k]
  Param bias_;    // [out]
  tensor::Tensor columns_;  // cached im2col matrix [B·H'·W' rows grouped]
  tensor::Shape input_shape_;
  std::size_t out_h_ = 0;
  std::size_t out_w_ = 0;
};

/// Unfolds one batch sample into a [C·k·k, H'·W'] column matrix.
tensor::Tensor im2col(const tensor::Tensor& input, std::size_t sample,
                      std::size_t kernel, std::size_t stride,
                      std::size_t padding);

/// Transpose of im2col: folds a column-gradient matrix back into an
/// input-shaped gradient for one sample (accumulating).
void col2im(const tensor::Tensor& columns, tensor::Tensor& grad_input,
            std::size_t sample, std::size_t kernel, std::size_t stride,
            std::size_t padding);

}  // namespace aic::nn
