#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace aic::nn {

using tensor::Shape;
using tensor::Tensor;

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::full(Shape::vector(channels), 1.0f)),
      beta_(Tensor(Shape::vector(channels))),
      running_mean_(Shape::vector(channels)),
      running_var_(Tensor::full(Shape::vector(channels), 1.0f)) {}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  if (input.shape().rank() != 4 || input.shape()[1] != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input shape");
  }
  const std::size_t batch = input.shape()[0];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  const std::size_t count = batch * h * w;

  Tensor out(input.shape());
  normalized_ = Tensor(input.shape());
  batch_inv_std_.assign(channels_, 0.0f);

  for (std::size_t c = 0; c < channels_; ++c) {
    double mean, var;
    if (train) {
      double acc = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t i = 0; i < h; ++i) {
          for (std::size_t j = 0; j < w; ++j) acc += input.at(b, c, i, j);
        }
      }
      mean = acc / count;
      double acc_sq = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t i = 0; i < h; ++i) {
          for (std::size_t j = 0; j < w; ++j) {
            const double d = input.at(b, c, i, j) - mean;
            acc_sq += d * d;
          }
        }
      }
      var = acc_sq / count;
      running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) +
                            momentum_ * static_cast<float>(mean);
      running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) +
                           momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_.at(c);
      var = running_var_.at(c);
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + epsilon_);
    batch_inv_std_[c] = inv_std;
    const float g = gamma_.value.at(c);
    const float bshift = beta_.value.at(c);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          const float xn =
              (input.at(b, c, i, j) - static_cast<float>(mean)) * inv_std;
          normalized_.at(b, c, i, j) = xn;
          out.at(b, c, i, j) = g * xn + bshift;
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.shape()[0];
  const std::size_t h = grad_output.shape()[2];
  const std::size_t w = grad_output.shape()[3];
  const double count = static_cast<double>(batch * h * w);

  Tensor grad(grad_output.shape());
  for (std::size_t c = 0; c < channels_; ++c) {
    double sum_dy = 0.0;
    double sum_dy_xn = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          const float dy = grad_output.at(b, c, i, j);
          sum_dy += dy;
          sum_dy_xn += dy * normalized_.at(b, c, i, j);
        }
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_dy_xn);
    beta_.grad.at(c) += static_cast<float>(sum_dy);

    const float g = gamma_.value.at(c);
    const float inv_std = batch_inv_std_[c];
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          const double dy = grad_output.at(b, c, i, j);
          const double xn = normalized_.at(b, c, i, j);
          grad.at(b, c, i, j) = static_cast<float>(
              g * inv_std * (dy - sum_dy / count - xn * sum_dy_xn / count));
        }
      }
    }
  }
  return grad;
}

}  // namespace aic::nn
