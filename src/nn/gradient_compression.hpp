#pragma once

#include <memory>
#include <string>

#include "runtime/rng.hpp"
#include "tensor/tensor.hpp"

namespace aic::nn {

/// Gradient compressors for distributed data-parallel training —
/// the third compression target of Fig. 1 (§2.2: QSGD, 3LC). Unlike the
/// image codecs, these operate on arbitrary-shaped parameter gradients
/// and are *lossy but unbiased-ish*, trading gradient fidelity for
/// interconnect bytes.
class GradientCompressor {
 public:
  virtual ~GradientCompressor() = default;

  /// Simulates transmit: returns the gradient a receiver reconstructs.
  virtual tensor::Tensor round_trip(const tensor::Tensor& grad) = 0;

  /// Wire bytes for this gradient (uncompressed = numel · 4).
  virtual std::size_t wire_bytes(const tensor::Tensor& grad) const = 0;

  virtual std::string name() const = 0;
};

using GradientCompressorPtr = std::shared_ptr<GradientCompressor>;

/// Top-k sparsification: transmit only the `fraction` largest-magnitude
/// entries as (index, value) pairs; the rest are dropped (no error
/// feedback — the simplest member of the family).
class TopKCompressor final : public GradientCompressor {
 public:
  /// fraction in (0, 1]; at least one entry is always kept.
  explicit TopKCompressor(double fraction);

  tensor::Tensor round_trip(const tensor::Tensor& grad) override;
  std::size_t wire_bytes(const tensor::Tensor& grad) const override;
  std::string name() const override;

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

/// QSGD-style stochastic quantization (Alistarh et al. 2017): each entry
/// is scaled by the gradient's L2 norm and stochastically rounded to one
/// of `levels` buckets, preserving the gradient in expectation.
class QsgdCompressor final : public GradientCompressor {
 public:
  /// `levels` >= 1 quantization levels per sign; seed fixes the
  /// stochastic rounding stream.
  QsgdCompressor(std::size_t levels, std::uint64_t seed = 17);

  tensor::Tensor round_trip(const tensor::Tensor& grad) override;
  std::size_t wire_bytes(const tensor::Tensor& grad) const override;
  std::string name() const override;

  std::size_t levels() const { return levels_; }

 private:
  std::size_t levels_;
  runtime::Rng rng_;
};

}  // namespace aic::nn
