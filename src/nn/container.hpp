#pragma once

#include "nn/layer.hpp"

namespace aic::nn {

/// Runs child layers in order; backward in reverse order.
class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<LayerPtr> layers)
      : layers_(std::move(layers)) {}

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "sequential"; }

  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<LayerPtr> layers_;
};

/// Pre-activation-free basic residual block: out = relu(F(x) + P(x))
/// where F is conv-bn-relu-conv-bn and P is identity or a 1×1 projection
/// when shape changes (stride or channel growth) — the ResNet34 building
/// block of the classify benchmark (Table 3).
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                std::size_t stride, runtime::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "residual"; }

 private:
  Sequential body_;
  LayerPtr projection_;  // nullptr = identity skip
  Relu final_relu_;
};

}  // namespace aic::nn
