#include "nn/layers_extra.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace aic::nn {

using tensor::Shape;
using tensor::Tensor;

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate_ < 0.0f || rate_ >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || rate_ == 0.0f) {
    mask_ = Tensor();  // marks "no dropout applied"
    return input;
  }
  mask_ = Tensor(input.shape());
  const float keep_scale = 1.0f / (1.0f - rate_);
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool keep = rng_.uniform() >= rate_;
    mask_.at(i) = keep ? keep_scale : 0.0f;
    out.at(i) = input.at(i) * mask_.at(i);
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.numel() == 0) return grad_output;
  return tensor::mul(grad_output, mask_);
}

Tensor AvgPool2d::forward(const Tensor& input, bool) {
  input_shape_ = input.shape();
  const std::size_t batch = input.shape()[0];
  const std::size_t channels = input.shape()[1];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("AvgPool2d: odd spatial dims");
  }
  Tensor out(Shape::bchw(batch, channels, h / 2, w / 2));
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < h; i += 2) {
        for (std::size_t j = 0; j < w; j += 2) {
          out.at(b, c, i / 2, j / 2) =
              0.25f * (input.at(b, c, i, j) + input.at(b, c, i, j + 1) +
                       input.at(b, c, i + 1, j) +
                       input.at(b, c, i + 1, j + 1));
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  Tensor grad(input_shape_);
  for (std::size_t b = 0; b < input_shape_[0]; ++b) {
    for (std::size_t c = 0; c < input_shape_[1]; ++c) {
      for (std::size_t i = 0; i < input_shape_[2]; ++i) {
        for (std::size_t j = 0; j < input_shape_[3]; ++j) {
          grad.at(b, c, i, j) =
              0.25f * grad_output.at(b, c, i / 2, j / 2);
        }
      }
    }
  }
  return grad;
}

Tensor LeakyRelu::forward(const Tensor& input, bool) {
  input_ = input;
  return tensor::map(input, [s = slope_](float x) {
    return x > 0.0f ? x : s * x;
  });
}

Tensor LeakyRelu::backward(const Tensor& grad_output) {
  Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad.at(i) = grad_output.at(i) * (input_.at(i) > 0.0f ? 1.0f : slope_);
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool) {
  output_ = tensor::map(input, [](float x) { return std::tanh(x); });
  return output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad(grad_output.shape());
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = output_.at(i);
    grad.at(i) = grad_output.at(i) * (1.0f - y * y);
  }
  return grad;
}

}  // namespace aic::nn
