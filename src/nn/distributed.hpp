#pragma once

#include <cstddef>
#include <vector>

#include "nn/gradient_compression.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace aic::nn {

/// Synchronous data-parallel training with (optionally compressed)
/// gradient exchange — the distributed scenario of §2.2 where "gradients
/// must be communicated across interconnects or networks, incurring
/// significant overhead".
///
/// Semantics simulated: `workers` replicas hold identical parameters;
/// each step, every worker computes gradients on its own batch, the
/// gradients traverse the interconnect through the configured
/// compressor, are averaged, and the shared optimizer applies the
/// average. The simulation runs on one host model (replicas never
/// diverge under synchronous SGD) while faithfully accounting raw vs.
/// compressed wire bytes.
class DistributedTrainer {
 public:
  struct CommStats {
    std::size_t steps = 0;
    std::size_t raw_bytes = 0;         // what fp32 all-reduce would move
    std::size_t compressed_bytes = 0;  // what actually moved

    double compression_ratio() const {
      return compressed_bytes == 0
                 ? 1.0
                 : static_cast<double>(raw_bytes) /
                       static_cast<double>(compressed_bytes);
    }
  };

  /// `compressor == nullptr` models plain fp32 all-reduce.
  /// `error_feedback` enables EF-SGD: each worker accumulates what the
  /// compressor dropped and re-injects it into its next transmission —
  /// the standard fix that lets aggressive sparsification converge.
  DistributedTrainer(Layer& model, Optimizer& optimizer, TaskKind task,
                     std::size_t workers,
                     GradientCompressorPtr compressor = nullptr,
                     bool error_feedback = false);

  /// One pass over `batches`: consecutive groups of `workers` batches
  /// form one synchronous step (a trailing partial group still steps).
  /// Returns the mean per-batch loss.
  double train_epoch(const std::vector<Batch>& batches);

  /// Evaluation is identical to the single-node Trainer's.
  Trainer::EvalResult evaluate(const std::vector<Batch>& batches);

  const CommStats& comm_stats() const { return stats_; }

 private:
  LossResult compute_loss(const tensor::Tensor& output, const Batch& batch);

  Layer& model_;
  Optimizer& optimizer_;
  TaskKind task_;
  std::size_t workers_;
  GradientCompressorPtr compressor_;
  bool error_feedback_;
  // residuals_[worker][param]: gradient mass dropped by the compressor,
  // carried to the worker's next transmission (lazily initialized).
  std::vector<std::vector<tensor::Tensor>> residuals_;
  CommStats stats_;
};

}  // namespace aic::nn
