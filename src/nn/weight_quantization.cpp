#include "nn/weight_quantization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace aic::nn {

using tensor::Tensor;

namespace {

Tensor quantize_tensor(const Tensor& values, std::size_t bits,
                       double* max_change) {
  const float lo = tensor::min_value(values);
  const float hi = tensor::max_value(values);
  Tensor out(values.shape());
  if (hi == lo) {
    // Constant tensor: exactly representable with the offset alone.
    out = values;
    return out;
  }
  const float levels = static_cast<float>((1u << bits) - 1);
  const float scale = (hi - lo) / levels;
  for (std::size_t i = 0; i < values.numel(); ++i) {
    const float level = std::round((values.at(i) - lo) / scale);
    out.at(i) = lo + level * scale;
    *max_change = std::max(
        *max_change,
        static_cast<double>(std::fabs(out.at(i) - values.at(i))));
  }
  return out;
}

}  // namespace

WeightQuantReport measure_weight_quantization(
    const std::vector<Param*>& params, std::size_t bits,
    std::vector<Tensor>* quantized_out) {
  if (bits == 0 || bits > 16) {
    throw std::invalid_argument("quantize_weights: bits must be in [1, 16]");
  }
  WeightQuantReport report;
  report.bits = bits;
  for (const Param* p : params) {
    report.parameters += p->value.numel();
    report.fp32_bytes += p->value.size_bytes();
    // Payload at `bits` per weight plus fp32 (min, max) per tensor.
    report.quantized_bytes +=
        (p->value.numel() * bits + 7) / 8 + 2 * sizeof(float);
    Tensor q = quantize_tensor(p->value, bits, &report.max_abs_change);
    if (quantized_out) quantized_out->push_back(std::move(q));
  }
  return report;
}

WeightQuantReport quantize_weights(Layer& model, std::size_t bits) {
  const std::vector<Param*> params = model.params();
  std::vector<Tensor> quantized;
  WeightQuantReport report =
      measure_weight_quantization(params, bits, &quantized);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(quantized[i]);
  }
  return report;
}

}  // namespace aic::nn
