#pragma once

#include "nn/container.hpp"
#include "nn/layer.hpp"

namespace aic::nn {

/// Scaled-down Table 3 architectures. Channel widths are reduced so the
/// 28-configuration accuracy sweep (Figs. 7/8) runs on a single host
/// core; the topology of each network family is preserved.

/// ResNet-style classifier (classify benchmark: ResNet34 family): stem
/// conv → three residual stages with downsampling → GAP → linear head.
LayerPtr make_resnet_classifier(std::size_t in_channels,
                                std::size_t num_classes, runtime::Rng& rng,
                                std::size_t base_channels = 8);

/// Deep encoder-decoder (em_denoise): strided encoder, upsampling
/// decoder, linear output for residual-noise regression.
LayerPtr make_encoder_decoder(std::size_t channels, runtime::Rng& rng,
                              std::size_t base_channels = 8);

/// Autoencoder (optical_damage): bottlenecked reconstruction with a
/// sigmoid output over [0, 1] images.
LayerPtr make_autoencoder(std::size_t channels, runtime::Rng& rng,
                          std::size_t base_channels = 8);

/// UNet (slstr_cloud): see UNetMini. Output is per-pixel logits.
LayerPtr make_unet(std::size_t in_channels, std::size_t out_channels,
                   runtime::Rng& rng, std::size_t base_channels = 8);

}  // namespace aic::nn
