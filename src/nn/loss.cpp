#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aic::nn {

using tensor::Shape;
using tensor::Tensor;

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels) {
  if (logits.shape().rank() != 4 || logits.shape()[2] != 1 ||
      logits.shape()[3] != 1) {
    throw std::invalid_argument("softmax_cross_entropy: need [B, K, 1, 1]");
  }
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  if (labels.size() != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count");
  }
  LossResult result;
  result.grad = Tensor(logits.shape());
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    if (labels[b] >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    float max_logit = logits.at(b, 0, 0, 0);
    for (std::size_t k = 1; k < classes; ++k) {
      max_logit = std::max(max_logit, logits.at(b, k, 0, 0));
    }
    double denom = 0.0;
    for (std::size_t k = 0; k < classes; ++k) {
      denom += std::exp(static_cast<double>(logits.at(b, k, 0, 0) - max_logit));
    }
    const double log_denom = std::log(denom);
    total -= static_cast<double>(logits.at(b, labels[b], 0, 0) - max_logit) -
             log_denom;
    for (std::size_t k = 0; k < classes; ++k) {
      const double p =
          std::exp(static_cast<double>(logits.at(b, k, 0, 0) - max_logit)) /
          denom;
      const double onehot = k == labels[b] ? 1.0 : 0.0;
      result.grad.at(b, k, 0, 0) =
          static_cast<float>((p - onehot) / static_cast<double>(batch));
    }
  }
  result.value = total / static_cast<double>(batch);
  return result;
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < classes; ++k) {
      if (logits.at(b, k, 0, 0) > logits.at(b, best, 0, 0)) best = k;
    }
    if (best == labels[b]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  LossResult result;
  result.grad = Tensor(prediction.shape());
  const double n = static_cast<double>(prediction.numel());
  double total = 0.0;
  for (std::size_t i = 0; i < prediction.numel(); ++i) {
    const double d =
        static_cast<double>(prediction.at(i)) - target.at(i);
    total += d * d;
    result.grad.at(i) = static_cast<float>(2.0 * d / n);
  }
  result.value = total / n;
  return result;
}

LossResult bce_with_logits(const Tensor& logits, const Tensor& targets) {
  if (logits.shape() != targets.shape()) {
    throw std::invalid_argument("bce_with_logits: shape mismatch");
  }
  LossResult result;
  result.grad = Tensor(logits.shape());
  const double n = static_cast<double>(logits.numel());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const double x = logits.at(i);
    const double t = targets.at(i);
    // log(1 + e^-|x|) + max(x, 0) − t·x is the stable form.
    total += std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0) - t * x;
    const double sigmoid = 1.0 / (1.0 + std::exp(-x));
    result.grad.at(i) = static_cast<float>((sigmoid - t) / n);
  }
  result.value = total / n;
  return result;
}

double pixel_accuracy(const Tensor& logits, const Tensor& targets) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const bool predicted = logits.at(i) > 0.0f;  // sigmoid(x) > 0.5
    const bool actual = targets.at(i) > 0.5f;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.numel());
}

}  // namespace aic::nn
