#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"

namespace aic::nn {

/// Post-training weight quantization — the fourth Fig. 1 target (§2.2:
/// "reducing model parameter footprint allows for more efficient storage
/// of the model itself"). Every parameter tensor is snapped to 2^bits
/// uniform levels over its own [min, max] range (per-tensor affine
/// quantization, the standard PTQ baseline).
struct WeightQuantReport {
  std::size_t bits = 0;
  std::size_t parameters = 0;
  std::size_t fp32_bytes = 0;
  std::size_t quantized_bytes = 0;  // payload + per-tensor scale/offset
  double max_abs_change = 0.0;      // largest weight perturbation

  double compression_ratio() const {
    return quantized_bytes == 0
               ? 1.0
               : static_cast<double>(fp32_bytes) /
                     static_cast<double>(quantized_bytes);
  }
};

/// Quantizes `model`'s parameters in place and reports the footprint.
/// `bits` in [1, 16]. Constant tensors (all values equal) are exact.
WeightQuantReport quantize_weights(Layer& model, std::size_t bits);

/// Non-mutating variant: returns the report plus the quantized values so
/// callers can diff accuracy before committing.
WeightQuantReport measure_weight_quantization(
    const std::vector<Param*>& params, std::size_t bits,
    std::vector<tensor::Tensor>* quantized_out = nullptr);

}  // namespace aic::nn
