#pragma once

#include "nn/layer.hpp"

namespace aic::nn {

/// Inverted dropout: zeroes activations with probability `rate` during
/// training and rescales survivors by 1/(1−rate); identity in eval.
class Dropout final : public Layer {
 public:
  /// rate in [0, 1); `seed` fixes the mask stream for reproducibility.
  explicit Dropout(float rate, std::uint64_t seed = 99);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "dropout"; }

  float rate() const { return rate_; }

 private:
  float rate_;
  runtime::Rng rng_;
  tensor::Tensor mask_;  // scaled keep mask from the last training forward
};

/// 2×2 average pooling, stride 2.
class AvgPool2d final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "avgpool2"; }

 private:
  tensor::Shape input_shape_;
};

/// LeakyReLU: x for x > 0, slope·x otherwise.
class LeakyRelu final : public Layer {
 public:
  explicit LeakyRelu(float slope = 0.01f) : slope_(slope) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "leaky_relu"; }

 private:
  float slope_;
  tensor::Tensor input_;
};

/// Hyperbolic tangent with cached output.
class Tanh final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "tanh"; }

 private:
  tensor::Tensor output_;
};

}  // namespace aic::nn
