#include "nn/optimizer.hpp"

#include <cmath>

namespace aic::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto vel = velocity_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] + weight_decay_ * value[j];
      vel[j] = momentum_ * vel[j] + g;
      value[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float epsilon)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= static_cast<float>(lr_ * m_hat /
                                     (std::sqrt(v_hat) + epsilon_));
    }
  }
}

}  // namespace aic::nn
