#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/rng.hpp"
#include "tensor/tensor.hpp"

namespace aic::nn {

/// A trainable tensor with its gradient accumulator.
struct Param {
  tensor::Tensor value;
  tensor::Tensor grad;

  explicit Param(tensor::Tensor v)
      : value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// One differentiable module with explicit backprop.
///
/// forward() caches whatever backward() needs; layers are therefore
/// stateful and single-stream (one forward, then one backward), which is
/// exactly how the training loop drives them. Gradients accumulate into
/// Param::grad; the optimizer consumes and the caller zeroes them.
class Layer {
 public:
  virtual ~Layer() = default;

  /// `train` toggles behaviours like batch-norm statistics.
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool train) = 0;

  /// Consumes d(loss)/d(output), accumulates parameter gradients, and
  /// returns d(loss)/d(input).
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// ReLU with cached activation mask.
class Relu final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  tensor::Tensor input_;
};

/// Logistic sigmoid with cached output.
class Sigmoid final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "sigmoid"; }

 private:
  tensor::Tensor output_;
};

/// Fully connected layer over flattened [B, F, 1, 1] tensors.
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features,
         runtime::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "linear"; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  tensor::Tensor input_;
};

/// [B, C, H, W] -> [B, C·H·W, 1, 1].
class Flatten final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }

 private:
  tensor::Shape input_shape_;
};

/// 2×2 max pooling, stride 2, with cached argmax positions.
class MaxPool2d final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "maxpool2"; }

 private:
  tensor::Shape input_shape_;
  std::vector<std::size_t> argmax_;
};

/// Global average pooling: [B, C, H, W] -> [B, C, 1, 1].
class GlobalAvgPool final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "gap"; }

 private:
  tensor::Shape input_shape_;
};

/// Nearest-neighbour ×2 upsampling.
class UpsampleNearest2x final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "upsample2x"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace aic::nn
