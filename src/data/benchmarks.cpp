#include "data/benchmarks.hpp"

#include <stdexcept>

namespace aic::data {

std::vector<DatasetInfo> table2_datasets() {
  return {
      {"ILSVRC 2012-17", "167.62 GB", "General Images", "Classification",
       "3x256x256"},
      {"em_graphene_sim", "5 GB", "Electron Micrographs", "Denoising",
       "1x256x256"},
      {"optical_damage_ds1", "27 GB", "Laser Optics", "Reconstruction",
       "3x492x656"},
      {"cloud_slstr_ds1", "187 GB", "Remote Sensing", "Pixel Segmentation",
       "3x1200x1500"},
  };
}

std::vector<BenchmarkInfo> table3_benchmarks() {
  return {
      {"classify", "CIFAR10", "Classify images into 10 classes", "ResNet34",
       "3x32x32", 100, 0.001},
      {"em_denoise", "em_graphene_sim", "Denoise electron micrographs",
       "Deep Encoder-Decoder", "1x256x256", 32, 0.0005},
      {"optical_damage", "optical_damage_ds1",
       "Reconstruct laser optics images", "Autoencoder", "1x200x200", 2,
       0.0005},
      {"slstr_cloud", "cloud_slstr_ds1", "Identify pixels that are clouds",
       "UNet", "9x256x256", 4, 0.0005},
  };
}

std::vector<std::string> benchmark_names() {
  return {"classify", "em_denoise", "optical_damage", "slstr_cloud"};
}

BenchmarkRun make_benchmark(const std::string& name,
                            const DatasetConfig& config,
                            core::CodecPtr codec) {
  BenchmarkRun run;
  runtime::Rng weight_rng(config.seed + 77);

  if (name == "classify") {
    run.dataset = make_classify_dataset(config);
    run.model = nn::make_resnet_classifier(3, run.dataset.classes,
                                           weight_rng);
    // Table 3: BS=100, LR=0.001 (Adam at reproduction scale).
    run.optimizer =
        std::make_unique<nn::Adam>(run.model->params(), 0.001f);
  } else if (name == "em_denoise") {
    run.dataset = make_denoise_dataset(config);
    run.model = nn::make_encoder_decoder(1, weight_rng);
    run.optimizer =
        std::make_unique<nn::Adam>(run.model->params(), 0.0005f);
  } else if (name == "optical_damage") {
    run.dataset = make_optical_dataset(config);
    run.model = nn::make_autoencoder(1, weight_rng);
    run.optimizer =
        std::make_unique<nn::Adam>(run.model->params(), 0.0005f);
  } else if (name == "slstr_cloud") {
    run.dataset = make_cloud_dataset(config);
    run.model = nn::make_unet(run.dataset.channels, 1, weight_rng);
    run.optimizer =
        std::make_unique<nn::Adam>(run.model->params(), 0.0005f);
  } else {
    throw std::invalid_argument("unknown benchmark: " + name);
  }

  run.trainer = std::make_unique<nn::Trainer>(*run.model, *run.optimizer,
                                              run.dataset.task,
                                              std::move(codec));
  return run;
}

}  // namespace aic::data
