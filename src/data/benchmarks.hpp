#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/codec.hpp"
#include "data/datasets.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace aic::data {

/// Table 2 row: the paper's dataset inventory.
struct DatasetInfo {
  std::string dataset;
  std::string size;
  std::string type;
  std::string task;
  std::string sample_size;
};

/// Table 3 row: the paper's benchmark configurations.
struct BenchmarkInfo {
  std::string test;
  std::string dataset;
  std::string task;
  std::string network;
  std::string sample_size;
  std::size_t paper_batch_size = 0;
  double paper_learning_rate = 0.0;
};

/// Table 2 contents, verbatim from the paper.
std::vector<DatasetInfo> table2_datasets();

/// Table 3 contents, verbatim from the paper.
std::vector<BenchmarkInfo> table3_benchmarks();

/// The four Table 3 benchmarks, instantiated at reproduction scale:
/// dataset + model + optimizer wired into a Trainer.
struct BenchmarkRun {
  Dataset dataset;
  nn::LayerPtr model;
  std::unique_ptr<nn::Optimizer> optimizer;
  std::unique_ptr<nn::Trainer> trainer;
};

/// Builds one ready-to-train benchmark. `codec == nullptr` reproduces
/// the paper's "base" series; otherwise every training batch is round-
/// tripped through the codec (§4.1). The seed controls weights and data
/// identically across codecs so series differ only by compression.
BenchmarkRun make_benchmark(const std::string& name,
                            const DatasetConfig& config,
                            core::CodecPtr codec);

/// Names accepted by make_benchmark.
std::vector<std::string> benchmark_names();

}  // namespace aic::data
