#include "data/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/synth.hpp"

namespace aic::data {

using nn::Batch;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Packs per-sample planes into batches of `batch_size`.
template <typename SampleFn>
std::vector<Batch> build_batches(std::size_t samples, std::size_t batch_size,
                                 SampleFn make_sample) {
  std::vector<Batch> batches;
  std::size_t produced = 0;
  while (produced < samples) {
    const std::size_t count = std::min(batch_size, samples - produced);
    batches.push_back(make_sample(count));
    produced += count;
  }
  return batches;
}

}  // namespace

Dataset make_classify_dataset(const DatasetConfig& config,
                              std::size_t classes) {
  Dataset dataset;
  dataset.name = "classify";
  dataset.task = nn::TaskKind::kClassification;
  dataset.channels = 3;
  dataset.resolution = config.resolution;
  dataset.classes = classes;

  runtime::Rng rng(config.seed);
  const std::size_t n = config.resolution;

  auto make_split = [&](std::size_t samples) {
    return build_batches(samples, config.batch_size, [&](std::size_t count) {
      Batch batch;
      batch.input = Tensor(Shape::bchw(count, 3, n, n));
      batch.labels.resize(count);
      for (std::size_t s = 0; s < count; ++s) {
        const std::size_t label = rng.uniform_index(classes);
        batch.labels[s] = label;
        // Class identity = orientation; frequency/phase jitter within it.
        // Frequencies around 1.0-1.5 rad/pixel land in DCT bins 3-4 of
        // an 8-wide block, so aggressive chopping (CF<=3) erases the
        // class signal while CF>=5 keeps it — producing the stratified
        // accuracy degradation of Fig. 8a.
        const double angle = std::numbers::pi *
                             static_cast<double>(label) /
                             static_cast<double>(classes);
        const double frequency = 1.05 + 0.1 * rng.uniform() +
                                 0.15 * static_cast<double>(label % 3);
        const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
        // A weak low-frequency brightness ramp along the class angle
        // gives every class a cue that survives even CF=2 chopping, so
        // heavy compression degrades towards — not all the way to —
        // chance, as in Fig. 8a.
        const double gx = std::cos(angle), gy = std::sin(angle);
        for (std::size_t c = 0; c < 3; ++c) {
          Tensor plane = grating(n, n, frequency, angle,
                                 phase + 0.7 * static_cast<double>(c));
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              const double ramp =
                  (gx * static_cast<double>(i) + gy * static_cast<double>(j)) /
                  static_cast<double>(n);
              plane.at(i, j) = std::clamp(
                  0.8f * plane.at(i, j) + 0.2f * static_cast<float>(ramp),
                  0.0f, 1.0f);
            }
          }
          add_gaussian_noise(plane, rng, 0.08);
          batch.input.set_plane(s, c, plane);
        }
      }
      return batch;
    });
  };
  dataset.train = make_split(config.train_samples);
  dataset.test = make_split(config.test_samples);
  return dataset;
}

Dataset make_denoise_dataset(const DatasetConfig& config,
                             double noise_stddev) {
  Dataset dataset;
  dataset.name = "em_denoise";
  dataset.task = nn::TaskKind::kRegression;
  dataset.channels = 1;
  dataset.resolution = config.resolution;

  runtime::Rng rng(config.seed + 1);
  const std::size_t n = config.resolution;

  auto make_split = [&](std::size_t samples) {
    return build_batches(samples, config.batch_size, [&](std::size_t count) {
      Batch batch;
      batch.input = Tensor(Shape::bchw(count, 1, n, n));
      batch.target = Tensor(Shape::bchw(count, 1, n, n));
      for (std::size_t s = 0; s < count; ++s) {
        // Clean micrographs are band-limited well below the chop cutoff
        // (bins <~1), so every CF keeps the signal while discarding the
        // white pixel noise's high-frequency energy — the mechanism
        // behind Fig. 8's "compression helps em_denoise".
        const Tensor clean = smooth_field(n, n, rng, 5, 0.3);
        Tensor noisy = clean;
        add_gaussian_noise(noisy, rng, noise_stddev);
        batch.input.set_plane(s, 0, noisy);
        batch.target.set_plane(s, 0, clean);
      }
      return batch;
    });
  };
  dataset.train = make_split(config.train_samples);
  dataset.test = make_split(config.test_samples);
  return dataset;
}

Dataset make_optical_dataset(const DatasetConfig& config) {
  Dataset dataset;
  dataset.name = "optical_damage";
  dataset.task = nn::TaskKind::kRegression;
  dataset.channels = 1;
  dataset.resolution = config.resolution;

  runtime::Rng rng(config.seed + 2);
  const std::size_t n = config.resolution;

  auto make_split = [&](std::size_t samples) {
    return build_batches(samples, config.batch_size, [&](std::size_t count) {
      Batch batch;
      batch.input = Tensor(Shape::bchw(count, 1, n, n));
      batch.target = Tensor(Shape::bchw(count, 1, n, n));
      for (std::size_t s = 0; s < count; ++s) {
        // Undamaged optics: clean ring interference patterns.
        Tensor optic = radial_rings(n, n, rng.uniform(0.4, 0.6),
                                    rng.uniform(0.4, 0.6),
                                    rng.uniform(3.0, 6.0));
        add_gaussian_noise(optic, rng, 0.02);
        batch.input.set_plane(s, 0, optic);
        batch.target.set_plane(s, 0, optic);  // reconstruction task
      }
      return batch;
    });
  };
  dataset.train = make_split(config.train_samples);
  dataset.test = make_split(config.test_samples);
  return dataset;
}

Dataset make_cloud_dataset(const DatasetConfig& config,
                           std::size_t channels) {
  Dataset dataset;
  dataset.name = "slstr_cloud";
  dataset.task = nn::TaskKind::kSegmentation;
  dataset.channels = channels;
  dataset.resolution = config.resolution;

  runtime::Rng rng(config.seed + 3);
  const std::size_t n = config.resolution;

  auto make_split = [&](std::size_t samples) {
    return build_batches(samples, config.batch_size, [&](std::size_t count) {
      Batch batch;
      batch.input = Tensor(Shape::bchw(count, channels, n, n));
      batch.target = Tensor(Shape::bchw(count, 1, n, n));
      for (std::size_t s = 0; s < count; ++s) {
        const Tensor mask = blob_mask(n, n, rng, rng.uniform(0.25, 0.5));
        batch.target.set_plane(s, 0, mask);
        for (std::size_t c = 0; c < channels; ++c) {
          // Channel = background scene + cloud brightness + sensor noise.
          Tensor scene = smooth_field(n, n, rng, 4, 0.25);
          const float cloud_gain = 0.45f + 0.1f * static_cast<float>(c);
          for (std::size_t i = 0; i < scene.numel(); ++i) {
            scene.at(i) = std::clamp(
                0.4f * scene.at(i) + cloud_gain * mask.at(i), 0.0f, 1.0f);
          }
          add_gaussian_noise(scene, rng, 0.05);
          batch.input.set_plane(s, c, scene);
        }
      }
      return batch;
    });
  };
  dataset.train = make_split(config.train_samples);
  dataset.test = make_split(config.test_samples);
  return dataset;
}

}  // namespace aic::data
