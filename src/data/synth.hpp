#pragma once

#include <cstddef>

#include "runtime/rng.hpp"
#include "tensor/tensor.hpp"

namespace aic::data {

/// Procedural image primitives shared by the synthetic datasets that
/// stand in for CIFAR-10 / em_graphene_sim / optical_damage_ds1 /
/// cloud_slstr_ds1 (Table 2). All outputs are H×W planes in [0, 1].

/// Band-limited random field: a sum of `modes` random low-frequency
/// sinusoids, normalized to [0, 1]. `max_frequency` bounds the spatial
/// frequency in radians per pixel, controlling smoothness.
tensor::Tensor smooth_field(std::size_t height, std::size_t width,
                            runtime::Rng& rng, std::size_t modes = 4,
                            double max_frequency = 0.35);

/// Oriented grating: sin(f·(x·cosθ + y·sinθ) + φ) mapped to [0, 1].
/// Class-conditional structure for the classify dataset.
tensor::Tensor grating(std::size_t height, std::size_t width,
                       double frequency, double angle, double phase);

/// Adds i.i.d. Gaussian pixel noise, clamping to [0, 1].
void add_gaussian_noise(tensor::Tensor& plane, runtime::Rng& rng,
                        double stddev);

/// Radial pattern centred at (cx, cy) in normalized coordinates —
/// laser-optics-like rings for the optical_damage stand-in.
tensor::Tensor radial_rings(std::size_t height, std::size_t width, double cx,
                            double cy, double ring_frequency);

/// Binary mask of the `quantile`-highest values of a smooth field —
/// cloud-shaped blobs for the segmentation stand-in.
tensor::Tensor blob_mask(std::size_t height, std::size_t width,
                         runtime::Rng& rng, double coverage = 0.4);

}  // namespace aic::data
