#pragma once

#include <string>
#include <vector>

#include "nn/trainer.hpp"
#include "runtime/rng.hpp"

namespace aic::data {

/// A benchmark dataset: pre-batched train and test splits.
struct Dataset {
  std::string name;
  nn::TaskKind task = nn::TaskKind::kClassification;
  std::vector<nn::Batch> train;
  std::vector<nn::Batch> test;
  std::size_t channels = 0;
  std::size_t resolution = 0;
  std::size_t classes = 0;  // classification only
};

/// Shared sizing knobs for the scaled-down benchmark datasets.
struct DatasetConfig {
  std::size_t train_samples = 256;
  std::size_t test_samples = 64;
  std::size_t batch_size = 32;
  std::size_t resolution = 32;
  std::uint64_t seed = 1234;
};

/// classify (CIFAR-10 stand-in): `classes` oriented-grating families with
/// per-sample frequency/phase jitter and pixel noise; RGB channels carry
/// phase-shifted copies. Task: 10-way classification (Table 3 row 1).
Dataset make_classify_dataset(const DatasetConfig& config,
                              std::size_t classes = 10);

/// em_denoise (em_graphene_sim stand-in): clean band-limited micrograph-
/// like fields; the input adds strong high-frequency Gaussian noise and
/// the target is the clean field. Single channel (Table 3 row 2). The
/// "compression helps" effect of Fig. 8 lives here: chopping high-
/// frequency DCT coefficients removes exactly the corrupting noise.
Dataset make_denoise_dataset(const DatasetConfig& config,
                             double noise_stddev = 0.3);

/// optical_damage (optical_damage_ds1 stand-in): undamaged laser-optics
/// ring patterns; the autoencoder reconstructs its input. Single channel
/// (Table 3 row 3).
Dataset make_optical_dataset(const DatasetConfig& config);

/// slstr_cloud (cloud_slstr_ds1 stand-in): multi-channel scenes whose
/// brightness correlates with a blob "cloud" mask; target is the mask.
/// Task: per-pixel segmentation (Table 3 row 4).
Dataset make_cloud_dataset(const DatasetConfig& config,
                           std::size_t channels = 3);

}  // namespace aic::data
