#include "data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace aic::data {

using tensor::Shape;
using tensor::Tensor;

Tensor smooth_field(std::size_t height, std::size_t width, runtime::Rng& rng,
                    std::size_t modes, double max_frequency) {
  struct Mode {
    double fx, fy, phase, amplitude;
  };
  std::vector<Mode> spectrum;
  spectrum.reserve(modes);
  for (std::size_t m = 0; m < modes; ++m) {
    spectrum.push_back({rng.uniform(-max_frequency, max_frequency),
                        rng.uniform(-max_frequency, max_frequency),
                        rng.uniform(0.0, 2.0 * std::numbers::pi),
                        rng.uniform(0.5, 1.0)});
  }
  Tensor plane(Shape::matrix(height, width));
  double lo = 1e30, hi = -1e30;
  for (std::size_t i = 0; i < height; ++i) {
    for (std::size_t j = 0; j < width; ++j) {
      double v = 0.0;
      for (const Mode& mode : spectrum) {
        v += mode.amplitude *
             std::sin(mode.fx * static_cast<double>(i) +
                      mode.fy * static_cast<double>(j) + mode.phase);
      }
      plane.at(i, j) = static_cast<float>(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const float span = static_cast<float>(hi - lo) + 1e-9f;
  for (auto& v : plane.data()) v = (v - static_cast<float>(lo)) / span;
  return plane;
}

Tensor grating(std::size_t height, std::size_t width, double frequency,
               double angle, double phase) {
  Tensor plane(Shape::matrix(height, width));
  const double cos_a = std::cos(angle);
  const double sin_a = std::sin(angle);
  for (std::size_t i = 0; i < height; ++i) {
    for (std::size_t j = 0; j < width; ++j) {
      const double projected = frequency * (static_cast<double>(i) * cos_a +
                                            static_cast<double>(j) * sin_a);
      plane.at(i, j) =
          static_cast<float>(0.5 + 0.5 * std::sin(projected + phase));
    }
  }
  return plane;
}

void add_gaussian_noise(Tensor& plane, runtime::Rng& rng, double stddev) {
  for (auto& v : plane.data()) {
    v = std::clamp(v + static_cast<float>(rng.normal(0.0, stddev)), 0.0f,
                   1.0f);
  }
}

Tensor radial_rings(std::size_t height, std::size_t width, double cx,
                    double cy, double ring_frequency) {
  Tensor plane(Shape::matrix(height, width));
  for (std::size_t i = 0; i < height; ++i) {
    for (std::size_t j = 0; j < width; ++j) {
      const double dy = static_cast<double>(i) / height - cy;
      const double dx = static_cast<double>(j) / width - cx;
      const double radius = std::sqrt(dx * dx + dy * dy);
      plane.at(i, j) = static_cast<float>(
          0.5 + 0.5 * std::cos(ring_frequency * radius * 2.0 *
                               std::numbers::pi));
    }
  }
  return plane;
}

Tensor blob_mask(std::size_t height, std::size_t width, runtime::Rng& rng,
                 double coverage) {
  const Tensor field = smooth_field(height, width, rng, 5, 0.3);
  // Threshold at the requested coverage quantile.
  std::vector<float> sorted(field.data().begin(), field.data().end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut = static_cast<std::size_t>(
      static_cast<double>(sorted.size()) * (1.0 - coverage));
  const float threshold = sorted[std::min(cut, sorted.size() - 1)];
  Tensor mask(Shape::matrix(height, width));
  for (std::size_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = field.at(i) >= threshold ? 1.0f : 0.0f;
  }
  return mask;
}

}  // namespace aic::data
