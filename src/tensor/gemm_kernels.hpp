#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/cpu_features.hpp"

namespace aic::tensor {

/// Operand orientation for gemm / matmul_into: kYes means the raw storage
/// holds the transpose of the logical operand, and the packing routines
/// read it transposed — callers never materialize a transposed copy.
enum class Trans : std::uint8_t { kNo, kYes };

/// Cumulative process-wide counters of the kernel layer. Updated with
/// relaxed atomics, aggregated once per gemm call / sandwich chunk (never
/// per tile), so they are always-on like core::CodecStats.
struct GemmCounters {
  std::uint64_t gemm_calls = 0;
  /// MR-row A panels packed into per-thread scratch.
  std::uint64_t a_panels_packed = 0;
  /// NR-column B panels packed on the calling thread.
  std::uint64_t b_panels_packed = 0;
  std::uint64_t microkernel_calls = 0;
  /// Microkernel invocations on partial tiles (mr < MR or nr < NR).
  std::uint64_t tail_tiles = 0;
  /// Wide fused-multiply-add row updates (banded sandwich stage 2).
  std::uint64_t axpy_calls = 0;
  /// Small dense block MACs (banded sandwich stage 1).
  std::uint64_t block_mac_calls = 0;
  /// 2·m·n·k FLOPs issued through gemm (excludes axpy/block_mac work).
  std::uint64_t flops = 0;
};

GemmCounters gemm_counters() noexcept;
void reset_gemm_counters() noexcept;

/// Adds `delta` to the process-wide counters. Used by callers that drive
/// the primitive kernels (axpy_row / block_mac) directly and aggregate
/// their own call counts per parallel chunk.
void add_gemm_counters(const GemmCounters& delta) noexcept;

/// Microkernel geometry (exposed for tests and blocking documentation):
/// a kGemmMr × kGemmNr register accumulator tile — 6 rows × two 8-float
/// vectors on AVX2 — and kGemmMc-row packing blocks.
inline constexpr std::size_t kGemmMr = 6;
inline constexpr std::size_t kGemmNr = 16;
inline constexpr std::size_t kGemmMc = 120;

/// C = op(A)·op(B) (+ C when `accumulate`), row-major raw pointers with
/// leading dimensions. op(A) is m×k, op(B) is k×n, C is m×n.
///
/// Both operands are packed — transpose-aware, zero-padded to full
/// MR/NR panels — into per-thread 64-byte-aligned scratch that is reused
/// across calls, then a register-blocked microkernel sweeps the tiles.
/// Parallel over row blocks via the global pool (degrades to inline when
/// invoked from a pool worker). Each output element is one ascending-k
/// accumulation chain regardless of shape, blocking, or thread count, so
/// results are deterministic and bit-identical to the axpy_row /
/// block_mac primitives on the same backend.
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, const float* a, std::size_t lda, const float* b,
          std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

/// dst[0..n) += alpha · src[0..n), dispatched to the active backend with
/// the same per-element FMA semantics as the gemm microkernel.
void axpy_row(float alpha, const float* src, float* dst,
              std::size_t n) noexcept;

/// C += A·B for a small dense block (m×k · k×n, arbitrary leading
/// dimensions, no packing). Tuned for the banded-sandwich inner blocks
/// where n is a handful of columns; accumulation order per element is
/// ascending k, matching gemm on the same backend bit-for-bit.
void block_mac(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, const float* b, std::size_t ldb, float* c,
               std::size_t ldc) noexcept;

}  // namespace aic::tensor
