#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace aic::tensor {

/// Dimension list for tensors of rank 0..4 (inline storage, no heap).
///
/// All tensors in this library have *static* shapes: a shape is fixed at
/// construction and never changes, mirroring the compile-time tensor-size
/// constraint the paper's accelerator compilers impose (§3.1).
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);

  static Shape scalar() { return Shape(); }
  static Shape vector(std::size_t n) { return Shape({n}); }
  static Shape matrix(std::size_t rows, std::size_t cols) {
    return Shape({rows, cols});
  }
  /// Batch-channel-height-width image layout used throughout.
  static Shape bchw(std::size_t b, std::size_t c, std::size_t h,
                    std::size_t w) {
    return Shape({b, c, h, w});
  }

  std::size_t rank() const noexcept { return rank_; }
  /// Dimension at `axis`; throws std::out_of_range when axis >= rank().
  std::size_t operator[](std::size_t axis) const;

  /// Total element count (1 for scalars).
  std::size_t numel() const noexcept;

  /// Row-major strides.
  std::array<std::size_t, kMaxRank> strides() const noexcept;

  bool operator==(const Shape& other) const noexcept;
  bool operator!=(const Shape& other) const noexcept {
    return !(*this == other);
  }

  std::string to_string() const;

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace aic::tensor
