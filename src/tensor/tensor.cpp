#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace aic::tensor {

const char* dtype_name(DType dtype) noexcept {
  switch (dtype) {
    case DType::kFloat32: return "float32";
    case DType::kFloat16: return "float16";
    case DType::kBfloat16: return "bfloat16";
  }
  return "unknown";
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_.numel()) {
    throw std::invalid_argument("Tensor: value count does not match shape " +
                                shape_.to_string());
  }
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::identity(std::size_t n) {
  Tensor t(Shape::matrix(n, n));
  for (std::size_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::iota(Shape shape) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t.at(i) = static_cast<float>(i);
  return t;
}

Tensor Tensor::uniform(Shape shape, runtime::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::normal(Shape shape, runtime::Rng& rng, float mean,
                      float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  if (shape_.rank() != 2) throw std::logic_error("Tensor::at(r,c) needs rank 2");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  if (shape_.rank() != 2) throw std::logic_error("Tensor::at(r,c) needs rank 2");
  return data_[r * shape_[1] + c];
}

float& Tensor::at(std::size_t b, std::size_t c, std::size_t h, std::size_t w) {
  if (shape_.rank() != 4) {
    throw std::logic_error("Tensor::at(b,c,h,w) needs rank 4");
  }
  return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t b, std::size_t c, std::size_t h,
                 std::size_t w) const {
  if (shape_.rank() != 4) {
    throw std::logic_error("Tensor::at(b,c,h,w) needs rank 4");
  }
  return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("reshaped: numel mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  Tensor result(std::move(new_shape), data_);
  result.set_dtype(dtype_);
  return result;
}

Tensor Tensor::transposed() const {
  if (shape_.rank() != 2) throw std::logic_error("transposed needs rank 2");
  const std::size_t rows = shape_[0];
  const std::size_t cols = shape_[1];
  Tensor result(Shape::matrix(cols, rows));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      result.at(c, r) = data_[r * cols + c];
    }
  }
  result.set_dtype(dtype_);
  return result;
}

Tensor Tensor::slice_plane(std::size_t b, std::size_t c) const {
  if (shape_.rank() != 4) throw std::logic_error("slice_plane needs rank 4");
  const std::size_t h = shape_[2];
  const std::size_t w = shape_[3];
  Tensor plane(Shape::matrix(h, w));
  const float* src = data_.data() + ((b * shape_[1] + c) * h) * w;
  std::copy(src, src + h * w, plane.raw());
  plane.set_dtype(dtype_);
  return plane;
}

void Tensor::set_plane(std::size_t b, std::size_t c, const Tensor& plane) {
  if (shape_.rank() != 4) throw std::logic_error("set_plane needs rank 4");
  const std::size_t h = shape_[2];
  const std::size_t w = shape_[3];
  if (plane.shape() != Shape::matrix(h, w)) {
    throw std::invalid_argument("set_plane: plane shape mismatch");
  }
  float* dst = data_.data() + ((b * shape_[1] + c) * h) * w;
  std::copy(plane.raw(), plane.raw() + h * w, dst);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace aic::tensor
