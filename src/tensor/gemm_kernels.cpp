#include "tensor/gemm_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define AIC_GEMM_X86 1
#else
#define AIC_GEMM_X86 0
#endif

#include "obs/trace.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/parallel_for.hpp"

namespace aic::tensor {
namespace {

using runtime::KernelBackend;

constexpr std::size_t kMr = kGemmMr;
constexpr std::size_t kNr = kGemmNr;
constexpr std::size_t kMc = kGemmMc;
static_assert(kMc % kMr == 0, "row block must be a whole number of panels");

struct AtomicCounters {
  std::atomic<std::uint64_t> gemm_calls{0};
  std::atomic<std::uint64_t> a_panels_packed{0};
  std::atomic<std::uint64_t> b_panels_packed{0};
  std::atomic<std::uint64_t> microkernel_calls{0};
  std::atomic<std::uint64_t> tail_tiles{0};
  std::atomic<std::uint64_t> axpy_calls{0};
  std::atomic<std::uint64_t> block_mac_calls{0};
  std::atomic<std::uint64_t> flops{0};
};
AtomicCounters g_counters;

// Per-thread pack scratch, grown monotonically and reused across calls.
// A and B use distinct buffers because the thread that packs B may also
// run row chunks (inline-degraded parallel_for) and pack A.
float* pack_scratch_a(std::size_t count) {
  thread_local runtime::AlignedBuffer<float> buffer;
  if (buffer.size() < count) buffer = runtime::AlignedBuffer<float>(count);
  return buffer.data();
}

float* pack_scratch_b(std::size_t count) {
  thread_local runtime::AlignedBuffer<float> buffer;
  if (buffer.size() < count) buffer = runtime::AlignedBuffer<float>(count);
  return buffer.data();
}

// Packs rows [i0, i0+rows) of op(A) into MR-row panels: panel ip holds
// rows [ip·MR, …) laid out as k consecutive MR-float columns
// (dst[p·MR + r]), zero-padded so the microkernel always sees MR rows.
void pack_a(Trans trans, const float* a, std::size_t lda, std::size_t i0,
            std::size_t rows, std::size_t k, float* dst) {
  const std::size_t panels = (rows + kMr - 1) / kMr;
  for (std::size_t ip = 0; ip < panels; ++ip) {
    const std::size_t r0 = ip * kMr;
    const std::size_t height = std::min(kMr, rows - r0);
    float* panel = dst + ip * k * kMr;
    if (trans == Trans::kNo) {
      for (std::size_t r = 0; r < height; ++r) {
        const float* src = a + (i0 + r0 + r) * lda;
        for (std::size_t p = 0; p < k; ++p) panel[p * kMr + r] = src[p];
      }
      for (std::size_t r = height; r < kMr; ++r) {
        for (std::size_t p = 0; p < k; ++p) panel[p * kMr + r] = 0.0f;
      }
    } else {
      // Logical A[i][p] lives at a[p·lda + i]: rows are contiguous in
      // storage, so the transposed pack reads sequentially.
      for (std::size_t p = 0; p < k; ++p) {
        const float* src = a + p * lda + i0 + r0;
        float* col = panel + p * kMr;
        std::size_t r = 0;
        for (; r < height; ++r) col[r] = src[r];
        for (; r < kMr; ++r) col[r] = 0.0f;
      }
    }
  }
}

// Packs op(B) (k×n) into NR-column panels: panel jp holds columns
// [jp·NR, …) as k consecutive NR-float rows (dst[p·NR + j]), zero-padded
// to NR columns.
void pack_b(Trans trans, const float* b, std::size_t ldb, std::size_t n,
            std::size_t k, float* dst) {
  const std::size_t panels = (n + kNr - 1) / kNr;
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t j0 = jp * kNr;
    const std::size_t width = std::min(kNr, n - j0);
    float* panel = dst + jp * k * kNr;
    if (trans == Trans::kNo) {
      for (std::size_t p = 0; p < k; ++p) {
        const float* src = b + p * ldb + j0;
        float* row = panel + p * kNr;
        std::size_t j = 0;
        for (; j < width; ++j) row[j] = src[j];
        for (; j < kNr; ++j) row[j] = 0.0f;
      }
    } else {
      // Logical B[p][j] lives at b[j·ldb + p]: read each storage row
      // (one logical column) sequentially, scatter into the panel.
      for (std::size_t j = 0; j < width; ++j) {
        const float* src = b + (j0 + j) * ldb;
        for (std::size_t p = 0; p < k; ++p) panel[p * kNr + j] = src[p];
      }
      for (std::size_t j = width; j < kNr; ++j) {
        for (std::size_t p = 0; p < k; ++p) panel[p * kNr + j] = 0.0f;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar backend. Plain multiply-then-add (no fused rounding), ascending-k
// per element — the reference semantics the AVX2 backend's parity tests
// compare against within 1e-5.
// ---------------------------------------------------------------------------

void micro_tile_scalar(std::size_t k, const float* ap, const float* bp,
                       float* c, std::size_t ldc, std::size_t mr,
                       std::size_t nr, bool accumulate) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    if (accumulate) {
      for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) crow[j] = acc[r][j];
    }
  }
}

void axpy_scalar(float alpha, const float* src, float* dst, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] += alpha * src[j];
}

void block_mac_scalar(std::size_t m, std::size_t n, std::size_t k,
                      const float* a, std::size_t lda, const float* b,
                      std::size_t ldb, float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2+FMA backend. Compiled with target attributes so the TU itself
// builds with baseline flags; only executed after the cpuid probe says
// the host supports it. Every output element is an ascending-k chain of
// vector FMAs, so axpy_row / block_mac / the microkernel agree bitwise.
// ---------------------------------------------------------------------------

#if AIC_GEMM_X86

// -1 lane mask prefix: tail_mask(l) enables the first l of 8 lanes.
alignas(32) const std::int32_t kMaskSrc[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                               0,  0,  0,  0,  0,  0,  0,  0};

__attribute__((target("avx2,fma"))) inline __m256i tail_mask(
    std::size_t lanes) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskSrc + 8 - lanes));
}

__attribute__((target("avx2,fma"))) void micro_tile_avx2(
    std::size_t k, const float* ap, const float* bp, float* c,
    std::size_t ldc, std::size_t mr, std::size_t nr, bool accumulate) {
  // 6×16 accumulator: 12 ymm accumulators + 2 B vectors + 1 broadcast.
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
  __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_load_ps(bp + p * kNr);
    const __m256 b1 = _mm256_load_ps(bp + p * kNr + 8);
    const float* acol = ap + p * kMr;
    __m256 av;
    av = _mm256_broadcast_ss(acol + 0);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_broadcast_ss(acol + 1);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_broadcast_ss(acol + 2);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_broadcast_ss(acol + 3);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
    av = _mm256_broadcast_ss(acol + 4);
    acc40 = _mm256_fmadd_ps(av, b0, acc40);
    acc41 = _mm256_fmadd_ps(av, b1, acc41);
    av = _mm256_broadcast_ss(acol + 5);
    acc50 = _mm256_fmadd_ps(av, b0, acc50);
    acc51 = _mm256_fmadd_ps(av, b1, acc51);
  }
  const __m256 acc[kMr][2] = {{acc00, acc01}, {acc10, acc11},
                              {acc20, acc21}, {acc30, acc31},
                              {acc40, acc41}, {acc50, acc51}};
  const std::size_t lanes0 = std::min<std::size_t>(nr, 8);
  const std::size_t lanes1 = nr > 8 ? nr - 8 : 0;
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    if (lanes0 == 8) {
      __m256 v = acc[r][0];
      if (accumulate) v = _mm256_add_ps(_mm256_loadu_ps(crow), v);
      _mm256_storeu_ps(crow, v);
    } else {
      const __m256i mask = tail_mask(lanes0);
      __m256 v = acc[r][0];
      if (accumulate) v = _mm256_add_ps(_mm256_maskload_ps(crow, mask), v);
      _mm256_maskstore_ps(crow, mask, v);
    }
    if (lanes1 == 8) {
      __m256 v = acc[r][1];
      if (accumulate) v = _mm256_add_ps(_mm256_loadu_ps(crow + 8), v);
      _mm256_storeu_ps(crow + 8, v);
    } else if (lanes1 > 0) {
      const __m256i mask = tail_mask(lanes1);
      __m256 v = acc[r][1];
      if (accumulate) v = _mm256_add_ps(_mm256_maskload_ps(crow + 8, mask), v);
      _mm256_maskstore_ps(crow + 8, mask, v);
    }
  }
}

__attribute__((target("avx2,fma"))) void axpy_avx2(float alpha,
                                                   const float* src,
                                                   float* dst,
                                                   std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(dst + j,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(src + j),
                                     _mm256_loadu_ps(dst + j)));
  }
  if (j < n) {
    const __m256i mask = tail_mask(n - j);
    const __m256 s = _mm256_maskload_ps(src + j, mask);
    const __m256 d = _mm256_maskload_ps(dst + j, mask);
    _mm256_maskstore_ps(dst + j, mask, _mm256_fmadd_ps(va, s, d));
  }
}

// One strip of ≤16 columns of the small-block MAC: C row segment stays in
// two (masked) vectors across the whole k loop.
__attribute__((target("avx2,fma"))) void block_mac_avx2_strip(
    std::size_t m, std::size_t n, std::size_t k, const float* a,
    std::size_t lda, const float* b, std::size_t ldb, float* c,
    std::size_t ldc) {
  const std::size_t lanes0 = std::min<std::size_t>(n, 8);
  const std::size_t lanes1 = n > 8 ? n - 8 : 0;
  const __m256i mask0 = tail_mask(lanes0);
  const __m256i mask1 = tail_mask(lanes1);
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    __m256 c0 = _mm256_maskload_ps(crow, mask0);
    __m256 c1 = lanes1 ? _mm256_maskload_ps(crow + 8, mask1)
                       : _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
      const __m256 av = _mm256_broadcast_ss(arow + p);
      const float* brow = b + p * ldb;
      c0 = _mm256_fmadd_ps(av, _mm256_maskload_ps(brow, mask0), c0);
      if (lanes1) {
        c1 = _mm256_fmadd_ps(av, _mm256_maskload_ps(brow + 8, mask1), c1);
      }
    }
    _mm256_maskstore_ps(crow, mask0, c0);
    if (lanes1) _mm256_maskstore_ps(crow + 8, mask1, c1);
  }
}

#endif  // AIC_GEMM_X86

bool avx2_active() noexcept {
#if AIC_GEMM_X86
  return runtime::kernel_backend() == KernelBackend::kAvx2;
#else
  return false;
#endif
}

void micro_tile(bool avx2, std::size_t k, const float* ap, const float* bp,
                float* c, std::size_t ldc, std::size_t mr, std::size_t nr,
                bool accumulate) {
#if AIC_GEMM_X86
  if (avx2) {
    micro_tile_avx2(k, ap, bp, c, ldc, mr, nr, accumulate);
    return;
  }
#else
  (void)avx2;
#endif
  micro_tile_scalar(k, ap, bp, c, ldc, mr, nr, accumulate);
}

}  // namespace

GemmCounters gemm_counters() noexcept {
  GemmCounters out;
  out.gemm_calls = g_counters.gemm_calls.load(std::memory_order_relaxed);
  out.a_panels_packed =
      g_counters.a_panels_packed.load(std::memory_order_relaxed);
  out.b_panels_packed =
      g_counters.b_panels_packed.load(std::memory_order_relaxed);
  out.microkernel_calls =
      g_counters.microkernel_calls.load(std::memory_order_relaxed);
  out.tail_tiles = g_counters.tail_tiles.load(std::memory_order_relaxed);
  out.axpy_calls = g_counters.axpy_calls.load(std::memory_order_relaxed);
  out.block_mac_calls =
      g_counters.block_mac_calls.load(std::memory_order_relaxed);
  out.flops = g_counters.flops.load(std::memory_order_relaxed);
  return out;
}

void reset_gemm_counters() noexcept {
  g_counters.gemm_calls.store(0, std::memory_order_relaxed);
  g_counters.a_panels_packed.store(0, std::memory_order_relaxed);
  g_counters.b_panels_packed.store(0, std::memory_order_relaxed);
  g_counters.microkernel_calls.store(0, std::memory_order_relaxed);
  g_counters.tail_tiles.store(0, std::memory_order_relaxed);
  g_counters.axpy_calls.store(0, std::memory_order_relaxed);
  g_counters.block_mac_calls.store(0, std::memory_order_relaxed);
  g_counters.flops.store(0, std::memory_order_relaxed);
}

void add_gemm_counters(const GemmCounters& delta) noexcept {
  if (delta.gemm_calls) {
    g_counters.gemm_calls.fetch_add(delta.gemm_calls,
                                    std::memory_order_relaxed);
  }
  if (delta.a_panels_packed) {
    g_counters.a_panels_packed.fetch_add(delta.a_panels_packed,
                                         std::memory_order_relaxed);
  }
  if (delta.b_panels_packed) {
    g_counters.b_panels_packed.fetch_add(delta.b_panels_packed,
                                         std::memory_order_relaxed);
  }
  if (delta.microkernel_calls) {
    g_counters.microkernel_calls.fetch_add(delta.microkernel_calls,
                                           std::memory_order_relaxed);
  }
  if (delta.tail_tiles) {
    g_counters.tail_tiles.fetch_add(delta.tail_tiles,
                                    std::memory_order_relaxed);
  }
  if (delta.axpy_calls) {
    g_counters.axpy_calls.fetch_add(delta.axpy_calls,
                                    std::memory_order_relaxed);
  }
  if (delta.block_mac_calls) {
    g_counters.block_mac_calls.fetch_add(delta.block_mac_calls,
                                         std::memory_order_relaxed);
  }
  if (delta.flops) {
    g_counters.flops.fetch_add(delta.flops, std::memory_order_relaxed);
  }
}

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, const float* a, std::size_t lda, const float* b,
          std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) {
      for (std::size_t i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0f);
    }
    return;
  }
  const bool avx2 = avx2_active();
  AIC_TRACE_SCOPE(avx2 ? "gemm.avx2" : "gemm.scalar");

  // B is packed once on the calling thread; workers only read it (the
  // caller blocks inside parallel_for, keeping the scratch alive).
  const std::size_t n_panels = (n + kNr - 1) / kNr;
  float* packed_b = pack_scratch_b(n_panels * kNr * k);
  pack_b(trans_b, b, ldb, n, k, packed_b);

  std::atomic<std::uint64_t> micro_total{0};
  std::atomic<std::uint64_t> tail_total{0};
  std::atomic<std::uint64_t> a_panel_total{0};
  runtime::parallel_for_chunks(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        float* packed_a = pack_scratch_a(kMc * k);
        std::uint64_t micro_local = 0, tail_local = 0, a_local = 0;
        for (std::size_t i0 = lo; i0 < hi; i0 += kMc) {
          const std::size_t rows = std::min(kMc, hi - i0);
          pack_a(trans_a, a, lda, i0, rows, k, packed_a);
          const std::size_t a_panels = (rows + kMr - 1) / kMr;
          a_local += a_panels;
          for (std::size_t jp = 0; jp < n_panels; ++jp) {
            const std::size_t j0 = jp * kNr;
            const std::size_t nr = std::min(kNr, n - j0);
            const float* b_panel = packed_b + jp * k * kNr;
            for (std::size_t ip = 0; ip < a_panels; ++ip) {
              const std::size_t r0 = i0 + ip * kMr;
              const std::size_t mr = std::min(kMr, i0 + rows - r0);
              micro_tile(avx2, k, packed_a + ip * k * kMr, b_panel,
                         c + r0 * ldc + j0, ldc, mr, nr, accumulate);
              ++micro_local;
              if (mr < kMr || nr < kNr) ++tail_local;
            }
          }
        }
        micro_total.fetch_add(micro_local, std::memory_order_relaxed);
        tail_total.fetch_add(tail_local, std::memory_order_relaxed);
        a_panel_total.fetch_add(a_local, std::memory_order_relaxed);
      },
      {.grain = kMc});

  GemmCounters delta;
  delta.gemm_calls = 1;
  delta.a_panels_packed = a_panel_total.load(std::memory_order_relaxed);
  delta.b_panels_packed = n_panels;
  delta.microkernel_calls = micro_total.load(std::memory_order_relaxed);
  delta.tail_tiles = tail_total.load(std::memory_order_relaxed);
  delta.flops = static_cast<std::uint64_t>(2) * m * n * k;
  add_gemm_counters(delta);
}

void axpy_row(float alpha, const float* src, float* dst,
              std::size_t n) noexcept {
#if AIC_GEMM_X86
  if (avx2_active()) {
    axpy_avx2(alpha, src, dst, n);
    return;
  }
#endif
  axpy_scalar(alpha, src, dst, n);
}

void block_mac(std::size_t m, std::size_t n, std::size_t k, const float* a,
               std::size_t lda, const float* b, std::size_t ldb, float* c,
               std::size_t ldc) noexcept {
#if AIC_GEMM_X86
  if (avx2_active()) {
    for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
      const std::size_t width = std::min(kNr, n - j0);
      block_mac_avx2_strip(m, width, k, a, lda, b + j0, ldb, c + j0, ldc);
    }
    return;
  }
#endif
  block_mac_scalar(m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace aic::tensor
