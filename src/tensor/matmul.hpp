#pragma once

#include "tensor/tensor.hpp"

namespace aic::tensor {

/// C = A · B for rank-2 tensors; cache-blocked, parallel over row panels.
///
/// This is the workhorse of the whole repository: DCT+Chop compression and
/// decompression are each exactly two calls to this kernel (Eq. 4 / Eq. 6
/// of the paper).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C += A · B into a preallocated output (no allocation on the hot path).
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate = false);

/// Applies `out[b,c] = lhs · in[b,c] · rhs` over every (batch, channel)
/// plane of a rank-4 tensor. `out` must be preshaped to
/// [B, C, lhs.rows, rhs.cols].
///
/// This is the batched form the paper issues as a single framework-level
/// matmul pair; planes are independent and run in parallel.
void sandwich_planes(const Tensor& lhs, const Tensor& in, const Tensor& rhs,
                     Tensor& out);

/// Floating-point-operation count of `matmul(a, b)` (2·m·n·k).
std::size_t matmul_flops(const Tensor& a, const Tensor& b);

}  // namespace aic::tensor
