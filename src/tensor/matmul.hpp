#pragma once

#include <cstdint>

#include "tensor/gemm_kernels.hpp"
#include "tensor/tensor.hpp"

namespace aic::tensor {

/// C = A · B for rank-2 tensors; packed, register-blocked, runtime
/// ISA-dispatched (see gemm_kernels.hpp), parallel over row panels.
///
/// This is the workhorse of the whole repository: DCT+Chop compression and
/// decompression are each exactly two calls to this kernel (Eq. 4 / Eq. 6
/// of the paper).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C (+)= op(A) · op(B) into a preallocated output. The transpose flags
/// are honored by the kernel's packing stage, so passing Trans::kYes is
/// free compared to materializing `transposed()` copies — the Linear and
/// conv2d backward passes rely on this.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out, Trans trans_a,
                 Trans trans_b, bool accumulate = false);

/// C (+)= A · B (both operands taken as stored).
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate = false);

/// Block-diagonal sparsity pattern of a sandwich operator: band i spans
/// rows [i·row_block, (i+1)·row_block) and is non-zero only in columns
/// [i·col_block, (i+1)·col_block).
///
/// Every chop operator has this shape (Fig. 4): LHS = M·T_L keeps CF rows
/// per 8-column block ({row_block=CF, col_block=8}) and RHS = LHSᵀ keeps
/// CF columns per 8-row block ({row_block=8, col_block=CF}).
struct BandedSpec {
  std::size_t row_block = 0;
  std::size_t col_block = 0;

  /// A spec with zero blocks means "dense / unknown structure".
  bool valid() const noexcept { return row_block != 0 && col_block != 0; }
};

/// True when rank-2 `m` is exactly zero outside the bands of `spec` and
/// the band grid tiles the matrix (equal band counts on both axes).
bool is_block_banded(const Tensor& m, const BandedSpec& spec);

/// Structural hints for sandwich_planes_into. When both specs are valid
/// the kernel iterates only the live band entries of LHS/RHS — the
/// BD·C·n²/64 useful work of §3.2 — instead of scanning full rows and
/// relying on a scalar zero-skip.
struct SandwichOptions {
  BandedSpec lhs_bands;
  BandedSpec rhs_bands;
};

/// Applies `out[b,c] = lhs · in[b,c] · rhs` over every (batch, channel)
/// plane of a rank-4 tensor. `out` must be preshaped to
/// [B, C, lhs.rows, rhs.cols].
///
/// Zero-allocation batched kernel: parallelized once over (plane ×
/// row-band) work items, with per-thread aligned scratch reused across
/// calls — no per-plane tensors, no nested thread-pool submission.
/// Every element equals `matmul(lhs, matmul(plane, rhs))` exactly — both
/// paths issue the same ascending-k fused-accumulation chains through the
/// shared kernel layer, so no rounding drift (the only admissible
/// difference is the sign of exact zeros).
void sandwich_planes_into(const Tensor& lhs, const Tensor& in,
                          const Tensor& rhs, Tensor& out,
                          const SandwichOptions& options = {});

/// Convenience overload of sandwich_planes_into with dense operators.
///
/// This is the batched form the paper issues as a single framework-level
/// matmul pair; planes are independent and run in parallel.
void sandwich_planes(const Tensor& lhs, const Tensor& in, const Tensor& rhs,
                     Tensor& out);

/// Number of times any thread's sandwich scratch buffer has been
/// (re)allocated since process start. Constant across repeated calls of
/// the same shapes — the steady state allocates nothing.
std::uint64_t sandwich_scratch_reallocs() noexcept;

/// Floating-point-operation count of `matmul(a, b)` (2·m·n·k).
std::size_t matmul_flops(const Tensor& a, const Tensor& b);

}  // namespace aic::tensor
