#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace aic::tensor {

/// 16-bit float formats the four accelerators disagree on (§3.1): CS-2,
/// GroqChip, and IPU speak IEEE FP16; SN30 speaks BF16. The library stores
/// FP32 everywhere and exposes these round-trips so the precision cost of
/// either format can be measured.
enum class HalfFormat { kFp16, kBf16 };

/// Rounds an FP32 value to IEEE binary16 (round-to-nearest-even) and back.
float round_trip_fp16(float value);

/// Rounds an FP32 value to bfloat16 (round-to-nearest-even) and back.
float round_trip_bf16(float value);

/// Encodes FP32 to the raw 16-bit pattern of the given format.
std::uint16_t encode_half(float value, HalfFormat format);

/// Decodes a raw 16-bit pattern of the given format to FP32.
float decode_half(std::uint16_t bits, HalfFormat format);

/// Applies the chosen 16-bit round-trip to every element.
Tensor quantize_half(const Tensor& input, HalfFormat format);

}  // namespace aic::tensor
