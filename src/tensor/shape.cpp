#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace aic::tensor {

Shape::Shape(std::initializer_list<std::size_t> dims) {
  if (dims.size() > kMaxRank) {
    throw std::invalid_argument("Shape rank exceeds kMaxRank");
  }
  rank_ = dims.size();
  std::size_t axis = 0;
  for (std::size_t d : dims) dims_[axis++] = d;
}

std::size_t Shape::operator[](std::size_t axis) const {
  if (axis >= rank_) {
    throw std::out_of_range("Shape axis " + std::to_string(axis) +
                            " out of range for rank " + std::to_string(rank_));
  }
  return dims_[axis];
}

std::size_t Shape::numel() const noexcept {
  std::size_t n = 1;
  for (std::size_t axis = 0; axis < rank_; ++axis) n *= dims_[axis];
  return n;
}

std::array<std::size_t, Shape::kMaxRank> Shape::strides() const noexcept {
  std::array<std::size_t, kMaxRank> result{};
  std::size_t stride = 1;
  for (std::size_t axis = rank_; axis-- > 0;) {
    result[axis] = stride;
    stride *= dims_[axis];
  }
  return result;
}

bool Shape::operator==(const Shape& other) const noexcept {
  if (rank_ != other.rank_) return false;
  for (std::size_t axis = 0; axis < rank_; ++axis) {
    if (dims_[axis] != other.dims_[axis]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t axis = 0; axis < rank_; ++axis) {
    if (axis) out << ", ";
    out << dims_[axis];
  }
  out << ']';
  return out.str();
}

}  // namespace aic::tensor
