#include "tensor/dtype.hpp"

#include <bit>
#include <cmath>

namespace aic::tensor {
namespace {

std::uint32_t float_bits(float value) { return std::bit_cast<std::uint32_t>(value); }
float bits_float(std::uint32_t bits) { return std::bit_cast<float>(bits); }

std::uint16_t fp32_to_bf16(float value) {
  std::uint32_t bits = float_bits(value);
  if (std::isnan(value)) return 0x7fc0;  // canonical quiet NaN
  // Round to nearest even on the truncated 16 low bits.
  const std::uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  bits += rounding;
  return static_cast<std::uint16_t>(bits >> 16);
}

float bf16_to_fp32(std::uint16_t half) {
  return bits_float(static_cast<std::uint32_t>(half) << 16);
}

std::uint16_t fp32_to_fp16(float value) {
  const std::uint32_t bits = float_bits(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xffu) - 127 + 15;
  std::uint32_t mantissa = bits & 0x007fffffu;

  if (((bits >> 23) & 0xffu) == 0xffu) {
    // Inf / NaN.
    const std::uint16_t payload = mantissa ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
  }
  if (exponent >= 0x1f) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<std::uint16_t>(sign);  // underflow
    // Subnormal: shift in the implicit leading 1, then round.
    mantissa |= 0x00800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exponent);
    const std::uint32_t half_mantissa = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t rounded = half_mantissa;
    if (remainder > halfway || (remainder == halfway && (half_mantissa & 1u))) {
      ++rounded;
    }
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal number: keep 10 mantissa bits, round to nearest even.
  std::uint32_t half =
      sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
  const std::uint32_t remainder = mantissa & 0x1fffu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1u))) {
    ++half;  // may carry into the exponent, which is the correct behaviour
  }
  return static_cast<std::uint16_t>(half);
}

float fp16_to_fp32(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1fu;
  std::uint32_t mantissa = half & 0x03ffu;

  if (exponent == 0x1f) {
    return bits_float(sign | 0x7f800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_float(sign);
    // Normalize the subnormal.
    int shift = 0;
    while ((mantissa & 0x0400u) == 0) {
      mantissa <<= 1;
      ++shift;
    }
    mantissa &= 0x03ffu;
    const std::uint32_t exp32 =
        static_cast<std::uint32_t>(127 - 15 - shift + 1);
    return bits_float(sign | (exp32 << 23) | (mantissa << 13));
  }
  const std::uint32_t exp32 = exponent - 15 + 127;
  return bits_float(sign | (exp32 << 23) | (mantissa << 13));
}

}  // namespace

float round_trip_fp16(float value) { return fp16_to_fp32(fp32_to_fp16(value)); }
float round_trip_bf16(float value) { return bf16_to_fp32(fp32_to_bf16(value)); }

std::uint16_t encode_half(float value, HalfFormat format) {
  return format == HalfFormat::kFp16 ? fp32_to_fp16(value)
                                     : fp32_to_bf16(value);
}

float decode_half(std::uint16_t bits, HalfFormat format) {
  return format == HalfFormat::kFp16 ? fp16_to_fp32(bits) : bf16_to_fp32(bits);
}

Tensor quantize_half(const Tensor& input, HalfFormat format) {
  Tensor out(input.shape());
  const auto in = input.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    dst[i] = decode_half(encode_half(in[i], format), format);
  }
  return out;
}

}  // namespace aic::tensor
