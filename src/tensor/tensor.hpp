#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "runtime/rng.hpp"
#include "tensor/shape.hpp"

namespace aic::tensor {

/// Element type tag carried by a Tensor. Storage is always 32-bit floats;
/// kFloat16/kBfloat16 mark tensors whose floats hold *encoded* half
/// payloads (e.g. packed accelerator buffers), which arithmetic kernels
/// must refuse rather than reinterpret.
enum class DType { kFloat32, kFloat16, kBfloat16 };

/// Human-readable dtype name ("float32", ...).
const char* dtype_name(DType dtype) noexcept;

/// Dense row-major float32 tensor with value semantics.
///
/// float32 is the only stored dtype, matching the paper's choice of FP32
/// for cross-accelerator portability (§3.1 "Arithmetic Precision
/// Support"); fp16/bf16 round-trips are provided as explicit conversions
/// in dtype.hpp.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor initialized from `values` (size must equal shape.numel()).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// Identity matrix of order n.
  static Tensor identity(std::size_t n);
  /// Values 0,1,2,... reshaped to `shape` (handy in tests).
  static Tensor iota(Shape shape);
  /// I.i.d. uniform [lo, hi) entries.
  static Tensor uniform(Shape shape, runtime::Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// I.i.d. normal(mean, stddev) entries.
  static Tensor normal(Shape shape, runtime::Rng& rng, float mean = 0.0f,
                       float stddev = 1.0f);

  const Shape& shape() const noexcept { return shape_; }

  /// Element type tag; kFloat32 unless explicitly retagged.
  DType dtype() const noexcept { return dtype_; }
  /// Retags the payload without converting it (used when the float
  /// storage carries encoded half words). Math kernels reject non-float32.
  void set_dtype(DType dtype) noexcept { dtype_ = dtype; }

  std::size_t numel() const noexcept { return data_.size(); }
  std::size_t size_bytes() const noexcept { return data_.size() * sizeof(float); }

  std::span<float> data() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> data() const noexcept {
    return {data_.data(), data_.size()};
  }

  float* raw() noexcept { return data_.data(); }
  const float* raw() const noexcept { return data_.data(); }

  /// Flat element access.
  float& at(std::size_t i) { return data_.at(i); }
  float at(std::size_t i) const { return data_.at(i); }

  /// 2-D element access; requires rank 2.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// 4-D (BCHW) element access; requires rank 4.
  float& at(std::size_t b, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t b, std::size_t c, std::size_t h, std::size_t w) const;

  /// Returns a copy reinterpreted with a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  /// Transpose of a rank-2 tensor.
  Tensor transposed() const;

  /// Copies the 2-D slice (b, c, :, :) out of a rank-4 tensor.
  Tensor slice_plane(std::size_t b, std::size_t c) const;

  /// Writes a 2-D `plane` into position (b, c, :, :) of this rank-4 tensor.
  void set_plane(std::size_t b, std::size_t c, const Tensor& plane);

  void fill(float value);

 private:
  Shape shape_;
  std::vector<float> data_;
  DType dtype_ = DType::kFloat32;
};

}  // namespace aic::tensor
