#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aic::tensor {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
}

template <typename F>
Tensor zip(const Tensor& a, const Tensor& b, F f, const char* op) {
  require_same_shape(a, b, op);
  Tensor out(a.shape());
  const auto sa = a.data();
  const auto sb = b.data();
  auto so = out.data();
  for (std::size_t i = 0; i < sa.size(); ++i) so[i] = f(sa[i], sb[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x + y; }, "add");
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x - y; }, "sub");
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return zip(a, b, [](float x, float y) { return x * y; }, "mul");
}

Tensor scale(const Tensor& a, float scalar) {
  Tensor out(a.shape());
  const auto sa = a.data();
  auto so = out.data();
  for (std::size_t i = 0; i < sa.size(); ++i) so[i] = sa[i] * scalar;
  return out;
}

void axpy(Tensor& a, const Tensor& b, float scalar) {
  require_same_shape(a, b, "axpy");
  auto sa = a.data();
  const auto sb = b.data();
  for (std::size_t i = 0; i < sa.size(); ++i) sa[i] += sb[i] * scalar;
}

Tensor map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const auto sa = a.data();
  auto so = out.data();
  for (std::size_t i = 0; i < sa.size(); ++i) so[i] = f(sa[i]);
  return out;
}

double sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  return acc;
}

double mean(const Tensor& a) {
  if (a.numel() == 0) return 0.0;
  return sum(a) / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max_value: empty tensor");
  return *std::max_element(a.data().begin(), a.data().end());
}

float min_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min_value: empty tensor");
  return *std::min_element(a.data().begin(), a.data().end());
}

std::size_t argmax(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("argmax: empty tensor");
  return static_cast<std::size_t>(
      std::max_element(a.data().begin(), a.data().end()) - a.data().begin());
}

float max_abs(const Tensor& a) {
  float best = 0.0f;
  for (float v : a.data()) best = std::max(best, std::fabs(v));
  return best;
}

double mse(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mse");
  if (a.numel() == 0) return 0.0;
  double acc = 0.0;
  const auto sa = a.data();
  const auto sb = b.data();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    const double d = static_cast<double>(sa[i]) - static_cast<double>(sb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.numel());
}

double psnr(const Tensor& original, const Tensor& reconstructed, double peak) {
  const double err = mse(original, reconstructed);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / err);
}

double max_abs_error(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "max_abs_error");
  double best = 0.0;
  const auto sa = a.data();
  const auto sb = b.data();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    best = std::max(best, std::fabs(static_cast<double>(sa[i]) - sb[i]));
  }
  return best;
}

bool allclose(const Tensor& a, const Tensor& b, double tol) {
  if (a.shape() != b.shape()) return false;
  return max_abs_error(a, b) <= tol;
}

}  // namespace aic::tensor
