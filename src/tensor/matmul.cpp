#include "tensor/matmul.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace aic::tensor {
namespace {

// Panel sizes chosen so a (kRowBlock x kColBlock) accumulator tile plus the
// B panel stay within L1.
constexpr std::size_t kRowBlock = 64;
constexpr std::size_t kDepthBlock = 128;

void gemm_rows(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t n, std::size_t k) {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::size_t p0 = 0; p0 < k; p0 += kDepthBlock) {
      const std::size_t p1 = std::min(k, p0 + kDepthBlock);
      for (std::size_t p = p0; p < p1; ++p) {
        const float a_val = a_row[p];
        if (a_val == 0.0f) continue;  // chop masks produce many zero rows
        const float* b_row = b + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += a_val * b_row[j];
        }
      }
    }
  }
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul: operands must be rank 2");
  }
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  if (b.shape()[0] != k) {
    throw std::invalid_argument("matmul: inner dimensions differ: " +
                                a.shape().to_string() + " x " +
                                b.shape().to_string());
  }
  if (out.shape() != Shape::matrix(m, n)) {
    throw std::invalid_argument("matmul_into: output shape mismatch");
  }
  if (!accumulate) out.fill(0.0f);

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = out.raw();
  runtime::parallel_for_chunks(
      0, m,
      [&](std::size_t lo, std::size_t hi) { gemm_rows(pa, pb, pc, lo, hi, n, k); },
      {.grain = kRowBlock});
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out(Shape::matrix(a.shape()[0], b.shape()[1]));
  matmul_into(a, b, out, /*accumulate=*/false);
  return out;
}

void sandwich_planes(const Tensor& lhs, const Tensor& in, const Tensor& rhs,
                     Tensor& out) {
  if (in.shape().rank() != 4 || out.shape().rank() != 4) {
    throw std::invalid_argument("sandwich_planes: tensors must be rank 4");
  }
  const std::size_t batch = in.shape()[0];
  const std::size_t channels = in.shape()[1];
  const std::size_t h = in.shape()[2];
  const std::size_t w = in.shape()[3];
  const std::size_t out_h = lhs.shape()[0];
  const std::size_t out_w = rhs.shape()[1];
  if (lhs.shape()[1] != h || rhs.shape()[0] != w) {
    throw std::invalid_argument("sandwich_planes: LHS/RHS do not fit input");
  }
  if (out.shape() != Shape::bchw(batch, channels, out_h, out_w)) {
    throw std::invalid_argument("sandwich_planes: output shape mismatch");
  }

  // Each (batch, channel) plane is an independent LHS·plane·RHS product —
  // exactly the data parallelism §3.2 exploits across samples and channels.
  runtime::parallel_for(
      0, batch * channels,
      [&](std::size_t plane_index) {
        const std::size_t b = plane_index / channels;
        const std::size_t c = plane_index % channels;
        Tensor plane = in.slice_plane(b, c);
        Tensor mid(Shape::matrix(h, out_w));
        matmul_into(plane, rhs, mid);
        Tensor res(Shape::matrix(out_h, out_w));
        matmul_into(lhs, mid, res);
        out.set_plane(b, c, res);
      },
      {.grain = 1});
}

std::size_t matmul_flops(const Tensor& a, const Tensor& b) {
  return 2 * a.shape()[0] * a.shape()[1] * b.shape()[1];
}

}  // namespace aic::tensor
