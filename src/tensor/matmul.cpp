#include "tensor/matmul.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "runtime/aligned_buffer.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/gemm_kernels.hpp"

namespace aic::tensor {
namespace {

// Work items per chunk when parallelizing over (plane × band); one band is
// small (CF·n·8 + CF·8·n MACs), so batch a handful per pool task.
constexpr std::size_t kBandGrain = 16;

std::atomic<std::uint64_t> g_scratch_reallocs{0};

// Per-thread scratch for the sandwich mid product. Workers of the global
// pool are long-lived, so after warm-up repeated calls of the same shapes
// never allocate.
float* thread_scratch(std::size_t count) {
  thread_local runtime::AlignedBuffer<float> buffer;
  if (buffer.size() < count) {
    buffer = runtime::AlignedBuffer<float>(count);
    g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
  }
  return buffer.data();
}

void require_float32(const Tensor& t, const char* kernel, const char* what) {
  if (t.dtype() != DType::kFloat32) {
    throw std::invalid_argument(std::string(kernel) + ": " + what +
                                " must be float32, got " +
                                dtype_name(t.dtype()));
  }
}

// One plane of the dense sandwich: out_plane = lhs · (plane · rhs), both
// stages through the shared gemm (which degrades to inline execution on
// pool workers — the caller owns the plane-level parallelism).
void sandwich_plane_dense(const float* lhs, const float* plane,
                          const float* rhs, float* out_plane, std::size_t h,
                          std::size_t w, std::size_t out_h,
                          std::size_t out_w) {
  float* mid = thread_scratch(h * out_w);
  {
    AIC_TRACE_SCOPE("sandwich.rhs_mm");
    gemm(Trans::kNo, Trans::kNo, h, out_w, w, plane, w, rhs, out_w, mid,
         out_w, /*accumulate=*/false);
  }
  {
    AIC_TRACE_SCOPE("sandwich.lhs_mm");
    gemm(Trans::kNo, Trans::kNo, out_h, out_w, h, lhs, h, mid, out_w,
         out_plane, out_w, /*accumulate=*/false);
  }
}

struct SandwichDims {
  std::size_t planes, h, w, out_h, out_w;
};

void sandwich_dense(const float* lhs, const float* in, const float* rhs,
                    float* out, const SandwichDims& d) {
  runtime::parallel_for_chunks(
      0, d.planes,
      [&](std::size_t lo, std::size_t hi) {
        AIC_TRACE_SCOPE("sandwich.dense_chunk");
        for (std::size_t plane = lo; plane < hi; ++plane) {
          sandwich_plane_dense(lhs, in + plane * d.h * d.w, rhs,
                               out + plane * d.out_h * d.out_w, d.h, d.w,
                               d.out_h, d.out_w);
        }
      },
      {.grain = 1});
}

// Structurally-sparse fast path. Band i of LHS couples output rows
// [i·lb_r, +lb_r) to input rows [i·lb_c, +lb_c) only, so each (plane,
// band) item is independent: form the lb_c×out_w mid strip in scratch,
// then the lb_r output rows, touching only live operator entries. The
// per-element work goes through the dispatched kernel primitives
// (block_mac for the narrow per-band RHS blocks, axpy_row for the wide
// output rows), which accumulate in the exact same ascending-k order as
// the dense gemm — banded and dense stay bit-identical per backend.
void sandwich_banded(const float* lhs, const float* in, const float* rhs,
                     float* out, const SandwichDims& d, std::size_t lb_r,
                     std::size_t lb_c, std::size_t rb_r, std::size_t rb_c) {
  const std::size_t bands = d.h / lb_c;
  const std::size_t rhs_bands = d.w / rb_r;
  runtime::parallel_for_chunks(
      0, d.planes * bands,
      [&](std::size_t lo, std::size_t hi) {
        AIC_TRACE_SCOPE("sandwich.banded_chunk");
        float* mid = thread_scratch(lb_c * d.out_w);
        std::uint64_t mac_local = 0, axpy_local = 0;
        for (std::size_t item = lo; item < hi; ++item) {
          const std::size_t plane = item / bands;
          const std::size_t band = item % bands;
          const float* in_rows =
              in + plane * d.h * d.w + band * lb_c * d.w;
          // mid = in_rows · rhs, visiting only each RHS row's live band:
          // one lb_c×rb_c block MAC per RHS band.
          std::fill_n(mid, lb_c * d.out_w, 0.0f);
          for (std::size_t jb = 0; jb < rhs_bands; ++jb) {
            block_mac(lb_c, rb_c, rb_r, in_rows + jb * rb_r, d.w,
                      rhs + (jb * rb_r) * d.out_w + jb * rb_c, d.out_w,
                      mid + jb * rb_c, d.out_w);
          }
          mac_local += rhs_bands;
          // out band = (lb_r × lb_c) LHS block · mid, one wide fused
          // row update per live LHS entry. The zero-skip stays here —
          // zeros in chop operators are structural, not incidental.
          const float* l_block = lhs + (band * lb_r) * d.h + band * lb_c;
          float* out_rows = out + plane * d.out_h * d.out_w +
                            band * lb_r * d.out_w;
          for (std::size_t r = 0; r < lb_r; ++r) {
            float* out_row = out_rows + r * d.out_w;
            std::fill_n(out_row, d.out_w, 0.0f);
            const float* l_row = l_block + r * d.h;
            for (std::size_t q = 0; q < lb_c; ++q) {
              const float l_val = l_row[q];
              if (l_val == 0.0f) continue;
              axpy_row(l_val, mid + q * d.out_w, out_row, d.out_w);
              ++axpy_local;
            }
          }
        }
        GemmCounters delta;
        delta.block_mac_calls = mac_local;
        delta.axpy_calls = axpy_local;
        add_gemm_counters(delta);
      },
      {.grain = kBandGrain});
}

// A banded spec fits a rows×cols operator when the band grid tiles it.
bool spec_fits(const BandedSpec& spec, std::size_t rows, std::size_t cols) {
  return spec.valid() && rows % spec.row_block == 0 &&
         cols % spec.col_block == 0 &&
         rows / spec.row_block == cols / spec.col_block;
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out, Trans trans_a,
                 Trans trans_b, bool accumulate) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul: operands must be rank 2");
  }
  require_float32(a, "matmul", "LHS");
  require_float32(b, "matmul", "RHS");
  require_float32(out, "matmul", "output");
  const std::size_t m =
      trans_a == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t k =
      trans_a == Trans::kNo ? a.shape()[1] : a.shape()[0];
  const std::size_t k_b =
      trans_b == Trans::kNo ? b.shape()[0] : b.shape()[1];
  const std::size_t n =
      trans_b == Trans::kNo ? b.shape()[1] : b.shape()[0];
  if (k_b != k) {
    throw std::invalid_argument("matmul: inner dimensions differ: " +
                                a.shape().to_string() + " x " +
                                b.shape().to_string());
  }
  if (out.shape() != Shape::matrix(m, n)) {
    throw std::invalid_argument("matmul_into: output shape mismatch");
  }
  gemm(trans_a, trans_b, m, n, k, a.raw(), a.shape()[1], b.raw(),
       b.shape()[1], out.raw(), n, accumulate);
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate) {
  matmul_into(a, b, out, Trans::kNo, Trans::kNo, accumulate);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out(Shape::matrix(a.shape()[0], b.shape()[1]));
  matmul_into(a, b, out, /*accumulate=*/false);
  return out;
}

bool is_block_banded(const Tensor& m, const BandedSpec& spec) {
  if (m.shape().rank() != 2) return false;
  const std::size_t rows = m.shape()[0];
  const std::size_t cols = m.shape()[1];
  if (!spec_fits(spec, rows, cols)) return false;
  const float* p = m.raw();
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t band = i / spec.row_block;
    const std::size_t live_lo = band * spec.col_block;
    const std::size_t live_hi = live_lo + spec.col_block;
    for (std::size_t j = 0; j < cols; ++j) {
      if ((j < live_lo || j >= live_hi) && p[i * cols + j] != 0.0f) {
        return false;
      }
    }
  }
  return true;
}

void sandwich_planes_into(const Tensor& lhs, const Tensor& in,
                          const Tensor& rhs, Tensor& out,
                          const SandwichOptions& options) {
  if (in.shape().rank() != 4 || out.shape().rank() != 4) {
    throw std::invalid_argument("sandwich_planes: tensors must be rank 4");
  }
  if (lhs.shape().rank() != 2 || rhs.shape().rank() != 2) {
    throw std::invalid_argument("sandwich_planes: operators must be rank 2");
  }
  require_float32(lhs, "sandwich_planes", "LHS");
  require_float32(rhs, "sandwich_planes", "RHS");
  require_float32(in, "sandwich_planes", "input");
  require_float32(out, "sandwich_planes", "output");
  const std::size_t batch = in.shape()[0];
  const std::size_t channels = in.shape()[1];
  const std::size_t h = in.shape()[2];
  const std::size_t w = in.shape()[3];
  const std::size_t out_h = lhs.shape()[0];
  const std::size_t out_w = rhs.shape()[1];
  if (lhs.shape()[1] != h || rhs.shape()[0] != w) {
    throw std::invalid_argument("sandwich_planes: LHS/RHS do not fit input");
  }
  if (out.shape() != Shape::bchw(batch, channels, out_h, out_w)) {
    throw std::invalid_argument("sandwich_planes: output shape mismatch");
  }
  const SandwichDims dims{batch * channels, h, w, out_h, out_w};
  if (dims.planes == 0) return;

  const bool want_banded =
      options.lhs_bands.valid() || options.rhs_bands.valid();
  if (want_banded) {
    // Half-specified or ill-fitting hints are caller bugs, not a reason to
    // silently fall back to the dense path.
    if (!spec_fits(options.lhs_bands, out_h, h) ||
        !spec_fits(options.rhs_bands, w, out_w)) {
      throw std::invalid_argument(
          "sandwich_planes: band structure does not tile the operators");
    }
    sandwich_banded(lhs.raw(), in.raw(), rhs.raw(), out.raw(), dims,
                    options.lhs_bands.row_block, options.lhs_bands.col_block,
                    options.rhs_bands.row_block, options.rhs_bands.col_block);
    return;
  }
  sandwich_dense(lhs.raw(), in.raw(), rhs.raw(), out.raw(), dims);
}

void sandwich_planes(const Tensor& lhs, const Tensor& in, const Tensor& rhs,
                     Tensor& out) {
  sandwich_planes_into(lhs, in, rhs, out, {});
}

std::uint64_t sandwich_scratch_reallocs() noexcept {
  return g_scratch_reallocs.load(std::memory_order_relaxed);
}

std::size_t matmul_flops(const Tensor& a, const Tensor& b) {
  return 2 * a.shape()[0] * a.shape()[1] * b.shape()[1];
}

}  // namespace aic::tensor
