#include "tensor/matmul.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/aligned_buffer.hpp"
#include "runtime/parallel_for.hpp"

namespace aic::tensor {
namespace {

// Panel sizes chosen so a (kRowBlock x kColBlock) accumulator tile plus the
// B panel stay within L1.
constexpr std::size_t kRowBlock = 64;
constexpr std::size_t kDepthBlock = 128;

// Work items per chunk when parallelizing over (plane × band); one band is
// small (CF·n·8 + CF·8·n MACs), so batch a handful per pool task.
constexpr std::size_t kBandGrain = 16;

std::atomic<std::uint64_t> g_scratch_reallocs{0};

// Per-thread scratch for the sandwich mid product. Workers of the global
// pool are long-lived, so after warm-up repeated calls of the same shapes
// never allocate.
float* thread_scratch(std::size_t count) {
  thread_local runtime::AlignedBuffer<float> buffer;
  if (buffer.size() < count) {
    buffer = runtime::AlignedBuffer<float>(count);
    g_scratch_reallocs.fetch_add(1, std::memory_order_relaxed);
  }
  return buffer.data();
}

void require_float32(const Tensor& t, const char* kernel, const char* what) {
  if (t.dtype() != DType::kFloat32) {
    throw std::invalid_argument(std::string(kernel) + ": " + what +
                                " must be float32, got " +
                                dtype_name(t.dtype()));
  }
}

void gemm_rows(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t n, std::size_t k) {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::size_t p0 = 0; p0 < k; p0 += kDepthBlock) {
      const std::size_t p1 = std::min(k, p0 + kDepthBlock);
      for (std::size_t p = p0; p < p1; ++p) {
        const float a_val = a_row[p];
        if (a_val == 0.0f) continue;  // chop masks produce many zero rows
        const float* b_row = b + p * n;
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += a_val * b_row[j];
        }
      }
    }
  }
}

// One plane of the dense sandwich: out_plane = lhs · (plane · rhs), both
// stages serial on the calling thread (the caller owns the parallelism).
void sandwich_plane_dense(const float* lhs, const float* plane,
                          const float* rhs, float* out_plane, std::size_t h,
                          std::size_t w, std::size_t out_h,
                          std::size_t out_w) {
  float* mid = thread_scratch(h * out_w);
  std::fill_n(mid, h * out_w, 0.0f);
  gemm_rows(plane, rhs, mid, 0, h, out_w, w);
  std::fill_n(out_plane, out_h * out_w, 0.0f);
  gemm_rows(lhs, mid, out_plane, 0, out_h, out_w, h);
}

struct SandwichDims {
  std::size_t planes, h, w, out_h, out_w;
};

void sandwich_dense(const float* lhs, const float* in, const float* rhs,
                    float* out, const SandwichDims& d) {
  runtime::parallel_for_chunks(
      0, d.planes,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t plane = lo; plane < hi; ++plane) {
          sandwich_plane_dense(lhs, in + plane * d.h * d.w, rhs,
                               out + plane * d.out_h * d.out_w, d.h, d.w,
                               d.out_h, d.out_w);
        }
      },
      {.grain = 1});
}

// Structurally-sparse fast path. Band i of LHS couples output rows
// [i·lb_r, +lb_r) to input rows [i·lb_c, +lb_c) only, so each (plane,
// band) item is independent: form the lb_c×out_w mid strip in scratch,
// then the lb_r output rows, touching only live operator entries.
void sandwich_banded(const float* lhs, const float* in, const float* rhs,
                     float* out, const SandwichDims& d, std::size_t lb_r,
                     std::size_t lb_c, std::size_t rb_r, std::size_t rb_c) {
  const std::size_t bands = d.h / lb_c;
  const std::size_t rhs_bands = d.w / rb_r;
  runtime::parallel_for_chunks(
      0, d.planes * bands,
      [&](std::size_t lo, std::size_t hi) {
        float* mid = thread_scratch(lb_c * d.out_w);
        for (std::size_t item = lo; item < hi; ++item) {
          const std::size_t plane = item / bands;
          const std::size_t band = item % bands;
          const float* in_rows =
              in + plane * d.h * d.w + band * lb_c * d.w;
          // mid = in_rows · rhs, visiting only each RHS row's live band.
          std::fill_n(mid, lb_c * d.out_w, 0.0f);
          for (std::size_t x = 0; x < lb_c; ++x) {
            const float* a_row = in_rows + x * d.w;
            float* mid_row = mid + x * d.out_w;
            for (std::size_t jb = 0; jb < rhs_bands; ++jb) {
              const float* a_band = a_row + jb * rb_r;
              const float* r_rows = rhs + (jb * rb_r) * d.out_w + jb * rb_c;
              float* mid_cols = mid_row + jb * rb_c;
              for (std::size_t p = 0; p < rb_r; ++p) {
                const float a_val = a_band[p];
                if (a_val == 0.0f) continue;
                const float* r_cols = r_rows + p * d.out_w;
                for (std::size_t q = 0; q < rb_c; ++q) {
                  mid_cols[q] += a_val * r_cols[q];
                }
              }
            }
          }
          // out band = (lb_r × lb_c) LHS block · mid.
          const float* l_block = lhs + (band * lb_r) * d.h + band * lb_c;
          float* out_rows = out + plane * d.out_h * d.out_w +
                            band * lb_r * d.out_w;
          for (std::size_t r = 0; r < lb_r; ++r) {
            float* out_row = out_rows + r * d.out_w;
            std::fill_n(out_row, d.out_w, 0.0f);
            const float* l_row = l_block + r * d.h;
            for (std::size_t q = 0; q < lb_c; ++q) {
              const float l_val = l_row[q];
              if (l_val == 0.0f) continue;
              const float* mid_row = mid + q * d.out_w;
              for (std::size_t j = 0; j < d.out_w; ++j) {
                out_row[j] += l_val * mid_row[j];
              }
            }
          }
        }
      },
      {.grain = kBandGrain});
}

// A banded spec fits a rows×cols operator when the band grid tiles it.
bool spec_fits(const BandedSpec& spec, std::size_t rows, std::size_t cols) {
  return spec.valid() && rows % spec.row_block == 0 &&
         cols % spec.col_block == 0 &&
         rows / spec.row_block == cols / spec.col_block;
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul: operands must be rank 2");
  }
  require_float32(a, "matmul", "LHS");
  require_float32(b, "matmul", "RHS");
  require_float32(out, "matmul", "output");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  if (b.shape()[0] != k) {
    throw std::invalid_argument("matmul: inner dimensions differ: " +
                                a.shape().to_string() + " x " +
                                b.shape().to_string());
  }
  if (out.shape() != Shape::matrix(m, n)) {
    throw std::invalid_argument("matmul_into: output shape mismatch");
  }
  if (!accumulate) out.fill(0.0f);

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = out.raw();
  runtime::parallel_for_chunks(
      0, m,
      [&](std::size_t lo, std::size_t hi) { gemm_rows(pa, pb, pc, lo, hi, n, k); },
      {.grain = kRowBlock});
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out(Shape::matrix(a.shape()[0], b.shape()[1]));
  matmul_into(a, b, out, /*accumulate=*/false);
  return out;
}

bool is_block_banded(const Tensor& m, const BandedSpec& spec) {
  if (m.shape().rank() != 2) return false;
  const std::size_t rows = m.shape()[0];
  const std::size_t cols = m.shape()[1];
  if (!spec_fits(spec, rows, cols)) return false;
  const float* p = m.raw();
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t band = i / spec.row_block;
    const std::size_t live_lo = band * spec.col_block;
    const std::size_t live_hi = live_lo + spec.col_block;
    for (std::size_t j = 0; j < cols; ++j) {
      if ((j < live_lo || j >= live_hi) && p[i * cols + j] != 0.0f) {
        return false;
      }
    }
  }
  return true;
}

void sandwich_planes_into(const Tensor& lhs, const Tensor& in,
                          const Tensor& rhs, Tensor& out,
                          const SandwichOptions& options) {
  if (in.shape().rank() != 4 || out.shape().rank() != 4) {
    throw std::invalid_argument("sandwich_planes: tensors must be rank 4");
  }
  if (lhs.shape().rank() != 2 || rhs.shape().rank() != 2) {
    throw std::invalid_argument("sandwich_planes: operators must be rank 2");
  }
  require_float32(lhs, "sandwich_planes", "LHS");
  require_float32(rhs, "sandwich_planes", "RHS");
  require_float32(in, "sandwich_planes", "input");
  require_float32(out, "sandwich_planes", "output");
  const std::size_t batch = in.shape()[0];
  const std::size_t channels = in.shape()[1];
  const std::size_t h = in.shape()[2];
  const std::size_t w = in.shape()[3];
  const std::size_t out_h = lhs.shape()[0];
  const std::size_t out_w = rhs.shape()[1];
  if (lhs.shape()[1] != h || rhs.shape()[0] != w) {
    throw std::invalid_argument("sandwich_planes: LHS/RHS do not fit input");
  }
  if (out.shape() != Shape::bchw(batch, channels, out_h, out_w)) {
    throw std::invalid_argument("sandwich_planes: output shape mismatch");
  }
  const SandwichDims dims{batch * channels, h, w, out_h, out_w};
  if (dims.planes == 0) return;

  const bool want_banded =
      options.lhs_bands.valid() || options.rhs_bands.valid();
  if (want_banded) {
    // Half-specified or ill-fitting hints are caller bugs, not a reason to
    // silently fall back to the dense path.
    if (!spec_fits(options.lhs_bands, out_h, h) ||
        !spec_fits(options.rhs_bands, w, out_w)) {
      throw std::invalid_argument(
          "sandwich_planes: band structure does not tile the operators");
    }
    sandwich_banded(lhs.raw(), in.raw(), rhs.raw(), out.raw(), dims,
                    options.lhs_bands.row_block, options.lhs_bands.col_block,
                    options.rhs_bands.row_block, options.rhs_bands.col_block);
    return;
  }
  sandwich_dense(lhs.raw(), in.raw(), rhs.raw(), out.raw(), dims);
}

void sandwich_planes(const Tensor& lhs, const Tensor& in, const Tensor& rhs,
                     Tensor& out) {
  sandwich_planes_into(lhs, in, rhs, out, {});
}

std::uint64_t sandwich_scratch_reallocs() noexcept {
  return g_scratch_reallocs.load(std::memory_order_relaxed);
}

std::size_t matmul_flops(const Tensor& a, const Tensor& b) {
  return 2 * a.shape()[0] * a.shape()[1] * b.shape()[1];
}

}  // namespace aic::tensor
