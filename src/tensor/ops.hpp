#pragma once

#include <cstddef>
#include <functional>

#include "tensor/tensor.hpp"

namespace aic::tensor {

/// Elementwise c = a + b. Shapes must match exactly.
Tensor add(const Tensor& a, const Tensor& b);
/// Elementwise c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product.
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * scalar.
Tensor scale(const Tensor& a, float scalar);
/// In-place a += b * scalar (axpy); used by optimizers.
void axpy(Tensor& a, const Tensor& b, float scalar);

/// Applies `f` to every element, returning a new tensor.
Tensor map(const Tensor& a, const std::function<float(float)>& f);

/// Sum of all elements.
double sum(const Tensor& a);
/// Arithmetic mean of all elements.
double mean(const Tensor& a);
/// Largest element (requires numel > 0).
float max_value(const Tensor& a);
/// Smallest element (requires numel > 0).
float min_value(const Tensor& a);
/// Index of the largest element.
std::size_t argmax(const Tensor& a);
/// Largest absolute element.
float max_abs(const Tensor& a);

/// Mean squared error between two same-shaped tensors.
double mse(const Tensor& a, const Tensor& b);
/// Peak signal-to-noise ratio in dB given the data range `peak`.
double psnr(const Tensor& original, const Tensor& reconstructed, double peak);
/// Largest absolute elementwise difference.
double max_abs_error(const Tensor& a, const Tensor& b);

/// True when all pairwise differences are within `tol`.
bool allclose(const Tensor& a, const Tensor& b, double tol = 1e-5);

}  // namespace aic::tensor
