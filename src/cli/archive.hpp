#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "baseline/chunk_entropy.hpp"
#include "core/codec.hpp"
#include "core/dct_chop.hpp"

namespace aic::cli {

/// Current on-disk archive container version (v4: chunked + checksummed).
inline constexpr std::uint32_t kArchiveVersion = 4;

/// Default fixed chunk budget of the v4 container: 64 KiB splits the
/// 1 MiB single-plane acceptance payload into 16 chunks — enough
/// parallelism for 8 workers with 2x load-balancing slack, while the
/// per-chunk table stays 12 bytes/chunk.
inline constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

/// On-disk compressed-tensor archive written by the aicomp CLI.
///
/// v4 (chunked, the default):
///
///   magic "AICZ" | u32 version | u32 header_len | u32 header_crc32c
///   | header fields (header_len bytes, covered by header_crc32c):
///       u8 codec (0=square, 1=triangle, 2=partial) | u8 transform
///       | u16 cf | u16 block | u16 subdivision | u32 rank
///       | u64 dims[rank]
///       | u64 payload_len | u64 chunk_bytes | u32 chunk_count
///       | chunk table: (u64 encoded_len, u32 chunk_crc32c) * chunk_count
///   | encoded chunks, concatenated in order
///
/// The payload (io::serialize_tensor format) is split into fixed
/// `chunk_bytes` slices (ragged tail allowed); each chunk is entropy
/// coded independently (baseline::ChunkEntropy) and CRC'd over its
/// encoded bytes, so chunks encode AND decode in parallel across the
/// thread pool with no cross-chunk state. Chunk boundaries depend only
/// on (payload_len, chunk_bytes) and each chunk's encoding is a pure
/// function of its bytes, so the container is bitwise-identical for
/// every thread count. There is no separate payload CRC: the chunk CRCs
/// jointly cover the payload, and the table itself is covered by the
/// header CRC.
///
/// v3 (unchunked; magic | version | header_len | header_crc32c
/// | payload_crc32c | header | payload) and v2 (no CRC block at all)
/// remain readable and writable for compatibility. Decode rejects
/// corrupt or truncated input of any version with a typed
/// aic::io::CorruptStream before a wrong tensor can be reconstructed.
///
/// The header carries everything needed to rebuild the codec and the
/// original shape, so decompression needs no side information.
struct Archive {
  bool triangle = false;
  /// Partial-serialization factor; 1 means plain (or triangle) chop.
  std::size_t subdivision = 1;
  core::DctChopConfig config;     // height/width filled from dims
  tensor::Shape original_shape;   // BCHW
  tensor::Tensor packed;
};

/// The canonical factory spec string an archive header describes.
std::string archive_codec_spec(const Archive& archive);

/// Builds the codec an archive describes into `ctx`, through
/// core::CodecFactory (plans resolve from ctx's PlanCache; compress /
/// decompress fan out on ctx's pool).
core::CodecPtr make_archive_codec(
    const Archive& archive, const Context& ctx = Context::process_default());

/// Compresses `input` (BCHW) through a factory spec string (any of the
/// dctchop / triangle / partial family — other kinds have no archive
/// representation and throw std::invalid_argument). When `codec_out` is
/// non-null it receives the codec instance that performed the
/// compression (so its CodecStats can be inspected afterwards).
Archive compress_to_archive(const tensor::Tensor& input,
                            const std::string& codec_spec,
                            core::CodecPtr* codec_out = nullptr,
                            const Context& ctx = Context::process_default());

/// Convenience overload assembling the spec from the classic flags.
Archive compress_to_archive(const tensor::Tensor& input, std::size_t cf,
                            std::size_t block, core::TransformKind transform,
                            bool triangle,
                            core::CodecPtr* codec_out = nullptr,
                            const Context& ctx = Context::process_default());

/// Container-write knobs for serialize_archive /
/// compress_to_archive_bytes.
struct ArchiveWriteOptions {
  /// 4 = chunked (default), 3 = unchunked CRC'd, 2 = legacy pre-CRC.
  std::uint32_t version = kArchiveVersion;
  /// v4 fixed chunk budget (plain payload bytes per chunk).
  std::size_t chunk_bytes = kDefaultChunkBytes;
  /// v4 per-chunk entropy coding. kRaw (default) keeps 1-thread encode
  /// at v3 parity; kAuto picks the smallest of raw/packed/huffman per
  /// chunk (opt-in: it trades encode time for size).
  baseline::ChunkEntropy entropy = baseline::ChunkEntropy::kRaw;

  /// Write knobs seeded from a session's configuration: version from
  /// ctx.archive_version(), chunk_bytes from ctx.chunk_bytes() (0 keeps
  /// kDefaultChunkBytes), entropy from ctx.entropy_mode().
  static ArchiveWriteOptions from_context(const Context& ctx);
};

/// Serializes to the given container version. v4 fans per-chunk entropy
/// coding and CRC computation across `ctx`'s thread pool with ordered
/// reassembly (bitwise-identical output for every pool size).
/// Unsupported versions throw std::invalid_argument.
std::string serialize_archive(const Archive& archive,
                              std::uint32_t version = kArchiveVersion,
                              const Context& ctx = Context::process_default());
std::string serialize_archive(const Archive& archive,
                              const ArchiveWriteOptions& options,
                              const Context& ctx = Context::process_default());

/// Fused compress + serialize (v4 only; other versions degrade to
/// compress_to_archive + serialize_archive): planes move through in
/// groups so the GEMM sandwich transform of group i+1 overlaps the
/// chunk entropy encode of group i on `ctx`'s pool. The returned
/// bytes are bitwise-identical to the unfused
/// serialize_archive(compress_to_archive(...)) path — the pipeline
/// tests assert it — and independent of what other sessions run on a
/// shared pool.
std::string compress_to_archive_bytes(const tensor::Tensor& input,
                                      const std::string& codec_spec,
                                      const ArchiveWriteOptions& options = {},
                                      core::CodecPtr* codec_out = nullptr,
                                      const Context& ctx =
                                          Context::process_default());

/// Allocation-reusing variant: builds the archive into `out` (cleared
/// first), reusing its capacity across calls. A serving loop that holds
/// one output string compresses with no per-call output allocation once
/// the string has grown to the archive size.
void compress_to_archive_bytes(const tensor::Tensor& input,
                               const std::string& codec_spec,
                               const ArchiveWriteOptions& options,
                               core::CodecPtr* codec_out, const Context& ctx,
                               std::string& out);

/// Bounded-memory streaming write: compresses `input` and emits the
/// archive to `out` without ever materializing the full byte string.
/// For v4 + a seekable sink + a plane-separable codec, planes move
/// through a pooled sliding window — chunks are entropy coded and
/// written as soon as their payload bytes exist, and the chunk table +
/// header CRC are back-patched at the end — so the resident footprint is
/// O(one plane + one chunk) instead of O(archive). Non-separable codecs
/// hold the payload (the transform needs it whole) but still never
/// materialize the encoded stream; v2/v3 and non-seekable sinks degrade
/// to the in-memory writer followed by one write. The emitted bytes are
/// bitwise-identical to compress_to_archive_bytes for every pool size,
/// chunk size, and memory budget. Returns the total bytes written.
std::size_t compress_to_stream(const tensor::Tensor& input,
                               const std::string& codec_spec,
                               std::ostream& out,
                               const ArchiveWriteOptions& options = {},
                               core::CodecPtr* codec_out = nullptr,
                               const Context& ctx = Context::process_default());

/// Bounded-memory streaming read: validates and decodes an archive from
/// `in` with the same typed CorruptStream rejections as
/// deserialize_archive. For v4, chunks are read in bounded pooled
/// batches and entropy-decoded straight into the result tensor's
/// storage, so the resident footprint is O(header + batch + tensor) —
/// the encoded stream is never held whole. v2/v3 (unchunked) containers
/// are slurped and delegated to the in-memory reader.
Archive decompress_from_stream(std::istream& in,
                               const Context& ctx = Context::process_default());

/// Parses and fully validates an archive stream (magic, version range,
/// CRCs, field ranges, overflow-checked dims, chunk-table consistency
/// and expansion bounds — all before any payload allocation — plus
/// payload/header shape agreement). v4 chunk CRC checks and entropy
/// decode fan out across `ctx`'s pool. Throws aic::io::CorruptStream
/// on any violation.
///
/// Takes a non-owning view: the bytes may live in an owned string, a
/// pooled buffer, or an io::MappedFile — v4 chunks entropy-decode
/// straight out of the view into the result tensor's storage, so the
/// mapped-file path copies the payload exactly once (decode), never into
/// an intermediate heap string.
Archive deserialize_archive(std::string_view bytes,
                            const Context& ctx = Context::process_default());

/// Cheap header-only introspection (no payload decode; CRC on the
/// header is still enforced for v3/v4). chunk_count == 0 means an
/// unchunked (v2/v3) container.
struct ArchiveProbe {
  std::uint32_t version = 0;
  std::size_t payload_len = 0;
  std::size_t chunk_bytes = 0;
  std::size_t chunk_count = 0;
};
ArchiveProbe probe_archive(std::string_view bytes);

void save_archive(const Archive& archive, const std::string& path);
/// Reads `path` through io::MappedFile (mmap with heap fallback) and
/// decodes in place — no whole-file heap copy on the mmap path.
Archive load_archive(const std::string& path);

}  // namespace aic::cli
