#pragma once

#include <cstdint>
#include <string>

#include "core/codec.hpp"
#include "core/dct_chop.hpp"

namespace aic::cli {

/// Current on-disk archive container version (v3: checksummed).
inline constexpr std::uint32_t kArchiveVersion = 3;

/// On-disk compressed-tensor archive written by the aicomp CLI (v3):
///
///   magic "AICZ" | u32 version | u32 header_len
///   | u32 header_crc32c | u32 payload_crc32c
///   | header fields (header_len bytes):
///       u8 codec (0=square, 1=triangle, 2=partial) | u8 transform
///       | u16 cf | u16 block | u16 subdivision | u32 rank
///       | u64 dims[rank]
///   | payload: serialized packed tensor (io::serialize_tensor format)
///
/// v2 archives (no header_len/CRC block, header fields directly after
/// the version word) remain readable. Decode rejects corrupt or
/// truncated input with a typed aic::io::CorruptStream — any flipped bit
/// in a v3 stream fails one of the CRC32C checks before a wrong tensor
/// can be reconstructed.
///
/// The header carries everything needed to rebuild the codec and the
/// original shape, so decompression needs no side information.
struct Archive {
  bool triangle = false;
  /// Partial-serialization factor; 1 means plain (or triangle) chop.
  std::size_t subdivision = 1;
  core::DctChopConfig config;     // height/width filled from dims
  tensor::Shape original_shape;   // BCHW
  tensor::Tensor packed;
};

/// The canonical factory spec string an archive header describes.
std::string archive_codec_spec(const Archive& archive);

/// Builds the codec an archive describes, through core::CodecFactory.
core::CodecPtr make_archive_codec(const Archive& archive);

/// Compresses `input` (BCHW) through a factory spec string (any of the
/// dctchop / triangle / partial family — other kinds have no archive
/// representation and throw std::invalid_argument). When `codec_out` is
/// non-null it receives the codec instance that performed the
/// compression (so its CodecStats can be inspected afterwards).
Archive compress_to_archive(const tensor::Tensor& input,
                            const std::string& codec_spec,
                            core::CodecPtr* codec_out = nullptr);

/// Convenience overload assembling the spec from the classic flags.
Archive compress_to_archive(const tensor::Tensor& input, std::size_t cf,
                            std::size_t block, core::TransformKind transform,
                            bool triangle,
                            core::CodecPtr* codec_out = nullptr);

/// Serializes to the given container version (3 = checksummed, the
/// default; 2 = the legacy pre-CRC layout, kept for compatibility
/// testing). Other versions throw std::invalid_argument.
std::string serialize_archive(const Archive& archive,
                              std::uint32_t version = kArchiveVersion);
/// Parses and fully validates an archive stream (magic, version range,
/// v3 CRCs, field ranges, overflow-checked dims, payload/header shape
/// agreement). Throws aic::io::CorruptStream on any violation.
Archive deserialize_archive(const std::string& bytes);

void save_archive(const Archive& archive, const std::string& path);
Archive load_archive(const std::string& path);

}  // namespace aic::cli
