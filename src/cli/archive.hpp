#pragma once

#include <string>

#include "core/codec.hpp"
#include "core/dct_chop.hpp"

namespace aic::cli {

/// On-disk compressed-tensor archive written by the aicomp CLI:
///
///   magic "AICZ" | u32 version | u8 codec (0=square, 1=triangle)
///   | u8 transform | u16 cf | u16 block | u32 rank | u64 dims[rank]
///   | serialized packed tensor (io::serialize_tensor format)
///
/// The header carries everything needed to rebuild the codec and the
/// original shape, so decompression needs no side information.
struct Archive {
  bool triangle = false;
  core::DctChopConfig config;     // height/width filled from dims
  tensor::Shape original_shape;   // BCHW
  tensor::Tensor packed;
};

/// Builds the codec an archive describes.
core::CodecPtr make_archive_codec(const Archive& archive);

/// Compresses `input` (BCHW) and assembles the archive in memory. When
/// `codec_out` is non-null it receives the codec instance that performed
/// the compression (so its CodecStats can be inspected afterwards).
Archive compress_to_archive(const tensor::Tensor& input, std::size_t cf,
                            std::size_t block, core::TransformKind transform,
                            bool triangle,
                            core::CodecPtr* codec_out = nullptr);

std::string serialize_archive(const Archive& archive);
Archive deserialize_archive(const std::string& bytes);

void save_archive(const Archive& archive, const std::string& path);
Archive load_archive(const std::string& path);

}  // namespace aic::cli
