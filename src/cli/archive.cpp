#include "cli/archive.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <future>
#include <istream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "baseline/chunk_entropy.hpp"
#include "core/codec_factory.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "io/byte_reader.hpp"
#include "io/checksum.hpp"
#include "io/error.hpp"
#include "io/mapped_file.hpp"
#include "io/tensor_io.hpp"
#include "obs/pipeline.hpp"
#include "obs/trace.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/context.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace aic::cli {

using io::CorruptKind;
using io::raise_corrupt;
using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr char kMagic[4] = {'A', 'I', 'C', 'Z'};

// The u8 codec-kind field of the header.
constexpr std::uint8_t kKindSquare = 0;
constexpr std::uint8_t kKindTriangle = 1;
constexpr std::uint8_t kKindPartial = 2;

// Any header dim above this is treated as hostile before the codec's
// shape math (which multiplies dims) ever sees it.
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

/// The header fields shared by v2 and v3 (everything between the
/// version/CRC block and the payload), as one byte string so v3 can
/// checksum it as a unit.
std::string serialize_header_fields(const Archive& archive) {
  std::string out;
  const std::uint8_t kind = archive.subdivision > 1 ? kKindPartial
                            : archive.triangle     ? kKindTriangle
                                                   : kKindSquare;
  append<std::uint8_t>(out, kind);
  append<std::uint8_t>(out,
                       static_cast<std::uint8_t>(archive.config.transform));
  append<std::uint16_t>(out, static_cast<std::uint16_t>(archive.config.cf));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.config.block));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.subdivision));
  append<std::uint32_t>(
      out, static_cast<std::uint32_t>(archive.original_shape.rank()));
  for (std::size_t axis = 0; axis < archive.original_shape.rank(); ++axis) {
    append<std::uint64_t>(out, archive.original_shape[axis]);
  }
  return out;
}

/// Parses the shared v2/v3 header fields into `archive`, validating
/// every field with a typed diagnostic.
void parse_header_fields(io::ByteReader& reader, Archive& archive) {
  const std::uint8_t kind = reader.read<std::uint8_t>("codec kind");
  if (kind > kKindPartial) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: unknown codec kind " + std::to_string(kind) +
                      " (supported: 0=square, 1=triangle, 2=partial)");
  }
  archive.triangle = kind == kKindTriangle;
  const std::uint8_t transform = reader.read<std::uint8_t>("transform");
  if (transform > static_cast<std::uint8_t>(core::TransformKind::kDst2)) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: unknown transform " + std::to_string(transform));
  }
  archive.config.transform = static_cast<core::TransformKind>(transform);
  archive.config.cf = reader.read<std::uint16_t>("cf");
  archive.config.block = reader.read<std::uint16_t>("block");
  archive.subdivision = reader.read<std::uint16_t>("subdivision");
  if (archive.subdivision == 0 ||
      (kind == kKindPartial) != (archive.subdivision > 1)) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: subdivision " +
                      std::to_string(archive.subdivision) +
                      " is inconsistent with codec kind " +
                      std::to_string(kind));
  }
  const std::uint32_t rank = reader.read<std::uint32_t>("rank");
  if (rank != 4) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: original rank " + std::to_string(rank) +
                      " (must be 4, BCHW)");
  }
  std::size_t dims[4];
  std::size_t numel = 1;
  for (auto& d : dims) {
    const std::uint64_t dim = reader.read<std::uint64_t>("dims");
    if (dim > kMaxDim) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "archive: dim " + std::to_string(dim) +
                        " is implausibly large");
    }
    d = static_cast<std::size_t>(dim);
    numel = io::checked_mul(numel, d, "archive dims");
  }
  // The original tensor must be representable in bytes before any codec
  // shape math multiplies these dims further.
  (void)io::checked_mul(numel, sizeof(float), "archive original bytes");
  archive.original_shape = Shape::bchw(dims[0], dims[1], dims[2], dims[3]);
  archive.config.height = dims[2];
  archive.config.width = dims[3];
}

std::string codec_spec_impl(const Archive& archive, bool pin_shape) {
  const auto& c = archive.config;
  std::ostringstream spec;
  if (archive.subdivision > 1) {
    spec << "partial:cf=" << c.cf << ",block=" << c.block
         << ",s=" << archive.subdivision;
  } else if (archive.triangle) {
    spec << "triangle:cf=" << c.cf << ",block=" << c.block;
  } else {
    spec << "dctchop:cf=" << c.cf << ",block=" << c.block;
  }
  spec << ",transform=" << core::transform_name(c.transform);
  if (pin_shape && c.height != 0) {
    spec << ",h=" << c.height << ",w=" << c.width;
  }
  return spec.str();
}

/// The compressed shape the header's codec promises, computed
/// allocation-free. The probe codec is deliberately built WITHOUT
/// pinning height/width: a pinned constructor eagerly compiles the plan
/// (operator matrices sized by the header dims), which would let a
/// mutated-but-plausible dim force a multi-gigabyte allocation before
/// any check can reject it. The shape-agnostic constructor validates the
/// same geometry arithmetically; the real pinned codec is only ever
/// built after the payload has vouched for the dims. Factory/shape
/// errors here are data errors (the header is attacker controlled), so
/// they surface as CorruptStream, not invalid_argument.
Shape expected_compressed_shape(const Archive& archive, const Context& ctx) {
  try {
    return core::make_codec(codec_spec_impl(archive, false), ctx)
        ->compressed_shape(archive.original_shape);
  } catch (const io::CorruptStream&) {
    throw;
  } catch (const std::exception& error) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  std::string("archive: header describes an invalid codec: ") +
                      error.what());
  }
}

/// Rejects a payload tensor whose shape disagrees with what the header's
/// codec promises.
void validate_payload_shape(const Shape& got, const Shape& expected) {
  if (got != expected) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "archive: payload shape " + got.to_string() +
                      " does not match the header codec's expected shape " +
                      expected.to_string());
  }
}

// --- v4 chunked container -------------------------------------------------

/// Any chunk budget above this is treated as hostile (the chunk table
/// and per-chunk staging are sized from it).
constexpr std::uint64_t kMaxChunkBytes = std::uint64_t{1} << 30;

/// Encoded-chunk batch budget of the streaming reader: chunks are
/// staged and decoded in runs of roughly this many encoded bytes, which
/// bounds resident memory while keeping enough chunks per batch to feed
/// the pool.
constexpr std::size_t kStreamBatchBytes = std::size_t{4} << 20;

struct EncodedChunk {
  std::string bytes;
  std::uint32_t crc = 0;
};

EncodedChunk encode_one_chunk(std::string_view plain,
                              baseline::ChunkEntropy entropy) {
  AIC_TRACE_SCOPE("pipeline.chunk_encode");
  runtime::Timer timer;
  EncodedChunk chunk;
  chunk.bytes = baseline::encode_chunk(plain, entropy);
  chunk.crc = io::crc32c(chunk.bytes.data(), chunk.bytes.size());
  obs::PipelineMetrics::global().record_chunk_encoded(timer.nanos());
  return chunk;
}

void require_writable_chunk_bytes(std::size_t chunk_bytes) {
  if (chunk_bytes == 0 || chunk_bytes > kMaxChunkBytes) {
    throw std::invalid_argument(
        "archive: chunk_bytes must be in [1, " +
        std::to_string(kMaxChunkBytes) + "], got " +
        std::to_string(chunk_bytes));
  }
}

/// Assembles the final v4 byte stream into `out` (cleared first) from
/// the shared header fields, the chunk geometry, and the already-encoded
/// chunks (in payload order). Reuses `out`'s capacity across calls.
void assemble_v4_into(const std::string& header_fields,
                      std::uint64_t payload_len, std::uint64_t chunk_bytes,
                      const std::vector<EncodedChunk>& chunks,
                      std::string& out) {
  std::string header = header_fields;
  append<std::uint64_t>(header, payload_len);
  append<std::uint64_t>(header, chunk_bytes);
  append<std::uint32_t>(header, static_cast<std::uint32_t>(chunks.size()));
  std::size_t encoded_total = 0;
  for (const EncodedChunk& chunk : chunks) {
    append<std::uint64_t>(header, chunk.bytes.size());
    append<std::uint32_t>(header, chunk.crc);
    encoded_total += chunk.bytes.size();
  }

  out.clear();
  out.reserve(sizeof(kMagic) + 12 + header.size() + encoded_total);
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, 4);
  append<std::uint32_t>(out, static_cast<std::uint32_t>(header.size()));
  append<std::uint32_t>(out, io::crc32c(header.data(), header.size()));
  out += header;
  for (const EncodedChunk& chunk : chunks) out += chunk.bytes;
}

/// Per-context recycler for the whole-Tensor staging the fused and
/// streaming writers churn through (plane groups and their packed
/// outputs). Tensor owns its storage as a plain vector<float>, so
/// recycling works at whole-tensor granularity: acquire() returns a
/// cached tensor of exactly the requested shape when one exists (the
/// caller reshapes otherwise) and release() caches up to kMaxEntries
/// tensors. Lives in Context::Slot::kArchiveScratch so steady-state
/// compress calls on one session stop allocating plane staging.
class ArchiveScratch {
 public:
  static constexpr std::size_t kMaxEntries = 8;

  Tensor acquire(const Shape& shape) {
    std::lock_guard lock(mutex_);
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->shape() == shape) {
        Tensor out = std::move(*it);
        cache_.erase(it);
        return out;
      }
    }
    return Tensor();
  }

  void release(Tensor&& tensor) {
    if (tensor.size_bytes() == 0) return;
    std::lock_guard lock(mutex_);
    if (cache_.size() < kMaxEntries) cache_.push_back(std::move(tensor));
  }

 private:
  std::mutex mutex_;
  std::vector<Tensor> cache_;
};

std::shared_ptr<ArchiveScratch> archive_scratch(const Context& ctx) {
  return std::static_pointer_cast<ArchiveScratch>(
      ctx.slot(Context::Slot::kArchiveScratch,
               [] { return std::make_shared<ArchiveScratch>(); }));
}

/// Parsed + fully validated v4 geometry: everything deserialize needs
/// before any payload byte is touched. Shared by the in-memory and
/// streaming readers so both enforce the identical validation order.
struct ChunkEntry {
  std::uint64_t offset = 0;  // into the encoded region
  std::uint64_t encoded_len = 0;
  std::uint32_t crc = 0;
};

struct V4Layout {
  Archive archive;  // packed left empty until the payload decodes
  Shape expected_shape;
  std::uint64_t payload_len = 0;
  std::uint64_t chunk_bytes = 0;
  std::uint32_t chunk_count = 0;
  std::vector<ChunkEntry> table;
  std::uint64_t encoded_total = 0;
};

/// Validates a v4 header (CRC gate, field ranges, payload/codec
/// agreement, chunk-table consistency and expansion bounds) BEFORE the
/// payload buffer is allocated, so hostile headers cannot force a large
/// allocation or a quadratic scan.
V4Layout parse_v4_layout(std::string_view header, std::uint32_t header_crc,
                         const Context& ctx) {
  const std::uint32_t computed_header =
      io::crc32c(header.data(), header.size());
  if (computed_header != header_crc) {
    raise_corrupt(CorruptKind::kChecksumMismatch,
                  "archive: header CRC mismatch (stored " +
                      std::to_string(header_crc) + ", computed " +
                      std::to_string(computed_header) + ")");
  }

  V4Layout layout;
  io::ByteReader header_reader(header, "archive header");
  parse_header_fields(header_reader, layout.archive);
  layout.payload_len = header_reader.read<std::uint64_t>("payload length");
  layout.chunk_bytes = header_reader.read<std::uint64_t>("chunk size");
  layout.chunk_count = header_reader.read<std::uint32_t>("chunk count");

  // The payload length is fully determined by the (CRC-gated) codec
  // fields, so it is checked against them rather than trusted.
  layout.expected_shape = expected_compressed_shape(layout.archive, ctx);
  const std::size_t expected_payload =
      io::serialized_tensor_bytes(layout.expected_shape);
  if (layout.payload_len != expected_payload) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "archive: header claims " +
                      std::to_string(layout.payload_len) +
                      " payload bytes, codec promises " +
                      std::to_string(expected_payload));
  }
  if (layout.chunk_bytes == 0 || layout.chunk_bytes > kMaxChunkBytes) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: chunk size " + std::to_string(layout.chunk_bytes) +
                      " outside [1, " + std::to_string(kMaxChunkBytes) + "]");
  }
  const std::uint64_t expected_chunks =
      (layout.payload_len + layout.chunk_bytes - 1) / layout.chunk_bytes;
  if (layout.chunk_count != expected_chunks) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: chunk count " + std::to_string(layout.chunk_count) +
                      " does not cover the payload (expected " +
                      std::to_string(expected_chunks) + ")");
  }

  layout.table.resize(layout.chunk_count);
  for (std::uint32_t i = 0; i < layout.chunk_count; ++i) {
    ChunkEntry& entry = layout.table[i];
    entry.offset = layout.encoded_total;
    entry.encoded_len = header_reader.read<std::uint64_t>("chunk length");
    entry.crc = header_reader.read<std::uint32_t>("chunk CRC");
    const std::uint64_t plain_len = std::min<std::uint64_t>(
        layout.chunk_bytes, layout.payload_len - i * layout.chunk_bytes);
    // encoded_len includes the 1-byte mode tag; the expansion bound caps
    // how much plain data an encoded chunk may legitimately claim.
    if (entry.encoded_len == 0 ||
        !baseline::chunk_expansion_ok(entry.encoded_len - 1, plain_len)) {
      raise_corrupt(CorruptKind::kPayloadMismatch,
                    "archive: chunk " + std::to_string(i) +
                        " encoded length " + std::to_string(entry.encoded_len) +
                        " cannot decode to " + std::to_string(plain_len) +
                        " bytes");
    }
    if (entry.encoded_len >
        std::numeric_limits<std::uint64_t>::max() - layout.encoded_total) {
      raise_corrupt(CorruptKind::kOverflow,
                    "archive: chunk table lengths overflow");
    }
    layout.encoded_total += entry.encoded_len;
  }
  if (header_reader.remaining() != 0) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: " + std::to_string(header_reader.remaining()) +
                      " trailing bytes after the chunk table");
  }
  return layout;
}

/// CRC-checks and entropy-decodes chunk `i` into `dest` (which must hold
/// the chunk's plain_len bytes).
void decode_one_chunk(const V4Layout& layout, std::size_t i,
                      std::string_view chunk, char* dest) {
  AIC_TRACE_SCOPE("pipeline.chunk_decode");
  runtime::Timer timer;
  const std::uint32_t computed = io::crc32c(chunk.data(), chunk.size());
  if (computed != layout.table[i].crc) {
    raise_corrupt(CorruptKind::kChecksumMismatch,
                  "archive: chunk " + std::to_string(i) +
                      " CRC mismatch (stored " +
                      std::to_string(layout.table[i].crc) + ", computed " +
                      std::to_string(computed) + ")");
  }
  const std::size_t lo = i * layout.chunk_bytes;
  const std::size_t plain_len =
      std::min<std::size_t>(layout.chunk_bytes, layout.payload_len - lo);
  baseline::decode_chunk(chunk, plain_len, dest);
  obs::PipelineMetrics::global().record_chunk_decoded(timer.nanos());
}

/// Number of leading chunks that jointly cover the serialized tensor
/// header — the prefix a reader must decode before the result tensor
/// can be shaped and the remaining chunks can land in its storage.
std::size_t prefix_chunk_count(const V4Layout& layout) {
  const std::size_t prefix_len = std::min<std::size_t>(
      layout.payload_len, io::max_tensor_header_bytes());
  return (prefix_len + layout.chunk_bytes - 1) / layout.chunk_bytes;
}

/// Parses + validates the tensor header at the front of the decoded
/// payload prefix, then returns the result tensor with the prefix's
/// float bytes already copied in. Preserves the rejection order of the
/// historical payload-string path: tensor_io's typed errors first, then
/// the archive-level shape agreement check.
Tensor tensor_from_prefix(const V4Layout& layout, std::string_view prefix,
                          std::size_t* header_bytes_out) {
  const io::TensorHeaderInfo info =
      io::parse_tensor_header(prefix, layout.payload_len);
  validate_payload_shape(info.shape, layout.expected_shape);
  Tensor packed(info.shape);
  std::memcpy(packed.raw(), prefix.data() + info.header_bytes,
              prefix.size() - info.header_bytes);
  *header_bytes_out = info.header_bytes;
  return packed;
}

/// Decodes a validated chunk stream straight into the result tensor's
/// storage. The leading chunks covering the serialized tensor header go
/// serially through a small pooled bounce buffer (the header must be
/// parsed before the tensor exists); every remaining chunk then
/// CRC-checks and entropy-decodes in parallel directly into the float
/// storage — the payload never materializes as a separate heap string.
Archive decode_v4_payload(V4Layout&& layout, std::string_view encoded,
                          const Context& ctx) {
  AIC_TRACE_SCOPE("pipeline.deserialize_v4");
  Context::PoolScope pool_scope(ctx);
  const std::size_t chunk_bytes = layout.chunk_bytes;
  const std::size_t prefix_chunks = prefix_chunk_count(layout);
  const std::size_t bounce_len = std::min<std::size_t>(
      layout.payload_len, prefix_chunks * chunk_bytes);

  runtime::BufferPool::Buffer bounce = ctx.buffer_pool().acquire(bounce_len);
  for (std::size_t i = 0; i < prefix_chunks; ++i) {
    const ChunkEntry& entry = layout.table[i];
    decode_one_chunk(layout, i,
                     encoded.substr(entry.offset, entry.encoded_len),
                     bounce.data() + i * chunk_bytes);
  }
  std::size_t header_bytes = 0;
  Tensor packed = tensor_from_prefix(
      layout, std::string_view(bounce.data(), bounce_len), &header_bytes);
  bounce.reset();

  char* tensor_bytes = reinterpret_cast<char*>(packed.raw());
  runtime::parallel_for(
      prefix_chunks, layout.chunk_count,
      [&](std::size_t i) {
        const ChunkEntry& entry = layout.table[i];
        decode_one_chunk(layout, i,
                         encoded.substr(entry.offset, entry.encoded_len),
                         tensor_bytes + (i * chunk_bytes - header_bytes));
      },
      {.grain = 1});
  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       layout.chunk_count);
  layout.archive.packed = std::move(packed);
  return std::move(layout.archive);
}

/// Parses everything after the version field of a v4 stream. Every
/// header-derived quantity is validated BEFORE any payload-sized
/// allocation (parse_v4_layout); chunk CRC checks and entropy decode
/// then fan out across the pool into disjoint slices of the result
/// tensor (decode_v4_payload).
Archive deserialize_archive_v4(io::ByteReader& reader, const Context& ctx) {
  const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
  const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
  const std::string_view header =
      reader.read_bytes(header_len, "header fields");
  V4Layout layout = parse_v4_layout(header, header_crc, ctx);
  const std::string_view encoded = reader.rest();
  if (encoded.size() != layout.encoded_total) {
    raise_corrupt(CorruptKind::kTruncated,
                  "archive: chunk table promises " +
                      std::to_string(layout.encoded_total) +
                      " encoded bytes, stream has " +
                      std::to_string(encoded.size()));
  }
  return decode_v4_payload(std::move(layout), encoded, ctx);
}

/// Unfused v4 write: chunk the serialized payload and fan the entropy
/// encode + CRC over the pool. grain=1 because each iteration is a whole
/// chunk (tens of KiB) — the parallel_for heuristics handle small chunk
/// counts without oversubscribing. The payload stages in a pooled
/// buffer, so steady-state calls on one session reuse the same slab.
std::string serialize_archive_v4(const Archive& archive,
                                 const ArchiveWriteOptions& options,
                                 const Context& ctx) {
  AIC_TRACE_SCOPE("pipeline.serialize_v4");
  require_writable_chunk_bytes(options.chunk_bytes);
  const std::string header_fields = serialize_header_fields(archive);
  const std::string tensor_header =
      io::serialize_tensor_header(archive.packed.shape());
  const std::size_t payload_len =
      tensor_header.size() + archive.packed.size_bytes();
  runtime::BufferPool::Buffer payload = ctx.buffer_pool().acquire(payload_len);
  std::memcpy(payload.data(), tensor_header.data(), tensor_header.size());
  std::memcpy(payload.data() + tensor_header.size(), archive.packed.raw(),
              archive.packed.size_bytes());
  const std::size_t chunk_bytes = options.chunk_bytes;
  const std::size_t chunk_count = (payload_len + chunk_bytes - 1) / chunk_bytes;

  // Route the fan-out onto this session's pool.
  Context::PoolScope pool_scope(ctx);
  std::vector<EncodedChunk> chunks(chunk_count);
  runtime::parallel_for(
      0, chunk_count,
      [&](std::size_t i) {
        const std::size_t lo = i * chunk_bytes;
        const std::size_t hi = std::min(payload_len, lo + chunk_bytes);
        chunks[i] = encode_one_chunk(
            std::string_view(payload.data() + lo, hi - lo), options.entropy);
      },
      {.grain = 1});
  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);
  std::string out;
  assemble_v4_into(header_fields, payload_len, chunk_bytes, chunks, out);
  return out;
}

/// Fills every Archive field except `packed` from the codec the factory
/// built for `codec_spec`. The archive header only represents the chop
/// family; recover the parameters from the concrete codec instance.
Archive classify_codec(const core::Codec& codec, const std::string& codec_spec,
                       const Shape& input_shape) {
  Archive archive;
  archive.original_shape = input_shape;
  if (const auto* dc = dynamic_cast<const core::DctChopCodec*>(&codec)) {
    archive.config = dc->config();
  } else if (const auto* sg =
                 dynamic_cast<const core::TriangleCodec*>(&codec)) {
    archive.triangle = true;
    archive.config = sg->config();
  } else if (const auto* ps =
                 dynamic_cast<const core::PartialSerialCodec*>(&codec)) {
    archive.subdivision = ps->config().subdivision;
    archive.config = {.height = ps->config().height,
                      .width = ps->config().width,
                      .cf = ps->config().cf,
                      .block = ps->config().block,
                      .transform = ps->config().transform};
  } else {
    throw std::invalid_argument("archive: codec \"" + codec_spec +
                                "\" has no archive representation (use the "
                                "dctchop / triangle / partial family)");
  }
  // Shape-agnostic specs leave height/width zero; the header pins them
  // to the tensor that is actually being compressed.
  archive.config.height = input_shape[2];
  archive.config.width = input_shape[3];
  return archive;
}

/// The fused/streaming writers splice per-plane(-group) packed bytes
/// into the payload at the offsets a full-tensor compress would use.
/// That is only sound when the codec treats planes independently; the
/// chop family does, and this predicate guards the assumption against
/// future codec kinds.
bool plane_separable_codec(const core::Codec& codec, const Shape& input_shape,
                           const Shape& packed_shape) {
  const std::size_t planes = input_shape[0] * input_shape[1];
  return planes > 1 && packed_shape.rank() == 4 &&
         packed_shape[0] == input_shape[0] &&
         packed_shape[1] == input_shape[1] &&
         codec.compressed_shape(
             Shape::bchw(1, 1, input_shape[2], input_shape[3])) ==
             Shape::bchw(1, 1, packed_shape[2], packed_shape[3]);
}

void write_or_throw(std::ostream& out, const char* data, std::size_t len) {
  out.write(data, static_cast<std::streamsize>(len));
  if (!out) throw std::runtime_error("archive: stream write failed");
}

}  // namespace

std::string archive_codec_spec(const Archive& archive) {
  return codec_spec_impl(archive, true);
}

core::CodecPtr make_archive_codec(const Archive& archive,
                                  const Context& ctx) {
  return core::make_codec(archive_codec_spec(archive), ctx);
}

ArchiveWriteOptions ArchiveWriteOptions::from_context(const Context& ctx) {
  ArchiveWriteOptions options;
  options.version = ctx.archive_version();
  if (ctx.chunk_bytes() != 0) options.chunk_bytes = ctx.chunk_bytes();
  options.entropy = static_cast<baseline::ChunkEntropy>(ctx.entropy_mode());
  return options;
}

Archive compress_to_archive(const Tensor& input, const std::string& codec_spec,
                            core::CodecPtr* codec_out, const Context& ctx) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  const core::CodecPtr codec = core::make_codec(codec_spec, ctx);
  Archive archive = classify_codec(*codec, codec_spec, input.shape());
  archive.packed = codec->compress(input);
  if (codec_out != nullptr) *codec_out = codec;
  return archive;
}

Archive compress_to_archive(const Tensor& input, std::size_t cf,
                            std::size_t block,
                            core::TransformKind transform, bool triangle,
                            core::CodecPtr* codec_out, const Context& ctx) {
  std::ostringstream spec;
  spec << (triangle ? "triangle" : "dctchop") << ":cf=" << cf
       << ",block=" << block
       << ",transform=" << core::transform_name(transform);
  return compress_to_archive(input, spec.str(), codec_out, ctx);
}

std::string serialize_archive(const Archive& archive,
                              std::uint32_t version, const Context& ctx) {
  ArchiveWriteOptions options;
  options.version = version;
  return serialize_archive(archive, options, ctx);
}

std::string serialize_archive(const Archive& archive,
                              const ArchiveWriteOptions& options,
                              const Context& ctx) {
  const std::uint32_t version = options.version;
  if (version < 2 || version > kArchiveVersion) {
    throw std::invalid_argument("archive: cannot write version " +
                                std::to_string(version));
  }
  if (version == 4) return serialize_archive_v4(archive, options, ctx);
  const std::string header = serialize_header_fields(archive);
  const std::string payload = io::serialize_tensor(archive.packed);

  std::string out;
  out.reserve(sizeof(kMagic) + 16 + header.size() + payload.size());
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, version);
  if (version >= 3) {
    // v3 integrity block: header length + independent CRC32C over the
    // header fields and the payload, so any flipped bit anywhere in the
    // stream is caught before (or instead of) deeper parsing.
    append<std::uint32_t>(out, static_cast<std::uint32_t>(header.size()));
    append<std::uint32_t>(out, io::crc32c(header.data(), header.size()));
    append<std::uint32_t>(out, io::crc32c(payload.data(), payload.size()));
  }
  out += header;
  out += payload;
  return out;
}

void compress_to_archive_bytes(const Tensor& input,
                               const std::string& codec_spec,
                               const ArchiveWriteOptions& options,
                               core::CodecPtr* codec_out, const Context& ctx,
                               std::string& out) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  if (options.version != 4) {
    Archive archive = compress_to_archive(input, codec_spec, codec_out, ctx);
    out = serialize_archive(archive, options, ctx);
    return;
  }
  require_writable_chunk_bytes(options.chunk_bytes);

  AIC_TRACE_SCOPE("pipeline.fused_compress");
  runtime::Timer wall_timer;
  const core::CodecPtr codec = core::make_codec(codec_spec, ctx);
  Archive archive = classify_codec(*codec, codec_spec, input.shape());
  if (codec_out != nullptr) *codec_out = codec;

  const Shape packed_shape = codec->compressed_shape(input.shape());
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  const bool plane_separable =
      plane_separable_codec(*codec, input.shape(), packed_shape);

  const std::string tensor_header = io::serialize_tensor_header(packed_shape);
  const std::size_t payload_len = io::serialized_tensor_bytes(packed_shape);
  const std::size_t chunk_bytes = options.chunk_bytes;
  const std::size_t chunk_count = (payload_len + chunk_bytes - 1) / chunk_bytes;

  runtime::BufferPool::Buffer payload = ctx.buffer_pool().acquire(payload_len);
  std::memcpy(payload.data(), tensor_header.data(), tensor_header.size());

  // Durable handle for the submit loop (pins the pool against a
  // concurrent Context::set_process_threads); the PoolScope routes the
  // codec's internal parallel_for fan-out onto the same session pool.
  const std::shared_ptr<runtime::ThreadPool> pool_handle = ctx.pool_handle();
  runtime::ThreadPool& pool = *pool_handle;
  Context::PoolScope pool_scope(ctx);
  const std::shared_ptr<ArchiveScratch> scratch = archive_scratch(ctx);
  std::vector<std::future<EncodedChunk>> futures(chunk_count);
  std::size_t next_chunk = 0;
  std::atomic<std::uint64_t> encode_ns{0};
  // Submits every chunk fully covered by the first `high_water` payload
  // bytes. Encode tasks enter the FIFO queue ahead of the next group's
  // transform tasks, so both kinds of work stay in flight with no phase
  // barrier; collecting the futures in index order keeps the output
  // byte-identical for every pool size.
  const auto submit_ready = [&](std::size_t high_water) {
    while (next_chunk < chunk_count) {
      const std::size_t lo = next_chunk * chunk_bytes;
      const std::size_t hi = std::min(payload_len, lo + chunk_bytes);
      if (hi > high_water) break;
      futures[next_chunk] = pool.submit([&, lo, hi] {
        runtime::Timer timer;
        EncodedChunk chunk = encode_one_chunk(
            std::string_view(payload.data() + lo, hi - lo), options.entropy);
        encode_ns.fetch_add(timer.nanos(), std::memory_order_relaxed);
        return chunk;
      });
      ++next_chunk;
    }
  };

  std::uint64_t transform_ns = 0;
  if (plane_separable) {
    const std::size_t in_plane_bytes =
        input.shape()[2] * input.shape()[3] * sizeof(float);
    const std::size_t packed_plane_bytes =
        packed_shape[2] * packed_shape[3] * sizeof(float);
    const std::size_t group_count = std::min<std::size_t>(planes, 4);
    const std::size_t group_planes = (planes + group_count - 1) / group_count;
    const Shape full_group_shape =
        Shape::bchw(1, group_planes, input.shape()[2], input.shape()[3]);
    Tensor group = scratch->acquire(full_group_shape);
    Tensor packed_group =
        scratch->acquire(codec->compressed_shape(full_group_shape));
    for (std::size_t p0 = 0; p0 < planes; p0 += group_planes) {
      const std::size_t g = std::min(group_planes, planes - p0);
      const Shape group_shape =
          Shape::bchw(1, g, input.shape()[2], input.shape()[3]);
      runtime::Timer timer;
      if (group.shape() != group_shape) {
        scratch->release(std::move(group));
        group = Tensor(group_shape);
      }
      std::memcpy(group.raw(),
                  reinterpret_cast<const char*>(input.raw()) +
                      p0 * in_plane_bytes,
                  g * in_plane_bytes);
      codec->compress_into(group, packed_group);
      std::memcpy(payload.data() + tensor_header.size() +
                      p0 * packed_plane_bytes,
                  packed_group.raw(), g * packed_plane_bytes);
      transform_ns += timer.nanos();
      submit_ready(tensor_header.size() + (p0 + g) * packed_plane_bytes);
    }
    scratch->release(std::move(group));
    scratch->release(std::move(packed_group));
  } else {
    // Single plane (or a non-separable codec): the transform itself is
    // already parallel via sandwich_banded, and the chunk encode fans
    // out right after — the two stages just don't interleave.
    runtime::Timer timer;
    Tensor packed = scratch->acquire(packed_shape);
    codec->compress_into(input, packed);
    std::memcpy(payload.data() + tensor_header.size(), packed.raw(),
                packed.size_bytes());
    scratch->release(std::move(packed));
    transform_ns = timer.nanos();
  }
  submit_ready(payload_len);

  std::vector<EncodedChunk> chunks(chunk_count);
  for (std::size_t i = 0; i < chunk_count; ++i) chunks[i] = futures[i].get();

  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);
  obs::PipelineMetrics::global().record_overlap(
      transform_ns, encode_ns.load(std::memory_order_relaxed),
      wall_timer.nanos());
  assemble_v4_into(serialize_header_fields(archive), payload_len, chunk_bytes,
                   chunks, out);
}

std::string compress_to_archive_bytes(const Tensor& input,
                                      const std::string& codec_spec,
                                      const ArchiveWriteOptions& options,
                                      core::CodecPtr* codec_out,
                                      const Context& ctx) {
  std::string out;
  compress_to_archive_bytes(input, codec_spec, options, codec_out, ctx, out);
  return out;
}

std::size_t compress_to_stream(const Tensor& input,
                               const std::string& codec_spec,
                               std::ostream& out,
                               const ArchiveWriteOptions& options,
                               core::CodecPtr* codec_out, const Context& ctx) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  const std::ostream::pos_type start = out.tellp();
  if (options.version != 4 || start == std::ostream::pos_type(-1)) {
    // v2/v3 have no chunk table to patch, and a non-seekable sink cannot
    // be back-patched at all: buffer in memory and write once.
    const std::string bytes =
        compress_to_archive_bytes(input, codec_spec, options, codec_out, ctx);
    write_or_throw(out, bytes.data(), bytes.size());
    out.flush();
    if (!out) throw std::runtime_error("archive: stream write failed");
    return bytes.size();
  }
  require_writable_chunk_bytes(options.chunk_bytes);

  AIC_TRACE_SCOPE("pipeline.stream_compress");
  const core::CodecPtr codec = core::make_codec(codec_spec, ctx);
  Archive archive = classify_codec(*codec, codec_spec, input.shape());
  if (codec_out != nullptr) *codec_out = codec;

  const Shape packed_shape = codec->compressed_shape(input.shape());
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  const bool plane_separable =
      plane_separable_codec(*codec, input.shape(), packed_shape);
  const std::string tensor_header = io::serialize_tensor_header(packed_shape);
  const std::size_t payload_len = io::serialized_tensor_bytes(packed_shape);
  const std::size_t chunk_bytes = options.chunk_bytes;
  const std::size_t chunk_count = (payload_len + chunk_bytes - 1) / chunk_bytes;
  const std::string header_fields = serialize_header_fields(archive);
  const std::size_t header_len = header_fields.size() + 20 + 12 * chunk_count;

  {
    // Prologue with a zero header CRC and a zeroed chunk table, both
    // back-patched once every chunk's (length, CRC) is known.
    std::string prologue;
    prologue.reserve(16 + header_len);
    prologue.append(kMagic, sizeof(kMagic));
    append<std::uint32_t>(prologue, 4);
    append<std::uint32_t>(prologue, static_cast<std::uint32_t>(header_len));
    append<std::uint32_t>(prologue, 0);
    prologue += header_fields;
    append<std::uint64_t>(prologue, payload_len);
    append<std::uint64_t>(prologue, chunk_bytes);
    append<std::uint32_t>(prologue, static_cast<std::uint32_t>(chunk_count));
    prologue.append(12 * chunk_count, '\0');
    write_or_throw(out, prologue.data(), prologue.size());
  }

  const std::shared_ptr<runtime::ThreadPool> pool_handle = ctx.pool_handle();
  runtime::ThreadPool& pool = *pool_handle;
  Context::PoolScope pool_scope(ctx);
  const std::shared_ptr<ArchiveScratch> scratch = archive_scratch(ctx);

  std::vector<ChunkEntry> table(chunk_count);
  std::uint64_t encoded_total = 0;
  std::size_t next_chunk = 0;

  // Encodes every chunk fully covered by payload bytes [0, high_water)
  // across the pool, then writes them to the sink in index order. All
  // futures drain before return, so the caller may slide its window.
  const auto drain_ready = [&](const char* window, std::size_t window_base,
                               std::size_t high_water) {
    std::vector<std::future<EncodedChunk>> batch;
    const std::size_t first = next_chunk;
    while (next_chunk < chunk_count) {
      const std::size_t lo = next_chunk * chunk_bytes;
      const std::size_t hi = std::min(payload_len, lo + chunk_bytes);
      if (hi > high_water) break;
      batch.push_back(pool.submit([window, window_base, lo, hi, &options] {
        return encode_one_chunk(
            std::string_view(window + (lo - window_base), hi - lo),
            options.entropy);
      }));
      ++next_chunk;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const EncodedChunk chunk = batch[i].get();
      table[first + i].encoded_len = chunk.bytes.size();
      table[first + i].crc = chunk.crc;
      encoded_total += chunk.bytes.size();
      write_or_throw(out, chunk.bytes.data(), chunk.bytes.size());
    }
  };

  if (plane_separable) {
    const std::size_t in_plane_bytes =
        input.shape()[2] * input.shape()[3] * sizeof(float);
    const std::size_t packed_plane_bytes =
        packed_shape[2] * packed_shape[3] * sizeof(float);
    const Shape plane_shape =
        Shape::bchw(1, 1, input.shape()[2], input.shape()[3]);
    // Worst-case window: a carry of less than one chunk, plus one
    // plane's packed bytes, plus the tensor header ahead of plane 0.
    runtime::BufferPool::Buffer window = ctx.buffer_pool().acquire(
        chunk_bytes + packed_plane_bytes + tensor_header.size());
    Tensor plane = scratch->acquire(plane_shape);
    if (plane.shape() != plane_shape) plane = Tensor(plane_shape);
    Tensor packed_plane =
        scratch->acquire(codec->compressed_shape(plane_shape));
    std::size_t window_base = 0;
    std::size_t produced = tensor_header.size();
    std::memcpy(window.data(), tensor_header.data(), tensor_header.size());
    for (std::size_t p = 0; p < planes; ++p) {
      std::memcpy(plane.raw(),
                  reinterpret_cast<const char*>(input.raw()) +
                      p * in_plane_bytes,
                  in_plane_bytes);
      codec->compress_into(plane, packed_plane);
      std::memcpy(window.data() + (produced - window_base),
                  packed_plane.raw(), packed_plane_bytes);
      produced += packed_plane_bytes;
      drain_ready(window.data(), window_base, produced);
      const std::size_t drained_end =
          std::min(next_chunk * chunk_bytes, produced);
      if (drained_end > window_base) {
        std::memmove(window.data(),
                     window.data() + (drained_end - window_base),
                     produced - drained_end);
        window_base = drained_end;
      }
    }
    drain_ready(window.data(), window_base, produced);  // ragged tail
    scratch->release(std::move(plane));
    scratch->release(std::move(packed_plane));
  } else {
    // Single plane or a non-separable codec: the transform needs the
    // whole tensor anyway, so stage the payload once (pooled) and stream
    // the encoded chunks — the archive string never materializes.
    runtime::BufferPool::Buffer payload =
        ctx.buffer_pool().acquire(payload_len);
    std::memcpy(payload.data(), tensor_header.data(), tensor_header.size());
    Tensor packed = scratch->acquire(packed_shape);
    codec->compress_into(input, packed);
    std::memcpy(payload.data() + tensor_header.size(), packed.raw(),
                packed.size_bytes());
    scratch->release(std::move(packed));
    drain_ready(payload.data(), 0, payload_len);
  }

  // Back-patch the real header CRC and chunk table.
  std::string header = header_fields;
  append<std::uint64_t>(header, payload_len);
  append<std::uint64_t>(header, chunk_bytes);
  append<std::uint32_t>(header, static_cast<std::uint32_t>(chunk_count));
  for (const ChunkEntry& entry : table) {
    append<std::uint64_t>(header, entry.encoded_len);
    append<std::uint32_t>(header, entry.crc);
  }
  const std::uint32_t header_crc = io::crc32c(header.data(), header.size());
  const std::ostream::pos_type end = out.tellp();
  out.seekp(start + std::ostream::off_type(12));
  char crc_raw[sizeof(header_crc)];
  std::memcpy(crc_raw, &header_crc, sizeof(header_crc));
  write_or_throw(out, crc_raw, sizeof(crc_raw));
  out.seekp(start +
            static_cast<std::ostream::off_type>(16 + header_fields.size() +
                                                20));
  write_or_throw(out, header.data() + header_fields.size() + 20,
                 12 * chunk_count);
  out.seekp(end);
  out.flush();
  if (!out) throw std::runtime_error("archive: stream write failed");
  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);
  return 16 + header_len + static_cast<std::size_t>(encoded_total);
}

Archive decompress_from_stream(std::istream& in, const Context& ctx) {
  // Mirror deserialize_archive's validation order (and its typed
  // rejections) while holding only O(header + batch + tensor) memory.
  char prologue[16];
  in.read(prologue, sizeof(prologue));
  const std::size_t got = static_cast<std::size_t>(in.gcount());
  std::uint32_t version = 0;
  std::uint32_t header_len = 0;
  std::uint32_t header_crc = 0;
  {
    io::ByteReader reader(std::string_view(prologue, got), "archive");
    reader.require(sizeof(kMagic), "magic");
    if (std::memcmp(prologue, kMagic, sizeof(kMagic)) != 0) {
      raise_corrupt(CorruptKind::kBadMagic, "archive: bad magic");
    }
    (void)reader.read_bytes(sizeof(kMagic), "magic");
    version = reader.read<std::uint32_t>("version");
    if (version < 2 || version > kArchiveVersion) {
      raise_corrupt(CorruptKind::kBadVersion,
                    "archive: found version " + std::to_string(version) +
                        ", supported versions 2.." +
                        std::to_string(kArchiveVersion));
    }
    if (version == 4) {
      header_len = reader.read<std::uint32_t>("header size");
      header_crc = reader.read<std::uint32_t>("header CRC");
    }
  }
  if (version != 4) {
    // v2/v3 are unchunked — there is no streamable structure. Reassemble
    // the full byte string and delegate to the in-memory reader.
    std::string bytes(prologue, got);
    bytes.append(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return deserialize_archive(bytes, ctx);
  }

  // Incremental header read: memory stays proportional to the bytes the
  // stream actually holds, so a hostile length cannot force a giant
  // allocation.
  std::string header;
  header.reserve(std::min<std::size_t>(header_len, kStreamBatchBytes));
  {
    runtime::BufferPool::Buffer stage = ctx.buffer_pool().acquire(
        std::min<std::size_t>(header_len, kStreamBatchBytes));
    std::size_t remaining = header_len;
    while (remaining > 0) {
      const std::size_t step = std::min(remaining, stage.capacity());
      in.read(stage.data(), static_cast<std::streamsize>(step));
      const std::size_t n = static_cast<std::size_t>(in.gcount());
      if (n == 0) break;
      header.append(stage.data(), n);
      remaining -= n;
    }
  }
  if (header.size() != header_len) {
    raise_corrupt(CorruptKind::kTruncated,
                  "archive: truncated reading header fields (need " +
                      std::to_string(header_len) + " bytes, have " +
                      std::to_string(header.size()) + ")");
  }
  V4Layout layout = parse_v4_layout(header, header_crc, ctx);

  AIC_TRACE_SCOPE("pipeline.stream_decompress");
  Context::PoolScope pool_scope(ctx);
  const std::size_t chunk_bytes = layout.chunk_bytes;
  const std::size_t chunk_count = layout.chunk_count;
  const std::size_t prefix_chunks = prefix_chunk_count(layout);
  const std::size_t bounce_len = std::min<std::size_t>(
      layout.payload_len, prefix_chunks * chunk_bytes);

  std::uint64_t consumed = 0;
  const auto read_encoded = [&](char* dest, std::size_t len) {
    in.read(dest, static_cast<std::streamsize>(len));
    const std::size_t n = static_cast<std::size_t>(in.gcount());
    consumed += n;
    if (n != len) {
      raise_corrupt(CorruptKind::kTruncated,
                    "archive: chunk table promises " +
                        std::to_string(layout.encoded_total) +
                        " encoded bytes, stream has " +
                        std::to_string(consumed));
    }
  };

  // Stage + decode the header-covering prefix serially (the tensor
  // cannot exist until its serialized header has been decoded).
  std::size_t header_bytes = 0;
  Tensor packed;
  {
    std::uint64_t prefix_encoded = 0;
    for (std::size_t i = 0; i < prefix_chunks; ++i) {
      prefix_encoded += layout.table[i].encoded_len;
    }
    runtime::BufferPool::Buffer stage =
        ctx.buffer_pool().acquire(prefix_encoded);
    read_encoded(stage.data(), static_cast<std::size_t>(prefix_encoded));
    runtime::BufferPool::Buffer bounce = ctx.buffer_pool().acquire(bounce_len);
    for (std::size_t i = 0; i < prefix_chunks; ++i) {
      const ChunkEntry& entry = layout.table[i];
      decode_one_chunk(
          layout, i,
          std::string_view(stage.data() + entry.offset, entry.encoded_len),
          bounce.data() + i * chunk_bytes);
    }
    packed = tensor_from_prefix(
        layout, std::string_view(bounce.data(), bounce_len), &header_bytes);
  }
  char* tensor_bytes = reinterpret_cast<char*>(packed.raw());

  // Remaining chunks in bounded batches: read a run of encoded chunks
  // into one pooled stage, then CRC + decode the run in parallel
  // straight into the tensor's storage.
  std::size_t next = prefix_chunks;
  while (next < chunk_count) {
    std::size_t batch_end = next;
    std::uint64_t batch_bytes = 0;
    while (batch_end < chunk_count) {
      const std::uint64_t len = layout.table[batch_end].encoded_len;
      if (batch_end > next && batch_bytes + len > kStreamBatchBytes) break;
      batch_bytes += len;
      ++batch_end;
    }
    runtime::BufferPool::Buffer stage =
        ctx.buffer_pool().acquire(static_cast<std::size_t>(batch_bytes));
    read_encoded(stage.data(), static_cast<std::size_t>(batch_bytes));
    const std::uint64_t base = layout.table[next].offset;
    runtime::parallel_for(
        next, batch_end,
        [&](std::size_t i) {
          const ChunkEntry& entry = layout.table[i];
          decode_one_chunk(
              layout, i,
              std::string_view(stage.data() + (entry.offset - base),
                               entry.encoded_len),
              tensor_bytes + (i * chunk_bytes - header_bytes));
        },
        {.grain = 1});
    next = batch_end;
  }

  // Reject trailing bytes the way the in-memory reader does.
  {
    char probe = 0;
    in.read(&probe, 1);
    if (in.gcount() == 1) {
      std::uint64_t extra = 1;
      char sink[4096];
      while (in.read(sink, sizeof(sink)), in.gcount() > 0) {
        extra += static_cast<std::uint64_t>(in.gcount());
      }
      raise_corrupt(CorruptKind::kTruncated,
                    "archive: chunk table promises " +
                        std::to_string(layout.encoded_total) +
                        " encoded bytes, stream has " +
                        std::to_string(layout.encoded_total + extra));
    }
  }
  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);
  layout.archive.packed = std::move(packed);
  return std::move(layout.archive);
}

ArchiveProbe probe_archive(std::string_view bytes) {
  io::ByteReader reader(bytes, "archive");
  reader.require(sizeof(kMagic), "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    raise_corrupt(CorruptKind::kBadMagic, "archive: bad magic");
  }
  (void)reader.read_bytes(sizeof(kMagic), "magic");
  ArchiveProbe probe;
  probe.version = reader.read<std::uint32_t>("version");
  if (probe.version < 2 || probe.version > kArchiveVersion) {
    raise_corrupt(CorruptKind::kBadVersion,
                  "archive: found version " + std::to_string(probe.version) +
                      ", supported versions 2.." +
                      std::to_string(kArchiveVersion));
  }
  if (probe.version == 2) {
    // v2 has no length fields: the payload is whatever follows the
    // fixed-size header (1+1+2+2+2+4 + 4*8 = 44 bytes).
    reader.require(44, "header fields");
    probe.payload_len = reader.remaining() - 44;
    return probe;
  }
  const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
  const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
  if (probe.version == 3) {
    (void)reader.read<std::uint32_t>("payload CRC");
  }
  const std::string_view header =
      reader.read_bytes(header_len, "header fields");
  const std::uint32_t computed = io::crc32c(header.data(), header.size());
  if (computed != header_crc) {
    raise_corrupt(CorruptKind::kChecksumMismatch,
                  "archive: header CRC mismatch (stored " +
                      std::to_string(header_crc) + ", computed " +
                      std::to_string(computed) + ")");
  }
  if (probe.version == 3) {
    probe.payload_len = reader.remaining();
    return probe;
  }
  Archive scratch;
  io::ByteReader header_reader(header, "archive header");
  parse_header_fields(header_reader, scratch);
  probe.payload_len = static_cast<std::size_t>(
      header_reader.read<std::uint64_t>("payload length"));
  probe.chunk_bytes = static_cast<std::size_t>(
      header_reader.read<std::uint64_t>("chunk size"));
  probe.chunk_count = header_reader.read<std::uint32_t>("chunk count");
  return probe;
}

Archive deserialize_archive(std::string_view bytes, const Context& ctx) {
  io::ByteReader reader(bytes, "archive");
  reader.require(sizeof(kMagic), "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    raise_corrupt(CorruptKind::kBadMagic, "archive: bad magic");
  }
  (void)reader.read_bytes(sizeof(kMagic), "magic");
  const std::uint32_t version = reader.read<std::uint32_t>("version");
  if (version < 2 || version > kArchiveVersion) {
    raise_corrupt(CorruptKind::kBadVersion,
                  "archive: found version " + std::to_string(version) +
                      ", supported versions 2.." +
                      std::to_string(kArchiveVersion));
  }

  if (version == 4) return deserialize_archive_v4(reader, ctx);

  Archive archive;
  if (version >= 3) {
    const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
    const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
    const std::uint32_t payload_crc =
        reader.read<std::uint32_t>("payload CRC");
    const std::string_view header =
        reader.read_bytes(header_len, "header fields");
    const std::uint32_t computed_header =
        io::crc32c(header.data(), header.size());
    if (computed_header != header_crc) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "archive: header CRC mismatch (stored " +
                        std::to_string(header_crc) + ", computed " +
                        std::to_string(computed_header) + ")");
    }
    io::ByteReader header_reader(header, "archive header");
    parse_header_fields(header_reader, archive);
    if (header_reader.remaining() != 0) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "archive: " + std::to_string(header_reader.remaining()) +
                        " trailing bytes after header fields");
    }
    const std::string_view payload = reader.rest();
    const std::uint32_t computed_payload =
        io::crc32c(payload.data(), payload.size());
    if (computed_payload != payload_crc) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "archive: payload CRC mismatch (stored " +
                        std::to_string(payload_crc) + ", computed " +
                        std::to_string(computed_payload) + ")");
    }
  } else {
    // v2 (pre-checksum) archives written before the integrity block
    // stay readable; their payloads are validated structurally only.
    parse_header_fields(reader, archive);
  }
  archive.packed = io::deserialize_tensor(reader.rest());
  validate_payload_shape(archive.packed.shape(),
                         expected_compressed_shape(archive, ctx));
  return archive;
}

void save_archive(const Archive& archive, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  const std::string bytes = serialize_archive(archive);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("archive: write failed: " + path);
}

Archive load_archive(const std::string& path) {
  // Zero-copy read: decode straight out of the mapping (MappedFile
  // falls back to a heap read for pipes, AIC_NO_MMAP, or mmap failure).
  const io::MappedFile file(path);
  return deserialize_archive(file.view());
}

}  // namespace aic::cli
