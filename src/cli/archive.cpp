#include "cli/archive.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "baseline/chunk_entropy.hpp"
#include "core/codec_factory.hpp"
#include "core/partial_serializer.hpp"
#include "core/triangle.hpp"
#include "io/byte_reader.hpp"
#include "io/checksum.hpp"
#include "io/error.hpp"
#include "io/tensor_io.hpp"
#include "obs/pipeline.hpp"
#include "obs/trace.hpp"
#include "runtime/context.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace aic::cli {

using io::CorruptKind;
using io::raise_corrupt;
using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr char kMagic[4] = {'A', 'I', 'C', 'Z'};

// The u8 codec-kind field of the header.
constexpr std::uint8_t kKindSquare = 0;
constexpr std::uint8_t kKindTriangle = 1;
constexpr std::uint8_t kKindPartial = 2;

// Any header dim above this is treated as hostile before the codec's
// shape math (which multiplies dims) ever sees it.
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;

template <typename T>
void append(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

/// The header fields shared by v2 and v3 (everything between the
/// version/CRC block and the payload), as one byte string so v3 can
/// checksum it as a unit.
std::string serialize_header_fields(const Archive& archive) {
  std::string out;
  const std::uint8_t kind = archive.subdivision > 1 ? kKindPartial
                            : archive.triangle     ? kKindTriangle
                                                   : kKindSquare;
  append<std::uint8_t>(out, kind);
  append<std::uint8_t>(out,
                       static_cast<std::uint8_t>(archive.config.transform));
  append<std::uint16_t>(out, static_cast<std::uint16_t>(archive.config.cf));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.config.block));
  append<std::uint16_t>(out,
                        static_cast<std::uint16_t>(archive.subdivision));
  append<std::uint32_t>(
      out, static_cast<std::uint32_t>(archive.original_shape.rank()));
  for (std::size_t axis = 0; axis < archive.original_shape.rank(); ++axis) {
    append<std::uint64_t>(out, archive.original_shape[axis]);
  }
  return out;
}

/// Parses the shared v2/v3 header fields into `archive`, validating
/// every field with a typed diagnostic.
void parse_header_fields(io::ByteReader& reader, Archive& archive) {
  const std::uint8_t kind = reader.read<std::uint8_t>("codec kind");
  if (kind > kKindPartial) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: unknown codec kind " + std::to_string(kind) +
                      " (supported: 0=square, 1=triangle, 2=partial)");
  }
  archive.triangle = kind == kKindTriangle;
  const std::uint8_t transform = reader.read<std::uint8_t>("transform");
  if (transform > static_cast<std::uint8_t>(core::TransformKind::kDst2)) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: unknown transform " + std::to_string(transform));
  }
  archive.config.transform = static_cast<core::TransformKind>(transform);
  archive.config.cf = reader.read<std::uint16_t>("cf");
  archive.config.block = reader.read<std::uint16_t>("block");
  archive.subdivision = reader.read<std::uint16_t>("subdivision");
  if (archive.subdivision == 0 ||
      (kind == kKindPartial) != (archive.subdivision > 1)) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: subdivision " +
                      std::to_string(archive.subdivision) +
                      " is inconsistent with codec kind " +
                      std::to_string(kind));
  }
  const std::uint32_t rank = reader.read<std::uint32_t>("rank");
  if (rank != 4) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: original rank " + std::to_string(rank) +
                      " (must be 4, BCHW)");
  }
  std::size_t dims[4];
  std::size_t numel = 1;
  for (auto& d : dims) {
    const std::uint64_t dim = reader.read<std::uint64_t>("dims");
    if (dim > kMaxDim) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "archive: dim " + std::to_string(dim) +
                        " is implausibly large");
    }
    d = static_cast<std::size_t>(dim);
    numel = io::checked_mul(numel, d, "archive dims");
  }
  // The original tensor must be representable in bytes before any codec
  // shape math multiplies these dims further.
  (void)io::checked_mul(numel, sizeof(float), "archive original bytes");
  archive.original_shape = Shape::bchw(dims[0], dims[1], dims[2], dims[3]);
  archive.config.height = dims[2];
  archive.config.width = dims[3];
}

std::string codec_spec_impl(const Archive& archive, bool pin_shape) {
  const auto& c = archive.config;
  std::ostringstream spec;
  if (archive.subdivision > 1) {
    spec << "partial:cf=" << c.cf << ",block=" << c.block
         << ",s=" << archive.subdivision;
  } else if (archive.triangle) {
    spec << "triangle:cf=" << c.cf << ",block=" << c.block;
  } else {
    spec << "dctchop:cf=" << c.cf << ",block=" << c.block;
  }
  spec << ",transform=" << core::transform_name(c.transform);
  if (pin_shape && c.height != 0) {
    spec << ",h=" << c.height << ",w=" << c.width;
  }
  return spec.str();
}

/// The compressed shape the header's codec promises, computed
/// allocation-free. The probe codec is deliberately built WITHOUT
/// pinning height/width: a pinned constructor eagerly compiles the plan
/// (operator matrices sized by the header dims), which would let a
/// mutated-but-plausible dim force a multi-gigabyte allocation before
/// any check can reject it. The shape-agnostic constructor validates the
/// same geometry arithmetically; the real pinned codec is only ever
/// built after the payload has vouched for the dims. Factory/shape
/// errors here are data errors (the header is attacker controlled), so
/// they surface as CorruptStream, not invalid_argument.
Shape expected_compressed_shape(const Archive& archive, const Context& ctx) {
  try {
    return core::make_codec(codec_spec_impl(archive, false), ctx)
        ->compressed_shape(archive.original_shape);
  } catch (const io::CorruptStream&) {
    throw;
  } catch (const std::exception& error) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  std::string("archive: header describes an invalid codec: ") +
                      error.what());
  }
}

/// Finishes a parsed archive: check the payload tensor has exactly the
/// shape the header's codec promises.
void validate_payload_against_header(const Archive& archive,
                                     const Context& ctx) {
  const Shape expected = expected_compressed_shape(archive, ctx);
  if (archive.packed.shape() != expected) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "archive: payload shape " +
                      archive.packed.shape().to_string() +
                      " does not match the header codec's expected shape " +
                      expected.to_string());
  }
}

// --- v4 chunked container -------------------------------------------------

/// Any chunk budget above this is treated as hostile (the chunk table
/// and per-chunk staging are sized from it).
constexpr std::uint64_t kMaxChunkBytes = std::uint64_t{1} << 30;

struct EncodedChunk {
  std::string bytes;
  std::uint32_t crc = 0;
};

EncodedChunk encode_one_chunk(std::string_view plain,
                              baseline::ChunkEntropy entropy) {
  AIC_TRACE_SCOPE("pipeline.chunk_encode");
  runtime::Timer timer;
  EncodedChunk chunk;
  chunk.bytes = baseline::encode_chunk(plain, entropy);
  chunk.crc = io::crc32c(chunk.bytes.data(), chunk.bytes.size());
  obs::PipelineMetrics::global().record_chunk_encoded(timer.nanos());
  return chunk;
}

void require_writable_chunk_bytes(std::size_t chunk_bytes) {
  if (chunk_bytes == 0 || chunk_bytes > kMaxChunkBytes) {
    throw std::invalid_argument(
        "archive: chunk_bytes must be in [1, " +
        std::to_string(kMaxChunkBytes) + "], got " +
        std::to_string(chunk_bytes));
  }
}

/// Assembles the final v4 byte stream from the shared header fields, the
/// chunk geometry, and the already-encoded chunks (in payload order).
std::string assemble_v4(const std::string& header_fields,
                        std::uint64_t payload_len, std::uint64_t chunk_bytes,
                        const std::vector<EncodedChunk>& chunks) {
  std::string header = header_fields;
  append<std::uint64_t>(header, payload_len);
  append<std::uint64_t>(header, chunk_bytes);
  append<std::uint32_t>(header, static_cast<std::uint32_t>(chunks.size()));
  std::size_t encoded_total = 0;
  for (const EncodedChunk& chunk : chunks) {
    append<std::uint64_t>(header, chunk.bytes.size());
    append<std::uint32_t>(header, chunk.crc);
    encoded_total += chunk.bytes.size();
  }

  std::string out;
  out.reserve(sizeof(kMagic) + 12 + header.size() + encoded_total);
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, 4);
  append<std::uint32_t>(out, static_cast<std::uint32_t>(header.size()));
  append<std::uint32_t>(out, io::crc32c(header.data(), header.size()));
  out += header;
  for (const EncodedChunk& chunk : chunks) out += chunk.bytes;
  return out;
}

/// Unfused v4 write: chunk the serialized payload and fan the entropy
/// encode + CRC over the pool. grain=1 because each iteration is a whole
/// chunk (tens of KiB) — the parallel_for heuristics handle small chunk
/// counts without oversubscribing.
std::string serialize_archive_v4(const Archive& archive,
                                 const ArchiveWriteOptions& options,
                                 const Context& ctx) {
  AIC_TRACE_SCOPE("pipeline.serialize_v4");
  require_writable_chunk_bytes(options.chunk_bytes);
  const std::string header_fields = serialize_header_fields(archive);
  const std::string payload = io::serialize_tensor(archive.packed);
  const std::size_t chunk_bytes = options.chunk_bytes;
  const std::size_t chunk_count =
      (payload.size() + chunk_bytes - 1) / chunk_bytes;

  // Route the fan-out onto this session's pool.
  Context::PoolScope pool_scope(ctx);
  std::vector<EncodedChunk> chunks(chunk_count);
  runtime::parallel_for(
      0, chunk_count,
      [&](std::size_t i) {
        const std::size_t lo = i * chunk_bytes;
        const std::size_t hi = std::min(payload.size(), lo + chunk_bytes);
        chunks[i] = encode_one_chunk(
            std::string_view(payload.data() + lo, hi - lo), options.entropy);
      },
      {.grain = 1});
  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);
  return assemble_v4(header_fields, payload.size(), chunk_bytes, chunks);
}

/// Parses everything after the version field of a v4 stream. Every
/// header-derived quantity is validated BEFORE the payload buffer is
/// allocated: the header CRC gates parsing, the payload length must
/// match the byte count the header's codec promises, the chunk geometry
/// must be internally consistent, and each table entry must satisfy the
/// entropy expansion bound — so hostile headers cannot force a large
/// allocation or a quadratic scan. Chunk CRC checks and entropy decode
/// then fan out across the pool into disjoint payload slices.
Archive deserialize_archive_v4(io::ByteReader& reader, const Context& ctx) {
  const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
  const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
  const std::string_view header =
      reader.read_bytes(header_len, "header fields");
  const std::uint32_t computed_header =
      io::crc32c(header.data(), header.size());
  if (computed_header != header_crc) {
    raise_corrupt(CorruptKind::kChecksumMismatch,
                  "archive: header CRC mismatch (stored " +
                      std::to_string(header_crc) + ", computed " +
                      std::to_string(computed_header) + ")");
  }

  Archive archive;
  io::ByteReader header_reader(header, "archive header");
  parse_header_fields(header_reader, archive);
  const std::uint64_t payload_len =
      header_reader.read<std::uint64_t>("payload length");
  const std::uint64_t chunk_bytes =
      header_reader.read<std::uint64_t>("chunk size");
  const std::uint32_t chunk_count =
      header_reader.read<std::uint32_t>("chunk count");

  // The payload length is fully determined by the (CRC-gated) codec
  // fields, so it is checked against them rather than trusted.
  const std::size_t expected_payload =
      io::serialized_tensor_bytes(expected_compressed_shape(archive, ctx));
  if (payload_len != expected_payload) {
    raise_corrupt(CorruptKind::kPayloadMismatch,
                  "archive: header claims " + std::to_string(payload_len) +
                      " payload bytes, codec promises " +
                      std::to_string(expected_payload));
  }
  if (chunk_bytes == 0 || chunk_bytes > kMaxChunkBytes) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: chunk size " + std::to_string(chunk_bytes) +
                      " outside [1, " + std::to_string(kMaxChunkBytes) + "]");
  }
  const std::uint64_t expected_chunks =
      (payload_len + chunk_bytes - 1) / chunk_bytes;
  if (chunk_count != expected_chunks) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: chunk count " + std::to_string(chunk_count) +
                      " does not cover the payload (expected " +
                      std::to_string(expected_chunks) + ")");
  }

  struct ChunkEntry {
    std::uint64_t offset = 0;  // into the encoded region
    std::uint64_t encoded_len = 0;
    std::uint32_t crc = 0;
  };
  std::vector<ChunkEntry> table(chunk_count);
  std::uint64_t encoded_total = 0;
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    ChunkEntry& entry = table[i];
    entry.offset = encoded_total;
    entry.encoded_len = header_reader.read<std::uint64_t>("chunk length");
    entry.crc = header_reader.read<std::uint32_t>("chunk CRC");
    const std::uint64_t plain_len =
        std::min<std::uint64_t>(chunk_bytes, payload_len - i * chunk_bytes);
    // encoded_len includes the 1-byte mode tag; the expansion bound caps
    // how much plain data an encoded chunk may legitimately claim.
    if (entry.encoded_len == 0 ||
        !baseline::chunk_expansion_ok(entry.encoded_len - 1, plain_len)) {
      raise_corrupt(CorruptKind::kPayloadMismatch,
                    "archive: chunk " + std::to_string(i) +
                        " encoded length " + std::to_string(entry.encoded_len) +
                        " cannot decode to " + std::to_string(plain_len) +
                        " bytes");
    }
    if (entry.encoded_len >
        std::numeric_limits<std::uint64_t>::max() - encoded_total) {
      raise_corrupt(CorruptKind::kOverflow,
                    "archive: chunk table lengths overflow");
    }
    encoded_total += entry.encoded_len;
  }
  if (header_reader.remaining() != 0) {
    raise_corrupt(CorruptKind::kBadHeaderField,
                  "archive: " + std::to_string(header_reader.remaining()) +
                      " trailing bytes after the chunk table");
  }
  const std::string_view encoded = reader.rest();
  if (encoded.size() != encoded_total) {
    raise_corrupt(CorruptKind::kTruncated,
                  "archive: chunk table promises " +
                      std::to_string(encoded_total) +
                      " encoded bytes, stream has " +
                      std::to_string(encoded.size()));
  }

  // Every header field has now been vouched for; reassemble the payload
  // in parallel. Chunks write disjoint slices, so no synchronization is
  // needed beyond parallel_for's own join.
  AIC_TRACE_SCOPE("pipeline.deserialize_v4");
  Context::PoolScope pool_scope(ctx);
  std::string payload(payload_len, '\0');
  runtime::parallel_for(
      0, chunk_count,
      [&](std::size_t i) {
        AIC_TRACE_SCOPE("pipeline.chunk_decode");
        runtime::Timer timer;
        const ChunkEntry& entry = table[i];
        const std::string_view chunk =
            encoded.substr(entry.offset, entry.encoded_len);
        const std::uint32_t computed = io::crc32c(chunk.data(), chunk.size());
        if (computed != entry.crc) {
          raise_corrupt(CorruptKind::kChecksumMismatch,
                        "archive: chunk " + std::to_string(i) +
                            " CRC mismatch (stored " +
                            std::to_string(entry.crc) + ", computed " +
                            std::to_string(computed) + ")");
        }
        const std::size_t lo = i * chunk_bytes;
        const std::size_t plain_len =
            std::min<std::size_t>(chunk_bytes, payload_len - lo);
        baseline::decode_chunk(chunk, plain_len, payload.data() + lo);
        obs::PipelineMetrics::global().record_chunk_decoded(timer.nanos());
      },
      {.grain = 1});
  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);

  archive.packed = io::deserialize_tensor(payload);
  validate_payload_against_header(archive, ctx);
  return archive;
}

/// Fills every Archive field except `packed` from the codec the factory
/// built for `codec_spec`. The archive header only represents the chop
/// family; recover the parameters from the concrete codec instance.
Archive classify_codec(const core::Codec& codec, const std::string& codec_spec,
                       const Shape& input_shape) {
  Archive archive;
  archive.original_shape = input_shape;
  if (const auto* dc = dynamic_cast<const core::DctChopCodec*>(&codec)) {
    archive.config = dc->config();
  } else if (const auto* sg =
                 dynamic_cast<const core::TriangleCodec*>(&codec)) {
    archive.triangle = true;
    archive.config = sg->config();
  } else if (const auto* ps =
                 dynamic_cast<const core::PartialSerialCodec*>(&codec)) {
    archive.subdivision = ps->config().subdivision;
    archive.config = {.height = ps->config().height,
                      .width = ps->config().width,
                      .cf = ps->config().cf,
                      .block = ps->config().block,
                      .transform = ps->config().transform};
  } else {
    throw std::invalid_argument("archive: codec \"" + codec_spec +
                                "\" has no archive representation (use the "
                                "dctchop / triangle / partial family)");
  }
  // Shape-agnostic specs leave height/width zero; the header pins them
  // to the tensor that is actually being compressed.
  archive.config.height = input_shape[2];
  archive.config.width = input_shape[3];
  return archive;
}

}  // namespace

std::string archive_codec_spec(const Archive& archive) {
  return codec_spec_impl(archive, true);
}

core::CodecPtr make_archive_codec(const Archive& archive,
                                  const Context& ctx) {
  return core::make_codec(archive_codec_spec(archive), ctx);
}

ArchiveWriteOptions ArchiveWriteOptions::from_context(const Context& ctx) {
  ArchiveWriteOptions options;
  options.version = ctx.archive_version();
  if (ctx.chunk_bytes() != 0) options.chunk_bytes = ctx.chunk_bytes();
  options.entropy = static_cast<baseline::ChunkEntropy>(ctx.entropy_mode());
  return options;
}

Archive compress_to_archive(const Tensor& input, const std::string& codec_spec,
                            core::CodecPtr* codec_out, const Context& ctx) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  const core::CodecPtr codec = core::make_codec(codec_spec, ctx);
  Archive archive = classify_codec(*codec, codec_spec, input.shape());
  archive.packed = codec->compress(input);
  if (codec_out != nullptr) *codec_out = codec;
  return archive;
}

Archive compress_to_archive(const Tensor& input, std::size_t cf,
                            std::size_t block,
                            core::TransformKind transform, bool triangle,
                            core::CodecPtr* codec_out, const Context& ctx) {
  std::ostringstream spec;
  spec << (triangle ? "triangle" : "dctchop") << ":cf=" << cf
       << ",block=" << block
       << ",transform=" << core::transform_name(transform);
  return compress_to_archive(input, spec.str(), codec_out, ctx);
}

std::string serialize_archive(const Archive& archive,
                              std::uint32_t version, const Context& ctx) {
  ArchiveWriteOptions options;
  options.version = version;
  return serialize_archive(archive, options, ctx);
}

std::string serialize_archive(const Archive& archive,
                              const ArchiveWriteOptions& options,
                              const Context& ctx) {
  const std::uint32_t version = options.version;
  if (version < 2 || version > kArchiveVersion) {
    throw std::invalid_argument("archive: cannot write version " +
                                std::to_string(version));
  }
  if (version == 4) return serialize_archive_v4(archive, options, ctx);
  const std::string header = serialize_header_fields(archive);
  const std::string payload = io::serialize_tensor(archive.packed);

  std::string out;
  out.reserve(sizeof(kMagic) + 16 + header.size() + payload.size());
  out.append(kMagic, sizeof(kMagic));
  append<std::uint32_t>(out, version);
  if (version >= 3) {
    // v3 integrity block: header length + independent CRC32C over the
    // header fields and the payload, so any flipped bit anywhere in the
    // stream is caught before (or instead of) deeper parsing.
    append<std::uint32_t>(out, static_cast<std::uint32_t>(header.size()));
    append<std::uint32_t>(out, io::crc32c(header.data(), header.size()));
    append<std::uint32_t>(out, io::crc32c(payload.data(), payload.size()));
  }
  out += header;
  out += payload;
  return out;
}

std::string compress_to_archive_bytes(const Tensor& input,
                                      const std::string& codec_spec,
                                      const ArchiveWriteOptions& options,
                                      core::CodecPtr* codec_out,
                                      const Context& ctx) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("archive: input must be BCHW");
  }
  if (options.version != 4) {
    Archive archive = compress_to_archive(input, codec_spec, codec_out, ctx);
    return serialize_archive(archive, options, ctx);
  }
  require_writable_chunk_bytes(options.chunk_bytes);

  AIC_TRACE_SCOPE("pipeline.fused_compress");
  runtime::Timer wall_timer;
  const core::CodecPtr codec = core::make_codec(codec_spec, ctx);
  Archive archive = classify_codec(*codec, codec_spec, input.shape());
  if (codec_out != nullptr) *codec_out = codec;

  const Shape packed_shape = codec->compressed_shape(input.shape());
  const std::size_t planes = input.shape()[0] * input.shape()[1];
  // The fused pipeline moves planes through in groups, splicing each
  // group's packed bytes into the payload at the offset the full-tensor
  // compress would have used. That is only sound when the codec treats
  // planes independently; the chop family does, and this check guards
  // the assumption against future codec kinds.
  const bool plane_separable =
      planes > 1 && packed_shape.rank() == 4 &&
      packed_shape[0] == input.shape()[0] &&
      packed_shape[1] == input.shape()[1] &&
      codec->compressed_shape(
          Shape::bchw(1, 1, input.shape()[2], input.shape()[3])) ==
          Shape::bchw(1, 1, packed_shape[2], packed_shape[3]);

  const std::string header = io::serialize_tensor_header(packed_shape);
  const std::size_t payload_len = io::serialized_tensor_bytes(packed_shape);
  const std::size_t chunk_bytes = options.chunk_bytes;
  const std::size_t chunk_count = (payload_len + chunk_bytes - 1) / chunk_bytes;

  std::string payload(payload_len, '\0');
  std::memcpy(payload.data(), header.data(), header.size());

  // Durable handle for the submit loop (pins the pool against a
  // concurrent Context::set_process_threads); the PoolScope routes the
  // codec's internal parallel_for fan-out onto the same session pool.
  const std::shared_ptr<runtime::ThreadPool> pool_handle = ctx.pool_handle();
  runtime::ThreadPool& pool = *pool_handle;
  Context::PoolScope pool_scope(ctx);
  std::vector<std::future<EncodedChunk>> futures(chunk_count);
  std::size_t next_chunk = 0;
  std::atomic<std::uint64_t> encode_ns{0};
  // Submits every chunk fully covered by the first `high_water` payload
  // bytes. Encode tasks enter the FIFO queue ahead of the next group's
  // transform tasks, so both kinds of work stay in flight with no phase
  // barrier; collecting the futures in index order keeps the output
  // byte-identical for every pool size.
  const auto submit_ready = [&](std::size_t high_water) {
    while (next_chunk < chunk_count) {
      const std::size_t lo = next_chunk * chunk_bytes;
      const std::size_t hi = std::min(payload_len, lo + chunk_bytes);
      if (hi > high_water) break;
      futures[next_chunk] = pool.submit([&, lo, hi] {
        runtime::Timer timer;
        EncodedChunk chunk = encode_one_chunk(
            std::string_view(payload.data() + lo, hi - lo), options.entropy);
        encode_ns.fetch_add(timer.nanos(), std::memory_order_relaxed);
        return chunk;
      });
      ++next_chunk;
    }
  };

  std::uint64_t transform_ns = 0;
  if (plane_separable) {
    const std::size_t in_plane_bytes =
        input.shape()[2] * input.shape()[3] * sizeof(float);
    const std::size_t packed_plane_bytes =
        packed_shape[2] * packed_shape[3] * sizeof(float);
    const std::size_t group_count = std::min<std::size_t>(planes, 4);
    const std::size_t group_planes = (planes + group_count - 1) / group_count;
    for (std::size_t p0 = 0; p0 < planes; p0 += group_planes) {
      const std::size_t g = std::min(group_planes, planes - p0);
      runtime::Timer timer;
      Tensor group(Shape::bchw(1, g, input.shape()[2], input.shape()[3]));
      std::memcpy(group.raw(),
                  reinterpret_cast<const char*>(input.raw()) +
                      p0 * in_plane_bytes,
                  g * in_plane_bytes);
      const Tensor packed_group = codec->compress(group);
      std::memcpy(payload.data() + header.size() + p0 * packed_plane_bytes,
                  packed_group.raw(), g * packed_plane_bytes);
      transform_ns += timer.nanos();
      submit_ready(header.size() + (p0 + g) * packed_plane_bytes);
    }
  } else {
    // Single plane (or a non-separable codec): the transform itself is
    // already parallel via sandwich_banded, and the chunk encode fans
    // out right after — the two stages just don't interleave.
    runtime::Timer timer;
    archive.packed = codec->compress(input);
    std::memcpy(payload.data() + header.size(),
                archive.packed.raw(), archive.packed.size_bytes());
    transform_ns = timer.nanos();
  }
  submit_ready(payload_len);

  std::vector<EncodedChunk> chunks(chunk_count);
  for (std::size_t i = 0; i < chunk_count; ++i) chunks[i] = futures[i].get();

  obs::PipelineMetrics::global().record_archive_layout(chunk_bytes,
                                                       chunk_count);
  obs::PipelineMetrics::global().record_overlap(
      transform_ns, encode_ns.load(std::memory_order_relaxed),
      wall_timer.nanos());
  return assemble_v4(serialize_header_fields(archive), payload_len,
                     chunk_bytes, chunks);
}

ArchiveProbe probe_archive(const std::string& bytes) {
  io::ByteReader reader(bytes, "archive");
  reader.require(sizeof(kMagic), "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    raise_corrupt(CorruptKind::kBadMagic, "archive: bad magic");
  }
  (void)reader.read_bytes(sizeof(kMagic), "magic");
  ArchiveProbe probe;
  probe.version = reader.read<std::uint32_t>("version");
  if (probe.version < 2 || probe.version > kArchiveVersion) {
    raise_corrupt(CorruptKind::kBadVersion,
                  "archive: found version " + std::to_string(probe.version) +
                      ", supported versions 2.." +
                      std::to_string(kArchiveVersion));
  }
  if (probe.version == 2) {
    // v2 has no length fields: the payload is whatever follows the
    // fixed-size header (1+1+2+2+2+4 + 4*8 = 44 bytes).
    reader.require(44, "header fields");
    probe.payload_len = reader.remaining() - 44;
    return probe;
  }
  const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
  const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
  if (probe.version == 3) {
    (void)reader.read<std::uint32_t>("payload CRC");
  }
  const std::string_view header =
      reader.read_bytes(header_len, "header fields");
  const std::uint32_t computed = io::crc32c(header.data(), header.size());
  if (computed != header_crc) {
    raise_corrupt(CorruptKind::kChecksumMismatch,
                  "archive: header CRC mismatch (stored " +
                      std::to_string(header_crc) + ", computed " +
                      std::to_string(computed) + ")");
  }
  if (probe.version == 3) {
    probe.payload_len = reader.remaining();
    return probe;
  }
  Archive scratch;
  io::ByteReader header_reader(header, "archive header");
  parse_header_fields(header_reader, scratch);
  probe.payload_len = static_cast<std::size_t>(
      header_reader.read<std::uint64_t>("payload length"));
  probe.chunk_bytes = static_cast<std::size_t>(
      header_reader.read<std::uint64_t>("chunk size"));
  probe.chunk_count = header_reader.read<std::uint32_t>("chunk count");
  return probe;
}

Archive deserialize_archive(const std::string& bytes, const Context& ctx) {
  io::ByteReader reader(bytes, "archive");
  reader.require(sizeof(kMagic), "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    raise_corrupt(CorruptKind::kBadMagic, "archive: bad magic");
  }
  (void)reader.read_bytes(sizeof(kMagic), "magic");
  const std::uint32_t version = reader.read<std::uint32_t>("version");
  if (version < 2 || version > kArchiveVersion) {
    raise_corrupt(CorruptKind::kBadVersion,
                  "archive: found version " + std::to_string(version) +
                      ", supported versions 2.." +
                      std::to_string(kArchiveVersion));
  }

  if (version == 4) return deserialize_archive_v4(reader, ctx);

  Archive archive;
  if (version >= 3) {
    const std::uint32_t header_len = reader.read<std::uint32_t>("header size");
    const std::uint32_t header_crc = reader.read<std::uint32_t>("header CRC");
    const std::uint32_t payload_crc =
        reader.read<std::uint32_t>("payload CRC");
    const std::string_view header =
        reader.read_bytes(header_len, "header fields");
    const std::uint32_t computed_header =
        io::crc32c(header.data(), header.size());
    if (computed_header != header_crc) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "archive: header CRC mismatch (stored " +
                        std::to_string(header_crc) + ", computed " +
                        std::to_string(computed_header) + ")");
    }
    io::ByteReader header_reader(header, "archive header");
    parse_header_fields(header_reader, archive);
    if (header_reader.remaining() != 0) {
      raise_corrupt(CorruptKind::kBadHeaderField,
                    "archive: " + std::to_string(header_reader.remaining()) +
                        " trailing bytes after header fields");
    }
    const std::string_view payload = reader.rest();
    const std::uint32_t computed_payload =
        io::crc32c(payload.data(), payload.size());
    if (computed_payload != payload_crc) {
      raise_corrupt(CorruptKind::kChecksumMismatch,
                    "archive: payload CRC mismatch (stored " +
                        std::to_string(payload_crc) + ", computed " +
                        std::to_string(computed_payload) + ")");
    }
  } else {
    // v2 (pre-checksum) archives written before the integrity block
    // stay readable; their payloads are validated structurally only.
    parse_header_fields(reader, archive);
  }
  archive.packed = io::deserialize_tensor(std::string(reader.rest()));
  validate_payload_against_header(archive, ctx);
  return archive;
}

void save_archive(const Archive& archive, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  const std::string bytes = serialize_archive(archive);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("archive: write failed: " + path);
}

Archive load_archive(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("archive: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  return deserialize_archive(bytes);
}

}  // namespace aic::cli
